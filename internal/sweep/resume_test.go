package sweep

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/journal"
	"uvmsim/internal/sim"
)

// stubSleep replaces the retry backoff sleep for the test's duration.
func stubSleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	old := retrySleep
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { retrySleep = old })
	return &slept
}

func TestRetryBackoffShape(t *testing.T) {
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := retryBackoff(i + 1); got != w {
			t.Errorf("retryBackoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// A journaled sweep resumed with nothing missing must replay every cell
// from the journal, run zero simulations, and emit a byte-identical
// table.
func TestSweepResumeReplaysCompletedCells(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.jsonl")

	s := smallSpec()
	s.Journal = jpath
	res, err := s.RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var clean bytes.Buffer
	if err := res.Table.WriteCSV(&clean); err != nil {
		t.Fatal(err)
	}

	var ran atomic.Int64
	old := runConfig
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		ran.Add(1)
		return old(s, c)
	}
	defer func() { runConfig = old }()

	s2 := smallSpec()
	s2.Journal = jpath
	s2.Resume = true
	res2, err := s2.RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Fatalf("resume re-ran %d cells, want 0", ran.Load())
	}
	if res2.Reused != 6 {
		t.Fatalf("reused = %d, want 6", res2.Reused)
	}
	var resumed bytes.Buffer
	if err := res2.Table.WriteCSV(&resumed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean.Bytes(), resumed.Bytes()) {
		t.Errorf("resumed table differs from clean run:\n--- clean ---\n%s--- resumed ---\n%s",
			clean.String(), resumed.String())
	}
}

// A transiently-failing cell must be retried with backoff and succeed,
// leaving both attempts in the journal.
func TestSweepRetriesTransientFailure(t *testing.T) {
	slept := stubSleep(t)
	jpath := filepath.Join(t.TempDir(), "sweep.jsonl")

	var calls atomic.Int64
	old := runConfig
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		if c.Prefetch == "density" && c.Footprint == 0.5 && calls.Add(1) == 1 {
			return nil, errors.New("transient host hiccup")
		}
		return old(s, c)
	}
	defer func() { runConfig = old }()

	s := smallSpec()
	s.Journal = jpath
	s.Retries = 2
	res, err := s.RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 6 {
		t.Fatalf("table has %d rows, want 6", len(res.Table.Rows))
	}
	if len(*slept) != 1 || (*slept)[0] != 100*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want one 100ms pause", *slept)
	}
	recs, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var failed, completed int
	for _, r := range recs {
		switch govern.State(r.Status) {
		case govern.StateFailed:
			failed++
		case govern.StateCompleted:
			completed++
		}
	}
	if failed != 1 || completed != 6 {
		t.Fatalf("journal has %d failed / %d completed records, want 1/6", failed, completed)
	}
}

// A cell that exhausts its retries must abort the sweep with the replay
// recipe attached.
func TestSweepRetriesExhaustedAborts(t *testing.T) {
	stubSleep(t)
	old := runConfig
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		if c.Prefetch == "adaptive" {
			return nil, errors.New("persistent failure")
		}
		return []interface{}{c.Footprint}, nil
	}
	defer func() { runConfig = old }()

	s := smallSpec()
	s.Retries = 2
	_, err := s.RunContext(t.Context())
	if err == nil {
		t.Fatal("exhausted retries did not abort the sweep")
	}
	st := govern.StatusOf(err)
	if st.State != govern.StateFailed {
		t.Fatalf("status = %v, want failed", st.State)
	}
}

// Budget-tripped cells journal their verdict and the sweep continues
// without their rows; on resume they are not re-run.
func TestSweepBudgetTripContinuesAndResumes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.jsonl")
	old := runConfig
	trip := func(s *Spec, c Config) ([]interface{}, error) {
		if c.Prefetch == "none" {
			return nil, &sim.StopError{Reason: sim.StopLivelock, Executed: 5000}
		}
		return old(s, c)
	}
	runConfig = trip
	defer func() { runConfig = old }()

	s := smallSpec()
	s.Journal = jpath
	res, err := s.RunContext(t.Context())
	if err != nil {
		t.Fatalf("budget trip aborted the sweep: %v", err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4 (2 livelocked cells dropped)", len(res.Table.Rows))
	}
	if res.Counts()[govern.StateLivelock] != 2 {
		t.Fatalf("counts = %v, want 2 livelocked", res.Counts())
	}

	// Resume must trust the deterministic verdict and not re-run them.
	var reran atomic.Int64
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		reran.Add(1)
		return trip(s, c)
	}
	s2 := smallSpec()
	s2.Journal = jpath
	s2.Resume = true
	res2, err := s2.RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 0 {
		t.Fatalf("resume re-ran %d cells, want 0", reran.Load())
	}
	if res2.Counts()[govern.StateLivelock] != 2 || len(res2.Table.Rows) != 4 {
		t.Fatalf("resume verdicts lost: counts=%v rows=%d", res2.Counts(), len(res2.Table.Rows))
	}
}

// Cancelling the sweep context mid-run must stop dequeuing, journal
// what finished, and return the context error with a partial Result.
func TestSweepCancelReturnsPartialResult(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	old := runConfig
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		if calls.Add(1) == 2 {
			cancel()
		}
		return old(s, c)
	}
	defer func() { runConfig = old }()

	s := smallSpec()
	s.Journal = jpath
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned on cancellation")
	}
	if res.Skipped == 0 {
		t.Fatal("no cells skipped after cancellation")
	}
	recs, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("journal empty: finished cells were not recorded")
	}
	for _, r := range recs {
		// In-flight cells may have been stopped by the flag; either way
		// every journaled verdict must be terminal and well-formed.
		st := govern.State(r.Status)
		if st != govern.StateCompleted && st != govern.StateCancelled {
			t.Fatalf("journal record %+v, want completed or cancelled", r)
		}
		if st == govern.StateCompleted && r.Digest != journal.RowDigest(r.Row) {
			t.Fatalf("journal record %+v has a bad digest", r)
		}
	}
}
