package sweep

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/journal"
	"uvmsim/internal/parallel"
	"uvmsim/internal/stats"
)

// Cell retries use the driver's DMA-retry backoff shape: bounded
// exponential starting at retryBase, doubling, capped at retryCap.
const (
	retryBase = 100 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retrySleep is time.Sleep behind a variable so tests retry instantly.
var retrySleep = retrySleepHost

func retrySleepHost(d time.Duration) { time.Sleep(d) }

// retryBackoff returns the host-side pause before retry attempt n
// (n = 1 is the first retry).
func retryBackoff(n int) time.Duration {
	d := retryBase
	for i := 1; i < n && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	return d
}

// CellStatus is one cell's terminal governance outcome.
type CellStatus struct {
	// Label is the cell's replay recipe; Hash its journal key.
	Label string
	Hash  string
	// State is the terminal govern state; Err its message when not
	// completed.
	State govern.State
	Err   string
	// Attempts counts executions of the cell (0 for pool-skipped cells).
	Attempts int
	// Reused marks a cell satisfied from the resume journal without
	// re-running.
	Reused bool
}

// Result is a governed sweep's full outcome: the result table (one row
// per completed cell, cross-product order) plus per-cell statuses. When
// RunContext also returns an error the Result still holds everything
// that finished, so callers can flush partial artifacts before exiting.
type Result struct {
	Table    *stats.Table
	Statuses []CellStatus
	// Reused counts cells replayed from the journal; Skipped counts
	// cells the pool never started because the sweep stopped first.
	Reused  int
	Skipped int
}

// Counts tallies statuses by state. Pool-skipped cells have empty state
// and are not counted.
func (r *Result) Counts() map[govern.State]int {
	m := make(map[govern.State]int)
	for _, st := range r.Statuses {
		if st.State != "" {
			m[st.State]++
		}
	}
	return m
}

// appendRecord journals one outcome; a nil writer journals nothing. A
// journal write failure aborts the sweep — continuing would break the
// resume contract silently.
func appendRecord(jw *journal.Writer, rec journal.Record) error {
	if jw == nil {
		return nil
	}
	if err := jw.Append(rec); err != nil {
		return fmt.Errorf("sweep: journal append: %w", err)
	}
	return nil
}

// safeRunConfig runs one cell, converting a panic into the same
// *parallel.PanicError the pool would have produced, so panics flow
// through status classification and the retry loop like any failure.
func safeRunConfig(s *Spec, c Config, i int) (row []interface{}, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &parallel.PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return runConfig(s, c)
}

// setCellStatus stamps the governance outcome onto the cell's newest
// observability capture so exports can distinguish complete captures
// from partial ones.
func (s *Spec) setCellStatus(label string, st govern.State) {
	if s.Obs == nil {
		return
	}
	if cell := s.Obs.LastCell(label); cell != nil {
		cell.SetStatus(string(st), st.Code())
	}
}

// RunContext is Run with cancellation, per-cell budgets, retries, and
// crash-safe journaling. Cell outcomes route as follows: completed cells
// emit their row; deadline/livelock cells journal their state and the
// sweep continues without them (budget trips are deterministic — a
// retry or resume would only reproduce them); failed/panicked cells
// retry up to Spec.Retries times with bounded backoff, then abort the
// sweep; cancellation stops new cells, drains in-flight ones, and
// returns ctx's error alongside the partial Result.
func (s *Spec) RunContext(ctx context.Context) (*Result, error) {
	configs, err := s.Configs()
	if err != nil {
		return nil, err
	}
	var prior map[string]journal.Record
	var jw *journal.Writer
	if s.Journal != "" {
		if s.Resume {
			recs, err := journal.Load(s.Journal)
			if err != nil {
				return nil, fmt.Errorf("sweep: resume: %w", err)
			}
			prior = journal.Latest(recs)
			jw, err = journal.Open(s.Journal)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			jw, err = journal.Create(s.Journal)
			if err != nil {
				return nil, err
			}
		}
		defer jw.Close()
	}
	s.cancel = govern.WatchContext(ctx)

	statuses := make([]CellStatus, len(configs))
	var settled atomic.Int64
	run := func(i int) ([]string, error) {
		// Every run invocation settles exactly one cell (reused, tripped,
		// completed, or aborting the sweep); pool-skipped cells never enter.
		if s.Progress != nil {
			defer func() { s.Progress(int(settled.Add(1)), len(configs)) }()
		}
		c := configs[i]
		label := c.Label(s)
		st := &statuses[i]
		st.Label = label
		st.Hash = journal.Hash(label)

		if rec, ok := prior[st.Hash]; ok {
			switch govern.State(rec.Status) {
			case govern.StateCompleted:
				st.State, st.Attempts, st.Reused = govern.StateCompleted, rec.Attempt, true
				return rec.Row, nil
			case govern.StateDeadline, govern.StateLivelock:
				// Deterministic trips reproduce on rerun; keep the verdict.
				st.State, st.Err = govern.State(rec.Status), rec.Err
				st.Attempts, st.Reused = rec.Attempt, true
				return nil, nil
			}
			// cancelled / failed / panicked records fall through and rerun
		}

		for attempt := 1; ; attempt++ {
			row, err := safeRunConfig(s, c, i)
			rs := govern.StatusOf(err)
			st.State, st.Err, st.Attempts = rs.State, rs.Err, attempt
			s.setCellStatus(label, rs.State)
			rec := journal.Record{
				Label: label, Hash: st.Hash, Seed: s.Seed,
				Status: string(rs.State), Attempt: attempt, Err: rs.Err,
			}
			if rs.State == govern.StateCompleted {
				rendered := stats.RenderCells(row...)
				rec.Row, rec.Digest = rendered, journal.RowDigest(rendered)
				if jerr := appendRecord(jw, rec); jerr != nil {
					return nil, jerr
				}
				return rendered, nil
			}
			if jerr := appendRecord(jw, rec); jerr != nil {
				return nil, jerr
			}
			if rs.State.Retryable() && attempt <= s.Retries {
				retrySleep(retryBackoff(attempt))
				continue
			}
			switch rs.State {
			case govern.StateDeadline, govern.StateLivelock:
				return nil, nil // journaled; the sweep goes on without this row
			case govern.StateCancelled:
				// An in-flight cell the cancel flag stopped mid-run: its
				// verdict is journaled, and the run-level context error is
				// what the caller reports — a drained cell is not a failure.
				return nil, nil
			case govern.StatePanicked:
				return nil, fmt.Errorf("sweep cell %s crashed (rerun with -jobs 1 to reproduce): %w", label, err)
			default:
				return nil, fmt.Errorf("sweep cell %s: %w", label, err)
			}
		}
	}

	rows, out, runErr := parallel.MapCtx(ctx, s.Jobs, len(configs), run)
	res := &Result{
		Table: stats.NewTable(fmt.Sprintf("sweep: %s on %d MiB GPU", s.Workload, s.GPUMemoryBytes>>20),
			Headers()...),
		Statuses: statuses,
		Skipped:  out.Skipped,
	}
	for _, row := range rows {
		if row != nil {
			res.Table.AddRenderedRow(row)
		}
	}
	for _, st := range statuses {
		if st.Reused {
			res.Reused++
		}
	}
	return res, runErr
}
