package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"uvmsim/internal/govern"
	"uvmsim/internal/journal"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// killSpec is a 12-cell sweep large enough that killing it after a few
// cells leaves real work for the resumed run at every worker count.
func killSpec(jobs int) *Spec {
	s := smallSpec()
	s.Footprints = []float64{0.25, 0.5, 0.75, 1.25}
	s.Jobs = jobs
	s.Obs = obs.NewCollector()
	s.Lifecycle = true
	return s
}

// completedOnly keeps the cells whose terminal status is completed.
func completedOnly(c *obs.Collector) *obs.Collector {
	return c.Filter(func(cell *obs.Cell) bool {
		return cell.Status() == string(govern.StateCompleted)
	})
}

// exports renders the three artifacts a governed sweep emits: the result
// table as CSV, the Chrome trace, and the metrics CSV.
func exports(t *testing.T, res *Result, c *obs.Collector) (table, trace, metrics []byte) {
	t.Helper()
	var tb, tr, me bytes.Buffer
	if err := res.Table.WriteCSV(&tb); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMetricsCSV(&me); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), tr.Bytes(), me.Bytes()
}

// Kill-and-resume must be indistinguishable from an uninterrupted sweep:
// after cancelling mid-run and resuming from the journal, the merged
// table, Chrome trace, and metrics CSV are byte-identical to a clean
// run's — at every worker count.
func TestKillResumeByteIdenticalAcrossJobs(t *testing.T) {
	clean := killSpec(1)
	cleanRes, err := clean.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantTable, wantTrace, wantMetrics := exports(t, cleanRes, completedOnly(clean.Obs))

	for _, jobs := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			jpath := filepath.Join(t.TempDir(), "sweep.jsonl")

			// Kill: cancel the context once K cells have finished. With
			// jobs > 1 the in-flight cells observe the flag at whatever
			// event they happen to be on — exactly a SIGINT's timing.
			const k = 3
			ctx, cancel := context.WithCancel(context.Background())
			var done atomic.Int64
			old := runConfig
			runConfig = func(s *Spec, c Config) ([]interface{}, error) {
				rows, err := old(s, c)
				if done.Add(1) == k {
					cancel()
				}
				return rows, err
			}
			killed := killSpec(jobs)
			killed.Journal = jpath
			_, killErr := killed.RunContext(ctx)
			runConfig = old
			cancel()
			// The race can resolve either way: the sweep may finish before
			// the flag lands. Both outcomes must resume to identical bytes.
			if killErr != nil && !errors.Is(killErr, context.Canceled) {
				t.Fatalf("killed run failed with a non-cancellation error: %v", killErr)
			}

			resumed := killSpec(jobs)
			resumed.Journal = jpath
			resumed.Resume = true
			res, err := resumed.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if killErr != nil && res.Reused == 0 {
				t.Fatal("killed run journaled completed cells but resume reused none")
			}

			// Merge: the resumed run's cells plus the killed run's
			// completed captures (reused cells never re-simulate, so their
			// capture lives only in the killed run's collector). Exports
			// sort by label, so insertion order is irrelevant.
			merged := completedOnly(resumed.Obs)
			merged.Adopt(completedOnly(killed.Obs).Cells()...)

			gotTable, gotTrace, gotMetrics := exports(t, res, merged)
			if !bytes.Equal(wantTable, gotTable) {
				t.Errorf("merged table differs from clean run:\n--- clean ---\n%s--- merged ---\n%s", wantTable, gotTable)
			}
			if !bytes.Equal(wantTrace, gotTrace) {
				t.Errorf("merged Chrome trace differs from clean run (%d vs %d bytes)", len(wantTrace), len(gotTrace))
			}
			if !bytes.Equal(wantMetrics, gotMetrics) {
				t.Errorf("merged metrics CSV differs from clean run:\n--- clean ---\n%s--- merged ---\n%s", wantMetrics, gotMetrics)
			}
		})
	}
}

// Cancelling a sweep at randomized (but seeded) points must always leave
// a parseable journal with verified digests and parseable partial
// exports — and never trip an invariant (a violation would panic the
// cell and surface as a non-cancellation error).
func TestRandomizedCancellationSafety(t *testing.T) {
	r := rand.New(rand.NewSource(0xC0FFEE))
	jobsChoices := []int{1, 2, 4, 8}
	for trial := 0; trial < 5; trial++ {
		k := 1 + r.Intn(12)
		jobs := jobsChoices[r.Intn(len(jobsChoices))]
		t.Run(fmt.Sprintf("trial=%d_cancel_at=%d_jobs=%d", trial, k, jobs), func(t *testing.T) {
			jpath := filepath.Join(t.TempDir(), "sweep.jsonl")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			old := runConfig
			runConfig = func(s *Spec, c Config) ([]interface{}, error) {
				if calls.Add(1) == int64(k) {
					cancel()
				}
				return old(s, c)
			}
			defer func() { runConfig = old }()

			s := killSpec(jobs)
			s.Journal = jpath
			res, err := s.RunContext(ctx)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled sweep failed with a non-cancellation error: %v", err)
			}
			if res == nil {
				t.Fatal("no result returned")
			}

			// The journal must load cleanly with every record terminal and
			// every completed row's digest intact.
			recs, lerr := journal.Load(jpath)
			if lerr != nil {
				t.Fatalf("journal unparseable after cancellation: %v", lerr)
			}
			for _, rec := range recs {
				st := govern.State(rec.Status)
				if st != govern.StateCompleted && st != govern.StateCancelled {
					t.Fatalf("non-terminal journal record: %+v", rec)
				}
				if st == govern.StateCompleted && rec.Digest != journal.RowDigest(rec.Row) {
					t.Fatalf("corrupt digest in journal record: %+v", rec)
				}
			}

			// Partial exports must still parse: the trace as JSON, the
			// metrics as CSV.
			done := completedOnly(s.Obs)
			var tr bytes.Buffer
			if err := done.WriteChromeTrace(&tr); err != nil {
				t.Fatal(err)
			}
			var parsed struct {
				TraceEvents []map[string]interface{} `json:"traceEvents"`
			}
			if err := json.Unmarshal(tr.Bytes(), &parsed); err != nil {
				t.Fatalf("partial Chrome trace unparseable: %v", err)
			}
			var me bytes.Buffer
			if err := done.WriteMetricsCSV(&me); err != nil {
				t.Fatal(err)
			}
			if _, err := csv.NewReader(&me).ReadAll(); err != nil {
				t.Fatalf("partial metrics CSV unparseable: %v", err)
			}
		})
	}
}

// A pathologically oversubscribed configuration must be stopped by the
// simulated-time budget while healthy cells in the same sweep complete;
// the sweep finishes, records every verdict, and resume trusts them.
func TestBudgetStopsPathologicalOversubscription(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.jsonl")
	s := smallSpec()
	// The 50% cells finish under 5.3 ms of simulated time; the thrashing
	// 125% cells need 6.7 ms or more. 6 ms cuts exactly between them.
	s.Budget = sim.Budget{SimDeadline: sim.Time(6 * sim.Millisecond)}
	s.Journal = jpath
	res, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatalf("budget trip aborted the sweep: %v", err)
	}
	counts := res.Counts()
	if counts[govern.StateCompleted] != 3 || counts[govern.StateDeadline] != 3 {
		t.Fatalf("counts = %v, want 3 completed / 3 deadline", counts)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3 (deadline cells carry no row)", len(res.Table.Rows))
	}

	// Resume must not re-run either the completed or the budget-stopped
	// cells: both verdicts are deterministic.
	var reran atomic.Int64
	old := runConfig
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		reran.Add(1)
		return old(s, c)
	}
	defer func() { runConfig = old }()
	s2 := smallSpec()
	s2.Budget = sim.Budget{SimDeadline: sim.Time(6 * sim.Millisecond)}
	s2.Journal = jpath
	s2.Resume = true
	res2, err := s2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 0 {
		t.Fatalf("resume re-ran %d cells, want 0", reran.Load())
	}
	if c := res2.Counts(); c[govern.StateCompleted] != 3 || c[govern.StateDeadline] != 3 {
		t.Fatalf("resume counts = %v, want 3 completed / 3 deadline", c)
	}
}

// The livelock detector must never fire on a healthy configuration: real
// workloads schedule bursts of same-timestamp events, and the window has
// to sit far above any legitimate burst.
func TestLivelockWindowNoFalsePositive(t *testing.T) {
	s := smallSpec()
	s.Budget = sim.Budget{LivelockWindow: 50_000}
	res, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Counts(); c[govern.StateCompleted] != 6 {
		t.Fatalf("counts = %v, want 6 completed", c)
	}
}
