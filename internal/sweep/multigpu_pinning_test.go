package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/confighash"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
)

// TestSingleGPULabelAndHashPinned pins the zero-value elision contract:
// a single-GPU cell must render exactly the pre-multi-GPU label, and so
// hash to exactly the pre-multi-GPU confighash. Journals and serve
// caches persist these keys; if this test fails, every record written
// before the multi-GPU axes existed is silently orphaned.
func TestSingleGPULabelAndHashPinned(t *testing.T) {
	spec := &Spec{
		Workload:       "random",
		GPUMemoryBytes: 32 << 20,
		Seed:           1,
		Footprints:     []float64{0.5},
		Prefetch:       []string{"density"},
		Replay:         []string{"batchflush"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
	}
	cfgs, err := spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(cfgs))
	}
	const wantLabel = "workload=random footprint=0.5 prefetch=density replay=batchflush evict=lru batch=256 vablock=2048KiB seed=1"
	if got := cfgs[0].Label(spec); got != wantLabel {
		t.Errorf("K=1 label drifted:\n got %q\nwant %q", got, wantLabel)
	}
	// The hash below was computed before the GPUs/Migration axes existed.
	const wantHash = "2ac1730334c1245f"
	if got := confighash.Sum(cfgs[0].Label(spec)); got != wantHash {
		t.Errorf("K=1 confighash drifted: got %s, want %s", got, wantHash)
	}

	// Explicitly asking for one GPU must be indistinguishable from not
	// asking at all — same single cell, same label.
	spec.GPUs = []int{1}
	spec.Migration = []string{"first-touch", "access-counter"}
	cfgs, err = spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 {
		t.Fatalf("K=1 did not collapse the migration axis: %d cells", len(cfgs))
	}
	if got := cfgs[0].Label(spec); got != wantLabel {
		t.Errorf("explicit GPUs=[1] label drifted: got %q", got)
	}
}

// TestMultiGPULabelFormat pins the K>1 label suffix so journals keyed by
// multi-GPU labels stay matchable across versions.
func TestMultiGPULabelFormat(t *testing.T) {
	spec := &Spec{Workload: "regular", GPUMemoryBytes: 32 << 20, Seed: 7}
	c := Config{Footprint: 0.5, Prefetch: "none", Replay: 0, Evict: "lru",
		Batch: 256, VABlock: 2 << 20, GPUs: 4, Migration: multigpu.AccessCounter}
	got := c.Label(spec)
	if !strings.HasSuffix(got, " gpus=4 migration=access-counter") {
		t.Errorf("K=4 label missing multi-GPU suffix: %q", got)
	}
}

// pinnedMultiGPUSpec is the K=4 golden configuration: four devices over
// a shared footprint with both placement policies crossed, spans and
// lifecycle on — the determinism gate for the residency manager, the
// interconnect fabric, and access-counter migration.
func pinnedMultiGPUSpec(jobs int) (*Spec, *obs.Collector) {
	col := obs.NewCollector()
	return &Spec{
		Workload:       "regular",
		GPUMemoryBytes: 16 << 20,
		Seed:           7,
		Footprints:     []float64{0.5, 1.2},
		Prefetch:       []string{"density"},
		Replay:         []string{"batchflush"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
		GPUs:           []int{4},
		Migration:      []string{"first-touch", "access-counter"},
		Jobs:           jobs,
		Obs:            col,
		Lifecycle:      true,
	}, col
}

// renderPinnedMultiGPU runs the K=4 pinned sweep at the given
// parallelism and renders the guarded artifacts.
func renderPinnedMultiGPU(t *testing.T, jobs int) (table, trace []byte) {
	t.Helper()
	spec, col := pinnedMultiGPUSpec(jobs)
	tb, err := spec.Run()
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var tbuf, cbuf bytes.Buffer
	if err := tb.WriteCSV(&tbuf); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteChromeTrace(&cbuf); err != nil {
		t.Fatal(err)
	}
	return tbuf.Bytes(), cbuf.Bytes()
}

// TestPinnedMultiGPUSweepArtifacts pins the K=4 sweep table and Chrome
// trace byte-for-byte against committed goldens at -jobs 1, 4, and 8 —
// the multi-GPU analogue of TestPinnedSweepArtifacts. Peer migrations,
// fabric contention, and per-device trace lanes must all land
// identically at every worker count.
func TestPinnedMultiGPUSweepArtifacts(t *testing.T) {
	tablePath := filepath.Join("testdata", "pinned_multigpu_table.csv")
	tracePath := filepath.Join("testdata", "pinned_multigpu_trace.json")

	table1, trace1 := renderPinnedMultiGPU(t, 1)
	if *updateGolden {
		if err := os.WriteFile(tablePath, table1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, trace1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes) and %s (%d bytes)", tablePath, len(table1), tracePath, len(trace1))
	}
	wantTable, err := os.ReadFile(tablePath)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-golden): %v", err)
	}
	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-golden): %v", err)
	}
	for _, jobs := range []int{1, 4, 8} {
		table, trace := table1, trace1
		if jobs != 1 {
			table, trace = renderPinnedMultiGPU(t, jobs)
		}
		if !bytes.Equal(table, wantTable) {
			t.Errorf("jobs=%d: K=4 sweep table drifted from golden:\n--- want ---\n%s\n--- got ---\n%s",
				jobs, wantTable, table)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("jobs=%d: K=4 Chrome trace drifted from golden (%d bytes want, %d bytes got)",
				jobs, len(wantTrace), len(trace))
		}
	}
}

// TestMultiGPUPolicySweepDiverges asserts the sweep-level divergence the
// paper's scaling study depends on: at K=4 on the oversubscribed regular
// workload, first-touch and access-counter cells must produce different
// rows (evictions release blocks across the partition, and the
// access-counter cell converts the resulting remote-access stalls into
// migrations; the undersubscribed cell stays policy-insensitive because
// a single contiguous first-touch pass never re-reads remote data).
func TestMultiGPUPolicySweepDiverges(t *testing.T) {
	spec, _ := pinnedMultiGPUSpec(1)
	spec.Obs = nil
	spec.Lifecycle = false
	tb, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 2 footprints x 2 policies
		t.Fatalf("expected 5 CSV lines, got %d:\n%s", len(lines), buf.String())
	}
	// Rows 3/4 are footprint 1.2 first-touch vs access-counter.
	if lines[3] == lines[4] {
		t.Errorf("first-touch and access-counter rows identical at oversubscribed K=4:\n%s", lines[3])
	}
}
