package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"uvmsim/internal/obs"
)

func hookSpec() *Spec {
	return &Spec{
		Workload:       "random",
		GPUMemoryBytes: 16 << 20,
		Seed:           1,
		Footprints:     []float64{0.25, 0.5},
		Prefetch:       []string{"none", "density"},
		Replay:         []string{"batchflush"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
		Jobs:           4,
	}
}

// TestProgressHook: every cell settles exactly once, the final call
// reports (total, total), and done values cover 1..total.
func TestProgressHook(t *testing.T) {
	s := hookSpec()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var calls atomic.Int64
	total := 0
	s.Progress = func(done, n int) {
		calls.Add(1)
		mu.Lock()
		seen[done] = true
		total = n
		mu.Unlock()
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := int(calls.Load()), 4; got != want {
		t.Fatalf("Progress called %d times, want %d", got, want)
	}
	if total != 4 {
		t.Fatalf("Progress total = %d, want 4", total)
	}
	for d := 1; d <= 4; d++ {
		if !seen[d] {
			t.Fatalf("Progress never reported done=%d (saw %v)", d, seen)
		}
	}
}

// TestOnMetricsHook: each completed cell delivers a non-empty registry
// snapshot that can be absorbed into a cumulative registry.
func TestOnMetricsHook(t *testing.T) {
	s := hookSpec()
	var mu sync.Mutex
	cum := obs.NewRegistry()
	cells := 0
	s.OnMetrics = func(c Config, samples []obs.Sample) {
		if len(samples) == 0 {
			t.Error("OnMetrics got empty snapshot")
		}
		mu.Lock()
		cum.Absorb("sim_", samples)
		cells++
		mu.Unlock()
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cells != 4 {
		t.Fatalf("OnMetrics called for %d cells, want 4", cells)
	}
	// Random-access cells always fault, so the cumulative counter must
	// have absorbed something.
	if got := cum.Counter("sim_faults_fetched").Get(); got == 0 {
		t.Fatal("absorbed sim_faults_fetched = 0, want > 0")
	}
}
