package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"uvmsim/internal/obs"
	"uvmsim/internal/parallel"
)

// smallSpec is a 2 footprints × 3 prefetch policies sweep (6 cells) at a
// tiny scale, the shape the ISSUE's determinism criterion names.
func smallSpec() *Spec {
	return &Spec{
		Workload:       "regular",
		GPUMemoryBytes: 16 << 20,
		Seed:           1,
		Footprints:     []float64{0.5, 1.25},
		Prefetch:       []string{"none", "density", "adaptive"},
		Replay:         []string{"batchflush"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
		Jobs:           1,
	}
}

// The sweep table must be byte-identical between -jobs 1 and any
// parallel worker count.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	s := smallSpec()
	tb, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var serial bytes.Buffer
	if err := tb.WriteCSV(&serial); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.Rows); got != 6 {
		t.Fatalf("2x3 sweep produced %d rows, want 6", got)
	}
	for _, jobs := range []int{3, 6} {
		s := smallSpec()
		s.Jobs = jobs
		tb, err := s.Run()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var par bytes.Buffer
		if err := tb.WriteCSV(&par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("jobs=%d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				jobs, serial.String(), par.String())
		}
	}
}

// A bad name anywhere in the cross product must fail validation before
// any cell has run — including names that the old CLI only rejected
// mid-sweep, after earlier configurations had already executed.
func TestSweepFailsFastOnBadNames(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"workload", func(s *Spec) { s.Workload = "nosuch" }},
		{"replay", func(s *Spec) { s.Replay = []string{"batchflush", "bogus"} }},
		{"prefetch", func(s *Spec) { s.Prefetch = []string{"density", "bogus"} }},
		{"evict", func(s *Spec) { s.Evict = []string{"lru", "bogus"} }},
		{"evict+thrash", func(s *Spec) { s.Evict = []string{"bogus+thrash"} }},
		{"footprint", func(s *Spec) { s.Footprints = []float64{0.5, -1} }},
		{"batch", func(s *Spec) { s.Batch = []int{0} }},
		{"vablock", func(s *Spec) { s.VABlock = []int64{-4096} }},
		{"empty", func(s *Spec) { s.Prefetch = nil }},
	}
	for _, tc := range cases {
		ran := false
		old := runConfig
		runConfig = func(s *Spec, c Config) ([]interface{}, error) {
			ran = true
			return old(s, c)
		}
		s := smallSpec()
		tc.mutate(s)
		_, err := s.Run()
		runConfig = old
		if err == nil {
			t.Errorf("%s: bad spec passed validation", tc.name)
		}
		if ran {
			t.Errorf("%s: cells ran before validation failed", tc.name)
		}
	}
}

// A cell whose run panics must fail the whole sweep with the offending
// configuration and seed in the error, and must not deadlock the pool.
func TestSweepWorkerPanicFailsWithReplayRecipe(t *testing.T) {
	old := runConfig
	defer func() { runConfig = old }()
	runConfig = func(s *Spec, c Config) ([]interface{}, error) {
		if c.Footprint == 1.25 && c.Prefetch == "density" {
			panic("simulated invariant violation")
		}
		return []interface{}{c.Footprint}, nil
	}
	for _, jobs := range []int{1, 4} {
		s := smallSpec()
		s.Jobs = jobs
		done := make(chan error, 1)
		go func() {
			_, err := s.Run()
			done <- err
		}()
		var err error
		select {
		case err = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("jobs=%d: sweep deadlocked after worker panic", jobs)
		}
		if err == nil {
			t.Fatalf("jobs=%d: panicking cell did not fail the sweep", jobs)
		}
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: error does not wrap *parallel.PanicError: %v", jobs, err)
		}
		for _, want := range []string{"footprint=1.25", "prefetch=density", "seed=1", "-jobs 1", "simulated invariant violation"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("jobs=%d: error misses %q:\n%v", jobs, want, err)
			}
		}
	}
}

// Cross-product expansion must keep the serial CLI's nesting order.
func TestSweepConfigOrder(t *testing.T) {
	s := smallSpec()
	configs, err := s.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 6 {
		t.Fatalf("got %d configs, want 6", len(configs))
	}
	wantFoot := []float64{0.5, 0.5, 0.5, 1.25, 1.25, 1.25}
	wantPf := []string{"none", "density", "adaptive", "none", "density", "adaptive"}
	for i, c := range configs {
		if c.Footprint != wantFoot[i] || c.Prefetch != wantPf[i] {
			t.Errorf("config[%d] = {%g %s}, want {%g %s}",
				i, c.Footprint, c.Prefetch, wantFoot[i], wantPf[i])
		}
	}
}

// Observability exports must also be byte-identical at every worker
// count: cells register with the collector in completion order, but
// exports sort by label.
func TestSweepObsDeterministicAcrossJobs(t *testing.T) {
	capture := func(jobs int) (trace, spans, metrics []byte) {
		s := smallSpec()
		s.Jobs = jobs
		s.Obs = obs.NewCollector()
		s.Lifecycle = true
		if _, err := s.Run(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var tr, sp, me bytes.Buffer
		if err := s.Obs.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := s.Obs.WriteSpanCSV(&sp); err != nil {
			t.Fatal(err)
		}
		if err := s.Obs.WriteMetricsCSV(&me); err != nil {
			t.Fatal(err)
		}
		return tr.Bytes(), sp.Bytes(), me.Bytes()
	}
	trace1, spans1, metrics1 := capture(1)
	if len(trace1) == 0 || len(spans1) == 0 || len(metrics1) == 0 {
		t.Fatal("empty exports from serial sweep")
	}
	for _, jobs := range []int{4, 8} {
		traceN, spansN, metricsN := capture(jobs)
		if !bytes.Equal(trace1, traceN) {
			t.Errorf("jobs=%d chrome trace differs from serial", jobs)
		}
		if !bytes.Equal(spans1, spansN) {
			t.Errorf("jobs=%d span CSV differs from serial", jobs)
		}
		if !bytes.Equal(metrics1, metricsN) {
			t.Errorf("jobs=%d metrics CSV differs from serial", jobs)
		}
	}
}
