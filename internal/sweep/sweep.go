// Package sweep expands a generic parameter sweep — one workload crossed
// with prefetch policy, replay policy, eviction policy, fault batch
// size, VABlock granularity, and footprint fraction — into independent
// simulation configurations and executes them across the worker pool.
//
// The package exists so sweeps behave like first-class experiments:
// every flag combination is validated before any cell runs (a typo in
// the last policy name fails in milliseconds, not after minutes of
// simulation), cells fan out across parallel.Map with index-ordered
// collection so the emitted table is byte-identical at every worker
// count, and a crashing cell aborts the sweep with the offending
// configuration and seed attached.
package sweep

import (
	"context"
	"fmt"
	"strings"

	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// Spec describes a sweep: the cross product of every list field, run on
// the named workload at the given scale.
type Spec struct {
	// Workload names the workload generator every cell runs.
	Workload string
	// GPUMemoryBytes is the framebuffer size per cell.
	GPUMemoryBytes int64
	// Seed drives all randomness (workload params derive Seed+100, as
	// the paper-reproduction experiments do).
	Seed uint64
	// Footprints are data sizes as fractions of GPU memory.
	Footprints []float64
	// Prefetch, Replay, and Evict are policy-name lists.
	Prefetch []string
	Replay   []string
	Evict    []string
	// Batch lists fault batch sizes; VABlock lists granularities in bytes.
	Batch   []int
	VABlock []int64
	// GPUs lists device counts (empty means [1]); Migration lists
	// multi-GPU page-placement policy names (empty means first-touch).
	// Cells with one GPU ignore the migration axis — the cross product
	// collapses so a K=1 cell appears exactly once.
	GPUs      []int
	Migration []string
	// Jobs bounds the worker pool: 1 is strictly serial, <= 0 NumCPU.
	Jobs int
	// Obs, when non-nil, collects per-cell spans and metrics. Each cell
	// registers under its Label, so exports sort identically at every
	// Jobs value. Lifecycle additionally tracks per-fault latencies.
	Obs       *obs.Collector
	Lifecycle bool
	// Budget bounds every cell in simulated time, event count, and
	// forward progress; a tripped cell journals deadline/livelock and the
	// sweep continues without its row.
	Budget sim.Budget
	// Retries is how many times a transiently-failed cell (panic or
	// ordinary error) is re-run with bounded exponential backoff before
	// the sweep aborts. Budget trips are deterministic and never retried.
	Retries int
	// Journal, when set, appends every cell's terminal outcome to this
	// crash-safe JSONL file as the sweep runs.
	Journal string
	// Resume replays Journal before running: completed cells reuse their
	// journaled rows, budget-tripped cells stay skipped, and only
	// unfinished cells execute.
	Resume bool
	// Progress, when non-nil, is invoked after each cell settles (any
	// terminal state, including cells reused from the resume journal)
	// with the number of settled cells and the total. It runs on worker
	// goroutines and must be safe for concurrent use; the serving layer
	// wires it to async-job progress polling.
	Progress func(done, total int)
	// OnMetrics, when non-nil, receives each completed cell's
	// metrics-registry snapshot right after its run finishes. It runs on
	// worker goroutines and must be safe for concurrent use; the serving
	// layer folds the snapshots into its cumulative /metrics registry.
	OnMetrics func(c Config, samples []obs.Sample)

	// cancel is set by RunContext and polled by every cell's engine.
	cancel *sim.Cancel
}

// Config is one fully-resolved sweep cell.
type Config struct {
	Footprint float64
	Prefetch  string
	Replay    driver.ReplayPolicy
	Evict     string
	Batch     int
	VABlock   int64
	// GPUs is the device count (0 and 1 both mean single-GPU);
	// Migration is the multi-GPU placement policy, meaningful only when
	// GPUs > 1.
	GPUs      int
	Migration multigpu.Policy
}

// Label renders the cell as a replay recipe: every knob plus the seed,
// enough to rerun exactly this configuration with -jobs 1. Single-GPU
// cells render exactly the pre-multi-GPU label (zero-value elision), so
// every historical label and confighash is preserved.
func (c Config) Label(s *Spec) string {
	base := fmt.Sprintf("workload=%s footprint=%g prefetch=%s replay=%s evict=%s batch=%d vablock=%dKiB seed=%d",
		s.Workload, c.Footprint, c.Prefetch, c.Replay, c.Evict, c.Batch, c.VABlock>>10, s.Seed)
	if c.GPUs > 1 {
		base += fmt.Sprintf(" gpus=%d migration=%s", c.GPUs, c.Migration)
	}
	return base
}

// Validate resolves every name and bound in the spec up front. Nothing
// has run yet when it fails.
func (s *Spec) Validate() error {
	if _, err := workloads.Get(s.Workload); err != nil {
		return err
	}
	if s.GPUMemoryBytes <= 0 {
		return fmt.Errorf("sweep: GPU memory %d must be positive", s.GPUMemoryBytes)
	}
	if len(s.Footprints) == 0 || len(s.Prefetch) == 0 || len(s.Replay) == 0 ||
		len(s.Evict) == 0 || len(s.Batch) == 0 || len(s.VABlock) == 0 {
		return fmt.Errorf("sweep: empty dimension (footprints=%d prefetch=%d replay=%d evict=%d batch=%d vablock=%d)",
			len(s.Footprints), len(s.Prefetch), len(s.Replay), len(s.Evict), len(s.Batch), len(s.VABlock))
	}
	for _, fp := range s.Footprints {
		if fp <= 0 {
			return fmt.Errorf("sweep: footprint %g must be positive", fp)
		}
	}
	for _, rp := range s.Replay {
		if _, err := driver.ParseReplayPolicy(rp); err != nil {
			return err
		}
	}
	cfg := core.DefaultConfig(s.GPUMemoryBytes)
	for _, pf := range s.Prefetch {
		probe := cfg
		probe.PrefetchPolicy = pf
		if err := core.ValidatePolicies(probe); err != nil {
			return err
		}
	}
	for _, ev := range s.Evict {
		probe := cfg
		probe.EvictPolicy = ev
		if err := core.ValidatePolicies(probe); err != nil {
			return err
		}
	}
	for _, bs := range s.Batch {
		if bs <= 0 {
			return fmt.Errorf("sweep: batch size %d must be positive", bs)
		}
	}
	for _, vb := range s.VABlock {
		if vb <= 0 {
			return fmt.Errorf("sweep: VABlock size %d must be positive", vb)
		}
	}
	for _, g := range s.GPUs {
		if g < 1 {
			return fmt.Errorf("sweep: GPU count %d must be at least 1", g)
		}
		if g > multigpu.MaxDevices {
			return fmt.Errorf("sweep: GPU count %d exceeds the supported maximum %d", g, multigpu.MaxDevices)
		}
	}
	for _, mi := range s.Migration {
		if _, err := multigpu.ParsePolicy(mi); err != nil {
			return err
		}
	}
	return nil
}

// Configs expands the cross product in deterministic declaration order:
// footprint outermost, then prefetch, replay, evict, batch, VABlock,
// GPUs, migration — the same nesting the serial CLI always printed, with
// the multi-GPU axes innermost. Empty GPUs/Migration lists default to
// single-GPU first-touch, and single-GPU cells collapse the migration
// axis (the policy is meaningless at K=1, and collapsing keeps labels —
// and therefore confighashes — unique).
func (s *Spec) Configs() ([]Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gpus := s.GPUs
	if len(gpus) == 0 {
		gpus = []int{1}
	}
	migration := s.Migration
	if len(migration) == 0 {
		migration = []string{multigpu.FirstTouch.String()}
	}
	out := make([]Config, 0,
		len(s.Footprints)*len(s.Prefetch)*len(s.Replay)*len(s.Evict)*
			len(s.Batch)*len(s.VABlock)*len(gpus)*len(migration))
	for _, fp := range s.Footprints {
		for _, pf := range s.Prefetch {
			for _, rp := range s.Replay {
				pol, err := driver.ParseReplayPolicy(rp)
				if err != nil {
					return nil, err
				}
				for _, ev := range s.Evict {
					for _, bs := range s.Batch {
						for _, vb := range s.VABlock {
							for _, g := range gpus {
								for mi, mname := range migration {
									if g <= 1 && mi > 0 {
										continue // migration axis collapses at K=1
									}
									mpol, err := multigpu.ParsePolicy(mname)
									if err != nil {
										return nil, err
									}
									if g <= 1 {
										mpol = multigpu.FirstTouch
									}
									out = append(out, Config{
										Footprint: fp, Prefetch: pf, Replay: pol,
										Evict: ev, Batch: bs, VABlock: vb,
										GPUs: g, Migration: mpol,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Headers returns the sweep table's column names.
func Headers() []string {
	return []string{
		"footprint_pct", "prefetch", "replay", "evict", "batch", "vablock_kb",
		"total_ms", "faults", "evictions", "h2d_mb", "d2h_mb", "stall_ms",
	}
}

// runConfig executes one cell. It is a variable so tests can substitute
// a crashing cell and assert the pool's panic containment.
var runConfig = func(s *Spec, c Config) ([]interface{}, error) {
	cfg := core.DefaultConfig(s.GPUMemoryBytes)
	cfg.Seed = s.Seed
	cfg.PrefetchPolicy = c.Prefetch
	cfg.EvictPolicy = c.Evict
	if strings.Contains(c.Evict, "access-aware") {
		cfg.GPU.AccessCounters = true
	}
	cfg.Driver.Policy = c.Replay
	cfg.Driver.BatchSize = c.Batch
	cfg.VABlockSize = c.VABlock
	if c.GPUs > 1 {
		cfg.GPUs = c.GPUs
		cfg.Migration = c.Migration
	}
	cfg.Obs = obs.Options{Collector: s.Obs, Label: c.Label(s), Lifecycle: s.Lifecycle}
	cfg.Cancel = s.cancel
	cfg.Budget = s.Budget
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	builder, err := workloads.Get(s.Workload)
	if err != nil {
		return nil, err
	}
	p := workloads.DefaultParams()
	p.Seed = s.Seed + 100
	k, err := builder(sys, int64(c.Footprint*float64(s.GPUMemoryBytes)), p)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		return nil, err
	}
	if s.OnMetrics != nil {
		s.OnMetrics(c, sys.Metrics().Samples())
	}
	return []interface{}{
		c.Footprint * 100, c.Prefetch, c.Replay.String(), c.Evict, c.Batch, c.VABlock >> 10,
		float64(res.TotalTime.Micros()) / 1000, res.Faults, res.Evictions,
		float64(res.BytesH2D) / (1 << 20), float64(res.BytesD2H) / (1 << 20),
		float64(res.GPU.StallTime.Micros()) / 1000,
	}, nil
}

// Run validates the spec, fans the cells out across Jobs workers, and
// returns the result table with one row per configuration in cross
// product order. The table is byte-identical at every Jobs value.
func (s *Spec) Run() (*stats.Table, error) {
	res, err := s.RunContext(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}
