package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uvmsim/internal/obs"
)

// updateGolden regenerates the pinned sweep artifacts. Run once per
// intentional behavior change:
//
//	go test ./internal/sweep -run TestPinnedSweepArtifacts -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the pinned sweep table and Chrome trace")

// pinnedSpec is the golden configuration: every replay policy, an
// undersubscribed and an oversubscribed footprint, span tracing and
// lifecycle tracking on. It deliberately crosses the whole driver batch
// pipeline (fetch, preprocess, migrate, map, replay, evict) so any
// behavioral drift in those paths shows up as a byte diff.
func pinnedSpec(jobs int) (*Spec, *obs.Collector) {
	col := obs.NewCollector()
	return &Spec{
		Workload:       "regular",
		GPUMemoryBytes: 32 << 20,
		Seed:           7,
		Footprints:     []float64{0.5, 1.2},
		Prefetch:       []string{"density"},
		Replay:         []string{"block", "batch", "batchflush", "once"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
		Jobs:           jobs,
		Obs:            col,
		Lifecycle:      true,
	}, col
}

// renderPinned runs the pinned sweep at the given parallelism and
// renders the two guarded artifacts: the sweep table CSV and the
// combined Chrome trace.
func renderPinned(t *testing.T, jobs int) (table, trace []byte) {
	t.Helper()
	spec, col := pinnedSpec(jobs)
	tb, err := spec.Run()
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var tbuf, cbuf bytes.Buffer
	if err := tb.WriteCSV(&tbuf); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteChromeTrace(&cbuf); err != nil {
		t.Fatal(err)
	}
	return tbuf.Bytes(), cbuf.Bytes()
}

// TestPinnedSweepArtifacts pins the sweep table and Chrome trace for the
// golden configuration byte-for-byte against committed files, at -jobs
// 1, 4, and 8. This is the regression gate for hot-path optimizations:
// scratch-arena reuse, pooled bins, word-at-a-time bitmaps, and any
// future batch-pipeline change must leave simulated behavior (and so
// these bytes) untouched at every parallelism.
func TestPinnedSweepArtifacts(t *testing.T) {
	tablePath := filepath.Join("testdata", "pinned_sweep_table.csv")
	tracePath := filepath.Join("testdata", "pinned_trace.json")

	table1, trace1 := renderPinned(t, 1)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tablePath, table1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tracePath, trace1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes) and %s (%d bytes)", tablePath, len(table1), tracePath, len(trace1))
	}
	wantTable, err := os.ReadFile(tablePath)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-golden): %v", err)
	}
	wantTrace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-golden): %v", err)
	}
	for _, jobs := range []int{1, 4, 8} {
		table, trace := table1, trace1
		if jobs != 1 {
			table, trace = renderPinned(t, jobs)
		}
		if !bytes.Equal(table, wantTable) {
			t.Errorf("jobs=%d: sweep table drifted from golden:\n--- want ---\n%s\n--- got ---\n%s",
				jobs, wantTable, table)
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("jobs=%d: Chrome trace drifted from golden (%d bytes want, %d bytes got)",
				jobs, len(wantTrace), len(trace))
		}
	}
}
