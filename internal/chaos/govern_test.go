package chaos

import (
	"context"
	"errors"
	"testing"

	"uvmsim/internal/govern"
	"uvmsim/internal/sim"
)

func quickCampaign() Campaign {
	c := DefaultCampaign()
	c.Workloads = []string{"regular"}
	c.Seeds = []uint64{1}
	c.Jobs = 1
	return c
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := RunContext(ctx, quickCampaign())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, c := range cells {
		if c.Status != "" {
			t.Fatalf("cell ran under a cancelled context: %+v", c)
		}
	}
}

// Budget-starved campaign cells must fail with a deadline status rather
// than hanging; the campaign itself still returns every cell.
func TestCampaignBudgetTrip(t *testing.T) {
	c := quickCampaign()
	c.Budget = sim.Budget{MaxEvents: 50}
	cells, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if cell.Converged {
			t.Fatalf("budget-starved cell converged: %+v", cell)
		}
		if cell.Status != govern.StateDeadline {
			t.Fatalf("cell status = %v, want deadline", cell.Status)
		}
	}
}

// Converged cells must report a completed status.
func TestCampaignCompletedStatus(t *testing.T) {
	cells, err := Run(quickCampaign())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if !cell.Converged {
			t.Fatalf("cell did not converge: %v", cell.Err)
		}
		if cell.Status != govern.StateCompleted {
			t.Fatalf("cell status = %v, want completed", cell.Status)
		}
	}
}
