// Package chaos runs randomized, seeded fault-injection campaigns
// against the simulated UVM stack and checks that it converges: a run
// with dropped faults, duplicated entries, delayed ready flags, overflow
// storms, transient DMA failures, and eviction stalls must still execute
// every access and service every demanded page that the unperturbed
// baseline does, with zero invariant violations. This is how the
// simulator earns trust in its degradation paths — the happy path is
// covered by the paper-reproduction experiments; chaos covers everything
// else.
package chaos

import (
	"context"
	"fmt"

	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/govern"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/parallel"
	"uvmsim/internal/sim"
	"uvmsim/internal/workloads"
)

// Campaign describes a chaos sweep: the cross product of workloads,
// replay policies, and seeds, each cell run twice (baseline vs.
// injected) and compared.
type Campaign struct {
	// GPUMemoryBytes is the framebuffer size per cell.
	GPUMemoryBytes int64
	// FootprintFrac sizes each workload's data as a fraction of GPU
	// memory; above 1.0 the campaign also exercises eviction.
	FootprintFrac float64
	// Workloads names the workload generators to sweep.
	Workloads []string
	// Policies lists the replay policies to sweep.
	Policies []driver.ReplayPolicy
	// Seeds drives both the system and (derived) injection randomness;
	// one cell per seed per workload per policy.
	Seeds []uint64
	// Inject is the perturbation template. Enabled is forced on for the
	// injected run; a zero Seed derives one from the cell seed.
	Inject inject.Config
	// Jobs bounds the worker pool fanning cells out across goroutines:
	// 1 runs strictly serially, <= 0 selects NumCPU. Each cell owns its
	// systems and RNG streams, so results are identical at every value.
	Jobs int
	// Budget bounds each run's engine in simulated time, event count,
	// and forward progress; a tripped run fails its cell with a
	// deadline/livelock status instead of hanging the campaign.
	Budget sim.Budget

	// cancel is set by RunContext and polled by every run's engine.
	cancel *sim.Cancel
}

// DefaultCampaign returns a small all-layers campaign: three workloads
// of distinct fault-pattern classes, the two replay policies whose
// buffer interactions differ most (batchflush discards entries, once
// never does), at a footprint that triggers eviction.
func DefaultCampaign() Campaign {
	return Campaign{
		GPUMemoryBytes: 32 << 20,
		FootprintFrac:  0.75,
		Workloads:      []string{"regular", "random", "stream"},
		Policies:       []driver.ReplayPolicy{driver.ReplayBatchFlush, driver.ReplayOnce},
		Seeds:          []uint64{1, 2},
		Inject:         inject.DefaultConfig(0),
	}
}

// RunStats captures one run (baseline or injected) of a cell.
type RunStats struct {
	TotalTime     sim.Duration
	Accesses      uint64 // resident accesses the GPU executed
	FaultsFetched uint64 // entries the driver consumed
	FaultsRaised  uint64 // entries accepted into the buffer
	Drops         uint64 // rejected entries (overflow + injection)
	Replays       uint64
	ForcedReplays uint64 // replays issued solely to recover dropped faults
	DMAFailures   uint64
	DMARetries    uint64
	DMAGiveups    uint64
	EvictStalls   uint64
	Evictions     uint64
	Checks        uint64 // invariant checks that ran
	DeepChecks    uint64
}

// Cell is one campaign cell: a (workload, policy, seed) triple run with
// and without injection.
type Cell struct {
	Workload string
	Policy   driver.ReplayPolicy
	Seed     uint64

	// Pages is the workload's distinct page set — the serviced-fault
	// total both runs must converge to: completion proves every one of
	// these pages was faulted (or prefetched) and serviced.
	Pages int
	// Accesses is the kernel's total access count; both runs must
	// execute exactly this many.
	Accesses uint64

	Baseline RunStats
	Injected RunStats
	Injector inject.Stats

	// Converged reports that the injected run completed, executed the
	// same accesses over the same page set as the baseline, and tripped
	// zero invariants.
	Converged bool
	// Status is the cell's terminal governance state (completed even for
	// divergence failures — the runs finished; cancelled/deadline/
	// livelock when governance stopped a run).
	Status govern.State
	// Err holds the failure (deadlock, invariant violation, divergence).
	Err error
}

// Run executes the campaign and returns one Cell per combination. The
// returned error is non-nil only for setup problems; per-cell failures
// land in Cell.Err with Converged=false.
func Run(c Campaign) ([]Cell, error) {
	return RunContext(context.Background(), c)
}

// RunContext is Run under a cancellation context: once ctx is cancelled
// no further cell starts, in-flight runs stop at their next engine poll
// with Status cancelled, and the cells that finished are returned
// alongside ctx's error.
func RunContext(ctx context.Context, c Campaign) ([]Cell, error) {
	if c.GPUMemoryBytes <= 0 {
		return nil, fmt.Errorf("chaos: GPUMemoryBytes %d must be positive", c.GPUMemoryBytes)
	}
	if c.FootprintFrac <= 0 {
		return nil, fmt.Errorf("chaos: FootprintFrac %v must be positive", c.FootprintFrac)
	}
	if len(c.Workloads) == 0 || len(c.Policies) == 0 || len(c.Seeds) == 0 {
		return nil, fmt.Errorf("chaos: empty campaign (workloads=%d policies=%d seeds=%d)",
			len(c.Workloads), len(c.Policies), len(c.Seeds))
	}
	inj := c.Inject
	inj.Enabled = true
	if err := inj.Validate(); err != nil {
		return nil, err
	}
	type spec struct {
		workload string
		policy   driver.ReplayPolicy
		seed     uint64
	}
	specs := make([]spec, 0, len(c.Workloads)*len(c.Policies)*len(c.Seeds))
	for _, w := range c.Workloads {
		for _, p := range c.Policies {
			for _, seed := range c.Seeds {
				specs = append(specs, spec{w, p, seed})
			}
		}
	}
	// Cells are independent (fresh systems, decoupled RNG streams) and
	// collected by index, so campaign output is deterministic at every
	// worker count. runCell converts its own panics (invariant
	// violations) into Cell.Err, so the pool only ever sees success.
	c.cancel = govern.WatchContext(ctx)
	cells, _, err := parallel.MapCtx(ctx, c.Jobs, len(specs), func(i int) (Cell, error) {
		s := specs[i]
		return runCell(c, s.workload, s.policy, s.seed, inj), nil
	})
	return cells, err
}

// Failures returns the cells that did not converge.
func Failures(cells []Cell) []Cell {
	var out []Cell
	for _, c := range cells {
		if !c.Converged {
			out = append(out, c)
		}
	}
	return out
}

// runCell runs baseline and injected simulations of one cell and
// compares them. Invariant-checker panics are recovered into Cell.Err so
// one violated cell does not abort the campaign.
func runCell(c Campaign, workload string, policy driver.ReplayPolicy, seed uint64, injCfg inject.Config) (cell Cell) {
	cell = Cell{Workload: workload, Policy: policy, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*inject.Violation); ok {
				cell.Err = v
				cell.Status = govern.StateFailed
			} else {
				cell.Err = fmt.Errorf("chaos: cell panicked: %v", r)
				cell.Status = govern.StatePanicked
			}
			cell.Converged = false
		}
	}()

	bytes := int64(c.FootprintFrac * float64(c.GPUMemoryBytes))
	baseSys, baseRun, basePages, baseAcc, err := runOne(c, workload, policy, seed, inject.Config{}, bytes)
	if err != nil {
		cell.Err = fmt.Errorf("baseline: %w", err)
		cell.Status = govern.StatusOf(err).State
		return cell
	}
	if injCfg.Seed == 0 {
		// Derive a per-cell injection seed (splitmix-style mix) so cells
		// perturb differently but reproducibly.
		injCfg.Seed = (seed+uint64(policy)*97+1)*0x9e3779b97f4a7c15 ^ hashString(workload)
	}
	injSys, injRun, injPages, injAcc, err := runOne(c, workload, policy, seed, injCfg, bytes)
	if err != nil {
		cell.Err = fmt.Errorf("injected: %w", err)
		cell.Status = govern.StatusOf(err).State
		return cell
	}

	cell.Pages = basePages
	cell.Accesses = baseAcc
	cell.Baseline = collect(baseSys, baseRun)
	cell.Injected = collect(injSys, injRun)
	cell.Injector = injSys.Injector().Stats()

	switch {
	case basePages != injPages:
		cell.Err = fmt.Errorf("chaos: workload diverged: baseline touches %d pages, injected %d", basePages, injPages)
	case cell.Baseline.Accesses != baseAcc:
		cell.Err = fmt.Errorf("chaos: baseline executed %d accesses, kernel defines %d", cell.Baseline.Accesses, baseAcc)
	case cell.Injected.Accesses != injAcc:
		cell.Err = fmt.Errorf("chaos: injected run executed %d accesses, kernel defines %d", cell.Injected.Accesses, injAcc)
	case cell.Baseline.Accesses != cell.Injected.Accesses:
		cell.Err = fmt.Errorf("chaos: access totals diverged: baseline %d, injected %d", cell.Baseline.Accesses, cell.Injected.Accesses)
	default:
		cell.Converged = true
	}
	// Both runs finished; divergence is a verdict, not a governance stop.
	cell.Status = govern.StateCompleted
	return cell
}

// runOne builds a fresh system and workload for the cell and executes
// one UVM run. It returns the distinct page count and total access count
// of the kernel so the caller can compare coverage across runs.
func runOne(c Campaign, workload string, policy driver.ReplayPolicy, seed uint64, injCfg inject.Config, bytes int64) (*core.System, *core.RunResult, int, uint64, error) {
	cfg := core.DefaultConfig(c.GPUMemoryBytes)
	cfg.Seed = seed
	cfg.Driver.Policy = policy
	cfg.Inject = injCfg
	cfg.Cancel = c.cancel
	cfg.Budget = c.Budget
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	builder, err := workloads.Get(workload)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	p := workloads.DefaultParams()
	p.Seed = seed + 1000 // decoupled from both system and injection streams
	k, err := builder(sys, bytes, p)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	pages, accesses := footprint(k)
	res, err := sys.RunUVM(k)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return sys, res, pages, accesses, nil
}

// footprint returns the kernel's distinct page count and total access
// count. Completion of a run proves each of these pages was serviced, so
// the distinct count is the cell's serviced-fault total.
func footprint(k *gpusim.Kernel) (pages int, accesses uint64) {
	seen := make(map[mem.PageID]struct{})
	for _, b := range k.Blocks {
		for _, w := range b.Warps {
			n := w.Len()
			accesses += uint64(n)
			for i := 0; i < n; i++ {
				seen[w.At(i).Page] = struct{}{}
			}
		}
	}
	return len(seen), accesses
}

// collect flattens one run's measurements into RunStats.
func collect(sys *core.System, res *core.RunResult) RunStats {
	return RunStats{
		TotalTime:     res.TotalTime,
		Accesses:      res.GPU.Accesses,
		FaultsFetched: res.Counters.Get("faults_fetched"),
		FaultsRaised:  res.GPU.FaultsRaised,
		Drops:         res.Counters.Get("faultbuf_drops"),
		Replays:       res.Counters.Get("replays"),
		ForcedReplays: res.Counters.Get("forced_replays"),
		DMAFailures:   res.Counters.Get("dma_failures"),
		DMARetries:    res.Counters.Get("dma_retries"),
		DMAGiveups:    res.Counters.Get("dma_giveups"),
		EvictStalls:   res.Counters.Get("evict_stalls"),
		Evictions:     res.Evictions,
		Checks:        sys.Invariants().Checks(),
		DeepChecks:    sys.Invariants().DeepChecks(),
	}
}

// hashString is an FNV-1a hash used for injection seed derivation.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
