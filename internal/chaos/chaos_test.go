package chaos

import (
	"testing"

	"uvmsim/internal/core"
	"uvmsim/internal/driver"
	"uvmsim/internal/inject"
	"uvmsim/internal/workloads"
)

// TestCampaignConverges is the acceptance gate for the injection layer:
// three workloads of distinct fault-pattern classes crossed with the two
// replay policies whose buffer interactions differ most, each run with
// seeded all-layer injection, must service exactly the pages and
// accesses of the uninjected baseline with zero invariant violations.
func TestCampaignConverges(t *testing.T) {
	camp := Campaign{
		GPUMemoryBytes: 16 << 20,
		FootprintFrac:  0.75,
		Workloads:      []string{"regular", "random", "stream"},
		Policies:       []driver.ReplayPolicy{driver.ReplayBatchFlush, driver.ReplayOnce},
		Seeds:          []uint64{1},
		Inject:         inject.DefaultConfig(0),
	}
	cells, err := Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	var perturbations uint64
	for _, c := range cells {
		if !c.Converged {
			t.Errorf("%s/%v/seed=%d diverged: %v", c.Workload, c.Policy, c.Seed, c.Err)
			continue
		}
		if c.Pages == 0 || c.Accesses == 0 {
			t.Errorf("%s/%v: empty footprint (pages=%d accesses=%d)", c.Workload, c.Policy, c.Pages, c.Accesses)
		}
		if c.Baseline.Accesses != c.Accesses || c.Injected.Accesses != c.Accesses {
			t.Errorf("%s/%v: access totals %d/%d, kernel defines %d",
				c.Workload, c.Policy, c.Baseline.Accesses, c.Injected.Accesses, c.Accesses)
		}
		if c.Baseline.Checks == 0 || c.Injected.Checks == 0 {
			t.Errorf("%s/%v: invariant checker did not run", c.Workload, c.Policy)
		}
		perturbations += c.Injector.Drops + c.Injector.Dups + c.Injector.DMAFailures +
			c.Injector.ReadyDelays + c.Injector.EvictStalls
	}
	if fails := Failures(cells); len(fails) != 0 {
		t.Errorf("%d cells failed", len(fails))
	}
	// Convergence is vacuous if nothing was actually injected.
	if perturbations == 0 {
		t.Error("campaign injected no perturbations at default probabilities")
	}
}

func TestCampaignReproducible(t *testing.T) {
	// The same campaign twice must produce identical measurements — the
	// whole point of seeding every injection decision.
	camp := Campaign{
		GPUMemoryBytes: 16 << 20,
		FootprintFrac:  0.5,
		Workloads:      []string{"random"},
		Policies:       []driver.ReplayPolicy{driver.ReplayBatchFlush},
		Seeds:          []uint64{3},
		Inject:         inject.DefaultConfig(0),
	}
	a, err := Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("cell counts %d/%d", len(a), len(b))
	}
	if a[0].Injected != b[0].Injected || a[0].Injector != b[0].Injector {
		t.Errorf("runs diverged:\n  %+v\n  %+v", a[0], b[0])
	}
}

func TestRunValidation(t *testing.T) {
	ok := DefaultCampaign()
	bad := ok
	bad.GPUMemoryBytes = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero memory accepted")
	}
	bad = ok
	bad.FootprintFrac = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero footprint accepted")
	}
	bad = ok
	bad.Workloads = nil
	if _, err := Run(bad); err == nil {
		t.Error("empty workload list accepted")
	}
	bad = ok
	bad.Inject.DropProb = 1
	if _, err := Run(bad); err == nil {
		t.Error("livelocking injection config accepted")
	}
}

func TestUnknownWorkloadFailsCell(t *testing.T) {
	camp := DefaultCampaign()
	camp.Workloads = []string{"no-such-workload"}
	camp.Policies = camp.Policies[:1]
	camp.Seeds = camp.Seeds[:1]
	cells, err := Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Converged || cells[0].Err == nil {
		t.Errorf("unknown workload cell = %+v, want unconverged with error", cells[0])
	}
}

// TestFullStackBufferCapacityOne is the end-to-end adversarial overflow
// test: a one-entry hardware fault buffer drops nearly every fault of
// every SIMT wave, so completion depends entirely on the
// overflow → forced-replay → re-fault degradation path.
func TestFullStackBufferCapacityOne(t *testing.T) {
	cfg := core.DefaultConfig(16 << 20)
	cfg.Seed = 1
	cfg.GPU.FaultBufferCap = 1
	cfg.InvariantStride = 1 // deep-check every event under maximum stress
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	builder, err := workloads.Get("regular")
	if err != nil {
		t.Fatal(err)
	}
	p := workloads.DefaultParams()
	p.Seed = 5
	k, err := builder(sys, 2<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	pages, accesses := footprint(k)
	res, err := sys.RunUVM(k)
	if err != nil {
		t.Fatalf("capacity-1 run failed: %v", err)
	}
	if res.GPU.Accesses != accesses {
		t.Errorf("executed %d accesses, kernel defines %d", res.GPU.Accesses, accesses)
	}
	if pages == 0 {
		t.Fatal("empty kernel")
	}
	drops := res.Counters.Get("faultbuf_drops")
	if drops == 0 {
		t.Error("capacity-1 buffer recorded no drops; test exerts nothing")
	}
	if sys.Invariants().Violations() != 0 {
		t.Errorf("violations = %d", sys.Invariants().Violations())
	}
	t.Logf("capacity-1: pages=%d accesses=%d drops=%d replays=%d forced=%d",
		pages, accesses, drops, res.Counters.Get("replays"), res.Counters.Get("forced_replays"))
}

// TestCampaignParallelMatchesSerial asserts the parallel runner's
// determinism contract at the campaign level: the same cells, measured
// identically, whether run serially or across a worker pool.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	camp := Campaign{
		GPUMemoryBytes: 16 << 20,
		FootprintFrac:  0.75,
		Workloads:      []string{"regular", "random"},
		Policies:       []driver.ReplayPolicy{driver.ReplayBatchFlush, driver.ReplayOnce},
		Seeds:          []uint64{1, 2},
		Inject:         inject.DefaultConfig(0),
		Jobs:           1,
	}
	serial, err := Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{4, 8} {
		camp.Jobs = jobs
		par, err := Run(camp)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("jobs=%d: %d cells, serial had %d", jobs, len(par), len(serial))
		}
		for i := range serial {
			s, p := serial[i], par[i]
			if s.Workload != p.Workload || s.Policy != p.Policy || s.Seed != p.Seed {
				t.Fatalf("jobs=%d: cell %d reordered: %s/%v/%d vs %s/%v/%d",
					jobs, i, s.Workload, s.Policy, s.Seed, p.Workload, p.Policy, p.Seed)
			}
			if s.Baseline != p.Baseline || s.Injected != p.Injected || s.Injector != p.Injector {
				t.Errorf("jobs=%d: cell %d measurements diverged from serial", jobs, i)
			}
			if s.Converged != p.Converged {
				t.Errorf("jobs=%d: cell %d verdict diverged", jobs, i)
			}
		}
	}
}
