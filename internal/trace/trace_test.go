package trace

import (
	"strings"
	"testing"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindFault, 1, 0, 0)
	if r.Count() != 0 || r.Events() != nil || r.Dropped() != 0 || r.CountKind(KindFault) != 0 {
		t.Error("nil recorder misbehaved")
	}
}

func TestRecordOrder(t *testing.T) {
	r := New()
	r.Record(10, KindFault, 5, 0, 0)
	r.Record(20, KindPrefetch, 6, 0, 0)
	r.Record(30, KindEvict, 512, 1, 0)
	ev := r.Events()
	if len(ev) != 3 || ev[0].Seq != 1 || ev[2].Seq != 3 {
		t.Fatalf("events = %+v", ev)
	}
	if r.CountKind(KindFault) != 1 || r.CountKind(KindEvict) != 1 {
		t.Error("CountKind wrong")
	}
}

func TestBoundedRecorder(t *testing.T) {
	r := NewBounded(2)
	for i := 0; i < 5; i++ {
		r.Record(0, KindFault, mem.PageID(i), 0, 0)
	}
	if len(r.Events()) != 2 || r.Count() != 5 || r.Dropped() != 3 {
		t.Errorf("len=%d count=%d dropped=%d", len(r.Events()), r.Count(), r.Dropped())
	}
}

func TestKindString(t *testing.T) {
	if KindFault.String() != "fault" || KindPrefetch.String() != "prefetch" || KindEvict.String() != "evict" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind name")
	}
}

func buildSpace(t *testing.T) *mem.AddressSpace {
	t.Helper()
	s := mem.NewAddressSpace(mem.DefaultGeometry())
	if _, err := s.Alloc(3<<20, "A"); err != nil { // 768 pages, 2 blocks
		t.Fatal(err)
	}
	if _, err := s.Alloc(1<<20, "B"); err != nil { // 256 pages at page 1024
		t.Fatal(err)
	}
	return s
}

func TestCompressorRemovesGaps(t *testing.T) {
	c := NewCompressor(buildSpace(t))
	if c.Total() != 1024 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Index(0) != 0 || c.Index(767) != 767 {
		t.Error("range A indexes wrong")
	}
	// Range B starts at global page 1024 but gap-free index 768.
	if c.Index(1024) != 768 || c.Index(1279) != 1023 {
		t.Errorf("range B indexes wrong: %d %d", c.Index(1024), c.Index(1279))
	}
	if c.Index(800) != -1 { // padding in A's tail block
		t.Error("padding page got an index")
	}
	bounds := c.RangeBoundaries()
	if len(bounds) != 2 || bounds[0] != 0 || bounds[1] != 768 {
		t.Errorf("boundaries = %v", bounds)
	}
}

func TestWriteCSV(t *testing.T) {
	s := buildSpace(t)
	c := NewCompressor(s)
	r := New()
	for i := 0; i < 10; i++ {
		r.Record(int64ToTime(i), KindFault, mem.PageID(i), 0, 0)
	}
	r.Record(100, KindEvict, 1024, 2, 1)
	var sb strings.Builder
	if err := r.WriteCSV(&sb, c, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 { // header + 10 faults + 1 evict
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "seq,time_ns,kind") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "evict,768,2,1") {
		t.Errorf("evict row missing:\n%s", out)
	}
}

func TestWriteCSVDownsamplingKeepsEvictions(t *testing.T) {
	s := buildSpace(t)
	c := NewCompressor(s)
	r := New()
	for i := 0; i < 100; i++ {
		r.Record(0, KindFault, mem.PageID(i%768), 0, 0)
	}
	for i := 0; i < 3; i++ {
		r.Record(0, KindEvict, 0, 0, 0)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb, c, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "evict"); got != 3 {
		t.Errorf("evictions in downsampled output = %d, want 3", got)
	}
	if got := strings.Count(out, "fault"); got != 10 {
		t.Errorf("faults in downsampled output = %d, want 10", got)
	}
}

func int64ToTime(i int) sim.Time { return sim.Time(i) }
