// Package trace records driver-visible events (fault servicing,
// prefetches, evictions) in occurrence order. The paper's access-pattern
// figures (Fig. 7, Fig. 8) are scatter plots of exactly this stream:
// x = the order the driver processed the event, y = the page's position
// in a gap-compressed virtual address space.
package trace

import (
	"fmt"
	"io"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// Kind classifies a recorded event.
type Kind int

// Event kinds.
const (
	// KindFault is a demanded page serviced by the driver.
	KindFault Kind = iota
	// KindPrefetch is a page migrated by the prefetcher.
	KindPrefetch
	// KindEvict is a VABlock eviction (one event per block).
	KindEvict
)

// String names the kind for CSV output.
func (k Kind) String() string {
	switch k {
	case KindFault:
		return "fault"
	case KindPrefetch:
		return "prefetch"
	case KindEvict:
		return "evict"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Seq   uint64     // occurrence order (x-axis of Fig. 7/8)
	At    sim.Time   // simulated time
	Kind  Kind       //
	Page  mem.PageID // faulted/prefetched page; first page for evictions
	Block mem.VABlockID
	Range mem.RangeID
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so components can carry an optional recorder without nil
// checks at every call site.
type Recorder struct {
	events []Event
	seq    uint64
	// MaxEvents bounds memory use; 0 means unbounded. Once reached,
	// further events are counted but not stored.
	MaxEvents int
	dropped   uint64
}

// New returns an unbounded recorder.
func New() *Recorder { return &Recorder{} }

// NewBounded returns a recorder that stores at most max events.
func NewBounded(max int) *Recorder { return &Recorder{MaxEvents: max} }

// Record appends an event. Safe on a nil receiver.
func (r *Recorder) Record(at sim.Time, kind Kind, page mem.PageID, block mem.VABlockID, rng mem.RangeID) {
	if r == nil {
		return
	}
	r.seq++
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Seq: r.seq, At: at, Kind: kind, Page: page, Block: block, Range: rng,
	})
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Count returns the number of events recorded (including dropped).
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// Dropped returns how many events exceeded MaxEvents.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// CountKind returns the number of stored events of kind k.
func (r *Recorder) CountKind(k Kind) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Compressor maps global pages to gap-free "page indexes" the way the
// paper's Fig. 7 adjusts them: each range's pages are packed end to end
// in allocation order, removing VABlock alignment gaps.
type Compressor struct {
	ranges []*mem.Range
	base   []int
	total  int
}

// NewCompressor builds a compressor over the space's ranges.
func NewCompressor(space *mem.AddressSpace) *Compressor {
	c := &Compressor{ranges: space.Ranges()}
	for _, r := range c.ranges {
		c.base = append(c.base, c.total)
		c.total += r.Pages
	}
	return c
}

// Index returns the gap-free index for page p, or -1 when p belongs to no
// range (alignment padding).
func (c *Compressor) Index(p mem.PageID) int {
	for i, r := range c.ranges {
		if r.Contains(p) {
			return c.base[i] + int(p-r.StartPage)
		}
	}
	return -1
}

// Total returns the number of indexable pages.
func (c *Compressor) Total() int { return c.total }

// RangeBoundaries returns the gap-free indexes where each range starts
// (the black separator lines in Fig. 7).
func (c *Compressor) RangeBoundaries() []int {
	out := make([]int, len(c.base))
	copy(out, c.base)
	return out
}

// WriteCSV emits "seq,time_ns,kind,page_index,block,range" rows for every
// stored event, using the compressor for page indexes. Events on padding
// pages are skipped. stride > 1 downsamples fault/prefetch events (it
// never skips evictions, which are sparse and load-bearing in Fig. 8).
func (r *Recorder) WriteCSV(w io.Writer, c *Compressor, stride int) error {
	if r == nil {
		return nil
	}
	if stride < 1 {
		stride = 1
	}
	if _, err := io.WriteString(w, "seq,time_ns,kind,page_index,block,range\n"); err != nil {
		return err
	}
	n := 0
	for _, e := range r.events {
		if e.Kind != KindEvict {
			n++
			if n%stride != 0 {
				continue
			}
		}
		idx := c.Index(e.Page)
		if idx < 0 {
			continue
		}
		_, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d\n",
			e.Seq, int64(e.At), e.Kind, idx, uint64(e.Block), int(e.Range))
		if err != nil {
			return err
		}
	}
	return nil
}
