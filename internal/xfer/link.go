// Package xfer models the host-device interconnect: a full-duplex link
// (PCIe-like) with per-transaction latency and finite bandwidth, plus a
// DMA engine that serializes transfers per direction. Coalescing
// contiguous pages into fewer, larger transactions is what makes batches
// with fuller VABlocks cheaper to service (paper §III-D).
package xfer

import (
	"fmt"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Direction of a transfer relative to the device.
type Direction int

// Transfer directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
)

// String names the direction like CUDA does.
func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// LinkConfig describes the interconnect characteristics.
type LinkConfig struct {
	// BandwidthBytesPerSec is the peak per-direction bandwidth.
	// PCIe 3.0 x16 sustains roughly 12 GB/s.
	BandwidthBytesPerSec float64
	// TransactionLatency is the fixed setup cost per DMA transaction.
	TransactionLatency sim.Duration
}

// DefaultPCIe3x16 returns the link used in the paper's testbed.
func DefaultPCIe3x16() LinkConfig {
	return LinkConfig{
		BandwidthBytesPerSec: 12e9,
		TransactionLatency:   1500 * sim.Nanosecond,
	}
}

// DefaultNVLink2 returns an NVLink-2.0-class peer link: one x2 brick
// sustains roughly 25 GB/s per direction with sub-microsecond setup.
func DefaultNVLink2() LinkConfig {
	return LinkConfig{
		BandwidthBytesPerSec: 25e9,
		TransactionLatency:   700 * sim.Nanosecond,
	}
}

// FaultHook decides whether one DMA attempt fails transiently. attempt
// counts retries of the same transfer, starting at 0. It is consulted
// only by Attempt; plain Enqueue never fails.
type FaultHook func(dir Direction, bytes int64, attempt int) bool

// Link is a full-duplex interconnect: each direction has an independent
// channel that serializes its transfers.
type Link struct {
	eng   *sim.Engine
	cfg   LinkConfig
	free  [2]sim.Time // earliest time each direction is idle
	fault FaultHook   // optional transient-failure injection
	tr    *obs.Tracer // optional span tracing; nil when disabled

	// Totals for reporting.
	bytes    [2]int64
	txns     [2]uint64
	busy     [2]sim.Duration
	failures [2]uint64
}

// NewLink returns a link driven by eng.
func NewLink(eng *sim.Engine, cfg LinkConfig) (*Link, error) {
	if cfg.BandwidthBytesPerSec <= 0 {
		return nil, fmt.Errorf("xfer: bandwidth must be positive, got %v", cfg.BandwidthBytesPerSec)
	}
	if cfg.TransactionLatency < 0 {
		return nil, fmt.Errorf("xfer: negative transaction latency %v", cfg.TransactionLatency)
	}
	return &Link{eng: eng, cfg: cfg}, nil
}

// TransferTime returns the service time of a single transaction of size
// bytes, excluding queueing.
func (l *Link) TransferTime(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	wire := sim.Duration(float64(bytes) / l.cfg.BandwidthBytesPerSec * 1e9)
	return l.cfg.TransactionLatency + wire
}

// SetFaultHook installs (or, with nil, removes) the transient DMA
// failure injector consulted by Attempt.
func (l *Link) SetFaultHook(h FaultHook) { l.fault = h }

// SetTracer installs (or, with nil, removes) span tracing of every
// transaction on the link's DMA track.
func (l *Link) SetTracer(t *obs.Tracer) { l.tr = t }

// spanKind maps a direction to its DMA span kind.
func spanKind(dir Direction) obs.Kind {
	if dir == HostToDevice {
		return obs.SpanDMAH2D
	}
	return obs.SpanDMAD2H
}

// Attempt tries to schedule a transfer of size bytes in direction dir,
// starting no earlier than notBefore. When the fault hook fails the
// attempt, the channel is still occupied for the transaction setup
// latency (the aborted descriptor) and ok is false; the returned time is
// when the channel frees, which is the earliest moment a retry can be
// scheduled. On success it behaves exactly like Enqueue.
func (l *Link) Attempt(dir Direction, bytes int64, attempt int, notBefore sim.Time) (end sim.Time, ok bool) {
	start := l.eng.Now()
	if notBefore > start {
		start = notBefore
	}
	if l.free[dir] > start {
		start = l.free[dir]
	}
	if l.fault != nil && l.fault(dir, bytes, attempt) {
		end = start.Add(l.cfg.TransactionLatency)
		l.free[dir] = end
		l.busy[dir] += l.cfg.TransactionLatency
		l.failures[dir]++
		l.tr.Emit(obs.SpanDMAFailed, start, end, 0, bytes)
		return end, false
	}
	d := l.TransferTime(bytes)
	end = start.Add(d)
	l.free[dir] = end
	l.bytes[dir] += bytes
	l.txns[dir]++
	l.busy[dir] += d
	l.tr.Emit(spanKind(dir), start, end, 0, bytes)
	return end, true
}

// Enqueue schedules a transfer of size bytes in direction dir, starting no
// earlier than now, and returns the completion time. Transfers in the
// same direction are serialized in submission order.
func (l *Link) Enqueue(dir Direction, bytes int64, done func(at sim.Time)) sim.Time {
	start := l.eng.Now()
	if l.free[dir] > start {
		start = l.free[dir]
	}
	d := l.TransferTime(bytes)
	end := start.Add(d)
	l.free[dir] = end
	l.bytes[dir] += bytes
	l.txns[dir]++
	l.busy[dir] += d
	l.tr.Emit(spanKind(dir), start, end, 0, bytes)
	if done != nil {
		l.eng.At(end, func() { done(end) })
	}
	return end
}

// EnqueueStream schedules a pipelined transfer (no per-transaction setup
// latency): the model for remote-mapped load/store traffic, which streams
// cache lines rather than issuing discrete DMA descriptors. It returns
// the completion time; bandwidth contention with DMA traffic in the same
// direction is preserved.
func (l *Link) EnqueueStream(dir Direction, bytes int64) sim.Time {
	start := l.eng.Now()
	if l.free[dir] > start {
		start = l.free[dir]
	}
	d := sim.Duration(float64(bytes) / l.cfg.BandwidthBytesPerSec * 1e9)
	end := start.Add(d)
	l.free[dir] = end
	l.bytes[dir] += bytes
	l.txns[dir]++
	l.busy[dir] += d
	l.tr.Emit(spanKind(dir), start, end, 0, bytes)
	return end
}

// FreeAt returns the earliest time dir's DMA engine is idle: the horizon
// an external scheduler (the multi-GPU fabric) must serialize behind.
func (l *Link) FreeAt(dir Direction) sim.Time { return l.free[dir] }

// Hold occupies dir's DMA engine for [start, end) on behalf of an
// externally scheduled transfer (a peer-to-peer migration that borrows
// this device's engine). Bytes move on the peer channel, not this link,
// so only the busy horizon advances — which is exactly what makes a P2P
// migration and a host fetch on the same device visibly serialize.
func (l *Link) Hold(dir Direction, start, end sim.Time) {
	if end > l.free[dir] {
		l.free[dir] = end
	}
	if end > start {
		l.busy[dir] += end.Sub(start)
	}
}

// BytesMoved returns the cumulative bytes transferred in dir.
func (l *Link) BytesMoved(dir Direction) int64 { return l.bytes[dir] }

// Transactions returns the cumulative transaction count in dir.
func (l *Link) Transactions(dir Direction) uint64 { return l.txns[dir] }

// BusyTime returns the cumulative busy time of dir's channel.
func (l *Link) BusyTime(dir Direction) sim.Duration { return l.busy[dir] }

// Failures returns how many transfer attempts failed transiently in dir.
func (l *Link) Failures(dir Direction) uint64 { return l.failures[dir] }

// Reset clears the accounting counters (not the queue horizon).
func (l *Link) Reset() {
	l.bytes = [2]int64{}
	l.txns = [2]uint64{}
	l.busy = [2]sim.Duration{}
	l.failures = [2]uint64{}
}
