package xfer

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/sim"
)

func testLink(t *testing.T) (*sim.Engine, *Link) {
	t.Helper()
	eng := sim.NewEngine()
	l, err := NewLink(eng, LinkConfig{BandwidthBytesPerSec: 1e9, TransactionLatency: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return eng, l
}

func TestTransferTime(t *testing.T) {
	_, l := testLink(t)
	// 1e9 B/s = 1 byte/ns; 4096 bytes -> 4096ns + 1000ns latency.
	if got := l.TransferTime(4096); got != 5096 {
		t.Errorf("TransferTime = %v, want 5096ns", got)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-5) != 0 {
		t.Error("zero/negative size should cost nothing")
	}
}

func TestSerializationSameDirection(t *testing.T) {
	eng, l := testLink(t)
	var done []sim.Time
	l.Enqueue(HostToDevice, 1000, func(at sim.Time) { done = append(done, at) })
	l.Enqueue(HostToDevice, 1000, func(at sim.Time) { done = append(done, at) })
	eng.Run()
	if len(done) != 2 {
		t.Fatal("callbacks missing")
	}
	if done[0] != 2000 || done[1] != 4000 {
		t.Errorf("completions = %v, want [2000 4000]", done)
	}
}

func TestFullDuplex(t *testing.T) {
	eng, l := testLink(t)
	var h2d, d2h sim.Time
	l.Enqueue(HostToDevice, 1000, func(at sim.Time) { h2d = at })
	l.Enqueue(DeviceToHost, 1000, func(at sim.Time) { d2h = at })
	eng.Run()
	if h2d != 2000 || d2h != 2000 {
		t.Errorf("h2d=%v d2h=%v, directions should not contend", h2d, d2h)
	}
}

func TestEnqueueAfterIdleGap(t *testing.T) {
	eng, l := testLink(t)
	l.Enqueue(HostToDevice, 1000, nil) // finishes at 2000
	eng.Run()
	eng.At(10_000, func() {
		end := l.Enqueue(HostToDevice, 1000, nil)
		if end != 12_000 {
			t.Errorf("end = %v, want 12000 (no retroactive queueing)", end)
		}
	})
	eng.Run()
}

func TestAccounting(t *testing.T) {
	eng, l := testLink(t)
	l.Enqueue(HostToDevice, 1000, nil)
	l.Enqueue(HostToDevice, 2000, nil)
	l.Enqueue(DeviceToHost, 500, nil)
	eng.Run()
	if l.BytesMoved(HostToDevice) != 3000 || l.BytesMoved(DeviceToHost) != 500 {
		t.Error("BytesMoved wrong")
	}
	if l.Transactions(HostToDevice) != 2 || l.Transactions(DeviceToHost) != 1 {
		t.Error("Transactions wrong")
	}
	if l.BusyTime(HostToDevice) != 5000 { // (1000+1000)+(1000+2000)
		t.Errorf("BusyTime = %v", l.BusyTime(HostToDevice))
	}
	l.Reset()
	if l.BytesMoved(HostToDevice) != 0 || l.Transactions(DeviceToHost) != 0 {
		t.Error("Reset wrong")
	}
}

func TestCoalescingBeatsPagewise(t *testing.T) {
	// One 2 MB transfer must beat 512 separate 4 KB transfers: this is
	// the §III-D insight that fuller VABlocks service faster.
	eng := sim.NewEngine()
	l, _ := NewLink(eng, DefaultPCIe3x16())
	bulk := l.TransferTime(2 << 20)
	var paged sim.Duration
	for i := 0; i < 512; i++ {
		paged += l.TransferTime(4 << 10)
	}
	if bulk*2 > paged {
		t.Errorf("bulk=%v paged=%v: coalescing advantage too small", bulk, paged)
	}
}

func TestNewLinkValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewLink(eng, LinkConfig{BandwidthBytesPerSec: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewLink(eng, LinkConfig{BandwidthBytesPerSec: 1, TransactionLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Error("direction names wrong")
	}
}

// Property: completion times in one direction are non-decreasing in
// submission order, and total busy time equals the sum of service times.
func TestSerializationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		l, err := NewLink(eng, LinkConfig{BandwidthBytesPerSec: 1e9, TransactionLatency: 100})
		if err != nil {
			return false
		}
		var ends []sim.Time
		var want sim.Duration
		for _, s := range sizes {
			sz := int64(s) + 1
			want += l.TransferTime(sz)
			ends = append(ends, l.Enqueue(HostToDevice, sz, nil))
		}
		eng.Run()
		for i := 1; i < len(ends); i++ {
			if ends[i] < ends[i-1] {
				return false
			}
		}
		return l.BusyTime(HostToDevice) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnqueueStreamNoSetupLatency(t *testing.T) {
	eng, l := testLink(t)
	// Stream transfer: pure wire time (1 byte/ns), no 1000ns setup.
	if end := l.EnqueueStream(HostToDevice, 4096); end != 4096 {
		t.Errorf("stream end = %v, want 4096", end)
	}
	// It queues behind earlier traffic in the same direction.
	if end := l.EnqueueStream(HostToDevice, 1000); end != 5096 {
		t.Errorf("second stream end = %v, want 5096", end)
	}
	// And contends with DMA transfers.
	if end := l.Enqueue(HostToDevice, 1000, nil); end != 7096 {
		t.Errorf("dma after streams = %v, want 7096 (5096+1000 setup+1000 wire)", end)
	}
	if l.BytesMoved(HostToDevice) != 6096 {
		t.Errorf("bytes = %d", l.BytesMoved(HostToDevice))
	}
	eng.Run()
}
