package xfer

import (
	"testing"

	"uvmsim/internal/sim"
)

func TestAttemptSuccessMatchesEnqueue(t *testing.T) {
	_, a := testLink(t)
	_, e := testLink(t)
	endA, ok := a.Attempt(HostToDevice, 4096, 0, 0)
	if !ok {
		t.Fatal("attempt without hook failed")
	}
	if endE := e.Enqueue(HostToDevice, 4096, nil); endA != endE {
		t.Errorf("Attempt end = %v, Enqueue end = %v", endA, endE)
	}
	if a.BytesMoved(HostToDevice) != 4096 || a.Transactions(HostToDevice) != 1 {
		t.Error("success accounting wrong")
	}
	if a.Failures(HostToDevice) != 0 {
		t.Error("spurious failure recorded")
	}
}

func TestAttemptFailureOccupiesSetupLatency(t *testing.T) {
	_, l := testLink(t)
	l.SetFaultHook(func(_ Direction, _ int64, attempt int) bool { return attempt == 0 })
	end, ok := l.Attempt(HostToDevice, 4096, 0, 0)
	if ok {
		t.Fatal("hooked attempt succeeded")
	}
	// The aborted descriptor costs setup latency (1000ns) but moves no data.
	if end != 1000 {
		t.Errorf("failed attempt frees channel at %v, want 1000", end)
	}
	if l.BytesMoved(HostToDevice) != 0 || l.Transactions(HostToDevice) != 0 {
		t.Error("failed attempt moved data")
	}
	if l.Failures(HostToDevice) != 1 {
		t.Errorf("failures = %d, want 1", l.Failures(HostToDevice))
	}
	// Retry (attempt=1) passes the hook and queues behind the aborted
	// descriptor: 1000 (abort) + 1000 setup + 4096 wire.
	end, ok = l.Attempt(HostToDevice, 4096, 1, end)
	if !ok || end != 6096 {
		t.Errorf("retry end = %v, ok = %v; want 6096, true", end, ok)
	}
}

func TestAttemptHonorsNotBefore(t *testing.T) {
	_, l := testLink(t)
	notBefore := sim.Time(5000)
	end, ok := l.Attempt(DeviceToHost, 1000, 0, notBefore)
	if !ok {
		t.Fatal("attempt failed")
	}
	// Starts at notBefore even though the channel is free at t=0.
	if want := notBefore.Add(l.TransferTime(1000)); end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestAttemptFailureIsPerDirection(t *testing.T) {
	_, l := testLink(t)
	l.SetFaultHook(func(dir Direction, _ int64, _ int) bool { return dir == HostToDevice })
	if _, ok := l.Attempt(HostToDevice, 100, 0, 0); ok {
		t.Error("H2D attempt should fail")
	}
	if _, ok := l.Attempt(DeviceToHost, 100, 0, 0); !ok {
		t.Error("D2H attempt should pass")
	}
	if l.Failures(HostToDevice) != 1 || l.Failures(DeviceToHost) != 0 {
		t.Error("per-direction failure accounting wrong")
	}
	l.Reset()
	if l.Failures(HostToDevice) != 0 {
		t.Error("Reset did not clear failures")
	}
}

func TestSetFaultHookNilRemoves(t *testing.T) {
	_, l := testLink(t)
	l.SetFaultHook(func(Direction, int64, int) bool { return true })
	l.SetFaultHook(nil)
	if _, ok := l.Attempt(HostToDevice, 100, 0, 0); !ok {
		t.Error("attempt failed after hook removal")
	}
}
