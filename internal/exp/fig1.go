package exp

import (
	"fmt"

	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// Fig1 reproduces Figure 1: cumulative data access latency for page-touch
// kernels under explicit transfer, UVM without prefetching, and UVM with
// prefetching, across sizes spanning the GPU memory limit. The paper's
// four observations should hold: (1) UVM without prefetching is one or
// more orders of magnitude above explicit transfer, (2) prefetching
// closes most but not all of the gap in-core, (3) oversubscription costs
// another order of magnitude, and (4) prefetching aggravates
// oversubscribed random access.
func Fig1(sc Scale) ([]*stats.Table, error) {
	fractions := []float64{0.0625, 0.25, 0.5, 0.75, 1.2, 1.5}
	if sc.Quick {
		fractions = []float64{0.25, 1.2}
	}
	t := stats.NewTable("Fig 1: page-touch access latency vs management mode",
		"pattern", "size_mb", "oversub_pct", "mode", "total_ms", "us_per_page", "faults", "evictions")
	t.Note = "explicit rows exist only while the data fits in GPU memory"

	q := sc.newQueue()
	patterns := []string{"regular", "random"}
	for _, pattern := range patterns {
		for _, f := range fractions {
			bytes := int64(f * float64(sc.GPUMemoryBytes))
			addRow := func(mode string, totalMs float64, pages int, faults, evictions uint64) func() {
				return func() {
					t.AddRow(pattern, mb(bytes), pct(f), mode, totalMs,
						totalMs*1000/float64(pages), faults, evictions)
				}
			}
			label := func(mode string) string {
				return fmt.Sprintf("fig1 pattern=%s size=%.0f%% mode=%s seed=%d", pattern, pct(f), mode, sc.Seed)
			}
			// Explicit baseline (in-core only).
			if f <= 1.0 {
				q.add(label("explicit"), func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.Obs = sc.obsOptions(label("explicit"))
					sys, err := core.NewSystem(cfg)
					if err != nil {
						return nil, err
					}
					k, err := buildTouch(sys, pattern, bytes, sc)
					if err != nil {
						return nil, err
					}
					res, err := sys.RunExplicit(k)
					if err != nil {
						return nil, err
					}
					return addRow("explicit", ms(res.TotalTime), sys.Space().TotalPages(), res.Faults, res.Evictions), nil
				})
			}
			// UVM without prefetching.
			q.add(label("uvm"), func() (func(), error) {
				cfg := sc.sysConfig()
				cfg.PrefetchPolicy = "none"
				cell, err := runWorkloadCell(sc, label("uvm"), cfg, pattern, bytes, sc.params())
				if err != nil {
					return nil, err
				}
				return addRow("uvm", ms(cell.res.TotalTime), cell.sys.Space().TotalPages(),
					cell.res.Faults, cell.res.Evictions), nil
			})
			// UVM with the default density prefetcher.
			q.add(label("uvm+prefetch"), func() (func(), error) {
				cell, err := runWorkloadCell(sc, label("uvm+prefetch"), sc.sysConfig(), pattern, bytes, sc.params())
				if err != nil {
					return nil, err
				}
				return addRow("uvm+prefetch", ms(cell.res.TotalTime), cell.sys.Space().TotalPages(),
					cell.res.Faults, cell.res.Evictions), nil
			})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

func buildTouch(sys *core.System, pattern string, bytes int64, sc Scale) (*gpusim.Kernel, error) {
	b, err := workloads.Get(pattern)
	if err != nil {
		return nil, err
	}
	return b(sys, bytes, sc.params())
}
