package exp

import (
	"fmt"
	"math"

	"uvmsim/internal/stats"
)

// SeedStability quantifies how sensitive the headline measurements are to
// the simulation seed (which drives scheduler jitter, warp staggering,
// PMA latency noise, and workload randomization). For each cell it runs
// several seeds and reports the mean and relative standard deviation of
// total time and fault count. Shapes claimed in EXPERIMENTS.md should be
// far larger than these variations.
func SeedStability(sc Scale) ([]*stats.Table, error) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if sc.Quick {
		seeds = seeds[:3]
	}
	t := stats.NewTable("Seed stability of headline measurements",
		"cell", "seeds", "mean_ms", "time_rsd_pct", "mean_faults", "fault_rsd_pct")
	cells := []struct {
		name     string
		workload string
		frac     float64
		prefetch string
	}{
		{"regular-incore-nopf", "regular", 0.5, "none"},
		{"regular-incore-pf", "regular", 0.5, "density"},
		{"random-incore-pf", "random", 0.5, "density"},
		{"random-oversub-pf", "random", 1.25, "density"},
	}
	if sc.Quick {
		cells = cells[:2]
	}
	q := sc.newQueue()
	for _, c := range cells {
		// Every (cell, seed) run is an independent task writing into its
		// own slot; the emit continuation aggregates once all slots are
		// filled (emits run only after every task finished).
		times := make([]float64, len(seeds))
		faults := make([]float64, len(seeds))
		for i, seed := range seeds {
			label := fmt.Sprintf("val-seeds cell=%s seed=%d", c.name, seed)
			q.add(label, func() (func(), error) {
				cfg := sc.sysConfig()
				cfg.Seed = seed
				cfg.PrefetchPolicy = c.prefetch
				p := sc.params()
				p.Seed = seed + 100
				cell, err := runWorkloadCell(sc, label, cfg, c.workload, int64(c.frac*float64(sc.GPUMemoryBytes)), p)
				if err != nil {
					return nil, fmt.Errorf("stability %s seed %d: %w", c.name, seed, err)
				}
				times[i] = ms(cell.res.TotalTime)
				faults[i] = float64(cell.res.Faults)
				return nil, nil
			})
		}
		q.add(fmt.Sprintf("val-seeds cell=%s aggregate", c.name), func() (func(), error) {
			return func() {
				mt, rt := meanRSD(times)
				mf, rf := meanRSD(faults)
				t.AddRow(c.name, len(seeds), mt, rt*100, mf, rf*100)
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// meanRSD returns the mean and the relative standard deviation of xs.
func meanRSD(xs []float64) (mean, rsd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 || len(xs) < 2 {
		return mean, 0
	}
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	v /= float64(len(xs) - 1)
	return mean, math.Sqrt(v) / mean
}
