package exp

import (
	"fmt"

	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// CalibrationAnchors probes the cost-model anchors the whole reproduction
// is calibrated against and prints paper value vs measured vs verdict.
// The same checks are enforced as tests; this experiment makes them
// visible as a table.
func CalibrationAnchors(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Calibration anchors: paper vs measured",
		"anchor", "paper", "measured", "band", "ok")

	addRow := func(name, paper, measured, band string, ok bool) func() {
		return func() { t.AddRow(name, paper, measured, band, ok) }
	}
	nopf := func() core.Config {
		cfg := sc.sysConfig()
		cfg.PrefetchPolicy = "none"
		return cfg
	}

	q := sc.newQueue()
	// Anchor 1: a single isolated far-fault costs 30-45 µs end-to-end.
	q.add(fmt.Sprintf("val-calib anchor=single-fault seed=%d", sc.Seed), func() (func(), error) {
		single, err := singleFaultLatency(sc)
		if err != nil {
			return nil, err
		}
		return addRow("single far-fault", "30-45us", single.String(), "20-120us",
			single >= 20*sim.Microsecond && single <= 120*sim.Microsecond), nil
	})
	// Anchor 2: sub-100 KB page-touch total is hundreds of µs.
	label2 := fmt.Sprintf("val-calib anchor=96kb-touch seed=%d", sc.Seed)
	q.add(label2, func() (func(), error) {
		cell, err := runWorkloadCell(sc, label2, nopf(), "regular", 96<<10, sc.params())
		if err != nil {
			return nil, err
		}
		small := cell.res.TotalTime
		return addRow("96KB page-touch total", "400-600us", small.String(), "100us-2ms",
			small >= 100*sim.Microsecond && small <= 2*sim.Millisecond), nil
	})
	// Anchor 3: explicit transfer beats no-prefetch UVM by >= 4x in-core.
	label3 := fmt.Sprintf("val-calib anchor=explicit-ratio seed=%d", sc.Seed)
	q.add(label3, func() (func(), error) {
		uvmCell, err := runWorkloadCell(sc, label3, nopf(), "regular", sc.GPUMemoryBytes/3, sc.params())
		if err != nil {
			return nil, err
		}
		ratio, err := explicitRatio(sc, uvmCell.res.TotalTime)
		if err != nil {
			return nil, err
		}
		return addRow("UVM/explicit in-core ratio", ">=10x", fmt.Sprintf("%.1fx", ratio), ">=4x", ratio >= 4), nil
	})
	// Anchor 4: density prefetching removes most random-pattern faults.
	label4 := fmt.Sprintf("val-calib anchor=fault-reduction seed=%d", sc.Seed)
	q.add(label4, func() (func(), error) {
		offCell, err := runWorkloadCell(sc, label4+" prefetch=off", nopf(), "random", sc.GPUMemoryBytes/3, sc.params())
		if err != nil {
			return nil, err
		}
		onCell, err := runWorkloadCell(sc, label4+" prefetch=on", sc.sysConfig(), "random", sc.GPUMemoryBytes/3, sc.params())
		if err != nil {
			return nil, err
		}
		red := 100 * (1 - float64(onCell.res.Faults)/float64(offCell.res.Faults))
		return addRow("random fault reduction", "98.0%", fmt.Sprintf("%.1f%%", red), ">=80%", red >= 80), nil
	})
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// singleFaultLatency measures one isolated far-fault end to end.
func singleFaultLatency(sc Scale) (sim.Duration, error) {
	cfg := sc.sysConfig()
	cfg.PrefetchPolicy = "none"
	cfg.KernelLaunch = 0 // isolate the fault path
	cfg.Obs = sc.obsOptions(fmt.Sprintf("val-calib anchor=single-fault seed=%d", sc.Seed))
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	r, err := sys.MallocManaged(4096, "one")
	if err != nil {
		return 0, err
	}
	k := onePageKernel(r)
	res, err := sys.RunUVM(k)
	if err != nil {
		return 0, err
	}
	return res.KernelTime, nil
}

// explicitRatio runs the explicit baseline for the same footprint and
// returns uvmTime / explicitTime.
func explicitRatio(sc Scale, uvmTime sim.Duration) (float64, error) {
	cfg := sc.sysConfig()
	cfg.Obs = sc.obsOptions(fmt.Sprintf("val-calib anchor=explicit-ratio explicit seed=%d", sc.Seed))
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	k, err := workloads.PageTouchRegular(sys, sc.GPUMemoryBytes/3, sc.params())
	if err != nil {
		return 0, err
	}
	res, err := sys.RunExplicit(k)
	if err != nil {
		return 0, err
	}
	return float64(uvmTime) / float64(res.TotalTime), nil
}

// onePageKernel builds the smallest possible kernel: one warp touching
// one page of r.
func onePageKernel(r *mem.Range) *gpusim.Kernel {
	return &gpusim.Kernel{
		Name: "onepage",
		Blocks: []gpusim.ThreadBlock{{
			Warps: []gpusim.WarpProgram{
				gpusim.SliceProgram{{Page: r.StartPage, Write: true}},
			},
		}},
	}
}
