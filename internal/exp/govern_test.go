package exp

import (
	"context"
	"errors"
	"testing"

	"uvmsim/internal/govern"
	"uvmsim/internal/sim"
)

// A pre-cancelled context must stop an experiment before any cell runs.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := DefaultScale()
	sc.Quick = true
	_, err := RunContext(ctx, "fig1", sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A tight event budget must stop an experiment's cells with a
// structured StopError rather than hanging or panicking.
func TestRunContextEventBudgetTrips(t *testing.T) {
	sc := DefaultScale()
	sc.Quick = true
	sc.Budget = sim.Budget{MaxEvents: 100}
	_, err := RunContext(context.Background(), "fig1", sc)
	if err == nil {
		t.Fatal("budget-starved experiment succeeded")
	}
	if st := govern.StatusOf(err); st.State != govern.StateDeadline {
		t.Fatalf("status = %v (%v), want deadline", st.State, err)
	}
}

// Run (no context) must behave exactly as before governance existed.
func TestRunUngovernedUnchanged(t *testing.T) {
	sc := DefaultScale()
	sc.Quick = true
	tables, err := Run("fig1", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("empty result tables")
	}
}
