package exp

import (
	"fmt"

	"uvmsim/internal/driver"
	"uvmsim/internal/stats"
)

// costSizes returns the fault-cost scaling sweep (bytes), spanning the
// paper's "different magnitudes of scale" from tens of KB to a large
// in-core fraction of GPU memory.
func costSizes(sc Scale) []int64 {
	if sc.Quick {
		return []int64{64 << 10, 4 << 20}
	}
	return []int64{
		16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20,
		sc.GPUMemoryBytes / 2,
	}
}

// queueBreakdownRows queues one cell per size for the given pattern and
// driver policy; each emits a row with the paper's three top-level cost
// categories.
func queueBreakdownRows(q *queue, t *stats.Table, sc Scale, pattern string, policy driver.ReplayPolicy) {
	for _, bytes := range costSizes(sc) {
		bytes := bytes
		label := fmt.Sprintf("cost pattern=%s size=%d policy=%s seed=%d", pattern, bytes, policy, sc.Seed)
		q.add(label,
			func() (func(), error) {
				cfg := sc.sysConfig()
				cfg.PrefetchPolicy = "none"
				cfg.Driver.Policy = policy
				cell, err := runWorkloadCell(sc, label, cfg, pattern, bytes, sc.params())
				if err != nil {
					return nil, err
				}
				return func() {
					bd := cell.res.Breakdown
					t.AddRow(pattern, mb(bytes), ms(cell.res.TotalTime),
						us(bd.Get(stats.PhasePreprocess)),
						us(bd.Service()),
						us(bd.Get(stats.PhaseReplay)),
						cell.res.Faults,
						cell.res.Counters.Get("faults_deduped"),
					)
				}, nil
			})
	}
}

// Fig3 reproduces Figure 3: fault cost scaling and breakdown for regular
// and random access with prefetching disabled under the default
// batch-flush replay policy.
func Fig3(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Fig 3: fault cost scaling and driver breakdown (prefetch off, batch-flush policy)",
		"pattern", "size_mb", "total_ms", "preprocess_us", "service_us", "replay_us", "faults", "dup_faults")
	t.Note = "total is kernel wall time; the three *_us columns are time inside the driver"
	q := sc.newQueue()
	for _, pattern := range []string{"regular", "random"} {
		queueBreakdownRows(q, t, sc, pattern, driver.ReplayBatchFlush)
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// Fig5 reproduces Figure 5: the same experiment as Fig 3 for regular
// access but under the Batch policy — the replay-policy cost collapses
// while pre-processing inflates (duplicate faults are no longer flushed).
func Fig5(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Fig 5: fault cost breakdown under the Batch replay policy (no flush)",
		"pattern", "size_mb", "total_ms", "preprocess_us", "service_us", "replay_us", "faults", "dup_faults")
	t.Note = "compare against Fig 3: replay cost shrinks, preprocessing grows via duplicates"
	q := sc.newQueue()
	queueBreakdownRows(q, t, sc, "regular", driver.ReplayBatch)
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// Fig4 reproduces Figure 4: the service-cost split (Map Pages, Migrate
// Pages, PMA Alloc Pages) at small sizes, where the over-provisioned
// allocator's constant cost dominates.
func Fig4(sc Scale) ([]*stats.Table, error) {
	sizes := []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if sc.Quick {
		sizes = []int64{64 << 10, 1 << 20}
	}
	t := stats.NewTable("Fig 4: fault service cost breakdown at small sizes (prefetch off)",
		"size_kb", "service_us", "pma_alloc_us", "migrate_us", "map_us",
		"pma_pct", "migrate_pct", "map_pct")
	q := sc.newQueue()
	for _, bytes := range sizes {
		bytes := bytes
		label := fmt.Sprintf("fig4 size=%d seed=%d", bytes, sc.Seed)
		q.add(label, func() (func(), error) {
			cfg := sc.sysConfig()
			cfg.PrefetchPolicy = "none"
			cell, err := runWorkloadCell(sc, label, cfg, "regular", bytes, sc.params())
			if err != nil {
				return nil, err
			}
			return func() {
				bd := cell.res.Breakdown
				service := bd.Service()
				frac := func(p stats.Phase) float64 {
					if service == 0 {
						return 0
					}
					return pct(float64(bd.Get(p)) / float64(service))
				}
				t.AddRow(float64(bytes)/1024, us(service),
					us(bd.Get(stats.PhasePMAAlloc)), us(bd.Get(stats.PhaseMigrate)), us(bd.Get(stats.PhaseMap)),
					frac(stats.PhasePMAAlloc), frac(stats.PhaseMigrate), frac(stats.PhaseMap))
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}
