package exp

import (
	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/workloads"
)

// runSGEMMWithConfig runs sgemm of dimension n on an explicit system
// configuration (used by ablations that tweak policies).
func runSGEMMWithConfig(sc Scale, label string, cfg core.Config, n int) (*cellResult, error) {
	return runCell(sc, label, cfg, func(s *core.System) (*gpusim.Kernel, error) {
		return workloads.SGEMM(s, n, sc.params())
	})
}
