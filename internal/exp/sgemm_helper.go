package exp

import (
	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/workloads"
)

// runSGEMMWithConfig runs sgemm of dimension n on an explicit system
// configuration (used by ablations that tweak policies).
func runSGEMMWithConfig(cfg core.Config, n int, sc Scale) (*cellResult, error) {
	return runCell(cfg, func(s *core.System) (*gpusim.Kernel, error) {
		return workloads.SGEMM(s, n, sc.params())
	})
}
