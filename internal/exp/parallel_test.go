package exp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"uvmsim/internal/parallel"
	"uvmsim/internal/stats"
)

// render serializes every table of an experiment run to CSV bytes.
func render(t *testing.T, tables []*stats.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// The parallel runner's core promise: experiment output is byte-identical
// at every worker count. Exercised across experiments covering each
// queue shape — plain fan-out (fig1, fig3), result-pairing (tab1),
// aggregation slots (val-seeds), and heterogeneous anchors (val-calib).
func TestParallelOutputMatchesSerial(t *testing.T) {
	ids := []string{"fig1", "fig3", "tab1", "abl-policy", "val-seeds", "val-calib"}
	for _, id := range ids {
		sc := DefaultScale()
		sc.GPUMemoryBytes = 32 << 20
		sc.Quick = true
		sc.Jobs = 1
		serialTables, err := Run(id, sc)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		serial := render(t, serialTables)
		for _, jobs := range []int{4, 8} {
			sc.Jobs = jobs
			parTables, err := Run(id, sc)
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", id, jobs, err)
			}
			if got := render(t, parTables); !bytes.Equal(serial, got) {
				t.Errorf("%s: output at jobs=%d differs from serial:\n--- serial ---\n%s\n--- jobs=%d ---\n%s",
					id, jobs, serial, jobs, got)
			}
		}
	}
}

// A cell that panics must fail the whole experiment with an error naming
// the offending cell and seed (the replay recipe), wrapping the captured
// *parallel.PanicError, and must not deadlock the queue.
func TestQueuePanicBecomesReplayableError(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		q := &queue{jobs: jobs}
		for i := 0; i < 8; i++ {
			i := i
			q.add("cell ok", func() (func(), error) {
				if i == 5 {
					panic("invariant violated")
				}
				return func() {}, nil
			})
		}
		q.labels[5] = "fig1 pattern=random size=120% mode=uvm seed=7"
		err := q.run()
		if err == nil {
			t.Fatalf("jobs=%d: queue swallowed a worker panic", jobs)
		}
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: error does not wrap *parallel.PanicError: %v", jobs, err)
		}
		for _, want := range []string{"seed=7", "pattern=random", "-jobs 1", "invariant violated"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("jobs=%d: error misses %q: %v", jobs, want, err)
			}
		}
	}
}

// A failing cell must return the same error the serial loop would, at
// any worker count.
func TestQueueDeterministicError(t *testing.T) {
	wantErr := errors.New("cell 3 exploded")
	for _, jobs := range []int{1, 2, 6} {
		q := &queue{jobs: jobs}
		for i := 0; i < 10; i++ {
			i := i
			q.add("cell", func() (func(), error) {
				if i >= 3 {
					return nil, wantErr
				}
				return func() {}, nil
			})
		}
		if err := q.run(); !errors.Is(err, wantErr) {
			t.Errorf("jobs=%d: err = %v, want %v", jobs, err, wantErr)
		}
	}
}

// Emits must run in add order even when tasks finish out of order, and
// nil emits (aggregation slots) are skipped.
func TestQueueEmitOrder(t *testing.T) {
	q := &queue{jobs: 4}
	var got []int
	for i := 0; i < 16; i++ {
		i := i
		q.add("cell", func() (func(), error) {
			if i%3 == 0 {
				return nil, nil // aggregation-slot shape
			}
			return func() { got = append(got, i) }, nil
		})
	}
	if err := q.run(); err != nil {
		t.Fatal(err)
	}
	want := -1
	for _, v := range got {
		if v <= want {
			t.Fatalf("emit order broken: %v", got)
		}
		want = v
	}
	if len(got) != 10 {
		t.Fatalf("expected 10 emits, got %d", len(got))
	}
}
