// Package exp regenerates every table and figure from the paper's
// evaluation as data tables, plus the ablations DESIGN.md calls out. Each
// experiment builds fresh systems at a laptop-friendly scale: the paper's
// 12 GB Titan V framebuffer maps to a configurable scaled framebuffer
// (default 96 MB = 1/128 scale) with problem sizes expressed as fractions
// of GPU memory, preserving every under/oversubscription ratio.
package exp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"uvmsim/internal/core"
	"uvmsim/internal/govern"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/parallel"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// Scale fixes the hardware scale and seed for an experiment run.
type Scale struct {
	// GPUMemoryBytes is the scaled framebuffer (paper: 12 GB).
	GPUMemoryBytes int64
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps for benchmarks and smoke tests.
	Quick bool
	// Jobs bounds the worker pool fanning independent cells out across
	// goroutines: 1 runs strictly serially, <= 0 selects NumCPU. Output
	// is byte-identical at every value (see the queue type).
	Jobs int
	// Obs, when set, captures every cell's spans and metrics under the
	// cell's label, so exports stay per-cell attributed (and byte-stable)
	// at any Jobs value.
	Obs *obs.Collector
	// Lifecycle enables per-fault birth-to-replay tracking in each cell.
	Lifecycle bool
	// Budget bounds every cell's engine in simulated time, event count,
	// and forward progress; the zero value imposes no bounds.
	Budget sim.Budget
	// GPUs runs every cell on this many devices (0 and 1 both mean the
	// classic single-GPU testbed); Migration picks the multi-GPU page
	// placement policy, meaningful only when GPUs > 1.
	GPUs      int
	Migration multigpu.Policy

	// ctx and cancel carry RunContext's cancellation into each cell's
	// pool dequeue check and engine polling respectively.
	ctx    context.Context
	cancel *sim.Cancel
}

// obsOptions stamps the scale's instrumentation selection onto one cell.
func (sc Scale) obsOptions(label string) obs.Options {
	return obs.Options{Collector: sc.Obs, Label: label, Lifecycle: sc.Lifecycle}
}

// DefaultScale is 1/128 of the paper's Titan V.
func DefaultScale() Scale {
	return Scale{GPUMemoryBytes: 96 << 20, Seed: 1}
}

// Experiment produces one or more result tables.
type Experiment func(Scale) ([]*stats.Table, error)

// Registry maps experiment ids (DESIGN.md §3) to implementations.
func Registry() map[string]Experiment {
	return map[string]Experiment{
		"fig1":       Fig1,
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig7":       Fig7,
		"tab1":       Table1,
		"fig8":       Fig8,
		"fig9":       Fig9,
		"fig10":      Fig10,
		"tab2":       Table2,
		"abl-policy": AblationReplayPolicy,
		"abl-thresh": AblationThreshold,
		"abl-batch":  AblationBatchSize,
		"abl-evict":  AblationEviction,
		"abl-mode":   AblationAccessMode,
		"abl-origin": AblationFaultOrigin,
		"abl-gran":   AblationGranularity,
		"abl-adapt":  AblationAdaptive,
		"val-full":   FullScaleValidation,
		"val-seeds":  SeedStability,
		"val-calib":  CalibrationAnchors,
	}
}

// ExperimentIDs returns the registry keys in stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the named experiment.
func Run(id string, sc Scale) ([]*stats.Table, error) {
	return RunContext(context.Background(), id, sc)
}

// RunContext executes the named experiment under ctx: cancellation stops
// the cell pool from dequeuing further cells and is polled by every
// in-flight cell's engine, so a SIGINT tears an experiment down in at
// most one event's worth of work per worker.
func RunContext(ctx context.Context, id string, sc Scale) ([]*stats.Table, error) {
	e, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	sc.ctx = ctx
	sc.cancel = govern.WatchContext(ctx)
	return e(sc)
}

// sysConfig returns the default system config at this scale.
func (sc Scale) sysConfig() core.Config {
	cfg := core.DefaultConfig(sc.GPUMemoryBytes)
	cfg.Seed = sc.Seed
	cfg.Cancel = sc.cancel
	cfg.Budget = sc.Budget
	if sc.GPUs > 1 {
		cfg.GPUs = sc.GPUs
		cfg.Migration = sc.Migration
	}
	return cfg
}

// params returns workload parameters at this scale.
func (sc Scale) params() workloads.Params {
	p := workloads.DefaultParams()
	p.Seed = sc.Seed + 100
	return p
}

// cell runs one workload on one fresh system configuration and returns
// the measurements.
type cellResult struct {
	res *core.RunResult
	sys *core.System
}

func runCell(sc Scale, label string, cfg core.Config, build func(*core.System) (*gpusim.Kernel, error)) (*cellResult, error) {
	cfg.Obs = sc.obsOptions(label)
	// Experiments that assemble configs without sysConfig still inherit
	// the scale's governance.
	if cfg.Cancel == nil {
		cfg.Cancel = sc.cancel
	}
	if !cfg.Budget.Active() {
		cfg.Budget = sc.Budget
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	k, err := build(sys)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunUVM(k)
	if err != nil {
		return nil, err
	}
	return &cellResult{res: res, sys: sys}, nil
}

// runWorkloadCell runs a named workload at the given footprint.
func runWorkloadCell(sc Scale, label string, cfg core.Config, name string, bytes int64, p workloads.Params) (*cellResult, error) {
	builder, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return runCell(sc, label, cfg, func(s *core.System) (*gpusim.Kernel, error) {
		return builder(s, bytes, p)
	})
}

// queue collects an experiment's cells so they can execute across the
// worker pool while their table rows still land in declaration order.
//
// Each added task runs one self-contained cell (own system, engine, RNG)
// and returns an emit continuation. Tasks run concurrently under
// sc.Jobs workers; emit continuations run serially, in add order, only
// after every task has finished — so tables are byte-identical to the
// serial path no matter how the pool schedules the work.
type queue struct {
	jobs   int
	ctx    context.Context
	labels []string
	tasks  []func() (func(), error)
}

// newQueue returns an empty cell queue honoring sc.Jobs and the scale's
// cancellation context.
func (sc Scale) newQueue() *queue { return &queue{jobs: sc.Jobs, ctx: sc.ctx} }

// add registers one cell. label names the cell's configuration and seed;
// it prefixes the error when the cell's goroutine panics, turning a
// worker crash into a replay recipe. task may return a nil emit when the
// cell only feeds later cells (e.g. aggregation slots).
func (q *queue) add(label string, task func() (func(), error)) {
	q.labels = append(q.labels, label)
	q.tasks = append(q.tasks, task)
}

// run executes every queued task across the pool, then replays the emit
// continuations in add order. Task errors are returned verbatim (lowest
// index first, identical to the serial loop); panics are wrapped with
// the cell's label.
func (q *queue) run() error {
	emits, _, err := parallel.MapCtx(q.ctx, q.jobs, len(q.tasks), func(i int) (func(), error) {
		return q.tasks[i]()
	})
	if err != nil {
		var pe *parallel.PanicError
		if errors.As(err, &pe) && pe.Index < len(q.labels) {
			return fmt.Errorf("exp: cell %s crashed (rerun serially with -jobs 1 to reproduce): %w",
				q.labels[pe.Index], err)
		}
		return err
	}
	for _, emit := range emits {
		if emit != nil {
			emit()
		}
	}
	return nil
}

// ms converts a simulated duration to milliseconds.
func ms(d sim.Duration) float64 { return float64(d) / float64(sim.Millisecond) }

// us converts a simulated duration to microseconds.
func us(d sim.Duration) float64 { return d.Micros() }

// pct formats a fraction as a percentage value.
func pct(x float64) float64 { return x * 100 }

// mb converts bytes to mebibytes.
func mb(b int64) float64 { return float64(b) / (1 << 20) }
