package exp

import (
	"fmt"

	"uvmsim/internal/analyze"
	"uvmsim/internal/core"
	"uvmsim/internal/stats"
	"uvmsim/internal/trace"
	"uvmsim/internal/workloads"
)

// Table1 reproduces Table I: total faults with prefetching disabled vs
// enabled, and the fault reduction percentage, for the full benchmark
// suite at a relatively large undersubscribed size (50% of GPU memory).
// The paper finds at least 64% reduction for every workload.
func Table1(sc Scale) ([]*stats.Table, error) {
	bytes := sc.GPUMemoryBytes / 2
	t := stats.NewTable("Table I: application fault reduction from prefetching",
		"workload", "total_faults", "faults_w_prefetch", "reduction_pct")
	t.Note = fmt.Sprintf("undersubscribed footprint = %.0f MB (50%% of GPU memory)", mb(bytes))
	names := workloads.Names()
	if sc.Quick {
		names = []string{"regular", "random", "stream"}
	}
	q := sc.newQueue()
	for _, name := range names {
		off := make([]*cellResult, 1)
		labelOff := fmt.Sprintf("tab1 workload=%s prefetch=off seed=%d", name, sc.Seed)
		q.add(labelOff, func() (func(), error) {
			cfgOff := sc.sysConfig()
			cfgOff.PrefetchPolicy = "none"
			cell, err := runWorkloadCell(sc, labelOff, cfgOff, name, bytes, sc.params())
			if err != nil {
				return nil, fmt.Errorf("table1 %s (prefetch off): %w", name, err)
			}
			off[0] = cell
			return nil, nil
		})
		labelOn := fmt.Sprintf("tab1 workload=%s prefetch=on seed=%d", name, sc.Seed)
		q.add(labelOn, func() (func(), error) {
			on, err := runWorkloadCell(sc, labelOn, sc.sysConfig(), name, bytes, sc.params())
			if err != nil {
				return nil, fmt.Errorf("table1 %s (prefetch on): %w", name, err)
			}
			return func() {
				reduction := 0.0
				if off[0].res.Faults > 0 {
					reduction = 1 - float64(on.res.Faults)/float64(off[0].res.Faults)
				}
				t.AddRow(name, off[0].res.Faults, on.res.Faults, pct(reduction))
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// TraceWorkload runs one workload with tracing enabled and returns the
// system (holding the recorder) and its result. footprintFrac is the data
// size as a fraction of GPU memory; prefetchPolicy "none" reproduces the
// paper's Fig. 7 setting, while the default policy with an oversubscribed
// fraction reproduces Fig. 8.
func TraceWorkload(sc Scale, name string, footprintFrac float64, prefetchPolicy string) (*core.System, *core.RunResult, error) {
	cfg := sc.sysConfig()
	cfg.TraceCapacity = -1
	if prefetchPolicy != "" {
		cfg.PrefetchPolicy = prefetchPolicy
	}
	bytes := int64(footprintFrac * float64(sc.GPUMemoryBytes))
	label := fmt.Sprintf("trace workload=%s footprint=%.2f prefetch=%s seed=%d", name, footprintFrac, cfg.PrefetchPolicy, sc.Seed)
	cell, err := runWorkloadCell(sc, label, cfg, name, bytes, sc.params())
	if err != nil {
		return nil, nil, err
	}
	return cell.sys, cell.res, nil
}

// Fig7 reproduces Figure 7 in summary form: per-workload fault-pattern
// statistics with prefetching disabled. The full scatter data (fault
// occurrence vs page index) is exported by cmd/faulttrace. The
// correlation column is the Pearson correlation between fault occurrence
// order and page index — near 1 for the diagonal band of a streaming
// pattern, near 0 for uniform random scatter.
func Fig7(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Fig 7: driver-observed access patterns (prefetch disabled)",
		"workload", "ranges", "pages", "faults", "order_page_corr", "coverage_pct")
	names := workloads.Names()
	if sc.Quick {
		names = []string{"regular", "random"}
	}
	// The footprint must dwarf the in-flight warp window or the whole
	// dataset faults at launch and every pattern looks random.
	frac := 0.5
	if sc.Quick {
		frac = 0.75
	}
	q := sc.newQueue()
	for _, name := range names {
		q.add(fmt.Sprintf("fig7 workload=%s seed=%d", name, sc.Seed), func() (func(), error) {
			sys, res, err := TraceWorkload(sc, name, frac, "none")
			if err != nil {
				return nil, fmt.Errorf("fig7 %s: %w", name, err)
			}
			rep, err := analyze.Analyze(sys.Trace(), sys.Space())
			if err != nil {
				return nil, err
			}
			return func() {
				comp := trace.NewCompressor(sys.Space())
				t.AddRow(name, len(sys.Space().Ranges()), comp.Total(), res.Faults,
					rep.OrderPageCorrelation, pct(rep.CoverageFraction))
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}
