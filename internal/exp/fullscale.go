package exp

import (
	"fmt"

	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/stats"
)

// FullScaleValidation runs page-touch kernels on the full-scale machine —
// 80 SMs, 12 GB framebuffer, 4096-entry fault buffer, exactly the
// paper's Titan V — and reports absolute magnitudes next to the paper's
// bands: total time for <100 KB data (paper: 400-600 µs) and the
// amortized per-page cost at larger sizes (paper: ~30-45 µs per isolated
// far-fault, a few µs amortized in batches). Problem sizes stay modest so
// the validation completes in seconds of host time; the scaled
// experiments cover oversubscription.
func FullScaleValidation(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Full-scale spot check (80 SMs, 12 GB, paper's machine)",
		"size", "mode", "total_us", "us_per_page", "paper_band")
	sizes := []struct {
		bytes int64
		label string
		band  string
	}{
		{64 << 10, "64KB", "400-600us total"},
		{2 << 20, "2MB", "~1-10us/page"},
		{64 << 20, "64MB", "~2-6us/page"},
	}
	if sc.Quick {
		sizes = sizes[:2]
	}
	q := sc.newQueue()
	for _, sz := range sizes {
		for _, mode := range []string{"none", "density"} {
			label := fmt.Sprintf("val-full size=%s prefetch=%s seed=%d", sz.label, mode, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := core.DefaultConfig(12 << 30)
					cfg.Seed = sc.Seed
					cfg.GPU = gpusim.TitanV()
					cfg.PrefetchPolicy = mode
					cell, err := runWorkloadCell(sc, label, cfg, "regular", sz.bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("val-full %s/%s: %w", sz.label, mode, err)
					}
					return func() {
						pages := cell.sys.Space().TotalPages()
						t.AddRow(sz.label, "uvm+"+mode, us(cell.res.TotalTime),
							us(cell.res.TotalTime)/float64(pages), sz.band)
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}
