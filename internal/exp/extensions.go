package exp

import (
	"fmt"

	"uvmsim/internal/core"
	"uvmsim/internal/mem"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// modeAllocator allocates every workload range with a fixed UVM access
// behavior.
type modeAllocator struct {
	sys  *core.System
	mode mem.AccessMode
}

func (a modeAllocator) MallocManaged(size int64, label string) (*mem.Range, error) {
	return a.sys.MallocManagedMode(size, label, a.mode)
}

// AblationAccessMode compares UVM's three page access behaviors
// (§III-A): paged migration (the paper's focus, with and without
// prefetching), remote mapping, and read-only duplication, on
// single-touch patterns under and over the memory limit. Remote mapping
// never migrates (every access crosses the interconnect), so it wins
// exactly where migration thrashes.
func AblationAccessMode(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Ablation: UVM access behaviors (migrate / remote-map / read-dup)",
		"pattern", "footprint_pct", "mode", "total_ms", "faults", "evictions",
		"remote_accesses", "h2d_mb", "d2h_mb")
	fractions := []float64{0.5, 1.25}
	patterns := []string{"regular", "random"}
	if sc.Quick {
		patterns = []string{"random"}
	}
	modes := []struct {
		name string
		mode mem.AccessMode
		pf   string
	}{
		{"migrate", mem.ModeMigrate, "density"},
		{"migrate-nopf", mem.ModeMigrate, "none"},
		{"remote-map", mem.ModeRemoteMap, "density"},
		{"read-dup", mem.ModeReadDup, "density"},
	}
	q := sc.newQueue()
	for _, pattern := range patterns {
		builder, err := workloads.Get(pattern)
		if err != nil {
			return nil, err
		}
		for _, f := range fractions {
			for _, m := range modes {
				label := fmt.Sprintf("abl-mode pattern=%s footprint=%.2f mode=%s seed=%d", pattern, f, m.name, sc.Seed)
				q.add(label,
					func() (func(), error) {
						cfg := sc.sysConfig()
						cfg.PrefetchPolicy = m.pf
						cfg.Obs = sc.obsOptions(label)
						sys, err := core.NewSystem(cfg)
						if err != nil {
							return nil, err
						}
						k, err := builder(modeAllocator{sys, m.mode}, int64(f*float64(sc.GPUMemoryBytes)), sc.params())
						if err != nil {
							return nil, err
						}
						res, err := sys.RunUVM(k)
						if err != nil {
							return nil, fmt.Errorf("abl-mode %s/%.2f/%s: %w", pattern, f, m.name, err)
						}
						return func() {
							t.AddRow(pattern, pct(f), m.name, ms(res.TotalTime), res.Faults,
								res.Evictions, res.GPU.RemoteAccesses,
								mb(res.BytesH2D), mb(res.BytesD2H))
						}, nil
					})
			}
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationFaultOrigin evaluates the §VI-B "increased fault origin
// information" path: with per-SM origin identity in fault entries, a
// classic per-core stream prefetcher becomes possible. Compared against
// source-erased density prefetching on streaming and random patterns.
func AblationFaultOrigin(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Ablation: fault-origin information enabling stream prefetching",
		"workload", "prefetcher", "origin_info", "total_ms", "faults", "prefetched_pages")
	bytes := sc.GPUMemoryBytes / 2
	names := []string{"regular", "stream", "random"}
	if sc.Quick {
		names = []string{"stream"}
	}
	cells := []struct {
		pf     string
		origin bool
	}{
		{"none", false},
		{"density", false},
		{"stream", false}, // source erasure: degrades to demand paging
		{"stream", true},  // the §VI-B hardware extension
	}
	q := sc.newQueue()
	for _, name := range names {
		for _, c := range cells {
			label := fmt.Sprintf("abl-origin workload=%s prefetch=%s origin=%v seed=%d", name, c.pf, c.origin, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.PrefetchPolicy = c.pf
					cfg.Driver.FaultOriginInfo = c.origin
					cell, err := runWorkloadCell(sc, label, cfg, name, bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("abl-origin %s/%s: %w", name, c.pf, err)
					}
					return func() {
						t.AddRow(name, c.pf, c.origin, ms(cell.res.TotalTime), cell.res.Faults,
							cell.res.Counters.Get("prefetched_pages"))
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}
