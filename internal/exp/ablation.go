package exp

import (
	"fmt"

	"uvmsim/internal/driver"
	"uvmsim/internal/stats"
)

// AblationReplayPolicy compares all four replay policies (§III-E) on the
// synthetic kernels: Block resumes earliest but replays most; BatchFlush
// (the default) trades flush cost for fewer duplicates; Once minimizes
// replays at the price of stall latency.
func AblationReplayPolicy(sc Scale) ([]*stats.Table, error) {
	bytes := sc.GPUMemoryBytes / 4
	t := stats.NewTable("Ablation: replay policies (prefetch off)",
		"pattern", "policy", "total_ms", "replays", "faults", "dup_faults",
		"preprocess_us", "replay_us", "stall_ms", "stall_p50_us", "stall_p99_us")
	policies := []driver.ReplayPolicy{
		driver.ReplayBlock, driver.ReplayBatch, driver.ReplayBatchFlush, driver.ReplayOnce,
	}
	patterns := []string{"regular", "random"}
	if sc.Quick {
		patterns = []string{"regular"}
	}
	q := sc.newQueue()
	for _, pattern := range patterns {
		for _, pol := range policies {
			label := fmt.Sprintf("abl-policy pattern=%s policy=%s seed=%d", pattern, pol, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.PrefetchPolicy = "none"
					cfg.Driver.Policy = pol
					cell, err := runWorkloadCell(sc, label, cfg, pattern, bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("abl-policy %s/%s: %w", pattern, pol, err)
					}
					return func() {
						hist := cell.sys.GPU().StallHistogram()
						t.AddRow(pattern, pol.String(), ms(cell.res.TotalTime),
							cell.res.GPU.Replays, cell.res.Faults,
							cell.res.Counters.Get("faults_deduped"),
							us(cell.res.Breakdown.Get(stats.PhasePreprocess)),
							us(cell.res.Breakdown.Get(stats.PhaseReplay)),
							ms(cell.res.GPU.StallTime),
							us(hist.Quantile(0.5)), us(hist.Quantile(0.99)))
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationThreshold sweeps the density threshold. §IV-C reports that a 1%
// threshold "rivals the performance of an explicit direct transfer" for
// undersubscribed workloads.
func AblationThreshold(sc Scale) ([]*stats.Table, error) {
	bytes := sc.GPUMemoryBytes / 2
	t := stats.NewTable("Ablation: density threshold sweep (undersubscribed)",
		"workload", "threshold", "total_ms", "faults", "prefetched_pages")
	thresholds := []int{1, 25, 51, 75, 99}
	if sc.Quick {
		thresholds = []int{1, 51}
	}
	names := []string{"regular", "stream"}
	if sc.Quick {
		names = []string{"regular"}
	}
	q := sc.newQueue()
	for _, name := range names {
		for _, th := range thresholds {
			label := fmt.Sprintf("abl-thresh workload=%s threshold=%d seed=%d", name, th, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.PrefetchPolicy = fmt.Sprintf("density:%d", th)
					cell, err := runWorkloadCell(sc, label, cfg, name, bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("abl-thresh %s/%d: %w", name, th, err)
					}
					return func() {
						t.AddRow(name, th, ms(cell.res.TotalTime), cell.res.Faults,
							cell.res.Counters.Get("prefetched_pages"))
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationBatchSize sweeps the fault batch size (§III-D: larger batches
// coalesce better but delay SMs).
func AblationBatchSize(sc Scale) ([]*stats.Table, error) {
	bytes := sc.GPUMemoryBytes / 4
	t := stats.NewTable("Ablation: fault batch size (prefetch off)",
		"pattern", "batch", "total_ms", "batches", "faults", "stall_ms")
	sizes := []int{32, 64, 128, 256, 512, 1024}
	if sc.Quick {
		sizes = []int{64, 256}
	}
	q := sc.newQueue()
	for _, pattern := range []string{"regular", "random"} {
		for _, bs := range sizes {
			label := fmt.Sprintf("abl-batch pattern=%s batch=%d seed=%d", pattern, bs, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.PrefetchPolicy = "none"
					cfg.Driver.BatchSize = bs
					cell, err := runWorkloadCell(sc, label, cfg, pattern, bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("abl-batch %s/%d: %w", pattern, bs, err)
					}
					return func() {
						t.AddRow(pattern, bs, ms(cell.res.TotalTime),
							cell.res.Counters.Get("batches"), cell.res.Faults,
							ms(cell.res.GPU.StallTime))
					}, nil
				})
		}
		if sc.Quick {
			break
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationEviction compares eviction policies on oversubscribed
// workloads: the §VI-B access-counter-aware policy that fixes fault-only
// LRU's hot-data starvation, and the thrash-pinning extension modeled on
// the production driver's uvm_perf_thrashing.
func AblationEviction(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Ablation: eviction policy, oversubscribed",
		"workload", "policy", "total_ms", "faults", "evictions", "evicted_pages", "d2h_mb")
	policies := []string{"lru", "fifo", "random", "access-aware", "lru+thrash"}
	if sc.Quick {
		policies = []string{"lru", "access-aware", "lru+thrash"}
	}
	type wl struct {
		name string
		frac float64
	}
	wls := []wl{{"sgemm", 1.25}, {"tealeaf", 1.3}, {"hotcold", 1.3}}
	if sc.Quick {
		wls = wls[:1]
	}
	q := sc.newQueue()
	for _, w := range wls {
		for _, pol := range policies {
			label := fmt.Sprintf("abl-evict workload=%s policy=%s seed=%d", w.name, pol, sc.Seed)
			q.add(label,
				func() (func(), error) {
					cfg := sc.sysConfig()
					cfg.EvictPolicy = pol
					if pol == "access-aware" {
						cfg.GPU.AccessCounters = true
					}
					var cell *cellResult
					var err error
					if w.name == "sgemm" {
						cell, err = runSGEMMWithConfig(sc, label, cfg, sgemmN(sc, w.frac))
					} else {
						cell, err = runWorkloadCell(sc, label, cfg, w.name, int64(w.frac*float64(sc.GPUMemoryBytes)), sc.params())
					}
					if err != nil {
						return nil, fmt.Errorf("abl-evict %s/%s: %w", w.name, pol, err)
					}
					return func() {
						t.AddRow(w.name, pol, ms(cell.res.TotalTime), cell.res.Faults, cell.res.Evictions,
							cell.res.Counters.Get("evicted_pages"), mb(cell.res.BytesD2H))
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationGranularity sweeps the VABlock size (§VI-B flexible memory
// allocation granularity) on oversubscribed random access, where 2 MB
// blocks waste the most memory.
func AblationGranularity(sc Scale) ([]*stats.Table, error) {
	bytes := int64(1.25 * float64(sc.GPUMemoryBytes))
	t := stats.NewTable("Ablation: VABlock granularity on oversubscribed random access",
		"vablock_kb", "total_ms", "faults", "evictions", "h2d_mb", "d2h_mb")
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 2 << 20}
	if sc.Quick {
		sizes = []int64{256 << 10, 2 << 20}
	}
	q := sc.newQueue()
	for _, vb := range sizes {
		label := fmt.Sprintf("abl-gran vablock=%d seed=%d", vb, sc.Seed)
		q.add(label, func() (func(), error) {
			cfg := sc.sysConfig()
			cfg.VABlockSize = vb
			cell, err := runWorkloadCell(sc, label, cfg, "random", bytes, sc.params())
			if err != nil {
				return nil, fmt.Errorf("abl-gran %d: %w", vb, err)
			}
			return func() {
				t.AddRow(vb/1024, ms(cell.res.TotalTime), cell.res.Faults, cell.res.Evictions,
					mb(cell.res.BytesH2D), mb(cell.res.BytesD2H))
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// AblationAdaptive evaluates the §VI-B adaptive prefetcher: aggressive
// while undersubscribed, demand-only under eviction pressure — against
// the static density default and disabled prefetching, on both sides of
// the memory limit.
func AblationAdaptive(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Ablation: adaptive prefetching across the memory limit",
		"pattern", "footprint_pct", "prefetcher", "total_ms", "faults", "evictions", "h2d_mb")
	fractions := []float64{0.5, 1.25}
	prefetchers := []string{"none", "density", "adaptive"}
	patterns := []string{"regular", "random"}
	if sc.Quick {
		patterns = []string{"random"}
	}
	q := sc.newQueue()
	for _, pattern := range patterns {
		for _, f := range fractions {
			for _, pf := range prefetchers {
				label := fmt.Sprintf("abl-adapt pattern=%s footprint=%.2f prefetch=%s seed=%d", pattern, f, pf, sc.Seed)
				q.add(label,
					func() (func(), error) {
						cfg := sc.sysConfig()
						cfg.PrefetchPolicy = pf
						bytes := int64(f * float64(sc.GPUMemoryBytes))
						cell, err := runWorkloadCell(sc, label, cfg, pattern, bytes, sc.params())
						if err != nil {
							return nil, fmt.Errorf("abl-adapt %s/%.2f/%s: %w", pattern, f, pf, err)
						}
						return func() {
							t.AddRow(pattern, pct(f), pf, ms(cell.res.TotalTime),
								cell.res.Faults, cell.res.Evictions, mb(cell.res.BytesH2D))
						}, nil
					})
			}
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}
