package exp

import (
	"fmt"
	"math"

	"uvmsim/internal/analyze"
	"uvmsim/internal/core"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// Fig9 reproduces Figure 9: driver cost breakdown for oversubscribed
// problem sizes with prefetching enabled. The paper's key observation is
// the order-of-magnitude gap between access patterns, driven by the
// asymmetry between eviction granularity (2 MB VABlock) and fault
// granularity (4 KB page).
func Fig9(sc Scale) ([]*stats.Table, error) {
	fractions := []float64{1.05, 1.2, 1.35, 1.5}
	if sc.Quick {
		fractions = []float64{1.2}
	}
	t := stats.NewTable("Fig 9: oversubscribed breakdown with prefetching",
		"pattern", "oversub_pct", "total_ms", "map_us", "evict_us", "replay_us",
		"faults", "evictions", "h2d_mb", "d2h_mb")
	t.Note = "map_us merges migration and mapping, matching the figure's 'Map' category"
	q := sc.newQueue()
	for _, pattern := range []string{"regular", "random"} {
		for _, f := range fractions {
			label := fmt.Sprintf("fig9 pattern=%s oversub=%.0f%% seed=%d", pattern, pct(f), sc.Seed)
			q.add(label,
				func() (func(), error) {
					bytes := int64(f * float64(sc.GPUMemoryBytes))
					cell, err := runWorkloadCell(sc, label, sc.sysConfig(), pattern, bytes, sc.params())
					if err != nil {
						return nil, fmt.Errorf("fig9 %s %.0f%%: %w", pattern, pct(f), err)
					}
					return func() {
						bd := cell.res.Breakdown
						t.AddRow(pattern, pct(f), ms(cell.res.TotalTime),
							us(bd.Get(stats.PhaseMigrate)+bd.Get(stats.PhaseMap)),
							us(bd.Get(stats.PhaseEvict)),
							us(bd.Get(stats.PhaseReplay)),
							cell.res.Faults, cell.res.Evictions,
							mb(cell.res.BytesH2D), mb(cell.res.BytesD2H))
					}, nil
				})
		}
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// sgemmN returns the matrix dimension whose three-matrix footprint is
// frac of GPU memory.
func sgemmN(sc Scale, frac float64) int {
	return int(math.Sqrt(frac * float64(sc.GPUMemoryBytes) / 12.0))
}

// sgemmFractions is the Fig 10 / Table II size sweep relative to GPU
// memory. The paper sweeps n so the footprint crosses 100% and degrades
// sharply past ~120%; at this reduced scale the in-flight working set is
// proportionally smaller, so the same cliff appears around 170-200%
// (see EXPERIMENTS.md) and the sweep extends accordingly.
func sgemmFractions(sc Scale) []float64 {
	if sc.Quick {
		return []float64{0.9, 1.6}
	}
	return []float64{0.8, 0.95, 1.05, 1.2, 1.4, 1.7, 2.0}
}

// runSGEMM executes sgemm with the given footprint fraction and tracing
// switch, returning the cell and dimension.
func runSGEMM(sc Scale, label string, frac float64, traced bool) (*cellResult, int, error) {
	n := sgemmN(sc, frac)
	cfg := sc.sysConfig()
	if traced {
		cfg.TraceCapacity = -1
	}
	cell, err := runCell(sc, label, cfg, func(s *core.System) (*gpusim.Kernel, error) {
		return workloads.SGEMM(s, n, sc.params())
	})
	if err != nil {
		return nil, 0, err
	}
	return cell, n, nil
}

// Fig10 reproduces Figure 10: sgemm compute rate versus oversubscription.
// The rate is the algorithmic 2n^3 FLOP count over wall time; the paper's
// cliff past ~120% of GPU memory (evict-before-use) should appear.
func Fig10(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Fig 10: sgemm compute rate vs oversubscription",
		"n", "footprint_pct", "total_ms", "gflops", "faults", "evictions")
	q := sc.newQueue()
	for _, f := range sgemmFractions(sc) {
		label := fmt.Sprintf("fig10 footprint=%.0f%% seed=%d", pct(f), sc.Seed)
		q.add(label, func() (func(), error) {
			cell, n, err := runSGEMM(sc, label, f, false)
			if err != nil {
				return nil, fmt.Errorf("fig10 %.0f%%: %w", pct(f), err)
			}
			return func() {
				secs := cell.res.TotalTime.Seconds()
				gflops := 2 * math.Pow(float64(n), 3) / secs / 1e9
				t.AddRow(n, pct(f), ms(cell.res.TotalTime), gflops,
					cell.res.Faults, cell.res.Evictions)
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// Table2 reproduces Table II: sgemm fault and eviction scaling with
// problem size — faults, pages evicted (requiring migration), and
// evictions per fault.
func Table2(sc Scale) ([]*stats.Table, error) {
	t := stats.NewTable("Table II: sgemm fault scaling",
		"n", "footprint_pct", "faults", "pages_evicted", "evictions_per_fault")
	t.Note = "pages_evicted counts dirty pages explicitly migrated back to the host"
	q := sc.newQueue()
	for _, f := range sgemmFractions(sc) {
		label := fmt.Sprintf("table2 footprint=%.0f%% seed=%d", pct(f), sc.Seed)
		q.add(label, func() (func(), error) {
			cell, n, err := runSGEMM(sc, label, f, false)
			if err != nil {
				return nil, fmt.Errorf("table2 %.0f%%: %w", pct(f), err)
			}
			return func() {
				evictedPages := cell.res.Counters.Get("evicted_pages")
				perFault := 0.0
				if cell.res.Faults > 0 {
					perFault = float64(evictedPages) / float64(cell.res.Faults)
				}
				t.AddRow(n, pct(f), cell.res.Faults, evictedPages, perFault)
			}, nil
		})
	}
	if err := q.run(); err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

// Fig8 reproduces Figure 8 in summary form: sgemm at ~120% of GPU memory
// with evictions recorded at their relative time step. The scatter CSV
// comes from cmd/faulttrace; here we report the evict-then-refault
// statistic — data evicted immediately prior to being paged back in, the
// worst-case behavior the paper highlights.
func Fig8(sc Scale) ([]*stats.Table, error) {
	cell, n, err := runSGEMM(sc, fmt.Sprintf("fig8 footprint=120%% seed=%d", sc.Seed), 1.2, true)
	if err != nil {
		return nil, err
	}
	rep, err := analyze.Analyze(cell.sys.Trace(), cell.sys.Space())
	if err != nil {
		return nil, err
	}
	evicts, refaulted := rep.Evictions, rep.Bounced
	t := stats.NewTable("Fig 8: sgemm at 120% of GPU memory - evictions and re-faults",
		"n", "faults", "evictions", "evicted_blocks_refaulted", "refault_pct")
	frac := 0.0
	if evicts > 0 {
		frac = float64(refaulted) / float64(evicts)
	}
	t.AddRow(n, cell.res.Faults, cell.res.Evictions, refaulted, pct(frac))
	return []*stats.Table{t}, nil
}
