package exp

import (
	"math"
	"strconv"
	"testing"

	"uvmsim/internal/stats"
)

func quickScale() Scale {
	return Scale{GPUMemoryBytes: 24 << 20, Seed: 1, Quick: true}
}

// col returns the index of a named column.
func col(t *testing.T, tb *stats.Table, name string) int {
	t.Helper()
	for i, h := range tb.Headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tb.Headers)
	return -1
}

func cellFloat(t *testing.T, tb *stats.Table, row int, name string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col(t, tb, name)], 64)
	if err != nil {
		t.Fatalf("cell (%d,%s) = %q: %v", row, name, tb.Rows[row][col(t, tb, name)], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"abl-adapt", "abl-batch", "abl-evict", "abl-gran", "abl-mode",
		"abl-origin", "abl-policy", "abl-thresh", "fig1", "fig10", "fig3", "fig4",
		"fig5", "fig7", "fig8", "fig9", "tab1", "tab2", "val-calib", "val-full", "val-seeds"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := Run("nope", quickScale()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	sc := quickScale()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("empty table %q", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("ragged row in %q: %v", tb.Title, row)
					}
				}
			}
		})
	}
}

// Fig 1 observation (1): UVM without prefetching is far above explicit.
func TestFig1ExplicitBeatsUVM(t *testing.T) {
	tables, err := Fig1(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var explicitMs, uvmMs float64
	for i, row := range tb.Rows {
		if row[col(t, tb, "pattern")] == "regular" && row[col(t, tb, "oversub_pct")] == "25.00" {
			switch row[col(t, tb, "mode")] {
			case "explicit":
				explicitMs = cellFloat(t, tb, i, "total_ms")
			case "uvm":
				uvmMs = cellFloat(t, tb, i, "total_ms")
			}
		}
	}
	if explicitMs == 0 || uvmMs == 0 {
		t.Fatalf("rows missing:\n%s", tb)
	}
	if uvmMs < 4*explicitMs {
		t.Errorf("uvm=%.2fms explicit=%.2fms: gap too small", uvmMs, explicitMs)
	}
}

// Fig 3 observation: cost grows roughly linearly with size; random is
// slower than regular at the same size.
func TestFig3Shapes(t *testing.T) {
	sc := quickScale()
	sc.Quick = false
	sc.GPUMemoryBytes = 24 << 20
	tables, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	totals := map[string][]float64{}
	for i, row := range tb.Rows {
		p := row[col(t, tb, "pattern")]
		totals[p] = append(totals[p], cellFloat(t, tb, i, "total_ms"))
	}
	for _, p := range []string{"regular", "random"} {
		ts := totals[p]
		if len(ts) < 4 {
			t.Fatalf("%s rows = %d", p, len(ts))
		}
		if ts[len(ts)-1] < 10*ts[0] {
			t.Errorf("%s: no growth across sizes: %v", p, ts)
		}
	}
	// Largest size: random slower than regular.
	nr := len(totals["regular"])
	if totals["random"][nr-1] <= totals["regular"][nr-1] {
		t.Errorf("random (%v) not slower than regular (%v) at max size",
			totals["random"][nr-1], totals["regular"][nr-1])
	}
}

// Fig 4 observation: PMA allocation dominates service at the smallest
// size and fades at larger sizes.
func TestFig4PMADominatesSmall(t *testing.T) {
	sc := quickScale()
	sc.Quick = false
	tables, err := Fig4(sc)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	first := cellFloat(t, tb, 0, "pma_pct")
	last := cellFloat(t, tb, len(tb.Rows)-1, "pma_pct")
	if first < 30 {
		t.Errorf("PMA share at smallest size = %.1f%%, want dominant", first)
	}
	if last >= first {
		t.Errorf("PMA share should fade with size: %.1f%% -> %.1f%%", first, last)
	}
}

// Fig 5 observation: Batch policy has far lower replay cost but higher
// preprocessing than Batch-Flush at the same size.
func TestFig5PolicyTradeoff(t *testing.T) {
	sc := quickScale()
	f3, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	t3, t5 := f3[0], f5[0]
	// Compare the largest regular row of each.
	row3 := -1
	for i, row := range t3.Rows {
		if row[col(t, t3, "pattern")] == "regular" {
			row3 = i
		}
	}
	row5 := len(t5.Rows) - 1
	replay3 := cellFloat(t, t3, row3, "replay_us")
	replay5 := cellFloat(t, t5, row5, "replay_us")
	if replay5 >= replay3 {
		t.Errorf("batch policy replay %.1fus not below batchflush %.1fus", replay5, replay3)
	}
	dup3 := cellFloat(t, t3, row3, "dup_faults")
	dup5 := cellFloat(t, t5, row5, "dup_faults")
	if dup5 <= dup3 {
		t.Errorf("batch policy dups %.0f not above batchflush %.0f", dup5, dup3)
	}
}

// Table I observation: prefetching removes a large share of faults for
// every workload (the paper reports >= 64%; touch-once contiguous
// patterns cap near 50% in this model, see EXPERIMENTS.md).
func TestTable1Reduction(t *testing.T) {
	tables, err := Table1(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for i, row := range tb.Rows {
		red := cellFloat(t, tb, i, "reduction_pct")
		if red < 30 {
			t.Errorf("%s reduction = %.1f%%, want >= 30%%", row[0], red)
		}
	}
}

// Fig 7 observation: regular faults form a diagonal band (order strongly
// correlated with page index) while random faults scatter.
func TestFig7Correlation(t *testing.T) {
	tables, err := Fig7(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	vals := map[string]float64{}
	for i, row := range tb.Rows {
		vals[row[0]] = cellFloat(t, tb, i, "order_page_corr")
	}
	if vals["regular"] < 0.5 {
		t.Errorf("regular correlation = %.3f, want >= 0.5", vals["regular"])
	}
	if math.Abs(vals["random"]) > 0.3 {
		t.Errorf("random correlation = %.3f, want near 0", vals["random"])
	}
	if vals["regular"] < 2*math.Abs(vals["random"]) {
		t.Errorf("patterns not separated: regular=%.3f random=%.3f",
			vals["regular"], vals["random"])
	}
}

// Fig 8 observation: a meaningful share of evictions at 120% are followed
// by re-faults on the same block (evict-before-use).
func TestFig8EvictRefault(t *testing.T) {
	tables, err := Fig8(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if cellFloat(t, tb, 0, "evictions") == 0 {
		t.Fatal("no evictions at 120%")
	}
	if cellFloat(t, tb, 0, "refault_pct") <= 0 {
		t.Error("no evict-then-refault events recorded")
	}
}

// Fig 9 observation: random is much slower than regular when
// oversubscribed with prefetching.
func TestFig9PatternGap(t *testing.T) {
	tables, err := Fig9(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var reg, rnd float64
	for i, row := range tb.Rows {
		switch row[col(t, tb, "pattern")] {
		case "regular":
			reg = cellFloat(t, tb, i, "total_ms")
		case "random":
			rnd = cellFloat(t, tb, i, "total_ms")
		}
	}
	if rnd < 2*reg {
		t.Errorf("random=%.2fms regular=%.2fms: oversubscription gap too small", rnd, reg)
	}
}

// Fig 10 observation: compute rate collapses once the footprint crosses
// ~120% of GPU memory.
func TestFig10Cliff(t *testing.T) {
	tables, err := Fig10(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	in := cellFloat(t, tb, 0, "gflops")
	over := cellFloat(t, tb, len(tb.Rows)-1, "gflops")
	if over >= in {
		t.Errorf("gflops did not degrade: %.2f -> %.2f", in, over)
	}
}

// Table II observation: evictions per fault grows with problem size.
func TestTable2Monotone(t *testing.T) {
	tables, err := Table2(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	first := cellFloat(t, tb, 0, "evictions_per_fault")
	last := cellFloat(t, tb, len(tb.Rows)-1, "evictions_per_fault")
	if first != 0 {
		t.Errorf("undersubscribed sgemm has evictions per fault %.3f", first)
	}
	if last <= first {
		t.Errorf("evictions per fault did not grow: %.3f -> %.3f", first, last)
	}
}

// Threshold ablation: the aggressive 1% threshold beats the 51% default
// for undersubscribed regular access (§IV-C).
func TestAblationThresholdAggressiveWins(t *testing.T) {
	tables, err := AblationThreshold(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var t1, t51 float64
	for i, row := range tb.Rows {
		if row[col(t, tb, "workload")] != "regular" {
			continue
		}
		switch row[col(t, tb, "threshold")] {
		case "1":
			t1 = cellFloat(t, tb, i, "total_ms")
		case "51":
			t51 = cellFloat(t, tb, i, "total_ms")
		}
	}
	if t1 >= t51 {
		t.Errorf("threshold 1 (%.2fms) not faster than 51 (%.2fms)", t1, t51)
	}
}

// Adaptive ablation: under memory pressure the adaptive prefetcher stops
// prefetching, so it must move less H2D data than static density (the
// paper's wasted-prefetch-traffic argument, §V/§VI-B); undersubscribed it
// behaves aggressively and eliminates more faults than the default.
func TestAblationAdaptiveProperties(t *testing.T) {
	tables, err := AblationAdaptive(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	get := func(footprint, prefetcher, column string) float64 {
		for i, row := range tb.Rows {
			if row[col(t, tb, "pattern")] == "random" &&
				row[col(t, tb, "footprint_pct")] == footprint &&
				row[col(t, tb, "prefetcher")] == prefetcher {
				return cellFloat(t, tb, i, column)
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", footprint, prefetcher, tb)
		return 0
	}
	// Oversubscribed: adaptive moves less data than static density.
	dH2D := get("125.00", "density", "h2d_mb")
	aH2D := get("125.00", "adaptive", "h2d_mb")
	if aH2D >= dH2D {
		t.Errorf("adaptive H2D %.1fMB not below density %.1fMB oversubscribed", aH2D, dH2D)
	}
	// Undersubscribed: adaptive (aggressive) eliminates more faults.
	dF := get("50.00", "density", "faults")
	aF := get("50.00", "adaptive", "faults")
	if aF > dF {
		t.Errorf("adaptive faults %.0f above density %.0f undersubscribed", aF, dF)
	}
}

// Access-mode ablation: remote mapping never faults or migrates, and
// wins over thrashing migration for oversubscribed random access.
func TestAblationAccessMode(t *testing.T) {
	tables, err := AblationAccessMode(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	get := func(footprint, mode, column string) float64 {
		for i, row := range tb.Rows {
			if row[col(t, tb, "footprint_pct")] == footprint && row[col(t, tb, "mode")] == mode {
				return cellFloat(t, tb, i, column)
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", footprint, mode, tb)
		return 0
	}
	if get("125.00", "remote-map", "faults") != 0 {
		t.Error("remote mapping faulted")
	}
	if get("125.00", "remote-map", "h2d_mb") != 0 {
		t.Error("remote mapping migrated data")
	}
	if get("125.00", "remote-map", "total_ms") >= get("125.00", "migrate", "total_ms") {
		t.Error("remote mapping not faster than thrashing migration")
	}
	// The touch kernels write their pages, which breaks duplication, so
	// read-dup degrades to migrate-like behavior (no extra write-back).
	// The zero-write-back property is asserted in core's
	// TestReadDupEvictionSkipsWriteback with a read-only kernel.
	if get("125.00", "read-dup", "d2h_mb") > get("125.00", "migrate", "d2h_mb")*1.01 {
		t.Error("read duplication wrote back more than migration")
	}
}

// Fault-origin ablation: without origin info the stream prefetcher
// degrades to demand paging; with it, it eliminates faults on streaming
// patterns.
func TestAblationFaultOrigin(t *testing.T) {
	tables, err := AblationFaultOrigin(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	get := func(pf, origin, column string) float64 {
		for i, row := range tb.Rows {
			if row[col(t, tb, "prefetcher")] == pf && row[col(t, tb, "origin_info")] == origin {
				return cellFloat(t, tb, i, column)
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", pf, origin, tb)
		return 0
	}
	erased := get("stream", "false", "prefetched_pages")
	if erased != 0 {
		t.Errorf("source-erased stream prefetcher prefetched %v pages", erased)
	}
	withInfo := get("stream", "true", "prefetched_pages")
	if withInfo == 0 {
		t.Error("origin-informed stream prefetcher prefetched nothing")
	}
	if get("stream", "true", "faults") >= get("stream", "false", "faults") {
		t.Error("origin info did not reduce faults")
	}
}

// Schema stability: the column layout of every experiment table is part
// of the tool contract (CSV/JSON consumers depend on it).
func TestExperimentTableSchemas(t *testing.T) {
	want := map[string][]string{
		"fig1":  {"pattern", "size_mb", "oversub_pct", "mode", "total_ms", "us_per_page", "faults", "evictions"},
		"fig3":  {"pattern", "size_mb", "total_ms", "preprocess_us", "service_us", "replay_us", "faults", "dup_faults"},
		"fig4":  {"size_kb", "service_us", "pma_alloc_us", "migrate_us", "map_us", "pma_pct", "migrate_pct", "map_pct"},
		"fig7":  {"workload", "ranges", "pages", "faults", "order_page_corr", "coverage_pct"},
		"fig9":  {"pattern", "oversub_pct", "total_ms", "map_us", "evict_us", "replay_us", "faults", "evictions", "h2d_mb", "d2h_mb"},
		"fig10": {"n", "footprint_pct", "total_ms", "gflops", "faults", "evictions"},
		"tab1":  {"workload", "total_faults", "faults_w_prefetch", "reduction_pct"},
		"tab2":  {"n", "footprint_pct", "faults", "pages_evicted", "evictions_per_fault"},
	}
	sc := quickScale()
	for id, cols := range want {
		tables, err := Run(id, sc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got := tables[0].Headers
		if len(got) != len(cols) {
			t.Errorf("%s headers = %v, want %v", id, got, cols)
			continue
		}
		for i := range cols {
			if got[i] != cols[i] {
				t.Errorf("%s header[%d] = %q, want %q", id, i, got[i], cols[i])
			}
		}
	}
}

// Seed stability: the variation across seeds must be small relative to
// the effect sizes the reproduction claims (orders of magnitude).
func TestSeedStabilitySmallRSD(t *testing.T) {
	tables, err := SeedStability(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for i, row := range tb.Rows {
		if rsd := cellFloat(t, tb, i, "time_rsd_pct"); rsd > 20 {
			t.Errorf("%s time RSD = %.1f%%, want < 20%%", row[0], rsd)
		}
	}
}

// Every calibration anchor must hold at the default scale.
func TestCalibrationAnchorsAllPass(t *testing.T) {
	sc := DefaultScale()
	tables, err := CalibrationAnchors(sc)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		if row[col(t, tb, "ok")] != "true" {
			t.Errorf("anchor %q failed: measured %s (band %s)",
				row[0], row[col(t, tb, "measured")], row[col(t, tb, "band")])
		}
	}
}
