package analyze

import (
	"math"
	"strings"
	"testing"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/trace"
)

func buildSpace(t *testing.T) *mem.AddressSpace {
	t.Helper()
	s := mem.NewAddressSpace(mem.DefaultGeometry())
	if _, err := s.Alloc(4<<20, "A"); err != nil { // 1024 pages, 2 blocks
		t.Fatal(err)
	}
	if _, err := s.Alloc(2<<20, "B"); err != nil { // 512 pages, 1 block
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeSequentialTrace(t *testing.T) {
	s := buildSpace(t)
	rec := trace.New()
	for i := 0; i < 1024; i++ {
		rec.Record(sim.Time(i*1000), trace.KindFault, mem.PageID(i), mem.VABlockID(i/512), 0)
	}
	r, err := Analyze(rec, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 1024 || r.Evictions != 0 {
		t.Errorf("faults=%d evictions=%d", r.Faults, r.Evictions)
	}
	if r.OrderPageCorrelation < 0.999 {
		t.Errorf("sequential correlation = %v, want ~1", r.OrderPageCorrelation)
	}
	// Coverage: 1024 of 1536 allocated pages.
	if math.Abs(r.CoverageFraction-1024.0/1536) > 1e-9 {
		t.Errorf("coverage = %v", r.CoverageFraction)
	}
	if r.MeanInterFaultDistance > 0.001 {
		t.Errorf("sequential inter-fault distance = %v, want tiny", r.MeanInterFaultDistance)
	}
	if r.BlockFaults.Count() != 2 || r.BlockFaults.Mean() != 512 {
		t.Errorf("block fault histogram: %v", r.BlockFaults.String())
	}
}

func TestAnalyzeRandomTrace(t *testing.T) {
	s := buildSpace(t)
	rec := trace.New()
	rng := sim.NewRNG(3)
	for i := 0; i < 2000; i++ {
		pg := mem.PageID(rng.Intn(1024))
		rec.Record(sim.Time(i), trace.KindFault, pg, mem.VABlockID(uint64(pg)/512), 0)
	}
	r, err := Analyze(rec, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.OrderPageCorrelation) > 0.1 {
		t.Errorf("random correlation = %v, want ~0", r.OrderPageCorrelation)
	}
	// Uniform random inter-fault distance over [0,1024) spans ~1/3 of the
	// 1536-page footprint-normalized space -> ~0.22.
	if r.MeanInterFaultDistance < 0.1 {
		t.Errorf("random inter-fault distance = %v, want large", r.MeanInterFaultDistance)
	}
}

func TestAnalyzeLifecycleAndBounce(t *testing.T) {
	s := buildSpace(t)
	rec := trace.New()
	// Block 0: serviced at t=0, evicted at t=1000, refaults at t=1200
	// (bounce gap 200), evicted again at t=5000.
	rec.Record(0, trace.KindFault, 0, 0, 0)
	rec.Record(1000, trace.KindEvict, 0, 0, 0)
	rec.Record(1200, trace.KindFault, 1, 0, 0)
	rec.Record(5000, trace.KindEvict, 0, 0, 0)
	// Block 2 (range B): prefetch only.
	rec.Record(50, trace.KindPrefetch, 1024, 2, 1)
	r, err := Analyze(rec, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bounced != 1 {
		t.Errorf("bounced = %d, want 1", r.Bounced)
	}
	if r.BounceGap.Count() != 1 || r.BounceGap.Sum() != 200 {
		t.Errorf("bounce gap: %v", r.BounceGap.String())
	}
	if r.ResidencyLifetime.Count() != 2 {
		t.Errorf("lifetimes = %d, want 2", r.ResidencyLifetime.Count())
	}
	// First residency 0->1000, second 1200->5000.
	if r.ResidencyLifetime.Sum() != 1000+3800 {
		t.Errorf("lifetime sum = %v", r.ResidencyLifetime.Sum())
	}
	if r.PrefetchShare <= 0 {
		t.Error("prefetch share missing")
	}
	if r.PerRange[1].Prefetches != 1 {
		t.Errorf("per-range prefetches = %+v", r.PerRange)
	}
}

func TestAnalyzeNilRecorder(t *testing.T) {
	if _, err := Analyze(nil, buildSpace(t)); err == nil {
		t.Error("nil recorder accepted")
	}
}

func TestHotBlocks(t *testing.T) {
	rec := trace.New()
	for i := 0; i < 10; i++ {
		rec.Record(0, trace.KindFault, 0, 7, 0)
	}
	for i := 0; i < 5; i++ {
		rec.Record(0, trace.KindFault, 600, 1, 0)
	}
	rec.Record(0, trace.KindFault, 1100, 2, 0)
	hot := HotBlocks(rec, 2)
	if len(hot) != 2 || hot[0].Block != 7 || hot[0].Faults != 10 || hot[1].Block != 1 {
		t.Errorf("hot = %+v", hot)
	}
}

func TestPearson(t *testing.T) {
	if p := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(p+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", p)
	}
	if p := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); p != 0 {
		t.Errorf("degenerate = %v", p)
	}
	if p := Pearson(nil, nil); p != 0 {
		t.Errorf("empty = %v", p)
	}
}

func TestReportTables(t *testing.T) {
	s := buildSpace(t)
	rec := trace.New()
	rec.Record(0, trace.KindFault, 0, 0, 0)
	rec.Record(10, trace.KindEvict, 0, 0, 0)
	rec.Record(20, trace.KindFault, 0, 0, 0)
	r, err := Analyze(rec, s)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Table("t").String()
	for _, want := range []string{"faults", "bounced_evictions", "residency_lifetime_p50", "bounce_gap_p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	rt := r.RangeTable().String()
	if !strings.Contains(rt, "A") || !strings.Contains(rt, "B") {
		t.Errorf("range table:\n%s", rt)
	}
}
