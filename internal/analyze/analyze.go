// Package analyze post-processes fault traces into the derived metrics
// the paper's workload analysis is built on (§IV-B, §V): fault-order
// locality, per-VABlock fault densities, block residency lifetimes, and
// evict-refault bounce statistics. It is the reusable core behind
// cmd/uvmreport and the Fig. 7/8 experiment summaries.
package analyze

import (
	"fmt"
	"math"
	"sort"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/trace"
)

// Report is the full analysis of one trace.
type Report struct {
	// Faults, Prefetches, Evictions are event totals.
	Faults, Prefetches, Evictions int

	// OrderPageCorrelation is the Pearson correlation between fault
	// occurrence order and gap-free page index: ~1 for streaming
	// patterns, ~0 for uniform random (the Fig. 7 signal).
	OrderPageCorrelation float64

	// MeanInterFaultDistance is the mean |Δ page index| between
	// consecutively processed faults, normalized by the footprint.
	MeanInterFaultDistance float64

	// CoverageFraction is the fraction of allocated pages that faulted
	// at least once.
	CoverageFraction float64

	// PrefetchShare is prefetched / (faulted + prefetched) migrations.
	PrefetchShare float64

	// BlockFaults is the distribution of fault counts per VABlock.
	BlockFaults stats.Histogram

	// ResidencyLifetime is the distribution of service-to-eviction
	// durations per block (how long migrated data survived).
	ResidencyLifetime stats.Histogram

	// BounceGap is the distribution of evict-to-refault durations for
	// blocks that came back (the paper's evict-before-use signal).
	BounceGap stats.Histogram

	// Bounced is how many evictions were later refaulted.
	Bounced int

	// PerRange summarizes activity per allocation.
	PerRange []RangeSummary
}

// RangeSummary is the per-allocation activity slice of a Report.
type RangeSummary struct {
	Label      string
	Pages      int
	Faults     int
	Prefetches int
	Evictions  int
}

// Analyze computes a Report from a recorder and the address space it was
// recorded against.
func Analyze(rec *trace.Recorder, space *mem.AddressSpace) (*Report, error) {
	if rec == nil {
		return nil, fmt.Errorf("analyze: no trace recorded (enable Config.TraceCapacity)")
	}
	comp := trace.NewCompressor(space)
	r := &Report{}
	ranges := space.Ranges()
	perRange := make([]RangeSummary, len(ranges))
	for i, rg := range ranges {
		perRange[i] = RangeSummary{Label: rg.Label, Pages: rg.Pages}
	}

	var xs, ys []float64
	seen := make(map[int]bool)
	blockFaults := make(map[mem.VABlockID]int)
	firstService := make(map[mem.VABlockID]sim.Time)
	lastEvict := make(map[mem.VABlockID]sim.Time)
	prev := -1
	var distSum float64
	var distN int

	for _, e := range rec.Events() {
		ri := int(e.Range)
		switch e.Kind {
		case trace.KindFault:
			r.Faults++
			if ri >= 0 && ri < len(perRange) {
				perRange[ri].Faults++
			}
			blockFaults[e.Block]++
			if _, ok := firstService[e.Block]; !ok {
				firstService[e.Block] = e.At
			}
			if at, ok := lastEvict[e.Block]; ok {
				r.Bounced++
				r.BounceGap.Observe(e.At.Sub(at))
				delete(lastEvict, e.Block)
				firstService[e.Block] = e.At // new residency period
			}
			idx := comp.Index(e.Page)
			if idx < 0 {
				continue
			}
			seen[idx] = true
			xs = append(xs, float64(len(xs)))
			ys = append(ys, float64(idx))
			if prev >= 0 {
				distSum += math.Abs(float64(idx - prev))
				distN++
			}
			prev = idx
		case trace.KindPrefetch:
			r.Prefetches++
			if ri >= 0 && ri < len(perRange) {
				perRange[ri].Prefetches++
			}
		case trace.KindEvict:
			r.Evictions++
			if ri >= 0 && ri < len(perRange) {
				perRange[ri].Evictions++
			}
			if at, ok := firstService[e.Block]; ok {
				r.ResidencyLifetime.Observe(e.At.Sub(at))
				delete(firstService, e.Block)
			}
			lastEvict[e.Block] = e.At
		}
	}

	r.OrderPageCorrelation = Pearson(xs, ys)
	if distN > 0 && comp.Total() > 0 {
		r.MeanInterFaultDistance = distSum / float64(distN) / float64(comp.Total())
	}
	if comp.Total() > 0 {
		r.CoverageFraction = float64(len(seen)) / float64(comp.Total())
	}
	if tot := r.Faults + r.Prefetches; tot > 0 {
		r.PrefetchShare = float64(r.Prefetches) / float64(tot)
	}
	for _, n := range blockFaults {
		r.BlockFaults.Observe(sim.Duration(n))
	}
	r.PerRange = perRange
	return r, nil
}

// Pearson computes the Pearson correlation coefficient of two
// equal-length series (0 when degenerate).
func Pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 || len(xs) != len(ys) {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// HotBlocks returns the n most-faulted VABlocks in the trace with their
// fault counts, most-faulted first.
func HotBlocks(rec *trace.Recorder, n int) []struct {
	Block  mem.VABlockID
	Faults int
} {
	counts := make(map[mem.VABlockID]int)
	for _, e := range rec.Events() {
		if e.Kind == trace.KindFault {
			counts[e.Block]++
		}
	}
	type bc struct {
		Block  mem.VABlockID
		Faults int
	}
	out := make([]bc, 0, len(counts))
	for b, c := range counts {
		out = append(out, bc{b, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		return out[i].Block < out[j].Block
	})
	if n < len(out) {
		out = out[:n]
	}
	res := make([]struct {
		Block  mem.VABlockID
		Faults int
	}, len(out))
	for i, v := range out {
		res[i] = struct {
			Block  mem.VABlockID
			Faults int
		}{v.Block, v.Faults}
	}
	return res
}

// Table renders the report as a two-column summary table.
func (r *Report) Table(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "value")
	t.AddRow("faults", r.Faults)
	t.AddRow("prefetched_pages", r.Prefetches)
	t.AddRow("evictions", r.Evictions)
	t.AddRow("order_page_correlation", r.OrderPageCorrelation)
	t.AddRow("mean_interfault_distance", r.MeanInterFaultDistance)
	t.AddRow("coverage_pct", 100*r.CoverageFraction)
	t.AddRow("prefetch_share_pct", 100*r.PrefetchShare)
	t.AddRow("bounced_evictions", r.Bounced)
	if r.ResidencyLifetime.Count() > 0 {
		t.AddRow("residency_lifetime_p50", r.ResidencyLifetime.Quantile(0.5).String())
		t.AddRow("residency_lifetime_p99", r.ResidencyLifetime.Quantile(0.99).String())
	}
	if r.BounceGap.Count() > 0 {
		t.AddRow("bounce_gap_p50", r.BounceGap.Quantile(0.5).String())
	}
	return t
}

// RangeTable renders per-allocation activity.
func (r *Report) RangeTable() *stats.Table {
	t := stats.NewTable("per-range activity", "range", "pages", "faults", "prefetched", "evictions")
	for _, rs := range r.PerRange {
		t.AddRow(rs.Label, rs.Pages, rs.Faults, rs.Prefetches, rs.Evictions)
	}
	return t
}
