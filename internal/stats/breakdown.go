// Package stats provides the instrumentation primitives the simulated
// driver uses to attribute time to the same categories the paper reports:
// pre/post-processing, fault servicing (split into PMA allocation,
// migration, and mapping), and replay policy.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"uvmsim/internal/sim"
)

// Phase identifies a driver cost category from the paper's figures.
type Phase int

// Driver phases, ordered as the paper's breakdown stacks them.
const (
	// PhasePreprocess covers fetching fault pointers/entries from the GPU,
	// ready-polling, bookkeeping, and VABlock binning/sorting (Fig. 3
	// "pre/post-processing").
	PhasePreprocess Phase = iota
	// PhasePMAAlloc is the call into the (proprietary) physical memory
	// allocator, including over-allocation (Fig. 4 "PMA Alloc Pages").
	PhasePMAAlloc
	// PhaseMigrate covers staging, zeroing, and DMA of page data
	// (Fig. 4 "Migrate Pages").
	PhaseMigrate
	// PhaseMap covers page-table updates and memory barriers (Fig. 4
	// "Map Pages").
	PhaseMap
	// PhaseReplay is the fault-replay policy cost: buffer flushes and
	// replay notifications (Fig. 3 "replay policy").
	PhaseReplay
	// PhaseEvict is time spent selecting victims, writing back dirty
	// pages, and restarting the faulting path (§V-A direct costs).
	PhaseEvict
	numPhases
)

var phaseNames = [...]string{
	"preprocess",
	"pma_alloc",
	"migrate",
	"map",
	"replay",
	"evict",
}

// String returns the snake_case phase name used in table headers.
func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Phases lists all phases in display order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Breakdown accumulates simulated time per phase. The zero value is ready
// to use.
type Breakdown struct {
	dur [numPhases]sim.Duration
}

// Add charges d to phase p.
func (b *Breakdown) Add(p Phase, d sim.Duration) { b.dur[p] += d }

// Get returns the accumulated time for phase p.
func (b *Breakdown) Get(p Phase) sim.Duration { return b.dur[p] }

// Total returns the sum across all phases (total time inside the driver).
func (b *Breakdown) Total() sim.Duration {
	var t sim.Duration
	for _, d := range b.dur {
		t += d
	}
	return t
}

// Service returns the fault-servicing subtotal (PMA + migrate + map), the
// paper's "service" category.
func (b *Breakdown) Service() sim.Duration {
	return b.dur[PhasePMAAlloc] + b.dur[PhaseMigrate] + b.dur[PhaseMap]
}

// Merge adds other's accumulations into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.dur {
		b.dur[i] += other.dur[i]
	}
}

// Fraction returns phase p's share of the total, or 0 for an empty
// breakdown.
func (b *Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.dur[p]) / float64(t)
}

// String renders a compact single-line summary.
func (b *Breakdown) String() string {
	parts := make([]string, 0, numPhases)
	for _, p := range Phases() {
		if b.dur[p] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", p, b.dur[p]))
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// CounterSet holds named counters (faults, replays, evictions, ...).
type CounterSet struct {
	m map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{m: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (c *CounterSet) Inc(name string, delta uint64) { c.m[name] += delta }

// Set overwrites the named counter with an absolute value. It mirrors
// cumulative counts maintained by another component (e.g. the fault
// buffer's drop tally) into the set; callers must keep the mirrored
// value monotonic so run deltas stay meaningful.
func (c *CounterSet) Set(name string, v uint64) { c.m[name] = v }

// Get returns the named counter value (0 when absent).
func (c *CounterSet) Get(name string) uint64 { return c.m[name] }

// Merge adds other's counters into c.
func (c *CounterSet) Merge(other *CounterSet) {
	for k, v := range other.m {
		c.m[k] += v
	}
}

// Sorted returns counters ordered by name for stable output.
func (c *CounterSet) Sorted() []Counter {
	out := make([]Counter, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, Counter{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
