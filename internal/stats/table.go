package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned results table used by the experiment
// harness to print the paper's tables and figure series. The JSON tags
// fix the serving layer's wire shape: cached response bodies must stay
// byte-identical across builds, so field names are part of the API.
type Table struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	t.Rows = append(t.Rows, RenderCells(cells...))
}

// RenderCells renders heterogeneous cells to the strings AddRow would
// store, so callers (the sweep journal) can persist a row and replay it
// byte-for-byte later.
func RenderCells(cells ...interface{}) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	return row
}

// AddRenderedRow appends a row whose cells are already rendered strings.
// The sweep journal stores rendered rows, so replaying a journal on
// resume reconstructs the table byte-for-byte.
func (t *Table) AddRenderedRow(cells []string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# " + t.Title + "\n")
	}
	if t.Note != "" {
		sb.WriteString("# " + t.Note + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(width) {
				pad = width[i] - len(cell)
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range width {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells containing
// commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.WriteText(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}
