package stats

import (
	"fmt"
	"math"
	"sort"

	"uvmsim/internal/sim"
)

// Histogram is a log2-bucketed latency histogram for simulated durations.
// The zero value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
}

func bucketOf(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	b := 64 - leadingZeros(uint64(d))
	if b > 63 {
		b = 63
	}
	return b
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Duration) {
	h.buckets[bucketOf(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// NumBuckets is the number of log2 buckets a Histogram holds.
const NumBuckets = 64

// BucketCount returns the observation count in bucket b (0 <= b <
// NumBuckets). Bucket 0 holds non-positive observations; bucket b >= 1
// holds observations d with 2^(b-1) <= d < 2^b.
func (h *Histogram) BucketCount(b int) uint64 {
	if b < 0 || b >= NumBuckets {
		return 0
	}
	return h.buckets[b]
}

// BucketUpper returns bucket b's exclusive upper edge — the same edge
// Quantile reports — as a duration: 0 for bucket 0, 2^b otherwise.
// Exposing edges lets exporters render true cumulative histograms
// without reaching into the bucket layout.
func (h *Histogram) BucketUpper(b int) sim.Duration {
	if b <= 0 {
		return 0
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return sim.Duration(uint64(1) << uint(b))
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(int64(h.sum) / int64(h.count))
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() sim.Duration { return h.max }

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// using bucket upper edges.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen >= target {
			if b == 0 {
				return 0
			}
			return sim.Duration(uint64(1) << uint(b)) // bucket upper edge
		}
	}
	return h.max
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Series is a named (x, y) series used to regenerate the paper's figures
// as data rather than plots.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// SortByX orders points by ascending x.
func (s *Series) SortByX() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	nx := make([]float64, len(s.X))
	ny := make([]float64, len(s.Y))
	for i, j := range idx {
		nx[i], ny[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = nx, ny
}
