package stats

import "testing"

func TestCounterSetSet(t *testing.T) {
	c := NewCounterSet()
	c.Set("faultbuf_drops", 7)
	if c.Get("faultbuf_drops") != 7 {
		t.Errorf("Get = %d, want 7", c.Get("faultbuf_drops"))
	}
	// Set overwrites: mirroring a cumulative source counter.
	c.Set("faultbuf_drops", 12)
	if c.Get("faultbuf_drops") != 12 {
		t.Errorf("Get after overwrite = %d, want 12", c.Get("faultbuf_drops"))
	}
	// Inc composes with Set on the same key.
	c.Inc("faultbuf_drops", 3)
	if c.Get("faultbuf_drops") != 15 {
		t.Errorf("Get after Inc = %d, want 15", c.Get("faultbuf_drops"))
	}
}
