package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"uvmsim/internal/sim"
)

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(PhasePreprocess, 100)
	b.Add(PhasePMAAlloc, 200)
	b.Add(PhaseMigrate, 300)
	b.Add(PhaseMap, 50)
	b.Add(PhaseReplay, 25)
	if b.Total() != 675 {
		t.Errorf("Total = %v", b.Total())
	}
	if b.Service() != 550 {
		t.Errorf("Service = %v", b.Service())
	}
	if b.Get(PhaseMigrate) != 300 {
		t.Errorf("Get(migrate) = %v", b.Get(PhaseMigrate))
	}
}

func TestBreakdownMergeAndFraction(t *testing.T) {
	var a, b Breakdown
	a.Add(PhaseMap, 100)
	b.Add(PhaseMap, 100)
	b.Add(PhaseReplay, 200)
	a.Merge(&b)
	if a.Get(PhaseMap) != 200 || a.Get(PhaseReplay) != 200 {
		t.Error("Merge wrong")
	}
	if f := a.Fraction(PhaseMap); f != 0.5 {
		t.Errorf("Fraction = %v", f)
	}
	var empty Breakdown
	if empty.Fraction(PhaseMap) != 0 {
		t.Error("empty Fraction should be 0")
	}
}

func TestBreakdownMergeProperty(t *testing.T) {
	f := func(xs, ys [6]uint32) bool {
		var a, b Breakdown
		for i := 0; i < 6; i++ {
			a.Add(Phase(i), sim.Duration(xs[i]))
			b.Add(Phase(i), sim.Duration(ys[i]))
		}
		want := a.Total() + b.Total()
		a.Merge(&b)
		return a.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePreprocess.String() != "preprocess" || PhaseReplay.String() != "replay" {
		t.Error("phase names wrong")
	}
	if !strings.Contains(Phase(99).String(), "99") {
		t.Error("out-of-range phase name")
	}
	if len(Phases()) != int(numPhases) {
		t.Error("Phases() length wrong")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	if b.String() != "empty" {
		t.Error("empty breakdown string")
	}
	b.Add(PhaseMap, 3*sim.Microsecond)
	if !strings.Contains(b.String(), "map=3.00us") {
		t.Errorf("String = %q", b.String())
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("faults", 10)
	c.Inc("faults", 5)
	c.Inc("evictions", 1)
	if c.Get("faults") != 15 || c.Get("missing") != 0 {
		t.Error("counter values wrong")
	}
	d := NewCounterSet()
	d.Inc("faults", 1)
	c.Merge(d)
	if c.Get("faults") != 16 {
		t.Error("Merge wrong")
	}
	sorted := c.Sorted()
	if len(sorted) != 2 || sorted[0].Name != "evictions" || sorted[1].Name != "faults" {
		t.Errorf("Sorted = %v", sorted)
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "size", "time")
	tb.Note = "a note"
	tb.AddRow(1024, 3.14159)
	tb.AddRow("big", 12345.6)
	out := tb.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "# a note") {
		t.Errorf("missing title/note:\n%s", out)
	}
	if !strings.Contains(out, "size") || !strings.Contains(out, "3.1416") {
		t.Errorf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "12346") {
		t.Errorf("large float formatting:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has,comma"`) || !strings.Contains(out, `"has""quote"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram stats nonzero")
	}
	for _, d := range []sim.Duration{10, 20, 30, 40} {
		h.Observe(d)
	}
	if h.Count() != 4 || h.Sum() != 100 || h.Mean() != 25 {
		t.Errorf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	var h Histogram
	r := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		h.Observe(sim.Duration(r.Intn(1_000_000)))
	}
	last := sim.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotonic at q=%v: %v < %v", q, v, last)
		}
		last = v
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	b.Observe(100)
	b.Observe(1)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 1 || a.Max() != 100 || a.Sum() != 106 {
		t.Errorf("merged = %v", a.String())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 3 {
		t.Error("merging empty changed count")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(3, 30)
	s.Append(1, 10)
	s.Append(2, 20)
	s.SortByX()
	if s.Len() != 3 {
		t.Fatal("Len wrong")
	}
	for i, want := range []float64{1, 2, 3} {
		if s.X[i] != want || s.Y[i] != want*10 {
			t.Fatalf("SortByX wrong: %+v", s)
		}
	}
}
