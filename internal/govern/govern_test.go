package govern

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"uvmsim/internal/parallel"
	"uvmsim/internal/sim"
)

func TestStatusOfClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want State
	}{
		{"nil", nil, StateCompleted},
		{"cancel", &sim.StopError{Reason: sim.StopCancelled}, StateCancelled},
		{"livelock", &sim.StopError{Reason: sim.StopLivelock}, StateLivelock},
		{"sim budget", &sim.StopError{Reason: sim.StopSimBudget}, StateDeadline},
		{"event budget", &sim.StopError{Reason: sim.StopEventBudget}, StateDeadline},
		{"wrapped stop", fmt.Errorf("cell x: %w", &sim.StopError{Reason: sim.StopLivelock}), StateLivelock},
		{"panic", &parallel.PanicError{Index: 3, Value: "boom"}, StatePanicked},
		{"ctx cancel", context.Canceled, StateCancelled},
		{"ctx deadline", context.DeadlineExceeded, StateCancelled},
		{"plain", errors.New("disk full"), StateFailed},
	}
	for _, tc := range cases {
		st := StatusOf(tc.err)
		if st.State != tc.want {
			t.Errorf("%s: StatusOf = %v, want %v", tc.name, st.State, tc.want)
		}
		if tc.err != nil && st.Err == "" {
			t.Errorf("%s: error message lost", tc.name)
		}
	}
}

func TestRetryable(t *testing.T) {
	for _, s := range []State{StatePanicked, StateFailed} {
		if !s.Retryable() {
			t.Errorf("%v must be retryable", s)
		}
	}
	for _, s := range []State{StateCompleted, StateCancelled, StateDeadline, StateLivelock} {
		if s.Retryable() {
			t.Errorf("%v must not be retryable", s)
		}
	}
}

func TestExitCodes(t *testing.T) {
	cases := map[State]int{
		StateCompleted: 0,
		StateCancelled: 130,
		StateDeadline:  3,
		StateLivelock:  3,
		StatePanicked:  1,
		StateFailed:    1,
	}
	for s, want := range cases {
		if got := ExitCode(s); got != want {
			t.Errorf("ExitCode(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[State]int{
		StateCompleted: 200,
		StateCancelled: 503,
		StateDeadline:  422,
		StateLivelock:  422,
		StatePanicked:  500,
		StateFailed:    500,
	}
	for s, want := range cases {
		if got := HTTPStatus(s); got != want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestStateCodesDistinct(t *testing.T) {
	seen := map[uint64]State{}
	for _, s := range []State{StateCompleted, StateCancelled, StateDeadline, StateLivelock, StatePanicked, StateFailed} {
		if prev, ok := seen[s.Code()]; ok {
			t.Errorf("states %v and %v share code %d", prev, s, s.Code())
		}
		seen[s.Code()] = s
	}
}

func TestWatchContextSetsFlagOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := WatchContext(ctx)
	if c.Cancelled() {
		t.Fatal("flag set before cancellation")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Cancelled() {
		if time.Now().After(deadline) {
			t.Fatal("flag never set after context cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatchContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !WatchContext(ctx).Cancelled() {
		t.Fatal("flag not set for already-cancelled context")
	}
}

func TestWatchContextNilAndBackground(t *testing.T) {
	if WatchContext(nil).Cancelled() {
		t.Fatal("nil context flag fired")
	}
	if WatchContext(context.Background()).Cancelled() {
		t.Fatal("background context flag fired")
	}
}
