package govern

import (
	"context"
	"flag"
	"os/signal"
	"syscall"
	"time"

	"uvmsim/internal/sim"
)

// Flags is the standard run-governance flag set shared by every CLI:
// one host wall-clock deadline for the whole invocation, plus the three
// deterministic per-run budgets.
type Flags struct {
	// Deadline bounds the whole invocation on the host clock; 0 is
	// unlimited. Exceeding it behaves exactly like SIGINT: in-flight
	// cells drain, partial artifacts flush, the process exits 130.
	Deadline time.Duration
	// SimBudget bounds each run's simulated clock; 0 is unlimited.
	SimBudget time.Duration
	// MaxEvents bounds each run's dispatched event count; 0 is unlimited.
	MaxEvents uint64
	// LivelockEvents is the no-forward-progress window in events; 0
	// disables the livelock detector.
	LivelockEvents uint64
}

// Register installs the governance flags on the default CommandLine set.
func (f *Flags) Register() {
	flag.DurationVar(&f.Deadline, "deadline", 0,
		"host wall-clock budget for the whole invocation (e.g. 10m); exceeded = graceful cancel, exit 130")
	flag.DurationVar(&f.SimBudget, "sim-budget", 0,
		"simulated-time budget per run (e.g. 500ms of simulated time); exceeded cells stop with status deadline")
	flag.Uint64Var(&f.MaxEvents, "max-events", 0,
		"event-count budget per run; exceeded cells stop with status deadline")
	flag.Uint64Var(&f.LivelockEvents, "livelock-events", 0,
		"livelock window: stop a run after this many events without simulated-clock progress")
}

// Budget converts the per-run flag values to an engine budget.
func (f *Flags) Budget() sim.Budget {
	return sim.Budget{
		SimDeadline:    sim.Time(f.SimBudget.Nanoseconds()),
		MaxEvents:      f.MaxEvents,
		LivelockWindow: f.LivelockEvents,
	}
}

// Context returns the invocation context: cancelled by SIGINT/SIGTERM
// (graceful shutdown) and, when -deadline is set, by the wall-clock
// budget. Call stop when the run finishes to restore default signal
// handling (a second SIGINT then kills the process immediately).
func (f *Flags) Context() (ctx context.Context, stop context.CancelFunc) {
	ctx, sigStop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if f.Deadline <= 0 {
		return ctx, sigStop
	}
	ctx, timeStop := context.WithTimeout(ctx, f.Deadline)
	return ctx, func() { timeStop(); sigStop() }
}
