// Package govern classifies how governed runs terminate and bridges the
// host world (contexts, signals, CLI flags) to the simulator's
// cooperative cancellation and budget machinery in internal/sim. Every
// run in the stack — an experiment cell, a sweep cell, a chaos run —
// ends with a structured RunStatus instead of an ambiguous error, so
// sweeps can journal outcomes, retries can distinguish transient
// failures from deterministic budget trips, and CLIs can exit with
// meaningful codes.
package govern

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"

	"uvmsim/internal/parallel"
	"uvmsim/internal/sim"
)

// State is a run's terminal state.
type State string

// Terminal run states.
const (
	// StateCompleted: the run finished normally.
	StateCompleted State = "completed"
	// StateCancelled: the run was stopped by SIGINT/SIGTERM, a context,
	// or the run-level wall-clock deadline.
	StateCancelled State = "cancelled"
	// StateDeadline: a deterministic per-run budget (simulated time or
	// event count) tripped.
	StateDeadline State = "deadline"
	// StateLivelock: the no-forward-progress detector tripped.
	StateLivelock State = "livelock"
	// StatePanicked: the run's goroutine panicked and was recovered.
	StatePanicked State = "panicked"
	// StateFailed: the run returned an ordinary error.
	StateFailed State = "failed"
	// StateQuarantined: the distributed sweep fabric exhausted a cell's
	// retry budget (repeated worker deaths or failures on the same cell)
	// and removed the cell from scheduling. A quarantined cell is a
	// poison verdict about the cell, not the fleet: the sweep continues
	// without its row and reports the quarantine.
	StateQuarantined State = "quarantined"
)

// Code returns a stable numeric encoding for metric export.
func (s State) Code() uint64 {
	switch s {
	case StateCompleted:
		return 0
	case StateCancelled:
		return 1
	case StateDeadline:
		return 2
	case StateLivelock:
		return 3
	case StatePanicked:
		return 4
	case StateFailed:
		return 5
	default: // quarantined and any future state
		return 6
	}
}

// Retryable reports whether re-running can plausibly change the
// outcome. Budget trips and livelocks are deterministic functions of
// the configuration — rerunning reproduces them — and cancellation is
// an external decision; only panics and ordinary failures may be
// transient (host OOM, exhausted descriptors) and earn a retry.
func (s State) Retryable() bool {
	return s == StatePanicked || s == StateFailed
}

// RunStatus is the structured outcome every governed run terminates
// with.
type RunStatus struct {
	State State  `json:"state"`
	Err   string `json:"err,omitempty"`
}

// statusHook, when armed, observes every abnormal terminal
// classification (anything but completed). The telemetry layer arms it
// to feed the flight recorder and trigger dumps on budget overruns and
// recovered invariant panics; the default is nil and costs one atomic
// load per classification — StatusOf is off every simulation hot path.
var statusHook atomic.Pointer[func(RunStatus)]

// SetStatusHook installs (or, with nil, clears) the process-wide
// abnormal-outcome observer. The hook must be goroutine-safe: sweeps
// classify cell outcomes concurrently.
func SetStatusHook(hook func(RunStatus)) {
	if hook == nil {
		statusHook.Store(nil)
		return
	}
	statusHook.Store(&hook)
}

// notify delivers st to the armed hook, if any.
func notify(st RunStatus) RunStatus {
	if st.State != StateCompleted {
		if h := statusHook.Load(); h != nil {
			(*h)(st)
		}
	}
	return st
}

// StatusOf classifies a run error into a RunStatus. nil is a completed
// run; engine stop errors map onto cancelled/deadline/livelock; pool
// panics map to panicked; context cancellation maps to cancelled;
// everything else is failed. Abnormal outcomes are reported to the
// status hook (see SetStatusHook).
func StatusOf(err error) RunStatus {
	if err == nil {
		return RunStatus{State: StateCompleted}
	}
	var stop *sim.StopError
	if errors.As(err, &stop) {
		switch stop.Reason {
		case sim.StopCancelled:
			return notify(RunStatus{State: StateCancelled, Err: err.Error()})
		case sim.StopLivelock:
			return notify(RunStatus{State: StateLivelock, Err: err.Error()})
		default:
			return notify(RunStatus{State: StateDeadline, Err: err.Error()})
		}
	}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return notify(RunStatus{State: StatePanicked, Err: err.Error()})
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return notify(RunStatus{State: StateCancelled, Err: err.Error()})
	}
	return notify(RunStatus{State: StateFailed, Err: err.Error()})
}

// WatchContext returns a sim.Cancel that is Set when ctx is cancelled,
// bridging host-side cancellation (signals, deadlines) into every
// engine polling the flag. A nil or never-cancellable context returns a
// flag that never fires without spawning a goroutine.
func WatchContext(ctx context.Context) *sim.Cancel {
	c := &sim.Cancel{}
	if ctx == nil || ctx.Done() == nil {
		return c
	}
	if ctx.Err() != nil {
		c.Set()
		return c
	}
	go func() {
		<-ctx.Done()
		c.Set()
	}()
	return c
}

// HTTPStatus maps a terminal state onto the serving layer's response
// code contract. Completed runs are 200. Cancelled runs are 503: the
// server was told to stop (drain, request timeout), which is not the
// configuration's fault — the same request can succeed later.
// Deterministic budget trips are 422: the configuration can never
// complete under its budget, so retrying is pointless. Panics and
// ordinary failures are 500.
func HTTPStatus(s State) int {
	switch s {
	case StateCompleted:
		return http.StatusOK
	case StateCancelled:
		return http.StatusServiceUnavailable
	case StateDeadline, StateLivelock:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// Exit codes for governed CLIs. Cancellation exits with the
// conventional 128+SIGINT so wrapping scripts can distinguish "user
// stopped it" (resumable) from "it failed".
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitUsage     = 2
	ExitBudget    = 3
	ExitCancelled = 130
)

// ExitCode maps a terminal state to the CLI exit code contract.
func ExitCode(s State) int {
	switch s {
	case StateCompleted:
		return ExitOK
	case StateCancelled:
		return ExitCancelled
	case StateDeadline, StateLivelock:
		return ExitBudget
	default:
		return ExitFailure
	}
}
