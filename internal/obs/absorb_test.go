package obs

import (
	"testing"

	"uvmsim/internal/sim"
)

// TestAbsorb: counters and gauges add, histograms merge, and the prefix
// keeps absorbed names from colliding with the target's own metrics.
func TestAbsorb(t *testing.T) {
	run1 := NewRegistry()
	run1.Counter("faults").Inc(10)
	run1.Gauge("drops").Set(3)
	run1.Histogram("batch_ns").Observe(1000)
	run1.Histogram("batch_ns").Observe(3000)

	run2 := NewRegistry()
	run2.Counter("faults").Inc(5)
	run2.Gauge("drops").Set(2)
	run2.Histogram("batch_ns").Observe(2000)

	cum := NewRegistry()
	cum.Counter("sim_faults").Inc(1) // pre-existing: absorb adds to it
	cum.Absorb("sim_", run1.Samples())
	cum.Absorb("sim_", run2.Samples())

	if got := cum.Counter("sim_faults").Get(); got != 16 {
		t.Errorf("absorbed counter = %d, want 16", got)
	}
	if got := cum.Gauge("sim_drops").Get(); got != 5 {
		t.Errorf("absorbed gauge = %d, want 5 (per-run totals add)", got)
	}
	h := cum.Histogram("sim_batch_ns").Hist()
	if got := h.Count(); got != 3 {
		t.Errorf("merged histogram count = %d, want 3", got)
	}
	if got := h.Sum(); got != sim.Duration(6000) {
		t.Errorf("merged histogram sum = %v, want 6000", got)
	}
	// Source registries are untouched.
	if got := run1.Counter("faults").Get(); got != 10 {
		t.Errorf("source counter mutated: %d", got)
	}
}
