package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// The metrics registry replaces the ad-hoc string-keyed counter map the
// driver grew organically (dma_*, forced_replays, faultbuf_*): metrics
// are registered once, held as typed handles, and updated by direct
// field increment — cheaper than a map probe on the simulation hot path
// — while every consumer iterates one deterministic, name-sorted
// snapshot.

// MetricKind distinguishes registry entry types.
type MetricKind uint8

// Registry entry types.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String names the metric kind for exports.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metrickind(%d)", int(k))
	}
}

// Counter is a monotonically increasing count. Update via the handle;
// no lookup happens after registration.
type Counter struct {
	name string
	v    uint64
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds delta.
func (c *Counter) Inc(delta uint64) { c.v += delta }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v }

// Gauge is an absolute value mirrored from another component (e.g. the
// fault buffer's cumulative drop tally) or a level that can move both
// ways.
type Gauge struct {
	name string
	v    uint64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set overwrites the value.
func (g *Gauge) Set(v uint64) { g.v = v }

// Get returns the current value.
func (g *Gauge) Get() uint64 { return g.v }

// HistogramMetric is a named latency/size distribution.
type HistogramMetric struct {
	name string
	h    stats.Histogram
}

// Name returns the registered name.
func (h *HistogramMetric) Name() string { return h.name }

// Observe records one observation.
func (h *HistogramMetric) Observe(d sim.Duration) { h.h.Observe(d) }

// Hist exposes the underlying distribution.
func (h *HistogramMetric) Hist() *stats.Histogram { return &h.h }

// Registry holds named typed metrics with deterministic iteration order
// (sorted by name at snapshot time). Names must be unique across all
// three kinds; re-registering a name returns the existing handle so
// components can share metrics without coordination.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*HistogramMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*HistogramMetric),
	}
}

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, KindCounter)
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge with this name.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, KindGauge)
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) histogram with this name.
func (r *Registry) Histogram(name string) *HistogramMetric {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.mustBeFree(name, KindHistogram)
	h := &HistogramMetric{name: name}
	r.hists[name] = h
	return h
}

// mustBeFree panics when name is already registered under another kind:
// a metric changing type between call sites is a programming bug that
// would silently split its data.
func (r *Registry) mustBeFree(name string, want MetricKind) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v", name, want))
	}
}

// Sample is one snapshot row.
type Sample struct {
	Name  string
	Kind  MetricKind
	Value uint64           // counter/gauge value; histogram count
	Hist  *stats.Histogram // set for histograms only
}

// Samples returns a deterministic snapshot: every metric, sorted by name.
func (r *Registry) Samples() []Sample {
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, Sample{Name: c.name, Kind: KindCounter, Value: c.v})
	}
	for _, g := range r.gauges {
		out = append(out, Sample{Name: g.name, Kind: KindGauge, Value: g.v})
	}
	for _, h := range r.hists {
		out = append(out, Sample{Name: h.name, Kind: KindHistogram, Value: h.h.Count(), Hist: &h.h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Absorb folds a snapshot (typically another registry's Samples) into r
// under a name prefix: counters and gauges add their values — a
// per-run total becomes part of a cumulative served total — and
// histograms merge their distributions. The serving layer uses it to
// aggregate every completed simulation's metrics into one long-lived
// registry without touching the per-run registries' lock-free hot path.
// Like all Registry methods, Absorb is not safe for concurrent use;
// callers that share a registry across goroutines serialize access.
func (r *Registry) Absorb(prefix string, samples []Sample) {
	for _, s := range samples {
		name := prefix + s.Name
		switch s.Kind {
		case KindCounter:
			r.Counter(name).Inc(s.Value)
		case KindGauge:
			g := r.Gauge(name)
			g.Set(g.Get() + s.Value)
		case KindHistogram:
			if s.Hist != nil {
				r.Histogram(name).Hist().Merge(s.Hist)
			}
		}
	}
}

// CounterSet renders counters and gauges as the legacy stats.CounterSet
// so existing consumers (run-result deltas, experiment tables, chaos
// verdicts) keep working unchanged during the migration.
func (r *Registry) CounterSet() *stats.CounterSet {
	set := stats.NewCounterSet()
	for _, c := range r.counters {
		set.Set(c.name, c.v)
	}
	for _, g := range r.gauges {
		set.Set(g.name, g.v)
	}
	return set
}

// WriteCSV emits the snapshot as "name,kind,value,mean_ns,p50_ns,p99_ns,
// max_ns" rows (distribution columns empty for scalars). The csv.Writer
// error is checked after Flush so a failed underlying write surfaces
// instead of being dropped.
func (r *Registry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "value", "mean_ns", "p50_ns", "p99_ns", "max_ns"}); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		row := []string{s.Name, s.Kind.String(), strconv.FormatUint(s.Value, 10), "", "", "", ""}
		if s.Hist != nil {
			row[3] = strconv.FormatInt(int64(s.Hist.Mean()), 10)
			row[4] = strconv.FormatInt(int64(s.Hist.Quantile(0.5)), 10)
			row[5] = strconv.FormatInt(int64(s.Hist.Quantile(0.99)), 10)
			row[6] = strconv.FormatInt(int64(s.Hist.Max()), 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
