package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a fixed two-cell capture exercising every track, batch
// attribution, and a point span.
func goldenCollector() *Collector {
	c := NewCollector()
	// Registered out of label order on purpose: exports must sort.
	b := c.NewCell("pattern=regular policy=once")
	b.Sink.Span(Span{Kind: SpanFetch, Start: 0, End: 1500, Batch: 1, Arg: 16})
	b.Sink.Span(Span{Kind: SpanStall, Start: 100, End: 2200, Batch: 0, Arg: 3})
	a := c.NewCell("pattern=regular policy=batchflush")
	a.Sink.Span(Span{Kind: SpanFetch, Start: 0, End: 2000, Batch: 1, Arg: 32})
	a.Sink.Span(Span{Kind: SpanMigrate, Start: 2000, End: 7000, Batch: 1, Arg: 32})
	a.Sink.Span(Span{Kind: SpanDMAH2D, Start: 2500, End: 6000, Batch: 0, Arg: 131072})
	a.Sink.Span(Span{Kind: SpanCoalesce, Start: 4000, End: 4000, Batch: 0, Arg: 42})
	a.Sink.Span(Span{Kind: SpanBatch, Start: 0, End: 8000, Batch: 1, Arg: 32})
	return c
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestChromeTraceIsValidJSONWithSortedCells(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// First process metadata must be the lexically smaller label.
	var procNames []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Fatal(err)
			}
			procNames = append(procNames, args.Name)
		}
	}
	if len(procNames) != 2 || procNames[0] >= procNames[1] {
		t.Errorf("process names not label-sorted: %v", procNames)
	}
	// Every complete event carries a duration and a known pid.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if ev.Dur == nil {
				t.Errorf("X event %q without dur", ev.Name)
			}
			if ev.Pid != 0 && ev.Pid != 1 {
				t.Errorf("X event %q pid = %d", ev.Name, ev.Pid)
			}
		}
	}
}

func TestSpanCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteSpanCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 7 spans across both cells.
	if len(lines) != 8 {
		t.Fatalf("span csv lines = %d, want 8:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cell,track,kind,start_ns,end_ns,dur_ns,batch,arg" {
		t.Errorf("header = %q", lines[0])
	}
	// Cells appear in label order: batchflush rows before once rows.
	if !strings.Contains(lines[1], "policy=batchflush") {
		t.Errorf("first data row = %q, want batchflush cell first", lines[1])
	}
	if !strings.Contains(lines[6], "policy=once") {
		t.Errorf("row 6 = %q, want once cell", lines[6])
	}
}

func TestMetricsCSVSkipsUnboundCells(t *testing.T) {
	c := NewCollector()
	cell := c.NewCell("bound")
	reg := NewRegistry()
	reg.Counter("faults_fetched").Inc(9)
	cell.Bind(reg, nil)
	c.NewCell("unbound")
	var buf bytes.Buffer
	if err := c.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bound,faults_fetched,counter,9") {
		t.Errorf("metrics csv missing bound row:\n%s", out)
	}
	if strings.Contains(out, "unbound") {
		t.Errorf("metrics csv should skip cells with no registry:\n%s", out)
	}
}

func TestSingleRunChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	spans := []Span{{Kind: SpanFetch, Start: 0, End: 1000, Batch: 1, Arg: 8}}
	if err := WriteChromeTrace(&buf, "solo", spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.Bytes())
	}
	if !strings.Contains(buf.String(), `"name":"solo"`) {
		t.Errorf("missing process label: %s", buf.String())
	}
}
