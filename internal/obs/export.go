package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"uvmsim/internal/stats"
)

// Options selects which instrumentation a system assembles. The zero
// value disables everything: no collector cell is created, tracer and
// lifecycle pointers stay nil, and the hot loop takes only nil checks.
type Options struct {
	// Collector receives this run's capture as a new cell; nil disables
	// span tracing.
	Collector *Collector
	// Label names the cell (sweep config label, experiment row, ...).
	Label string
	// Lifecycle enables per-fault birth-to-replay tracking.
	Lifecycle bool
}

// Enabled reports whether any instrumentation is requested.
func (o Options) Enabled() bool { return o.Collector != nil || o.Lifecycle }

// Collector gathers observability captures from many independent
// simulation cells (parallel sweep configurations, experiment rows) and
// exports them with per-cell attribution: each cell becomes one process
// in the Chrome trace, named by its label. Cells register concurrently
// from worker goroutines; exports sort by label, so the output is
// byte-identical at every worker count as long as labels are unique
// (sweep and experiment labels embed every knob plus the seed, so they
// are).
type Collector struct {
	mu    sync.Mutex
	cells []*Cell
}

// Cell is one simulation's capture: its span sink plus the registry and
// lifecycle bound at system construction.
type Cell struct {
	Label string
	Sink  *MemorySink

	reg    *Registry
	life   *Lifecycle
	status string
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// NewCell registers a capture slot under label. Safe for concurrent use.
func (c *Collector) NewCell(label string) *Cell {
	cell := &Cell{Label: label, Sink: NewMemorySink()}
	c.mu.Lock()
	c.cells = append(c.cells, cell)
	c.mu.Unlock()
	return cell
}

// Bind attaches the cell's metrics registry and lifecycle collector
// (either may be nil). Called once by system assembly.
func (cl *Cell) Bind(reg *Registry, life *Lifecycle) {
	cl.reg = reg
	cl.life = life
}

// Registry returns the bound metrics registry (nil before Bind).
func (cl *Cell) Registry() *Registry { return cl.reg }

// Lifecycle returns the bound lifecycle collector (may be nil).
func (cl *Cell) Lifecycle() *Lifecycle { return cl.life }

// SetStatus records the run's terminal governance state on the cell and,
// when a registry is bound, mirrors its numeric code into a run_status
// gauge so metric exports carry every cell's outcome.
func (cl *Cell) SetStatus(state string, code uint64) {
	cl.status = state
	if cl.reg != nil {
		cl.reg.Gauge("run_status").Set(code)
	}
}

// Status returns the terminal state set by SetStatus ("" until then).
func (cl *Cell) Status() string { return cl.status }

// Cells returns the registered cells sorted by label.
func (c *Collector) Cells() []*Cell {
	c.mu.Lock()
	out := make([]*Cell, len(c.cells))
	copy(out, c.cells)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LastCell returns the most recently registered cell with this label
// (nil when none). Retried cells re-register under the same label; the
// newest registration is the authoritative attempt.
func (c *Collector) LastCell(label string) *Cell {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.cells) - 1; i >= 0; i-- {
		if c.cells[i].Label == label {
			return c.cells[i]
		}
	}
	return nil
}

// Filter returns a new collector holding only the cells keep accepts.
// Resume uses it to export only completed cells: a cancelled cell's
// partial capture must not pollute exports that claim to describe whole
// runs.
func (c *Collector) Filter(keep func(*Cell) bool) *Collector {
	out := NewCollector()
	c.mu.Lock()
	for _, cell := range c.cells {
		if keep(cell) {
			out.cells = append(out.cells, cell)
		}
	}
	c.mu.Unlock()
	return out
}

// Adopt registers already-built cells (typically filtered out of another
// collector) so a resumed sweep can merge the killed run's completed
// captures with its own before exporting. Exports sort by label, so the
// merged output is identical to an uninterrupted run's.
func (c *Collector) Adopt(cells ...*Cell) {
	c.mu.Lock()
	c.cells = append(c.cells, cells...)
	c.mu.Unlock()
}

// chromeEvent is one Chrome trace-event record. Field order is fixed by
// the struct, so encoding/json output is deterministic.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args interface{} `json:"args,omitempty"`
}

type spanArgs struct {
	Batch uint64 `json:"batch"`
	Arg   int64  `json:"arg"`
}

type nameArgs struct {
	Name string `json:"name"`
}

// chromeWriter streams a trace-event JSON object without holding every
// encoded event in memory.
type chromeWriter struct {
	w     io.Writer
	first bool
	err   error
}

func (cw *chromeWriter) begin() {
	cw.first = true
	cw.write([]byte(`{"traceEvents":[`))
}

func (cw *chromeWriter) event(ev chromeEvent) {
	if cw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	if !cw.first {
		cw.write([]byte(","))
	}
	cw.first = false
	cw.write(b)
}

func (cw *chromeWriter) end() error {
	cw.write([]byte(`],"displayTimeUnit":"ns"}` + "\n"))
	return cw.err
}

func (cw *chromeWriter) write(b []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(b)
}

// usOf converts simulated nanoseconds to the trace format's microsecond
// timestamps.
func usOf(ns int64) float64 { return float64(ns) / 1000 }

// writeCellEvents emits one cell's metadata and span events under pid.
func writeCellEvents(cw *chromeWriter, pid int, label string, spans []Span) {
	cw.event(chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: nameArgs{Name: label},
	})
	seen := [numTracks]bool{}
	for _, s := range spans {
		tr := TrackOf(s.Kind)
		if !seen[tr] {
			seen[tr] = true
			cw.event(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int(tr),
				Args: nameArgs{Name: tr.String()},
			})
		}
	}
	for _, s := range spans {
		dur := usOf(int64(s.Duration()))
		cw.event(chromeEvent{
			Name: s.Kind.String(),
			Cat:  TrackOf(s.Kind).String(),
			Ph:   "X",
			Ts:   usOf(int64(s.Start)),
			Dur:  &dur,
			Pid:  pid,
			Tid:  int(TrackOf(s.Kind)),
			Args: spanArgs{Batch: s.Batch, Arg: s.Arg},
		})
	}
}

// WriteChromeTrace renders spans from a single run as Chrome trace-event
// JSON (Perfetto- and chrome://tracing-loadable).
func WriteChromeTrace(w io.Writer, label string, spans []Span) error {
	cw := &chromeWriter{w: w}
	cw.begin()
	writeCellEvents(cw, 0, label, spans)
	return cw.end()
}

// WriteChromeTrace renders every registered cell as one process of a
// combined Chrome trace, sorted by label for deterministic output.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	cw := &chromeWriter{w: w}
	cw.begin()
	for pid, cell := range c.Cells() {
		writeCellEvents(cw, pid, cell.Label, cell.Sink.Spans())
	}
	return cw.end()
}

// spanCSVHeader is the flat span export schema.
var spanCSVHeader = []string{"cell", "track", "kind", "start_ns", "end_ns", "dur_ns", "batch", "arg"}

func writeSpanRows(cw *csv.Writer, cell string, spans []Span) error {
	for _, s := range spans {
		row := []string{
			cell,
			TrackOf(s.Kind).String(),
			s.Kind.String(),
			strconv.FormatInt(int64(s.Start), 10),
			strconv.FormatInt(int64(s.End), 10),
			strconv.FormatInt(int64(s.Duration()), 10),
			strconv.FormatUint(s.Batch, 10),
			strconv.FormatInt(s.Arg, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpanCSV emits one run's spans as CSV. The csv.Writer error is
// checked after Flush so short writes are reported, not dropped.
func WriteSpanCSV(w io.Writer, label string, spans []Span) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(spanCSVHeader); err != nil {
		return err
	}
	if err := writeSpanRows(cw, label, spans); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpanCSV emits every cell's spans as one CSV, sorted by cell label.
func (c *Collector) WriteSpanCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(spanCSVHeader); err != nil {
		return err
	}
	for _, cell := range c.Cells() {
		if err := writeSpanRows(cw, cell.Label, cell.Sink.Spans()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMetricsCSV emits every cell's registry snapshot as one CSV with
// the cell label in the first column, sorted by (label, metric name).
func (c *Collector) WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cell", "name", "kind", "value", "mean_ns", "p50_ns", "p99_ns", "max_ns"}); err != nil {
		return err
	}
	for _, cell := range c.Cells() {
		if cell.reg == nil {
			continue
		}
		for _, s := range cell.reg.Samples() {
			row := []string{cell.Label, s.Name, s.Kind.String(), strconv.FormatUint(s.Value, 10), "", "", "", ""}
			if s.Hist != nil {
				row[4] = strconv.FormatInt(int64(s.Hist.Mean()), 10)
				row[5] = strconv.FormatInt(int64(s.Hist.Quantile(0.5)), 10)
				row[6] = strconv.FormatInt(int64(s.Hist.Quantile(0.99)), 10)
				row[7] = strconv.FormatInt(int64(s.Hist.Max()), 10)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LatencyLine formats a one-line percentile summary of a latency
// histogram for CLI output.
func LatencyLine(name string, h *stats.Histogram) string {
	return fmt.Sprintf("%-18s n=%-8d mean=%-12v p50=%-12v p90=%-12v p99=%-12v max=%v",
		name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
}
