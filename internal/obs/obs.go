// Package obs is the deep runtime instrumentation layer: span tracing on
// the simulated clock, fault-lifecycle latency tracking, and a typed
// metrics registry. The source paper is itself an instrumentation study —
// Allen & Ge timed the UVM driver's internal phases to explain where
// fault cost goes — so the simulator must be introspectable the same way
// its real counterpart was measured: not just *how much* time a phase
// consumed in aggregate, but *when* each batch ran and how long each
// fault waited from SM birth to replay.
//
// The layer has a strict overhead contract: every hook is reached through
// a possibly-nil *Tracer or *Lifecycle whose methods are nil-safe and
// return before touching any state, so the simulation hot loop stays
// allocation-free and branch-cheap when instrumentation is off (asserted
// by TestNilTracerAllocFree and the BenchmarkDriverService alloc guard).
package obs

import (
	"fmt"

	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// Kind classifies a span. Driver-phase kinds map onto the paper's cost
// categories via PhaseOf so span totals reconcile exactly with
// stats.Breakdown; device and interconnect kinds live on their own
// tracks and carry no phase charge.
type Kind uint8

// Span kinds.
const (
	// SpanBatch covers one whole driver batch: first entry fetched to the
	// moment the next fetch (or pass end) begins. Arg is the fault count.
	SpanBatch Kind = iota
	// SpanPoll is a wait for a not-ready fault-buffer head entry.
	SpanPoll
	// SpanFetch is reading a batch of fault entries from the buffer.
	// Arg is the number of entries fetched.
	SpanFetch
	// SpanSort is VABlock binning/sorting of a fetched batch.
	SpanSort
	// SpanPMAAlloc is a physical-memory-allocator call for one VABlock.
	SpanPMAAlloc
	// SpanMigrate covers prefetch planning, staging, zeroing, and waiting
	// on migration DMA for one VABlock. Arg is pages migrated.
	SpanMigrate
	// SpanMap is page-table writes and membars for one VABlock. Arg is
	// pages mapped.
	SpanMap
	// SpanFlush is a fault-buffer flush (batch-flush replay policy).
	// Arg is the number of entries discarded.
	SpanFlush
	// SpanReplay is issuing one replay notification to the GPU.
	SpanReplay
	// SpanEvict covers victim selection, dirty write-back, and the
	// faulting-path restart for one eviction. Arg is pages evicted.
	SpanEvict

	// SpanDMAH2D and SpanDMAD2H are interconnect transactions; Arg is
	// bytes moved. SpanDMAFailed is an aborted descriptor (transient
	// failure), occupying the channel for its setup latency.
	SpanDMAH2D
	SpanDMAD2H
	SpanDMAFailed

	// SpanStall is one warp's stall window, fault raise to replay wake.
	// Arg is the originating SM.
	SpanStall
	// SpanCoalesce marks a fault absorbed by µTLB coalescing (a point
	// span). Arg is the faulting page.
	SpanCoalesce

	// SpanCancel is a point span marking where run governance stopped the
	// engine (cancellation, budget trip, livelock). Arg is the
	// sim.StopReason code, so a truncated trace carries its own
	// explanation.
	SpanCancel

	// SpanRemoteMap is a multi-GPU fault service that installs remote
	// mappings over a peer link instead of migrating pages. Arg is pages
	// mapped. Emitted only by K>1 systems.
	SpanRemoteMap
	// SpanDMAP2P is a peer-to-peer migration transfer on the interconnect
	// fabric; Arg is bytes moved. Emitted only by K>1 systems.
	SpanDMAP2P

	numKinds
)

var kindNames = [numKinds]string{
	"batch", "poll", "fetch", "sort", "pma_alloc", "migrate", "map",
	"flush", "replay", "evict", "dma_h2d", "dma_d2h", "dma_failed",
	"warp_stall", "utlb_coalesce", "cancel", "remote_map", "dma_p2p",
}

// String returns the snake_case kind name used by exporters.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// kindPhases maps driver-phase kinds to the breakdown category their
// duration is charged to; -1 marks kinds that carry no phase charge.
var kindPhases = [numKinds]stats.Phase{
	SpanBatch:     -1,
	SpanPoll:      stats.PhasePreprocess,
	SpanFetch:     stats.PhasePreprocess,
	SpanSort:      stats.PhasePreprocess,
	SpanPMAAlloc:  stats.PhasePMAAlloc,
	SpanMigrate:   stats.PhaseMigrate,
	SpanMap:       stats.PhaseMap,
	SpanFlush:     stats.PhaseReplay,
	SpanReplay:    stats.PhaseReplay,
	SpanEvict:     stats.PhaseEvict,
	SpanDMAH2D:    -1,
	SpanDMAD2H:    -1,
	SpanDMAFailed: -1,
	SpanStall:     -1,
	SpanCoalesce:  -1,
	SpanCancel:    -1,
	SpanRemoteMap: stats.PhaseMap,
	SpanDMAP2P:    -1,
}

// PhaseOf returns the stats.Phase a span kind's duration is charged to,
// and false for kinds outside the driver breakdown (batch envelopes, DMA,
// GPU-side spans). Summing span durations grouped by PhaseOf reconciles
// exactly with stats.Breakdown: the driver emits exactly one span per
// breakdown charge.
func PhaseOf(k Kind) (stats.Phase, bool) {
	if int(k) >= len(kindPhases) || kindPhases[k] < 0 {
		return 0, false
	}
	return kindPhases[k], true
}

// Track groups kinds into exporter threads: driver pipeline, interconnect,
// and GPU device.
type Track uint8

// Exporter tracks.
const (
	TrackDriver Track = iota
	TrackDMA
	TrackGPU
	numTracks
)

var trackNames = [numTracks]string{"driver", "dma", "gpu"}

// String names the track.
func (t Track) String() string {
	if int(t) >= len(trackNames) {
		return fmt.Sprintf("track(%d)", int(t))
	}
	return trackNames[t]
}

// TrackOf returns the track a span kind renders on.
func TrackOf(k Kind) Track {
	switch k {
	case SpanDMAH2D, SpanDMAD2H, SpanDMAFailed, SpanDMAP2P:
		return TrackDMA
	case SpanStall, SpanCoalesce:
		return TrackGPU
	default:
		return TrackDriver
	}
}

// Span is one completed interval on the simulated clock. Spans are
// emitted whole (begin and end known at emission) because every simulated
// cost is scheduled as "charge d, continue at now+d"; there is no
// open-span state to keep on the hot path.
type Span struct {
	Kind  Kind
	Start sim.Time
	End   sim.Time
	// Batch is the driver batch sequence number the span belongs to
	// (0 when the span is outside any batch).
	Batch uint64
	// Arg carries the kind-specific magnitude: entries fetched, pages
	// migrated, bytes transferred, originating SM, ...
	Arg int64
}

// Duration returns the span's extent.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Sink consumes spans as they are emitted. Implementations are called
// from the single-threaded simulation loop and need no locking.
type Sink interface {
	Span(Span)
}

// Tracer emits spans into a sink. A nil *Tracer is the disabled state:
// every method returns immediately, allocates nothing, and the compiler
// can inline the nil check, so components carry an optional tracer
// without call-site guards.
type Tracer struct {
	sink Sink
	n    uint64
}

// NewTracer returns a tracer over sink; a nil sink yields a nil tracer
// so the disabled fast path is uniform.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emitted returns the number of spans emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Emit records one completed span. Safe on a nil receiver (no-op). All
// arguments are scalars so the disabled path allocates nothing.
func (t *Tracer) Emit(kind Kind, start, end sim.Time, batch uint64, arg int64) {
	if t == nil {
		return
	}
	t.n++
	t.sink.Span(Span{Kind: kind, Start: start, End: end, Batch: batch, Arg: arg})
}

// MemorySink accumulates spans in emission order.
type MemorySink struct {
	spans []Span
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Span implements Sink.
func (m *MemorySink) Span(s Span) { m.spans = append(m.spans, s) }

// Spans returns the recorded spans in emission order.
func (m *MemorySink) Spans() []Span { return m.spans }

// PhaseTotals sums span durations grouped by PhaseOf. The result
// reconciles exactly with the driver's stats.Breakdown for the same run.
func PhaseTotals(spans []Span) stats.Breakdown {
	var b stats.Breakdown
	for _, s := range spans {
		if p, ok := PhaseOf(s.Kind); ok {
			b.Add(p, s.Duration())
		}
	}
	return b
}
