package obs

import (
	"strings"
	"testing"

	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

func TestNilTracerAllocFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(SpanFetch, 10, 20, 1, 64)
	}); n != 0 {
		t.Errorf("nil tracer Emit allocates %v per call, want 0", n)
	}
	var life *Lifecycle
	if life.Enabled() {
		t.Fatal("nil lifecycle reports enabled")
	}
	if n := testing.AllocsPerRun(1000, func() {
		life.Born(1, 10)
		life.Fetched(1, 20)
		life.Serviced(1, 30)
		life.ServicedStale(1, 30)
		life.Replayed(40)
		life.Flushed(1)
	}); n != 0 {
		t.Errorf("nil lifecycle hooks allocate %v per call, want 0", n)
	}
}

func TestNewTracerNilSink(t *testing.T) {
	if tr := NewTracer(nil); tr != nil {
		t.Error("NewTracer(nil) should return a nil tracer")
	}
}

func TestTracerEmitOrderAndCount(t *testing.T) {
	sink := NewMemorySink()
	tr := NewTracer(sink)
	tr.Emit(SpanFetch, 0, 5, 1, 32)
	tr.Emit(SpanSort, 5, 8, 1, 32)
	tr.Emit(SpanDMAH2D, 8, 20, 0, 4096)
	if got := tr.Emitted(); got != 3 {
		t.Errorf("Emitted = %d, want 3", got)
	}
	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	want := []Kind{SpanFetch, SpanSort, SpanDMAH2D}
	for i, s := range spans {
		if s.Kind != want[i] {
			t.Errorf("span %d kind = %v, want %v", i, s.Kind, want[i])
		}
	}
	if d := spans[2].Duration(); d != 12 {
		t.Errorf("duration = %v, want 12", d)
	}
}

func TestEveryKindHasNameTrackAndPhaseRule(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		tr := TrackOf(k)
		if strings.HasPrefix(tr.String(), "track(") {
			t.Errorf("kind %v maps to unnamed track %d", k, int(tr))
		}
		if p, ok := PhaseOf(k); ok {
			if tr != TrackDriver {
				t.Errorf("kind %v charges phase %v but renders off the driver track", k, p)
			}
			if p < 0 || p >= stats.Phase(len(stats.Phases())) {
				t.Errorf("kind %v charges out-of-range phase %d", k, int(p))
			}
		}
	}
	// DMA and GPU kinds never charge the driver breakdown.
	for _, k := range []Kind{SpanBatch, SpanDMAH2D, SpanDMAD2H, SpanDMAFailed, SpanStall, SpanCoalesce} {
		if _, ok := PhaseOf(k); ok {
			t.Errorf("kind %v should not carry a phase charge", k)
		}
	}
}

func TestPhaseTotals(t *testing.T) {
	spans := []Span{
		{Kind: SpanFetch, Start: 0, End: 10},
		{Kind: SpanPoll, Start: 10, End: 12},
		{Kind: SpanSort, Start: 12, End: 15},
		{Kind: SpanPMAAlloc, Start: 15, End: 19},
		{Kind: SpanMigrate, Start: 19, End: 40},
		{Kind: SpanMap, Start: 40, End: 47},
		{Kind: SpanFlush, Start: 47, End: 50},
		{Kind: SpanReplay, Start: 50, End: 52},
		{Kind: SpanEvict, Start: 52, End: 60},
		{Kind: SpanBatch, Start: 0, End: 60},   // no charge
		{Kind: SpanDMAH2D, Start: 20, End: 30}, // no charge
		{Kind: SpanStall, Start: 0, End: 55},   // no charge
	}
	b := PhaseTotals(spans)
	wants := map[stats.Phase]sim.Duration{
		stats.PhasePreprocess: 15,
		stats.PhasePMAAlloc:   4,
		stats.PhaseMigrate:    21,
		stats.PhaseMap:        7,
		stats.PhaseReplay:     5,
		stats.PhaseEvict:      8,
	}
	for p, want := range wants {
		if got := b.Get(p); got != want {
			t.Errorf("phase %v = %v, want %v", p, got, want)
		}
	}
	if b.Total() != 60 {
		t.Errorf("total = %v, want 60", b.Total())
	}
}

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zeta")
	c.Inc(3)
	if r.Counter("zeta") != c {
		t.Error("re-registering a counter should return the same handle")
	}
	g := r.Gauge("alpha")
	g.Set(7)
	h := r.Histogram("mid")
	h.Observe(100)
	h.Observe(300)

	samples := r.Samples()
	names := make([]string, len(samples))
	for i, s := range samples {
		names[i] = s.Name
	}
	if names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("snapshot order = %v, want name-sorted", names)
	}
	if samples[2].Value != 3 || samples[2].Kind != KindCounter {
		t.Errorf("counter sample = %+v", samples[2])
	}
	if samples[1].Value != 2 || samples[1].Hist == nil {
		t.Errorf("histogram sample = %+v", samples[1])
	}

	set := r.CounterSet()
	if set.Get("zeta") != 3 || set.Get("alpha") != 7 {
		t.Errorf("CounterSet: zeta=%d alpha=%d", set.Get("zeta"), set.Get("alpha"))
	}
}

func TestRegistryCrossKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering gauge over counter name should panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults").Inc(5)
	r.Histogram("batch_ns").Observe(1000)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	if lines[0] != "name,kind,value,mean_ns,p50_ns,p99_ns,max_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "batch_ns,histogram,1,1000,") {
		t.Errorf("histogram row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "faults,counter,5,") {
		t.Errorf("counter row = %q", lines[2])
	}
}

func TestLifecycleConservationPaths(t *testing.T) {
	l := NewLifecycle()
	// Fault 1: full path, replayed.
	l.Born(1, 0)
	l.Fetched(1, 10)
	l.Serviced(1, 30)
	// Fault 2: stale duplicate, terminal at service.
	l.Born(2, 5)
	l.Fetched(2, 10)
	l.ServicedStale(2, 30)
	// Fault 3: discarded by a buffer flush.
	l.Born(3, 8)
	l.Flushed(3)
	l.Replayed(50)

	born, fetched, serviced, replayed, stale, flushed := l.Counts()
	if born != 3 || fetched != 2 || serviced != 2 || replayed != 1 || stale != 1 || flushed != 1 {
		t.Errorf("counts: born=%d fetched=%d serviced=%d replayed=%d stale=%d flushed=%d",
			born, fetched, serviced, replayed, stale, flushed)
	}
	if err := l.CheckConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
	if err := l.Final(); err != nil {
		t.Errorf("final: %v", err)
	}
	if got := l.BirthToReplay().Count(); got != 1 {
		t.Errorf("birth_to_replay count = %d, want 1", got)
	}
	if got := l.BirthToReplay().Max(); got != 50 {
		t.Errorf("birth_to_replay max = %v, want 50", got)
	}
	if got := l.FetchToService().Count(); got != 2 {
		t.Errorf("fetch_to_service count = %d, want 2 (includes stale)", got)
	}
}

func TestLifecycleFinalRejectsLiveFaults(t *testing.T) {
	l := NewLifecycle()
	l.Born(1, 0)
	if err := l.CheckConservation(); err != nil {
		t.Errorf("one live fault still conserves: %v", err)
	}
	if err := l.Final(); err == nil {
		t.Error("Final should reject a still-live fault")
	}
}

func TestLatencyLine(t *testing.T) {
	var h stats.Histogram
	h.Observe(1000)
	line := LatencyLine("birth_to_replay", &h)
	if !strings.Contains(line, "birth_to_replay") || !strings.Contains(line, "n=1") {
		t.Errorf("latency line = %q", line)
	}
}
