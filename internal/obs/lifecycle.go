package obs

import (
	"fmt"

	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
)

// Lifecycle tracks every fault entry from SM birth to its terminal
// state, producing the stage-latency distributions the paper's
// batch-size/latency analysis needs: birth → buffer fetch → service
// completion → replay. A fault's life is
//
//	Born      the GPU wrote the entry into the fault buffer
//	Fetched   the driver read it in a batch
//	Serviced  its VABlock's migration and mapping completed
//	Replayed  a replay notification covered it (terminal: the stalled
//	          warp wakes and retries)
//	Stale     service found every demanded page already resident: the
//	          entry was a duplicate whose warp an earlier replay already
//	          woke, so service completion is terminal
//	Flushed   the batch-flush policy discarded it unserviced (terminal:
//	          the warp wakes on the same replay and re-faults, making a
//	          *new* entry with its own lifecycle)
//
// Faults rejected at Put (buffer full, injected drop) are never born
// here: they left no entry anywhere, which is exactly the paper's
// buffer-full degradation. Conservation — born = replayed + stale +
// flushed + live — is checkable at any time and must close out (live = 0)
// when a run completes; the fault-conservation test asserts this under
// every injection class.
//
// A nil *Lifecycle is the disabled state: every method returns
// immediately and allocates nothing.
type Lifecycle struct {
	live map[uint64]faultLife // born, not yet terminal

	// pending holds serviced faults awaiting the replay that completes
	// their lifecycle.
	pending []pendingFault

	// Stage-latency distributions, in simulated nanoseconds.
	birthToFetch    stats.Histogram // queueing in the fault buffer
	fetchToService  stats.Histogram // driver pipeline latency
	serviceToReplay stats.Histogram // replay-policy holdback
	birthToReplay   stats.Histogram // end-to-end fault latency

	born, fetched, serviced, replayed, stale, flushed uint64
}

type faultLife struct {
	born    sim.Time
	fetched sim.Time
}

type pendingFault struct {
	seq           uint64
	born, fetched sim.Time
	servicedAt    sim.Time
}

// NewLifecycle returns an empty collector.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{live: make(map[uint64]faultLife)}
}

// Enabled reports whether lifecycle tracking is on.
func (l *Lifecycle) Enabled() bool { return l != nil }

// Born records a fault entry accepted into the buffer at time at.
func (l *Lifecycle) Born(seq uint64, at sim.Time) {
	if l == nil {
		return
	}
	l.born++
	l.live[seq] = faultLife{born: at}
}

// Fetched records the driver reading the entry in a batch.
func (l *Lifecycle) Fetched(seq uint64, at sim.Time) {
	if l == nil {
		return
	}
	f, ok := l.live[seq]
	if !ok {
		return // born before tracking started (mid-run attach)
	}
	f.fetched = at
	l.live[seq] = f
	l.fetched++
	l.birthToFetch.Observe(at.Sub(f.born))
}

// Serviced records the entry's VABlock completing service; the fault now
// waits only for a replay.
func (l *Lifecycle) Serviced(seq uint64, at sim.Time) {
	if l == nil {
		return
	}
	f, ok := l.live[seq]
	if !ok {
		return
	}
	l.serviced++
	l.fetchToService.Observe(at.Sub(f.fetched))
	l.pending = append(l.pending, pendingFault{
		seq: seq, born: f.born, fetched: f.fetched, servicedAt: at,
	})
}

// ServicedStale records the entry's bin completing service with nothing
// to migrate: the fault was a duplicate (its warp was already woken by
// an earlier replay and found the pages resident), so this is terminal.
func (l *Lifecycle) ServicedStale(seq uint64, at sim.Time) {
	if l == nil {
		return
	}
	f, ok := l.live[seq]
	if !ok {
		return
	}
	l.serviced++
	l.stale++
	l.fetchToService.Observe(at.Sub(f.fetched))
	delete(l.live, seq)
}

// Replayed records a replay notification at time at: every serviced
// fault awaiting it completes its lifecycle.
func (l *Lifecycle) Replayed(at sim.Time) {
	if l == nil {
		return
	}
	for _, p := range l.pending {
		l.replayed++
		l.serviceToReplay.Observe(at.Sub(p.servicedAt))
		l.birthToReplay.Observe(at.Sub(p.born))
		delete(l.live, p.seq)
	}
	l.pending = l.pending[:0]
}

// Flushed records the entry discarded unserviced by a buffer flush
// (terminal: its warp re-faults after the flush's replay).
func (l *Lifecycle) Flushed(seq uint64) {
	if l == nil {
		return
	}
	if _, ok := l.live[seq]; !ok {
		return
	}
	l.flushed++
	delete(l.live, seq)
}

// Counts returns the cumulative stage totals.
func (l *Lifecycle) Counts() (born, fetched, serviced, replayed, stale, flushed uint64) {
	if l == nil {
		return 0, 0, 0, 0, 0, 0
	}
	return l.born, l.fetched, l.serviced, l.replayed, l.stale, l.flushed
}

// Live returns how many born faults have not reached a terminal state.
func (l *Lifecycle) Live() int {
	if l == nil {
		return 0
	}
	return len(l.live)
}

// BirthToFetch returns the buffer-queueing latency distribution.
func (l *Lifecycle) BirthToFetch() *stats.Histogram { return &l.birthToFetch }

// FetchToService returns the driver-pipeline latency distribution.
func (l *Lifecycle) FetchToService() *stats.Histogram { return &l.fetchToService }

// ServiceToReplay returns the replay-policy holdback distribution.
func (l *Lifecycle) ServiceToReplay() *stats.Histogram { return &l.serviceToReplay }

// BirthToReplay returns the end-to-end fault latency distribution.
func (l *Lifecycle) BirthToReplay() *stats.Histogram { return &l.birthToReplay }

// CheckConservation validates that no fault has been lost mid-flight:
// born = replayed + stale + flushed + live. It holds at every instant,
// not just at the end of a run.
func (l *Lifecycle) CheckConservation() error {
	if l == nil {
		return nil
	}
	if got := l.replayed + l.stale + l.flushed + uint64(len(l.live)); got != l.born {
		return fmt.Errorf("obs: fault conservation broken: born %d != replayed %d + stale %d + flushed %d + live %d",
			l.born, l.replayed, l.stale, l.flushed, len(l.live))
	}
	return nil
}

// Final validates the end-of-run contract: conservation holds and every
// born fault reached a terminal state (replayed, stale, or flushed).
func (l *Lifecycle) Final() error {
	if l == nil {
		return nil
	}
	if err := l.CheckConservation(); err != nil {
		return err
	}
	if len(l.live) != 0 {
		return fmt.Errorf("obs: %d faults never reached a terminal state (replayed=%d stale=%d flushed=%d born=%d)",
			len(l.live), l.replayed, l.stale, l.flushed, l.born)
	}
	return nil
}
