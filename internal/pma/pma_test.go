package pma

import (
	"errors"
	"testing"
	"testing/quick"

	"uvmsim/internal/sim"
)

func newTestPMA(t *testing.T, chunks int) *PMA {
	t.Helper()
	cfg := DefaultConfig(int64(chunks) * (2 << 20))
	cfg.RMJitterFrac = 0 // deterministic costs for assertions
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOverAllocationAmortizesRMCalls(t *testing.T) {
	p := newTestPMA(t, 64)
	first, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if first < 22*sim.Microsecond {
		t.Errorf("first alloc cost %v, want an expensive RM call", first)
	}
	// The next 15 come from the cache.
	for i := 0; i < 15; i++ {
		c, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if c != 300*sim.Nanosecond {
			t.Fatalf("cached alloc %d cost %v, want 300ns", i, c)
		}
	}
	if p.RMCalls() != 1 || p.FastAllocs() != 15 {
		t.Errorf("rmCalls=%d fastAllocs=%d", p.RMCalls(), p.FastAllocs())
	}
	// 17th allocation triggers the second RM call.
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if p.RMCalls() != 2 {
		t.Errorf("rmCalls = %d, want 2", p.RMCalls())
	}
}

func TestExhaustionAndFree(t *testing.T) {
	p := newTestPMA(t, 4)
	for i := 0; i < 4; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if !p.Exhausted() {
		t.Error("should be exhausted")
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	p.Free()
	if p.Exhausted() {
		t.Error("free should clear exhaustion")
	}
	if c, err := p.Alloc(); err != nil || c != 300*sim.Nanosecond {
		t.Errorf("post-eviction alloc: cost=%v err=%v (should hit cache)", c, err)
	}
}

func TestPartialOverAllocationNearCapacity(t *testing.T) {
	p := newTestPMA(t, 10) // capacity below OverAllocChunks(16)
	for i := 0; i < 10; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if p.RMCalls() != 1 {
		t.Errorf("rmCalls = %d, want 1 (single capped over-allocation)", p.RMCalls())
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Error("expected OOM at capacity")
	}
}

func TestAccountingInvariant(t *testing.T) {
	p := newTestPMA(t, 32)
	check := func() {
		if p.UsedChunks()+p.CachedChunks()+p.FreeChunks() != p.CapacityChunks() {
			t.Fatalf("invariant broken: used=%d cached=%d free=%d cap=%d",
				p.UsedChunks(), p.CachedChunks(), p.FreeChunks(), p.CapacityChunks())
		}
	}
	for i := 0; i < 20; i++ {
		p.Alloc()
		check()
	}
	for i := 0; i < 10; i++ {
		p.Free()
		check()
	}
	if p.Frees() != 10 {
		t.Errorf("Frees = %d", p.Frees())
	}
}

func TestFreeWithoutAllocPanics(t *testing.T) {
	p := newTestPMA(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("Free on empty PMA did not panic")
		}
	}()
	p.Free()
}

func TestJitteredAllocWithinBounds(t *testing.T) {
	cfg := DefaultConfig(256 << 20)
	p, err := New(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	base := cfg.RMCallCost + sim.Duration(cfg.OverAllocChunks)*cfg.RMPerChunkCost
	lo := sim.Duration(float64(base) * (1 - cfg.RMJitterFrac) * 0.999)
	hi := sim.Duration(float64(base) * (1 + cfg.RMJitterFrac) * 1.001)
	c, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c < lo || c > hi {
		t.Errorf("jittered RM cost %v outside [%v, %v]", c, lo, hi)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ChunkBytes: 0, CapacityBytes: 1}, nil); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := New(Config{ChunkBytes: 2 << 20, CapacityBytes: 1 << 20, OverAllocChunks: 1}, nil); err == nil {
		t.Error("capacity below one chunk accepted")
	}
	cfg := DefaultConfig(16 << 20)
	cfg.OverAllocChunks = 0
	if _, err := New(cfg, sim.NewRNG(1)); err == nil {
		t.Error("zero over-alloc accepted")
	}
	cfg = DefaultConfig(16 << 20)
	if _, err := New(cfg, nil); err == nil {
		t.Error("jitter without RNG accepted")
	}
}

// Property: any interleaving of allocs and frees preserves the chunk
// conservation invariant and never over-commits capacity.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		cfg := DefaultConfig(16 * (2 << 20))
		cfg.RMJitterFrac = 0
		p, err := New(cfg, nil)
		if err != nil {
			return false
		}
		outstanding := 0
		for _, alloc := range ops {
			if alloc {
				if _, err := p.Alloc(); err == nil {
					outstanding++
				} else if !errors.Is(err, ErrOutOfMemory) {
					return false
				}
			} else if outstanding > 0 {
				p.Free()
				outstanding--
			}
			if p.UsedChunks() != outstanding {
				return false
			}
			if p.UsedChunks()+p.CachedChunks()+p.FreeChunks() != p.CapacityChunks() {
				return false
			}
			if p.UsedChunks() > p.CapacityChunks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
