// Package pma models the physical memory allocator the UVM driver calls
// to reserve GPU framebuffer chunks for VABlocks. The real allocator
// lives in the proprietary NVIDIA driver; the paper (§III-D) observes
// that each call is expensive and "subject to system latency", so the
// UVM driver over-allocates and caches chunks to keep the cost roughly
// constant and negligible at large sizes while dominating at small sizes
// (Fig. 4). This package reproduces exactly that cost profile.
package pma

import (
	"errors"
	"fmt"

	"uvmsim/internal/sim"
)

// ErrOutOfMemory is returned when the framebuffer is exhausted; the
// caller (the driver) must evict a VABlock and retry.
var ErrOutOfMemory = errors.New("pma: GPU memory exhausted")

// Config describes the allocator and its cost model.
type Config struct {
	// CapacityBytes is the usable GPU framebuffer size.
	CapacityBytes int64
	// ChunkBytes is the allocation granularity (the VABlock size).
	ChunkBytes int64
	// FastAllocCost is the cost of handing out a cached chunk.
	FastAllocCost sim.Duration
	// RMCallCost is the base cost of a call into the proprietary driver.
	RMCallCost sim.Duration
	// RMPerChunkCost is the additional cost per chunk acquired in one call.
	RMPerChunkCost sim.Duration
	// RMJitterFrac models system-latency noise on RM calls (0 disables).
	RMJitterFrac float64
	// OverAllocChunks is how many chunks one RM call acquires (>= 1).
	OverAllocChunks int
	// FreeCost is the cost of returning a chunk to the cache (eviction).
	FreeCost sim.Duration
}

// DefaultConfig returns a cost model calibrated to the paper's
// observations for a framebuffer of the given size.
func DefaultConfig(capacityBytes int64) Config {
	return Config{
		CapacityBytes:   capacityBytes,
		ChunkBytes:      2 << 20,
		FastAllocCost:   300 * sim.Nanosecond,
		RMCallCost:      22 * sim.Microsecond,
		RMPerChunkCost:  400 * sim.Nanosecond,
		RMJitterFrac:    0.25,
		OverAllocChunks: 16,
		FreeCost:        500 * sim.Nanosecond,
	}
}

// PMA tracks physical GPU memory at chunk granularity. It is a passive
// cost model: Alloc/Free return the simulated time consumed and the
// caller advances its own clock.
type PMA struct {
	cfg      Config
	rng      *sim.RNG
	capacity int // total chunks
	used     int // chunks handed out
	cached   int // chunks acquired from RM but not handed out

	rmCalls    uint64
	fastAllocs uint64
	frees      uint64
}

// New validates cfg and returns an allocator. rng supplies RM-call
// jitter; it may be nil when RMJitterFrac is 0.
func New(cfg Config, rng *sim.RNG) (*PMA, error) {
	if cfg.ChunkBytes <= 0 {
		return nil, fmt.Errorf("pma: chunk size %d must be positive", cfg.ChunkBytes)
	}
	if cfg.CapacityBytes < cfg.ChunkBytes {
		return nil, fmt.Errorf("pma: capacity %d below one chunk (%d)", cfg.CapacityBytes, cfg.ChunkBytes)
	}
	if cfg.OverAllocChunks < 1 {
		return nil, fmt.Errorf("pma: OverAllocChunks %d must be >= 1", cfg.OverAllocChunks)
	}
	if cfg.RMJitterFrac > 0 && rng == nil {
		return nil, errors.New("pma: jitter requested without an RNG")
	}
	return &PMA{
		cfg:      cfg,
		rng:      rng,
		capacity: int(cfg.CapacityBytes / cfg.ChunkBytes),
	}, nil
}

// Alloc reserves one chunk, returning the time consumed. When the
// framebuffer is exhausted it returns ErrOutOfMemory and consumes the
// (cheap) failed-lookup cost.
func (p *PMA) Alloc() (sim.Duration, error) {
	if p.cached > 0 {
		p.cached--
		p.used++
		p.fastAllocs++
		return p.cfg.FastAllocCost, nil
	}
	free := p.capacity - p.used
	if free <= 0 {
		return p.cfg.FastAllocCost, ErrOutOfMemory
	}
	grab := p.cfg.OverAllocChunks
	if grab > free {
		grab = free
	}
	cost := p.cfg.RMCallCost + sim.Duration(grab)*p.cfg.RMPerChunkCost
	if p.cfg.RMJitterFrac > 0 {
		cost = p.rng.Jitter(cost, p.cfg.RMJitterFrac)
	}
	p.rmCalls++
	p.cached = grab - 1
	p.used++
	return cost, nil
}

// Free returns one handed-out chunk to the cache (the eviction path) and
// returns the time consumed.
func (p *PMA) Free() sim.Duration {
	if p.used == 0 {
		panic("pma: Free without outstanding allocation")
	}
	p.used--
	p.cached++
	p.frees++
	return p.cfg.FreeCost
}

// CapacityChunks returns the framebuffer size in chunks.
func (p *PMA) CapacityChunks() int { return p.capacity }

// UsedChunks returns chunks currently handed out.
func (p *PMA) UsedChunks() int { return p.used }

// CachedChunks returns chunks held in the over-allocation cache.
func (p *PMA) CachedChunks() int { return p.cached }

// FreeChunks returns chunks not yet acquired from RM nor handed out.
func (p *PMA) FreeChunks() int { return p.capacity - p.used - p.cached }

// Exhausted reports whether the next Alloc would require an eviction.
func (p *PMA) Exhausted() bool { return p.cached == 0 && p.used >= p.capacity }

// RMCalls returns how many times the proprietary allocator was invoked.
func (p *PMA) RMCalls() uint64 { return p.rmCalls }

// FastAllocs returns how many allocations were served from the cache.
func (p *PMA) FastAllocs() uint64 { return p.fastAllocs }

// Frees returns how many chunks were released.
func (p *PMA) Frees() uint64 { return p.frees }
