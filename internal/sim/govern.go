package sim

import (
	"fmt"
	"sync/atomic"
)

// Run governance: the engine's dispatch loop can be bounded and
// cancelled without giving up its alloc-free hot path. Three mechanisms
// compose:
//
//   - A shared Cancel flag, polled every cancelCheckEvery events, lets a
//     signal handler or context stop many engines cooperatively.
//   - A Budget bounds simulated time, total event count, and forward
//     progress (the livelock window) deterministically: the same budget
//     stops the same run at the same event on every host.
//   - The first tripped condition latches a StopReason; the run then
//     refuses to dispatch further events and the caller turns the reason
//     into a structured run status.
//
// All checks are plain field compares plus (at the polling cadence) one
// atomic load; nothing on this path allocates, which the engine
// benchmarks' allocs/op guard enforces.

// cancelCheckEvery is the dispatch cadence (in events) at which the
// shared cancellation flag is polled. Power of two so the check is a
// mask, not a division.
const cancelCheckEvery = 64

// Cancel is a cooperative cancellation flag shared between a controller
// (signal handler, context watcher, test) and any number of engines.
// The zero value is ready to use; Set may be called from any goroutine
// and is idempotent.
type Cancel struct{ flag atomic.Bool }

// Set requests cancellation of every engine polling this flag.
func (c *Cancel) Set() { c.flag.Store(true) }

// Cancelled reports whether cancellation was requested.
func (c *Cancel) Cancelled() bool { return c.flag.Load() }

// Budget bounds one engine's run. The zero value is unlimited; each
// field is independent and zero disables that bound. All three bounds
// are functions of simulated state only, so a budgeted run stops at the
// same event regardless of host speed or worker count.
type Budget struct {
	// SimDeadline stops the run before dispatching any event scheduled
	// after this clock value.
	SimDeadline Time
	// MaxEvents stops the run once this many events have dispatched.
	MaxEvents uint64
	// LivelockWindow stops the run when this many consecutive events
	// dispatch without the clock advancing — the signature of a
	// zero-delay scheduling loop that would otherwise spin forever.
	LivelockWindow uint64
}

// Active reports whether any bound is set.
func (b Budget) Active() bool {
	return b.SimDeadline > 0 || b.MaxEvents > 0 || b.LivelockWindow > 0
}

// StopReason explains why a governed engine refused to continue.
type StopReason uint8

// Stop reasons. StopNone means the engine ran (or is running) normally.
const (
	StopNone StopReason = iota
	// StopCancelled: the shared Cancel flag was set.
	StopCancelled
	// StopSimBudget: the next event lies beyond Budget.SimDeadline.
	StopSimBudget
	// StopEventBudget: Budget.MaxEvents events have dispatched.
	StopEventBudget
	// StopLivelock: Budget.LivelockWindow events ran without the clock
	// advancing.
	StopLivelock
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopCancelled:
		return "cancelled"
	case StopSimBudget:
		return "sim-budget"
	case StopEventBudget:
		return "event-budget"
	case StopLivelock:
		return "livelock"
	default:
		return fmt.Sprintf("stop(%d)", int(r))
	}
}

// StopError is the structured error a governed run terminates with. It
// records where the engine stopped so budget trips are diagnosable
// ("livelock after 1e6 events at 42ms") and replayable.
type StopError struct {
	Reason   StopReason
	Now      Time
	Executed uint64
}

func (e *StopError) Error() string {
	return fmt.Sprintf("sim: run stopped (%v) after %d events at t=%v", e.Reason, e.Executed, e.Now)
}

// SetCancel installs the shared cancellation flag (nil removes it). The
// flag is polled every cancelCheckEvery dispatched events.
func (e *Engine) SetCancel(c *Cancel) {
	e.cancel = c
	e.governed = e.cancel != nil || e.budget.Active()
}

// SetBudget installs the run budget (the zero Budget removes all bounds).
// The livelock window restarts from the current event count so a bound
// installed mid-run cannot trip on history it never watched.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.lastAdvance = e.executed
	e.governed = e.cancel != nil || e.budget.Active()
}

// StopReason reports why the engine refused to dispatch further events,
// or StopNone while it is running normally. The reason latches: once
// set, Step and Run return immediately until ClearStop.
func (e *Engine) StopReason() StopReason { return e.stop }

// ClearStop resets a latched stop so the engine can be reused (e.g. a
// follow-up kernel on the same system after a budget trip in a test).
// It does not clear the Cancel flag, which the controller owns. The
// livelock window restarts so the cleared run gets a full window of
// grace before the detector can trip again.
func (e *Engine) ClearStop() {
	e.stop = StopNone
	e.lastAdvance = e.executed
}

// checkGovern evaluates the governance conditions against the next
// pending event and latches the first violated one. Called from Step
// only while e.governed; never allocates.
func (e *Engine) checkGovern() bool {
	if e.stop != StopNone {
		return true
	}
	b := &e.budget
	if b.MaxEvents > 0 && e.executed >= b.MaxEvents {
		e.stop = StopEventBudget
		return true
	}
	if b.LivelockWindow > 0 && e.executed-e.lastAdvance >= b.LivelockWindow {
		e.stop = StopLivelock
		return true
	}
	if b.SimDeadline > 0 && e.events[0].at > b.SimDeadline {
		e.stop = StopSimBudget
		return true
	}
	if e.cancel != nil && e.executed&(cancelCheckEvery-1) == 0 && e.cancel.Cancelled() {
		e.stop = StopCancelled
		return true
	}
	return false
}
