package sim

import "testing"

func TestObserverRunsAfterEveryEvent(t *testing.T) {
	e := NewEngine()
	var seen []Time
	e.SetObserver(func(now Time) { seen = append(seen, now) })
	e.At(10, func() {})
	e.At(5, func() { e.After(20, func() {}) })
	e.Run()
	want := []Time{5, 10, 25}
	if len(seen) != len(want) {
		t.Fatalf("observer fired %d times, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("observation %d at t=%v, want %v", i, seen[i], w)
		}
	}
}

func TestObserverSeesEventEffects(t *testing.T) {
	// The observer runs after the event's function, so state mutated by
	// the event is visible — that is what lets an invariant checker
	// validate post-conditions.
	e := NewEngine()
	state := 0
	var observed []int
	e.SetObserver(func(Time) { observed = append(observed, state) })
	e.At(1, func() { state = 1 })
	e.At(2, func() { state = 2 })
	e.Run()
	if len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Errorf("observed = %v, want [1 2]", observed)
	}
}

func TestObserverDetach(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetObserver(func(Time) { fired++ })
	e.At(1, func() {})
	e.At(2, func() { e.SetObserver(nil) })
	e.At(3, func() {})
	e.Run()
	// Observed events 1 and 2; event 3 runs after detach. The detach event
	// itself is not observed: SetObserver(nil) takes effect immediately.
	if fired != 1 {
		t.Errorf("observer fired %d times after detach mid-run, want 1", fired)
	}
}
