// Package sim provides the discrete-event simulation engine that drives
// every component of the simulated UVM system.
//
// The engine keeps an int64 nanosecond clock and a binary heap of pending
// events. Execution is fully deterministic: events at equal timestamps run
// in scheduling order (a monotonically increasing sequence number breaks
// ties). Components never block; they schedule continuations instead.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the simulated clock, in nanoseconds since simulation
// start.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration semantics but is kept distinct so simulated and host time
// cannot be mixed accidentally.
type Duration int64

// Convenience duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders a Time with automatic unit selection.
func (t Time) String() string { return Duration(t).String() }

// String renders a Duration with automatic unit selection.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Add offsets a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// less orders events by timestamp, breaking ties by scheduling order.
func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event simulator. The zero value is
// ready to use.
//
// The pending queue is a binary min-heap stored inline in a slice of
// event values with hand-rolled sift-up/sift-down. container/heap would
// box every event through interface{} on both Push and Pop — two heap
// allocations per scheduled event on the simulator's hottest path. The
// inline heap allocates nothing per event (events live by value in the
// backing array, which doubles as the slab), so the only unavoidable
// per-event allocation left is the caller's closure.
type Engine struct {
	now    Time
	seq    uint64
	events []event
	// Executed counts events dispatched so far; useful for debugging and
	// for bounding runaway simulations in tests.
	executed uint64
	// observer, when set, runs after every dispatched event (the
	// invariant checker's hook).
	observer func(now Time)
	// Run governance (see govern.go). governed mirrors "cancel != nil ||
	// budget.Active()" so the ungoverned hot path pays one bool test.
	governed    bool
	cancel      *Cancel
	budget      Budget
	stop        StopReason
	lastAdvance uint64 // executed count when the clock last advanced
}

// defaultHeapCap is the pending-queue capacity preallocated by NewEngine;
// it absorbs the fault-storm fan-out of a typical batch without any
// regrowth copying (24 B/event, so this is ~6 KB per engine).
const defaultHeapCap = 256

// NewEngine returns an engine with the clock at zero and the event heap
// preallocated to defaultHeapCap.
func NewEngine() *Engine { return NewEngineCap(defaultHeapCap) }

// NewEngineCap returns an engine whose event heap is preallocated for
// hint pending events. Callers that know their peak queue depth (e.g. a
// fan-out of one event per page in a batch) can avoid all regrowth.
func NewEngineCap(hint int) *Engine {
	if hint < 0 {
		hint = 0
	}
	return &Engine{events: make([]event, 0, hint)}
}

// push inserts ev into the heap (sift-up).
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// pop removes and returns the earliest event (sift-down). The vacated
// slot is zeroed so the popped closure does not leak via the slab.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	for i := 0; ; {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && less(h[r], h[child]) {
			child = r
		}
		if !less(h[child], h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	e.events = h
	return top
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetObserver installs fn to run after every dispatched event, with the
// clock at the event's timestamp. Pass nil to remove it. A runtime
// invariant checker hooks here to validate conservation properties after
// each state transition; the hook must not schedule events.
func (e *Engine) SetObserver(fn func(now Time)) { e.observer = fn }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it indicates a bookkeeping bug in the caller, and silently
// reordering time would corrupt every measurement downstream.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	e.At(e.now.Add(d), fn)
}

// Step dispatches the single earliest event. It reports whether an event
// was available. A governed engine (SetCancel/SetBudget) additionally
// refuses to dispatch once a budget trips or cancellation is observed;
// StopReason then explains why.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	if e.governed {
		if e.checkGovern() {
			return false
		}
		if e.events[0].at > e.now {
			e.lastAdvance = e.executed
		}
	}
	ev := e.pop()
	e.now = ev.at
	e.executed++
	ev.fn()
	if e.observer != nil {
		e.observer(e.now)
	}
	return true
}

// Run dispatches events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event). Events scheduled beyond t stay
// queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		if !e.Step() {
			return // governance stop: the queue is non-empty but frozen
		}
	}
	if e.now < t {
		e.now = t
	}
}

// RunLimit dispatches at most n events; it returns the number dispatched.
// It exists so tests can bound simulations that would otherwise run
// forever when a component misbehaves.
func (e *Engine) RunLimit(n uint64) uint64 {
	var done uint64
	for done < n && e.Step() {
		done++
	}
	return done
}
