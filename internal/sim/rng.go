package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 seeding into xoshiro256**). Workload generators and the GPU
// scheduler jitter use it so that every simulation is reproducible from a
// single seed, independent of math/rand's global state.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero,
// is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics when n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: RNG.Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns a duration in [d - d*frac, d + d*frac], clamped at zero.
// It models system-latency noise (e.g. PMA allocation calls into the
// proprietary driver are "subject to system latency" per the paper).
func (r *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 || d == 0 {
		return d
	}
	span := float64(d) * frac
	off := (r.Float64()*2 - 1) * span
	out := Duration(float64(d) + off)
	if out < 0 {
		out = 0
	}
	return out
}

// Perm fills a permutation of [0, n) into a new slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
