package sim

import (
	"testing"
)

// A zero-delay self-rescheduling event is the canonical livelock: the
// queue never drains and the clock never moves. The livelock window
// must stop it; without governance the loop would spin forever.
func TestLivelockWindowStopsZeroDelayLoop(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{LivelockWindow: 1000})
	var spin func()
	spin = func() { e.At(e.Now(), spin) }
	e.At(0, spin)
	e.Run()
	if got := e.StopReason(); got != StopLivelock {
		t.Fatalf("StopReason = %v, want %v", got, StopLivelock)
	}
	if e.Executed() > 1100 {
		t.Errorf("livelock detector let %d events run past a window of 1000", e.Executed())
	}
	// The stop latches: no further dispatch until cleared.
	if e.Step() {
		t.Error("Step dispatched after a latched stop")
	}
	e.ClearStop()
	if !e.Step() {
		t.Error("ClearStop did not re-arm dispatch")
	}
}

// A timer chain that advances the clock every event must NOT trip the
// livelock window.
func TestLivelockWindowIgnoresForwardProgress(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{LivelockWindow: 16})
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 1000 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if got := e.StopReason(); got != StopNone {
		t.Fatalf("StopReason = %v for a progressing chain, want none", got)
	}
	if n != 1000 {
		t.Fatalf("chain ran %d steps, want 1000", n)
	}
}

// MaxEvents stops a run after exactly the budgeted number of dispatches.
func TestEventBudget(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxEvents: 100})
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	e.Run()
	if got := e.StopReason(); got != StopEventBudget {
		t.Fatalf("StopReason = %v, want %v", got, StopEventBudget)
	}
	if e.Executed() != 100 {
		t.Errorf("executed %d events, budget is 100", e.Executed())
	}
}

// SimDeadline stops the run before dispatching past the deadline; the
// clock never exceeds it.
func TestSimDeadline(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{SimDeadline: 50})
	var tick func()
	tick = func() { e.After(10, tick) }
	e.After(10, tick)
	e.Run()
	if got := e.StopReason(); got != StopSimBudget {
		t.Fatalf("StopReason = %v, want %v", got, StopSimBudget)
	}
	if e.Now() > 50 {
		t.Errorf("clock at %v, deadline was 50ns", e.Now())
	}
	if e.Pending() == 0 {
		t.Error("deadline stop drained the queue; the pending event should remain")
	}
}

// Setting the shared Cancel flag stops every engine polling it, within
// one polling cadence of events.
func TestCancelFlagStopsRun(t *testing.T) {
	c := &Cancel{}
	e := NewEngine()
	e.SetCancel(c)
	n := 0
	var tick func()
	tick = func() {
		if n++; n == 10 {
			c.Set()
		}
		e.After(1, tick)
	}
	e.After(1, tick)
	e.Run()
	if got := e.StopReason(); got != StopCancelled {
		t.Fatalf("StopReason = %v, want %v", got, StopCancelled)
	}
	if uint64(n) > 10+cancelCheckEvery {
		t.Errorf("cancellation took %d events, polling cadence is %d", n-10, cancelCheckEvery)
	}
}

// An ungoverned engine must behave exactly as before: no stop reason,
// full drain.
func TestUngovernedRunsToCompletion(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 500 {
			e.At(e.Now(), tick) // zero-delay loop, bounded only by n
		}
	}
	e.At(0, tick)
	e.Run()
	if e.StopReason() != StopNone || n != 500 {
		t.Fatalf("ungoverned run: stop=%v n=%d", e.StopReason(), n)
	}
}

// Governance must add zero allocations to the dispatch loop.
func TestGovernedDispatchAllocFree(t *testing.T) {
	c := &Cancel{}
	e := NewEngine()
	e.SetCancel(c)
	e.SetBudget(Budget{MaxEvents: 1 << 40, SimDeadline: MaxTime - 1, LivelockWindow: 1 << 40})
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 64; j++ {
			e.At(e.Now()+Time(j%7), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("governed dispatch allocates %.1f per run, want 0", allocs)
	}
}

func TestStopErrorMessage(t *testing.T) {
	err := &StopError{Reason: StopLivelock, Now: 1500, Executed: 42}
	for _, want := range []string{"livelock", "42", "1.50us"} {
		if !contains(err.Error(), want) {
			t.Errorf("StopError %q misses %q", err.Error(), want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
