package sim

import "testing"

// The engine's push/dispatch loop is the simulator's hottest path: every
// warp step, fault, migration, and replay is at least one event. These
// microbenchmarks pin its cost per event so regressions (and wins) are
// measured, not asserted. All report allocs/op; the slab-free heap path
// should allocate nothing beyond the scheduled closure itself.

// BenchmarkEngineFanOut schedules a batch of independent events and
// drains them: the fault-storm shape (many events queued at once).
func BenchmarkEngineFanOut(b *testing.B) {
	const batch = 1024
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < batch; j++ {
			e.At(Time(j%97), fn)
		}
		e.Run()
	}
	b.ReportMetric(float64(batch), "events/op")
}

// BenchmarkEngineChain runs one self-rescheduling event: the timer-chain
// shape (queue stays tiny, push/pop alternate).
func BenchmarkEngineChain(b *testing.B) {
	const steps = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var tick func()
		tick = func() {
			if n++; n < steps {
				e.After(1, tick)
			}
		}
		e.After(1, tick)
		e.Run()
	}
	b.ReportMetric(float64(steps), "events/op")
}

// BenchmarkEngineGoverned is BenchmarkEngineMixed with full governance
// armed (cancel flag + every budget) — the cost ceiling of the
// cancellation/watchdog checks on the dispatch hot path. Must stay
// within a few percent of Mixed and at the same allocs/op.
func BenchmarkEngineGoverned(b *testing.B) {
	const depth, steps = 256, 2048
	c := &Cancel{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.SetCancel(c)
		e.SetBudget(Budget{SimDeadline: MaxTime - 1, MaxEvents: 1 << 40, LivelockWindow: 1 << 40})
		n := 0
		reschedule := func() {}
		reschedule = func() {
			if n++; n < steps {
				e.After(Duration(1+n%13), reschedule)
			}
		}
		for j := 0; j < depth; j++ {
			e.At(Time(j), reschedule)
		}
		e.Run()
	}
}

// BenchmarkEngineMixed interleaves scheduling and dispatch at a steady
// queue depth, the steady-state shape of a running simulation.
func BenchmarkEngineMixed(b *testing.B) {
	const depth, steps = 256, 2048
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		reschedule := func() {}
		reschedule = func() {
			if n++; n < steps {
				e.After(Duration(1+n%13), reschedule)
			}
		}
		for j := 0; j < depth; j++ {
			e.At(Time(j), reschedule)
		}
		e.Run()
	}
}
