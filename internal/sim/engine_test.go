package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
		e.After(1, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 3 || trace[0] != 10 || trace[1] != 11 || trace[2] != 15 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("After with negative duration did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v events before t=12, want 2", fired)
	}
	if e.Now() != 12 {
		t.Errorf("Now = %v, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 20 {
		t.Errorf("after Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	var n int
	var reschedule func()
	reschedule = func() {
		n++
		e.After(1, reschedule)
	}
	e.After(1, reschedule)
	done := e.RunLimit(100)
	if done != 100 || n != 100 {
		t.Fatalf("RunLimit dispatched %d (n=%d), want 100", done, n)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
	if e.Run() != 0 {
		t.Error("Run on empty queue moved the clock")
	}
}

func TestTimeArithmetic(t *testing.T) {
	var base Time = 1000
	if base.Add(500) != 1500 {
		t.Error("Add")
	}
	if Time(1500).Sub(base) != 500 {
		t.Error("Sub")
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		12:               "12ns",
		3 * Microsecond:  "3.00us",
		45 * Millisecond: "45.00ms",
		2 * Second:       "2.000s",
		-5:               "-5ns",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds")
	}
	if (3 * Microsecond).Micros() != 3.0 {
		t.Error("Micros")
	}
}

// Property: event timestamps never decrease across a run, regardless of
// insertion order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, off := range offsets {
			at := Time(off)
			e.At(at, func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(5)
	const d = 1000 * Nanosecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.25)
		if j < 750 || j > 1250 {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Error("zero-frac jitter should return d unchanged")
	}
}

func TestRNGUint64n(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}

// Property: Jitter never returns negative and stays within the requested
// fraction.
func TestRNGJitterProperty(t *testing.T) {
	r := NewRNG(123)
	f := func(base uint32, fracRaw uint8) bool {
		d := Duration(base)
		frac := float64(fracRaw%100) / 100
		j := r.Jitter(d, frac)
		if j < 0 {
			return false
		}
		lo := Duration(float64(d) * (1 - frac) * 0.999)
		hi := Duration(float64(d)*(1+frac)*1.001) + 1
		return j >= lo && j <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
