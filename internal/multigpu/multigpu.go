// Package multigpu generalizes the single-GPU UVM model to K devices
// sharing one managed address space, following the MGSim/MGMark line of
// multi-GPU simulators: per-device drivers, fault buffers, and eviction
// policies coordinate through a shared residency map (VABlock → owning
// device | host, plus per-device remote-mapping state), and peer traffic
// rides an interconnect fabric whose channels contend with each device's
// host-link DMA engines.
//
// Ownership rules (DESIGN.md §15):
//
//   - A block is owned by at most one device at a time; ownership is
//     claimed when a device allocates physical backing for it
//     (first-touch pins placement there).
//   - A device faulting on a peer-owned block receives a remote mapping:
//     its view marks the block Remote with every valid page "resident"
//     through the fabric, and every access streams over the peer channel
//     to the owner.
//   - When the owner evicts a block, ownership returns to the host and
//     every peer's remote mapping is invalidated; the next access on any
//     device re-faults and re-services from host memory (the NUMA-thrash
//     regime the scaling experiments measure).
//   - Under the access-counter policy, a device whose remote-access count
//     for a block reaches the threshold triggers a peer-to-peer
//     migration: ownership and pages move to the accessing device in one
//     atomic bookkeeping flip, with the transfer's cost modeled as
//     fabric-channel plus DMA-engine occupancy on both ends.
//
// Everything runs on the single simulation engine, so K>1 systems stay
// deterministic at any host parallelism exactly like K=1.
package multigpu

import (
	"fmt"

	"uvmsim/internal/driver"
	"uvmsim/internal/evict"
	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/pma"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

// Policy selects how pages are placed across devices.
type Policy int

// Migration policies.
const (
	// FirstTouch pins a block to the first device that allocates backing
	// for it; peers access it remotely until the owner evicts it.
	FirstTouch Policy = iota
	// AccessCounter migrates a block to a remote accessor once that
	// device's access counter for the block reaches the threshold
	// (Volta-style access-counter migration).
	AccessCounter
)

// String names the policy as it appears in labels and CLI flags.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case AccessCounter:
		return "access-counter"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name; "" selects the default FirstTouch.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "first-touch", "":
		return FirstTouch, nil
	case "access-counter":
		return AccessCounter, nil
	default:
		return 0, fmt.Errorf("multigpu: unknown migration policy %q", s)
	}
}

// DefaultThreshold is the access-counter migration threshold when none
// is configured: remote accesses to one block from one device before a
// migration triggers.
const DefaultThreshold = 8

// MaxDevices bounds K; remote holders are tracked in a 64-bit mask.
const MaxDevices = 64

// Device is one GPU's component bundle as the manager sees it. Each
// device has its own address-space view (identical range layout across
// views, so PageIDs and VABlockIDs are global), allocator, eviction
// policy, and host link.
type Device struct {
	ID     int
	Space  *mem.AddressSpace
	PMA    *pma.PMA
	Evict  evict.Policy
	Link   *xfer.Link
	Tracer *obs.Tracer // optional span tracing; nil-safe
}

// Config tunes the manager.
type Config struct {
	// Policy is the migration policy.
	Policy Policy
	// Threshold is the access-counter migration threshold (0 selects
	// DefaultThreshold). Ignored under FirstTouch.
	Threshold int
	// Peer describes every peer↔peer channel (0 values select
	// xfer.DefaultNVLink2).
	Peer xfer.LinkConfig
}

// Manager is the shared residency map plus the interconnect fabric: the
// coordination point between the K per-device driver instances.
type Manager struct {
	eng  *sim.Engine
	cfg  Config
	devs []*Device
	fab  *Fabric

	// owner maps a VABlock to the device holding its physical backing;
	// absent means host-resident (the initial state and the state after
	// the owner evicts).
	owner map[mem.VABlockID]int
	// remote is the per-block bitmask of devices holding remote mappings.
	remote map[mem.VABlockID]uint64
	// counts is the per-block, per-device remote-access counter feeding
	// the AccessCounter policy. Allocated lazily per block; absent under
	// FirstTouch.
	counts map[mem.VABlockID][]uint32

	reg               *obs.Registry
	remoteAccesses    *obs.Counter
	migrations        *obs.Counter
	migrationsAborted *obs.Counter
	invalidations     *obs.Counter
}

// NewManager wires the shared residency map and fabric over devs. Every
// device must present the identical range layout in its address-space
// view (the manager addresses blocks by global VABlockID).
func NewManager(eng *sim.Engine, cfg Config, devs []*Device) (*Manager, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("multigpu: need at least 2 devices, got %d", len(devs))
	}
	if len(devs) > MaxDevices {
		return nil, fmt.Errorf("multigpu: at most %d devices supported, got %d", MaxDevices, len(devs))
	}
	if cfg.Policy < FirstTouch || cfg.Policy > AccessCounter {
		return nil, fmt.Errorf("multigpu: invalid migration policy %d", int(cfg.Policy))
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Peer.BandwidthBytesPerSec <= 0 {
		cfg.Peer = xfer.DefaultNVLink2()
	}
	for i, d := range devs {
		if d.ID != i {
			return nil, fmt.Errorf("multigpu: device %d registered at index %d", d.ID, i)
		}
	}
	reg := obs.NewRegistry()
	m := &Manager{
		eng:               eng,
		cfg:               cfg,
		devs:              devs,
		fab:               newFabric(eng, cfg.Peer, devs),
		owner:             make(map[mem.VABlockID]int),
		remote:            make(map[mem.VABlockID]uint64),
		counts:            make(map[mem.VABlockID][]uint32),
		reg:               reg,
		remoteAccesses:    reg.Counter("p2p_remote_accesses"),
		migrations:        reg.Counter("p2p_migrations"),
		migrationsAborted: reg.Counter("p2p_migrations_aborted"),
		invalidations:     reg.Counter("p2p_invalidations"),
	}
	return m, nil
}

// Devices returns the managed devices in ID order.
func (m *Manager) Devices() []*Device { return m.devs }

// Fabric returns the interconnect fabric.
func (m *Manager) Fabric() *Fabric { return m.fab }

// Registry exposes the manager's fabric/migration counters.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Owner returns the device owning block id, or -1 for host.
func (m *Manager) Owner(id mem.VABlockID) int {
	if o, ok := m.owner[id]; ok {
		return o
	}
	return -1
}

// ---- driver hook (per-device view of the residency map) ----

// driverView adapts the manager to driver.Residency for one device.
type driverView struct {
	m   *Manager
	dev int
}

// DriverHook returns device dev's driver.Residency adapter.
func (m *Manager) DriverHook(dev int) driver.Residency {
	return driverView{m: m, dev: dev}
}

// Classify implements driver.Residency.
func (v driverView) Classify(id mem.VABlockID) driver.Ownership {
	o, ok := v.m.owner[id]
	switch {
	case !ok:
		return driver.OwnHost
	case o == v.dev:
		return driver.OwnSelf
	default:
		return driver.OwnPeer
	}
}

// RemoteMap implements driver.Residency: install remote mappings for
// every valid page of b in the calling device's view.
func (v driverView) RemoteMap(b *mem.VABlock) int {
	m, dev := v.m, v.dev
	valid := m.devs[dev].Space.ValidPagesIn(b.ID)
	b.Remote = true
	if valid > 0 {
		b.Resident.SetRange(0, valid)
	}
	m.remote[b.ID] |= 1 << uint(dev)
	return valid
}

// Claimed implements driver.Residency: dev allocated backing for b.
func (v driverView) Claimed(b *mem.VABlock) {
	m := v.m
	if o, ok := m.owner[b.ID]; ok && o != v.dev {
		panic(fmt.Sprintf("multigpu: device %d claimed block %d already owned by device %d", v.dev, b.ID, o))
	}
	m.owner[b.ID] = v.dev
	delete(m.counts, b.ID)
}

// Released implements driver.Residency: dev evicted b. Ownership returns
// to the host and every peer's remote mapping is invalidated — their
// next access re-faults and re-services from host memory.
func (v driverView) Released(b *mem.VABlock) {
	m := v.m
	delete(m.owner, b.ID)
	mask := m.remote[b.ID]
	if mask != 0 {
		for d := 0; d < len(m.devs); d++ {
			if mask&(1<<uint(d)) == 0 {
				continue
			}
			if blk := m.devs[d].Space.BlockIfExists(b.ID); blk != nil && blk.Remote {
				blk.Remote = false
				blk.Resident.Reset()
				blk.Dirty.Reset()
			}
			m.invalidations.Inc(1)
		}
		delete(m.remote, b.ID)
	}
	delete(m.counts, b.ID)
}

// ---- GPU hook (remote access routing) ----

// RemoteAccess routes one remote access from device dev to b's owner
// over the fabric and returns the wait the warp observes. Under the
// AccessCounter policy it also advances the per-device counter and
// schedules a migration when the threshold is reached.
func (m *Manager) RemoteAccess(dev int, page mem.PageID, write bool, b *mem.VABlock) sim.Duration {
	o, ok := m.owner[b.ID]
	if !ok {
		// No device owns the block: either a host-pinned zero-copy range
		// (ModeRemoteMap) or a mapping mid-invalidation. Both service from
		// host memory over this device's own link, exactly like the
		// single-GPU remote path.
		link := m.devs[dev].Link
		dir := xfer.HostToDevice
		if write {
			dir = xfer.DeviceToHost
		}
		end := link.EnqueueStream(dir, mem.PageSize)
		return end.Sub(m.eng.Now())
	}
	m.remoteAccesses.Inc(1)
	wait := m.fab.Stream(o, dev, mem.PageSize)
	if write {
		// Writes land in the owner's memory: mark the owner's copy dirty
		// so its eventual eviction writes the page back.
		ownerBlk := m.devs[o].Space.Block(b.ID)
		ownerBlk.Dirty.Set(m.devs[o].Space.Geometry().PageIndex(page))
	}
	if m.cfg.Policy == AccessCounter && o != dev {
		c := m.counts[b.ID]
		if c == nil {
			c = make([]uint32, len(m.devs))
			m.counts[b.ID] = c
		}
		c[dev]++
		if c[dev] == uint32(m.cfg.Threshold) {
			id, dst, expect := b.ID, dev, o
			m.eng.After(0, func() { m.tryMigrate(id, dst, expect) })
		}
	}
	return wait
}

// tryMigrate executes one scheduled access-counter migration of block id
// to device dst, expecting expectOwner to still own it. Stale triggers
// (ownership moved, mapping invalidated) are dropped; destination memory
// pressure aborts and re-arms the counter.
func (m *Manager) tryMigrate(id mem.VABlockID, dst, expectOwner int) {
	cur, ok := m.owner[id]
	if !ok || cur != expectOwner || cur == dst {
		return
	}
	dstDev := m.devs[dst]
	dstBlk := dstDev.Space.BlockIfExists(id)
	if dstBlk == nil || !dstBlk.Remote {
		return
	}
	if _, err := dstDev.PMA.Alloc(); err != nil {
		m.migrationsAborted.Inc(1)
		if c := m.counts[id]; c != nil {
			c[dst] = 0
		}
		return
	}
	srcDev := m.devs[cur]
	srcBlk := srcDev.Space.Block(id)
	m.fab.Transfer(cur, dst, mem.Bytes(srcBlk.Resident.Count()))
	// The bookkeeping flips atomically here; the transfer's latency is
	// modeled as fabric-channel and DMA-engine occupancy on both devices,
	// which is what makes a P2P migration and a host fetch on the same
	// device visibly serialize.
	dstBlk.Remote = false
	dstBlk.Allocated = true
	dstBlk.Resident.CopyFrom(srcBlk.Resident)
	dstBlk.Dirty.CopyFrom(srcBlk.Dirty)
	dstBlk.Touches++
	dstDev.Evict.Insert(dstBlk)
	srcDev.Evict.Remove(srcBlk)
	srcDev.PMA.Free()
	srcBlk.Resident.Reset()
	srcBlk.Dirty.Reset()
	srcBlk.Allocated = false
	srcBlk.Evictions++
	m.owner[id] = dst
	m.remote[id] &^= 1 << uint(dst)
	delete(m.counts, id)
	m.migrations.Inc(1)
}

// PrestageOwner records block b of device dev's view as explicitly
// staged (owner = dev) and remote-maps it on every other device, the
// naive explicit multi-GPU distribution RunExplicit models.
func (m *Manager) PrestageOwner(dev int, b *mem.VABlock) {
	m.owner[b.ID] = dev
	for d := range m.devs {
		if d == dev {
			continue
		}
		blk := m.devs[d].Space.Block(b.ID)
		driverView{m: m, dev: d}.RemoteMap(blk)
	}
}
