package multigpu

import (
	"strings"
	"testing"

	"uvmsim/internal/driver"
	"uvmsim/internal/evict"
	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/pma"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", FirstTouch, false},
		{"first-touch", FirstTouch, false},
		{"access-counter", AccessCounter, false},
		{"bogus", 0, true},
		{"FIRST-TOUCH", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParsePolicy(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if FirstTouch.String() != "first-touch" || AccessCounter.String() != "access-counter" {
		t.Errorf("policy names: %v %v", FirstTouch, AccessCounter)
	}
}

// harness builds K devices over one engine with identical address-space
// layouts and one managed range of blocks VABlocks.
type harness struct {
	eng  *sim.Engine
	m    *Manager
	devs []*Device
}

func newHarness(t *testing.T, K, blocks int, cfg Config) *harness {
	t.Helper()
	eng := sim.NewEngine()
	geom, err := mem.NewGeometry(mem.DefaultVABlockSize)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*Device, K)
	for d := 0; d < K; d++ {
		rng := sim.NewRNG(uint64(1 + d))
		space := mem.NewAddressSpace(geom)
		space.MarkSpecial()
		if _, err := space.Alloc(int64(blocks)*mem.DefaultVABlockSize, "data"); err != nil {
			t.Fatal(err)
		}
		pcfg := pma.DefaultConfig(int64(blocks) * mem.DefaultVABlockSize)
		pcfg.RMJitterFrac = 0
		pm, err := pma.New(pcfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		link, err := xfer.NewLink(eng, xfer.DefaultPCIe3x16())
		if err != nil {
			t.Fatal(err)
		}
		ev, err := evict.New("lru", rng)
		if err != nil {
			t.Fatal(err)
		}
		devs[d] = &Device{ID: d, Space: space, PMA: pm, Evict: ev, Link: link}
	}
	m, err := NewManager(eng, cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, m: m, devs: devs}
}

// claim allocates backing for block id on device d through the driver
// hook, the way ensureAlloc does.
func (h *harness) claim(t *testing.T, d int, id mem.VABlockID) *mem.VABlock {
	t.Helper()
	blk := h.devs[d].Space.Block(id)
	if _, err := h.devs[d].PMA.Alloc(); err != nil {
		t.Fatal(err)
	}
	blk.Allocated = true
	blk.Resident.SetRange(0, blk.Resident.Len())
	h.devs[d].Evict.Insert(blk)
	h.m.DriverHook(d).Claimed(blk)
	return blk
}

func TestNewManagerValidation(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	if _, err := NewManager(h.eng, Config{}, h.devs[:1]); err == nil {
		t.Error("single device accepted")
	}
	if _, err := NewManager(h.eng, Config{Policy: Policy(7)}, h.devs); err == nil {
		t.Error("invalid policy accepted")
	}
	swapped := []*Device{h.devs[1], h.devs[0]}
	if _, err := NewManager(h.eng, Config{}, swapped); err == nil {
		t.Error("misordered device IDs accepted")
	}
}

func TestOwnershipLifecycle(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	id := h.devs[0].Space.Ranges()[0].StartPage
	_ = id
	blkID := mem.VABlockID(0)

	if got := h.m.DriverHook(1).Classify(blkID); got != driver.OwnHost {
		t.Errorf("unowned block classified %v, want OwnHost", got)
	}
	own := h.claim(t, 0, blkID)
	if got := h.m.DriverHook(0).Classify(blkID); got != driver.OwnSelf {
		t.Errorf("owner classified %v, want OwnSelf", got)
	}
	if got := h.m.DriverHook(1).Classify(blkID); got != driver.OwnPeer {
		t.Errorf("peer classified %v, want OwnPeer", got)
	}

	peer := h.devs[1].Space.Block(blkID)
	pages := h.m.DriverHook(1).RemoteMap(peer)
	if pages != h.devs[1].Space.ValidPagesIn(blkID) {
		t.Errorf("RemoteMap mapped %d pages", pages)
	}
	if !peer.Remote || peer.Resident.Count() != pages {
		t.Error("remote mapping not installed in peer view")
	}

	// Owner evicts: ownership returns to host and the peer mapping dies.
	h.m.DriverHook(0).Released(own)
	if h.m.Owner(blkID) != -1 {
		t.Errorf("owner = %d after release, want -1", h.m.Owner(blkID))
	}
	if peer.Remote || peer.Resident.Count() != 0 {
		t.Error("peer mapping survived owner eviction")
	}
	if h.m.Registry().Counter("p2p_invalidations").Get() != 1 {
		t.Error("invalidation not counted")
	}
}

func TestClaimForeignOwnerPanics(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	h.claim(t, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("claiming a peer-owned block did not panic")
		}
	}()
	blk := h.devs[1].Space.Block(0)
	h.m.DriverHook(1).Claimed(blk)
}

func TestAccessCounterMigration(t *testing.T) {
	h := newHarness(t, 2, 4, Config{Policy: AccessCounter, Threshold: 3})
	own := h.claim(t, 0, 0)
	own.Dirty.Set(1)
	peer := h.devs[1].Space.Block(0)
	h.m.DriverHook(1).RemoteMap(peer)

	geom := h.devs[1].Space.Geometry()
	page := geom.FirstPage(0)
	for i := 0; i < 3; i++ {
		if wait := h.m.RemoteAccess(1, page, false, peer); wait <= 0 {
			t.Errorf("remote access %d waited %v, want > 0", i, wait)
		}
	}
	h.eng.Run() // drains the scheduled tryMigrate

	if h.m.Owner(0) != 1 {
		t.Fatalf("owner = %d after threshold remote accesses, want 1", h.m.Owner(0))
	}
	if peer.Remote || !peer.Allocated {
		t.Error("destination view not flipped to local backing")
	}
	if peer.Resident.Count() == 0 || !peer.Dirty.Get(1) {
		t.Error("residency/dirty state not carried by the migration")
	}
	if own.Allocated || own.Resident.Count() != 0 {
		t.Error("source view kept backing after migration")
	}
	if h.devs[0].PMA.UsedChunks() != 0 || h.devs[1].PMA.UsedChunks() != 1 {
		t.Errorf("chunks: src=%d dst=%d", h.devs[0].PMA.UsedChunks(), h.devs[1].PMA.UsedChunks())
	}
	if h.m.Registry().Counter("p2p_migrations").Get() != 1 {
		t.Error("migration not counted")
	}
	// The transfer must have occupied both DMA engines: a host fetch on
	// either device scheduled now serializes behind it.
	if h.devs[0].Link.FreeAt(xfer.DeviceToHost) <= h.eng.Now().Add(-sim.Duration(1)) &&
		h.devs[0].Link.BusyTime(xfer.DeviceToHost) == 0 {
		t.Error("source D2H engine never held")
	}
	if h.devs[1].Link.BusyTime(xfer.HostToDevice) == 0 {
		t.Error("destination H2D engine never held")
	}
}

func TestFirstTouchNeverMigrates(t *testing.T) {
	h := newHarness(t, 2, 4, Config{Policy: FirstTouch})
	h.claim(t, 0, 0)
	peer := h.devs[1].Space.Block(0)
	h.m.DriverHook(1).RemoteMap(peer)
	page := h.devs[1].Space.Geometry().FirstPage(0)
	for i := 0; i < 100; i++ {
		h.m.RemoteAccess(1, page, false, peer)
	}
	h.eng.Run()
	if h.m.Owner(0) != 0 {
		t.Errorf("first-touch moved ownership to %d", h.m.Owner(0))
	}
	if got := h.m.Registry().Counter("p2p_remote_accesses").Get(); got != 100 {
		t.Errorf("remote accesses = %d, want 100", got)
	}
}

func TestMigrationAbortsUnderPressure(t *testing.T) {
	// Destination framebuffer of exactly one chunk, already full: the
	// migration must abort, count it, and reset the trigger counter.
	eng := sim.NewEngine()
	geom, _ := mem.NewGeometry(mem.DefaultVABlockSize)
	devs := make([]*Device, 2)
	for d := 0; d < 2; d++ {
		rng := sim.NewRNG(uint64(1 + d))
		space := mem.NewAddressSpace(geom)
		space.MarkSpecial()
		if _, err := space.Alloc(4*mem.DefaultVABlockSize, "data"); err != nil {
			t.Fatal(err)
		}
		pcfg := pma.DefaultConfig(mem.DefaultVABlockSize) // one chunk
		pcfg.RMJitterFrac = 0
		pm, err := pma.New(pcfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		link, _ := xfer.NewLink(eng, xfer.DefaultPCIe3x16())
		ev, _ := evict.New("lru", rng)
		devs[d] = &Device{ID: d, Space: space, PMA: pm, Evict: ev, Link: link}
	}
	m, err := NewManager(eng, Config{Policy: AccessCounter, Threshold: 1}, devs)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1's only chunk holds block 1; block 0 lives on device 0.
	blk1 := devs[1].Space.Block(1)
	devs[1].PMA.Alloc()
	blk1.Allocated = true
	m.DriverHook(1).Claimed(blk1)
	blk0 := devs[0].Space.Block(0)
	devs[0].PMA.Alloc()
	blk0.Allocated = true
	blk0.Resident.SetRange(0, blk0.Resident.Len())
	m.DriverHook(0).Claimed(blk0)

	peer := devs[1].Space.Block(0)
	m.DriverHook(1).RemoteMap(peer)
	m.RemoteAccess(1, geom.FirstPage(0), false, peer)
	eng.Run()

	if m.Owner(0) != 0 {
		t.Errorf("migration succeeded into a full device (owner=%d)", m.Owner(0))
	}
	if got := m.Registry().Counter("p2p_migrations_aborted").Get(); got != 1 {
		t.Errorf("aborted migrations = %d, want 1", got)
	}
}

func TestRemoteWriteDirtiesOwnerCopy(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	own := h.claim(t, 0, 0)
	own.Dirty.Reset()
	peer := h.devs[1].Space.Block(0)
	h.m.DriverHook(1).RemoteMap(peer)
	page := h.devs[1].Space.Geometry().FirstPage(0) + 3
	h.m.RemoteAccess(1, page, true, peer)
	if !own.Dirty.Get(3) {
		t.Error("remote write did not dirty the owner's copy")
	}
}

func TestInvariantsCatchCorruption(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	h.claim(t, 0, 0)
	inv := NewInvariants(h.m, 1)
	inv.Final(0) // clean state passes

	// Corrupt: mark the block allocated in the peer's view too.
	h.devs[1].Space.Block(0).Allocated = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted residency state not caught")
		}
		v, ok := r.(*inject.Violation)
		if !ok || !strings.Contains(v.Msg, "residency map says owner") {
			t.Errorf("unexpected violation: %v", r)
		}
	}()
	inv.Final(0)
}

func TestFabricChannelContention(t *testing.T) {
	h := newHarness(t, 3, 4, Config{})
	f := h.m.Fabric()
	// Two streams on the same ordered pair serialize; the reverse
	// direction and other pairs are independent.
	w1 := f.Stream(0, 1, mem.PageSize)
	w2 := f.Stream(0, 1, mem.PageSize)
	if w2 <= w1 {
		t.Errorf("second stream on 0->1 waited %v, first %v; want queueing", w2, w1)
	}
	if w := f.Stream(1, 0, mem.PageSize); w != w1 {
		t.Errorf("reverse channel waited %v, want independent %v", w, w1)
	}
	if w := f.Stream(2, 1, mem.PageSize); w != w1 {
		t.Errorf("unrelated pair waited %v, want %v", w, w1)
	}
	if f.BytesMoved(0, 1) != 2*mem.PageSize {
		t.Errorf("bytes(0->1) = %d", f.BytesMoved(0, 1))
	}
	if f.TotalBytes() != 4*mem.PageSize {
		t.Errorf("total = %d", f.TotalBytes())
	}
}
