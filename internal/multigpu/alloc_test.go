package multigpu

import (
	"testing"

	"uvmsim/internal/mem"
)

// The residency-map hot path — ownership classification and remote
// access service — sits on every K>1 GPU memory access, so it must not
// allocate in steady state (`make allocguard` pins this).

func TestClassifySteadyStateAllocFree(t *testing.T) {
	h := newHarness(t, 2, 4, Config{})
	id := mem.VABlockID(0)
	h.claim(t, 0, id)
	owner := h.m.DriverHook(0)
	peer := h.m.DriverHook(1)
	if n := testing.AllocsPerRun(200, func() {
		owner.Classify(id)
		peer.Classify(id)
		h.m.Owner(id)
	}); n != 0 {
		t.Errorf("residency classification allocates %v times per cycle, want 0", n)
	}
}

func TestRemoteAccessSteadyStateAllocFree(t *testing.T) {
	// Access-counter policy with an unreachable threshold: the counter
	// array is warmed by the first access, then every later access is the
	// pure hot path (counter bump + fabric stream + span-free accounting).
	h := newHarness(t, 2, 4, Config{Policy: AccessCounter, Threshold: 1 << 30})
	id := mem.VABlockID(0)
	h.claim(t, 0, id)
	pb := h.devs[1].Space.Block(id)
	h.m.DriverHook(1).RemoteMap(pb)
	page := h.devs[1].Space.Geometry().FirstPage(id)
	h.m.RemoteAccess(1, page, false, pb) // warm the counter slot
	if n := testing.AllocsPerRun(200, func() {
		h.m.RemoteAccess(1, page, false, pb)
		h.m.RemoteAccess(1, page, true, pb)
	}); n != 0 {
		t.Errorf("remote access allocates %v times per cycle, want 0", n)
	}
}

func TestFabricStreamSteadyStateAllocFree(t *testing.T) {
	h := newHarness(t, 4, 4, Config{})
	fab := h.m.Fabric()
	if n := testing.AllocsPerRun(200, func() {
		fab.Stream(0, 1, mem.PageSize)
		fab.Stream(2, 3, mem.PageSize)
	}); n != 0 {
		t.Errorf("fabric stream allocates %v times per cycle, want 0", n)
	}
}
