package multigpu

import (
	"fmt"

	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// Invariants is the cross-device counterpart of inject.Invariants: where
// the per-device checker audits one driver's conservation laws, this one
// audits the residency map against every device's address-space view.
// Violations panic with *inject.Violation so chaos harnesses recover
// multi-GPU failures exactly like single-GPU ones.
type Invariants struct {
	m      *Manager
	stride int
	events uint64
	checks uint64
}

// NewInvariants returns a checker over m running a deep audit every
// stride engine events (stride<=0 selects inject.DefaultStride).
func NewInvariants(m *Manager, stride int) *Invariants {
	if stride <= 0 {
		stride = inject.DefaultStride
	}
	return &Invariants{m: m, stride: stride}
}

// Observe is the engine-observer entry point; the core composes it with
// the per-device checkers behind a single observer slot.
func (v *Invariants) Observe(now sim.Time) {
	v.events++
	if v.events%uint64(v.stride) != 0 {
		return
	}
	v.checks++
	v.audit(now)
}

// Checks reports how many deep audits ran.
func (v *Invariants) Checks() uint64 { return v.checks }

// Final runs one unconditional audit at end of simulation.
func (v *Invariants) Final(now sim.Time) {
	v.checks++
	v.audit(now)
}

func (v *Invariants) audit(now sim.Time) {
	m := v.m
	// Owner map → views: the owner's view holds local backing; no peer
	// view holds local backing for the same block.
	for id, o := range m.owner {
		blk := m.devs[o].Space.BlockIfExists(id)
		if blk == nil || !blk.Allocated {
			v.violate(now, fmt.Sprintf("block %d owned by device %d but not allocated in its view", id, o))
		}
		if blk != nil && blk.Remote {
			v.violate(now, fmt.Sprintf("block %d owned by device %d but marked remote in its own view", id, o))
		}
	}
	// Remote mask → views and back; remote holders require a live owner.
	for id, mask := range m.remote {
		if mask == 0 {
			continue
		}
		if _, ok := m.owner[id]; !ok {
			// Host-owned blocks must not retain remote mappings: Released
			// invalidates holders before dropping ownership.
			for d := range m.devs {
				if mask&(1<<uint(d)) == 0 {
					continue
				}
				if blk := m.devs[d].Space.BlockIfExists(id); blk != nil && blk.Remote {
					v.violate(now, fmt.Sprintf("block %d host-owned but device %d still holds a remote mapping", id, d))
				}
			}
		}
	}
	// Views → map: every view's residency state must be claimed in the map,
	// and per-device residency must fit per-device capacity.
	for d, dev := range m.devs {
		allocated := 0
		dev.Space.ForEachBlock(func(b *mem.VABlock) {
			if b.Allocated {
				allocated++
				if o, ok := m.owner[b.ID]; !ok || o != d {
					v.violate(now, fmt.Sprintf("device %d view has block %d allocated but residency map says owner=%d", d, b.ID, m.Owner(b.ID)))
				}
			}
			if b.Remote {
				if m.remote[b.ID]&(1<<uint(d)) == 0 {
					v.violate(now, fmt.Sprintf("device %d view has block %d remote but residency map lists no such holder", d, b.ID))
				}
				if o, ok := m.owner[b.ID]; !ok {
					v.violate(now, fmt.Sprintf("device %d view has block %d remote but no device owns it", d, b.ID))
				} else if o == d {
					v.violate(now, fmt.Sprintf("device %d view has block %d remote-mapped to itself", d, b.ID))
				}
			}
		})
		if used := dev.PMA.UsedChunks(); allocated > used {
			v.violate(now, fmt.Sprintf("device %d has %d allocated blocks but only %d used chunks", d, allocated, used))
		}
		if cap := dev.PMA.CapacityChunks(); dev.PMA.UsedChunks() > cap {
			v.violate(now, fmt.Sprintf("device %d uses %d chunks over capacity %d", d, dev.PMA.UsedChunks(), cap))
		}
	}
}

func (v *Invariants) violate(now sim.Time, msg string) {
	panic(&inject.Violation{Msg: fmt.Sprintf(
		"multigpu invariant violated at t=%dns (event %d, audit %d): %s",
		int64(now), v.events, v.checks, msg)})
}
