package multigpu

import (
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

// Fabric is the interconnect topology: one directed channel per ordered
// device pair, each with independent bandwidth/latency and its own
// contention horizon, alongside each device's existing host link. Remote
// accesses stream over the channel alone; bulk migrations additionally
// occupy the DMA engines on both endpoints, so a P2P migration and a
// host fetch on the same device visibly serialize.
type Fabric struct {
	eng  *sim.Engine
	cfg  xfer.LinkConfig
	devs []*Device

	// free[src][dst] is the channel horizon for the src→dst direction.
	free [][]sim.Time
	// busy and bytes mirror xfer.Link's per-direction accounting.
	busy  [][]sim.Duration
	bytes [][]int64
}

func newFabric(eng *sim.Engine, cfg xfer.LinkConfig, devs []*Device) *Fabric {
	k := len(devs)
	f := &Fabric{
		eng:   eng,
		cfg:   cfg,
		devs:  devs,
		free:  make([][]sim.Time, k),
		busy:  make([][]sim.Duration, k),
		bytes: make([][]int64, k),
	}
	for i := range f.free {
		f.free[i] = make([]sim.Time, k)
		f.busy[i] = make([]sim.Duration, k)
		f.bytes[i] = make([]int64, k)
	}
	return f
}

// Stream charges one remote access of size bytes over the src→dst
// channel (owner to accessor) and returns the wait the accessor
// observes beyond its nominal access latency. Like the host link's
// EnqueueStream, remote loads pipeline cache lines rather than issuing
// DMA descriptors: they contend on the channel only, not on either
// device's DMA engines.
func (f *Fabric) Stream(src, dst int, bytes int64) sim.Duration {
	now := f.eng.Now()
	start := now
	if h := f.free[src][dst]; h > start {
		start = h
	}
	wire := sim.Duration(float64(bytes) / f.cfg.BandwidthBytesPerSec * 1e9)
	end := start.Add(f.cfg.TransactionLatency + wire)
	f.free[src][dst] = end
	f.busy[src][dst] += end.Sub(start)
	f.bytes[src][dst] += bytes
	return end.Sub(now)
}

// Transfer moves a bulk migration of size bytes from src to dst: the
// src→dst channel carries the bytes while src's device-to-host and
// dst's host-to-device DMA engines are held for the duration (the copy
// engines pump the transfer even though no host memory is touched).
// A SpanDMAP2P span lands on both devices' DMA tracks. Returns the
// completion time.
func (f *Fabric) Transfer(src, dst int, bytes int64) sim.Time {
	now := f.eng.Now()
	start := now
	if h := f.free[src][dst]; h > start {
		start = h
	}
	if h := f.devs[src].Link.FreeAt(xfer.DeviceToHost); h > start {
		start = h
	}
	if h := f.devs[dst].Link.FreeAt(xfer.HostToDevice); h > start {
		start = h
	}
	wire := sim.Duration(float64(bytes) / f.cfg.BandwidthBytesPerSec * 1e9)
	end := start.Add(f.cfg.TransactionLatency + wire)
	f.free[src][dst] = end
	f.busy[src][dst] += end.Sub(start)
	f.bytes[src][dst] += bytes
	f.devs[src].Link.Hold(xfer.DeviceToHost, start, end)
	f.devs[dst].Link.Hold(xfer.HostToDevice, start, end)
	if t := f.devs[src].Tracer; t != nil {
		t.Emit(obs.SpanDMAP2P, start, end, 0, bytes)
	}
	if t := f.devs[dst].Tracer; t != nil {
		t.Emit(obs.SpanDMAP2P, start, end, 0, bytes)
	}
	return end
}

// BytesMoved returns the cumulative bytes carried on the src→dst channel.
func (f *Fabric) BytesMoved(src, dst int) int64 { return f.bytes[src][dst] }

// TotalBytes returns the cumulative bytes carried on every channel.
func (f *Fabric) TotalBytes() int64 {
	var n int64
	for _, row := range f.bytes {
		for _, b := range row {
			n += b
		}
	}
	return n
}

// BusyTime returns the cumulative busy time of the src→dst channel.
func (f *Fabric) BusyTime(src, dst int) sim.Duration { return f.busy[src][dst] }
