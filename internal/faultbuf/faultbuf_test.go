package faultbuf

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

type pageID = mem.PageID

func uint64ToPage(v uint64) pageID { return pageID(v) }

func TestPutFetchFIFO(t *testing.T) {
	b, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := b.Put(uint64ToPage(uint64(i)), false, 0, sim.Time(i), sim.Time(i)); !ok {
			t.Fatalf("put %d rejected", i)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	got := b.FetchReady(3, 100)
	if len(got) != 3 {
		t.Fatalf("fetched %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Page != uint64ToPage(uint64(i)) || e.Seq != uint64(i+1) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if b.Len() != 2 {
		t.Errorf("Len after fetch = %d", b.Len())
	}
}

func TestReadyGating(t *testing.T) {
	b, _ := New(8)
	b.Put(1, false, 0, 0, 10) // ready at 10
	b.Put(2, false, 0, 0, 5)  // ready at 5 but behind entry 1
	if got := b.FetchReady(10, 7); len(got) != 0 {
		t.Fatalf("fetched %d entries before head ready", len(got))
	}
	at, ok := b.HeadReadyAt()
	if !ok || at != 10 {
		t.Fatalf("HeadReadyAt = %v, %v", at, ok)
	}
	if got := b.FetchReady(10, 10); len(got) != 2 {
		t.Fatalf("fetched %d entries at t=10, want 2 (FIFO order unblocks both)", len(got))
	}
	if _, ok := b.HeadReadyAt(); ok {
		t.Error("HeadReadyAt on empty buffer")
	}
}

func TestOverflowDrops(t *testing.T) {
	b, _ := New(2)
	b.Put(1, false, 0, 0, 0)
	b.Put(2, false, 0, 0, 0)
	if !b.Full() {
		t.Error("should be full")
	}
	if _, ok := b.Put(3, false, 0, 0, 0); ok {
		t.Error("overflow accepted")
	}
	if b.Drops() != 1 || b.Total() != 2 {
		t.Errorf("drops=%d total=%d", b.Drops(), b.Total())
	}
}

func TestFlush(t *testing.T) {
	b, _ := New(8)
	for i := 0; i < 6; i++ {
		b.Put(pageID(i), false, 0, 0, 0)
	}
	b.FetchReady(2, 0)
	if n := b.Flush(); n != 4 {
		t.Fatalf("Flush = %d, want 4", n)
	}
	if b.Len() != 0 || b.Flushed() != 4 {
		t.Errorf("len=%d flushed=%d", b.Len(), b.Flushed())
	}
	// Buffer usable after flush.
	if _, ok := b.Put(9, false, 0, 0, 0); !ok {
		t.Error("put after flush rejected")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	b, _ := New(4)
	s1, _ := b.Put(1, false, 0, 0, 0)
	s2, _ := b.Put(2, false, 0, 0, 0)
	b.Flush()
	s3, _ := b.Put(3, false, 0, 0, 0)
	if !(s1 < s2 && s2 < s3) {
		t.Errorf("sequence not monotonic: %d %d %d", s1, s2, s3)
	}
}

// Property: conservation — accepted = fetched + flushed + still buffered,
// for any interleaving of operations.
func TestConservationProperty(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 put, 1 fetch, 2 flush
		Count uint8
	}
	f := func(ops []op) bool {
		b, err := New(32)
		if err != nil {
			return false
		}
		var fetched uint64
		for i, o := range ops {
			switch o.Kind % 3 {
			case 0:
				b.Put(pageID(i), false, 0, 0, 0)
			case 1:
				fetched += uint64(len(b.FetchReady(int(o.Count%8)+1, sim.MaxTime)))
			case 2:
				b.Flush()
			}
			if b.Total() != fetched+b.Flushed()+uint64(b.Len()) {
				return false
			}
			if b.Len() > b.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
