// Package faultbuf models the GPU-side replayable fault buffer and its
// pointer queue (paper §III-C and Fig. 2): the GPU serializes far-faults
// from all SMs into a circular buffer; entries become readable by the
// host only after an asynchronous "ready" flag is set; the driver reads
// batches in FIFO order and may flush the buffer (batch-flush replay
// policy) to discard entries that would become duplicates after a replay.
package faultbuf

import (
	"fmt"

	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Entry is one far-fault record. Matching the paper's "fault source
// erasure", the driver-visible portion is only the faulting address and
// access type; SM is carried for the fault-origin-information extension
// (§VI-B) and for tracing, and is ignored by the baseline driver.
type Entry struct {
	Seq     uint64     // global fault sequence number
	Page    mem.PageID // faulting virtual page
	Write   bool       // access type
	SM      int        // originating SM (extension/tracing only)
	Raised  sim.Time   // when the GPU recorded the fault
	ReadyAt sim.Time   // when the entry's ready flag is visible to the host
}

// PutAction is a fault-injection verdict for one Put: the perturbations
// a misbehaving buffer can apply to an incoming entry.
type PutAction struct {
	// Drop rejects the entry exactly as a full buffer would: the caller
	// sees ok=false and the warp must re-fault after a replay.
	Drop bool
	// Duplicate appends a second copy of the entry (the hardware wrote
	// the record twice), consuming an extra slot.
	Duplicate bool
	// ExtraReadyDelay postpones the entry's ready flag beyond the normal
	// asynchronous delay.
	ExtraReadyDelay sim.Duration
}

// Perturber lets a fault-injection layer interfere with Put. A nil
// perturber (the default) leaves the buffer unperturbed.
type Perturber interface {
	PerturbPut(page mem.PageID, write bool) PutAction
}

// Buffer is the circular fault buffer. It is a passive data structure
// driven by GPU puts and driver fetches. Storage is a true ring of the
// hardware capacity, allocated once at construction — the hot put/fetch
// path never allocates or releases memory, exactly like the fixed
// on-device buffer it models.
type Buffer struct {
	ring    []Entry // fixed ring storage, len == capacity
	head    int     // index of the oldest entry
	n       int     // occupied slots
	seq     uint64
	perturb Perturber      // optional fault injection; nil when disabled
	life    *obs.Lifecycle // optional per-fault tracking; nil when disabled

	drops    uint64 // puts rejected because the buffer was full
	injDrops uint64 // puts rejected by injection (subset of drops)
	injDups  uint64 // entries duplicated by injection
	flushed  uint64 // entries discarded by Flush
	fetched  uint64 // entries handed to the driver by FetchReady
	total    uint64 // entries accepted
}

// New returns a buffer holding at most capacity entries.
func New(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("faultbuf: capacity %d must be positive", capacity)
	}
	return &Buffer{ring: make([]Entry, capacity)}, nil
}

// at returns a pointer to the i-th buffered entry (0 = oldest).
func (b *Buffer) at(i int) *Entry {
	return &b.ring[(b.head+i)%len(b.ring)]
}

// push appends an entry at the tail. The caller must have checked Full.
func (b *Buffer) push(e Entry) {
	b.ring[(b.head+b.n)%len(b.ring)] = e
	b.n++
}

// SetPerturber installs (or, with nil, removes) a fault-injection layer
// that sees every Put.
func (b *Buffer) SetPerturber(p Perturber) { b.perturb = p }

// SetLifecycle installs (or, with nil, removes) the per-fault lifecycle
// collector. Entries accepted by Put are born; entries rejected (full
// buffer, injected drop) never existed and are not tracked — that loss
// is the paper's buffer-full degradation, visible as forced replays.
func (b *Buffer) SetLifecycle(l *obs.Lifecycle) { b.life = l }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return len(b.ring) }

// Len returns the number of buffered entries (ready or not).
func (b *Buffer) Len() int { return b.n }

// Full reports whether a Put would be rejected.
func (b *Buffer) Full() bool { return b.n >= len(b.ring) }

// Put appends a fault entry. It returns the assigned sequence number and
// false when the buffer was full (the fault is dropped; the warp will
// re-fault after the next replay).
func (b *Buffer) Put(page mem.PageID, write bool, sm int, raised, readyAt sim.Time) (uint64, bool) {
	if b.Full() {
		b.drops++
		return 0, false
	}
	var act PutAction
	if b.perturb != nil {
		act = b.perturb.PerturbPut(page, write)
	}
	if act.Drop {
		// Injected loss is indistinguishable from overflow to the GPU:
		// the warp stalls and must be recovered by a (forced) replay.
		b.drops++
		b.injDrops++
		return 0, false
	}
	readyAt = readyAt.Add(act.ExtraReadyDelay)
	b.seq++
	b.total++
	b.push(Entry{
		Seq: b.seq, Page: page, Write: write, SM: sm, Raised: raised, ReadyAt: readyAt,
	})
	b.life.Born(b.seq, raised)
	seq := b.seq
	if act.Duplicate && !b.Full() {
		b.seq++
		b.total++
		b.injDups++
		b.push(Entry{
			Seq: b.seq, Page: page, Write: write, SM: sm, Raised: raised, ReadyAt: readyAt,
		})
		b.life.Born(b.seq, raised)
	}
	return seq, true
}

// AppendReady pops up to max entries from the head whose ready flag is
// visible at time now, appending them to dst and returning the extended
// slice. It stops early at the first not-ready entry, mirroring the
// driver's fetch loop. The driver passes its batch-scoped scratch slice,
// so a steady-state fetch copies entries without allocating.
func (b *Buffer) AppendReady(dst []Entry, max int, now sim.Time) []Entry {
	popped := 0
	for popped < b.n && popped < max {
		e := b.at(popped)
		if e.ReadyAt > now {
			break
		}
		dst = append(dst, *e)
		popped++
	}
	b.head = (b.head + popped) % len(b.ring)
	b.n -= popped
	b.fetched += uint64(popped)
	return dst
}

// FetchReady pops up to max ready entries into a freshly allocated
// slice. Tests and tools use it; the driver's hot path uses AppendReady
// with a reused scratch slice instead.
func (b *Buffer) FetchReady(max int, now sim.Time) []Entry {
	return b.AppendReady(nil, max, now)
}

// HeadReadyAt returns when the head entry becomes ready. ok is false when
// the buffer is empty.
func (b *Buffer) HeadReadyAt() (t sim.Time, ok bool) {
	if b.n == 0 {
		return 0, false
	}
	return b.at(0).ReadyAt, true
}

// Flush discards every buffered entry (the batch-flush replay policy) and
// returns how many were dropped.
func (b *Buffer) Flush() int {
	n := b.n
	if b.life.Enabled() {
		for i := 0; i < n; i++ {
			b.life.Flushed(b.at(i).Seq)
		}
	}
	b.head = 0
	b.n = 0
	b.flushed += uint64(n)
	return n
}

// Drops returns how many faults were rejected, by a full buffer or by
// injection. Every dropped fault leaves a stalled warp behind that only
// a replay can recover, so the driver must track this count.
func (b *Buffer) Drops() uint64 { return b.drops }

// InjectedDrops returns the subset of Drops caused by fault injection.
func (b *Buffer) InjectedDrops() uint64 { return b.injDrops }

// InjectedDups returns how many extra duplicate entries injection added.
func (b *Buffer) InjectedDups() uint64 { return b.injDups }

// Flushed returns how many entries Flush has discarded in total.
func (b *Buffer) Flushed() uint64 { return b.flushed }

// Fetched returns how many entries FetchReady has handed to the driver.
func (b *Buffer) Fetched() uint64 { return b.fetched }

// Total returns how many entries have been accepted in total.
func (b *Buffer) Total() uint64 { return b.total }

// CheckConsistency validates the buffer's structural invariants: FIFO
// sequence order, capacity bounds, and entry conservation (every
// accepted entry is buffered, fetched, or flushed — none lost). The
// runtime invariant checker calls it after simulation events.
func (b *Buffer) CheckConsistency() error {
	if b.n > len(b.ring) {
		return fmt.Errorf("faultbuf: %d entries exceed capacity %d", b.n, len(b.ring))
	}
	if got := b.fetched + b.flushed + uint64(b.n); got != b.total {
		return fmt.Errorf("faultbuf: conservation broken: accepted %d != fetched %d + flushed %d + buffered %d",
			b.total, b.fetched, b.flushed, b.n)
	}
	for i := 1; i < b.n; i++ {
		if b.at(i).Seq <= b.at(i-1).Seq {
			return fmt.Errorf("faultbuf: FIFO order broken at index %d: seq %d after %d",
				i, b.at(i).Seq, b.at(i-1).Seq)
		}
	}
	return nil
}
