// Package faultbuf models the GPU-side replayable fault buffer and its
// pointer queue (paper §III-C and Fig. 2): the GPU serializes far-faults
// from all SMs into a circular buffer; entries become readable by the
// host only after an asynchronous "ready" flag is set; the driver reads
// batches in FIFO order and may flush the buffer (batch-flush replay
// policy) to discard entries that would become duplicates after a replay.
package faultbuf

import (
	"fmt"

	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Entry is one far-fault record. Matching the paper's "fault source
// erasure", the driver-visible portion is only the faulting address and
// access type; SM is carried for the fault-origin-information extension
// (§VI-B) and for tracing, and is ignored by the baseline driver.
type Entry struct {
	Seq     uint64     // global fault sequence number
	Page    mem.PageID // faulting virtual page
	Write   bool       // access type
	SM      int        // originating SM (extension/tracing only)
	Raised  sim.Time   // when the GPU recorded the fault
	ReadyAt sim.Time   // when the entry's ready flag is visible to the host
}

// PutAction is a fault-injection verdict for one Put: the perturbations
// a misbehaving buffer can apply to an incoming entry.
type PutAction struct {
	// Drop rejects the entry exactly as a full buffer would: the caller
	// sees ok=false and the warp must re-fault after a replay.
	Drop bool
	// Duplicate appends a second copy of the entry (the hardware wrote
	// the record twice), consuming an extra slot.
	Duplicate bool
	// ExtraReadyDelay postpones the entry's ready flag beyond the normal
	// asynchronous delay.
	ExtraReadyDelay sim.Duration
}

// Perturber lets a fault-injection layer interfere with Put. A nil
// perturber (the default) leaves the buffer unperturbed.
type Perturber interface {
	PerturbPut(page mem.PageID, write bool) PutAction
}

// Buffer is the circular fault buffer. It is a passive data structure
// driven by GPU puts and driver fetches.
type Buffer struct {
	cap     int
	entries []Entry // FIFO; head at index 0 (slices are re-sliced on fetch)
	seq     uint64
	perturb Perturber      // optional fault injection; nil when disabled
	life    *obs.Lifecycle // optional per-fault tracking; nil when disabled

	drops    uint64 // puts rejected because the buffer was full
	injDrops uint64 // puts rejected by injection (subset of drops)
	injDups  uint64 // entries duplicated by injection
	flushed  uint64 // entries discarded by Flush
	fetched  uint64 // entries handed to the driver by FetchReady
	total    uint64 // entries accepted
}

// New returns a buffer holding at most capacity entries.
func New(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("faultbuf: capacity %d must be positive", capacity)
	}
	return &Buffer{cap: capacity}, nil
}

// SetPerturber installs (or, with nil, removes) a fault-injection layer
// that sees every Put.
func (b *Buffer) SetPerturber(p Perturber) { b.perturb = p }

// SetLifecycle installs (or, with nil, removes) the per-fault lifecycle
// collector. Entries accepted by Put are born; entries rejected (full
// buffer, injected drop) never existed and are not tracked — that loss
// is the paper's buffer-full degradation, visible as forced replays.
func (b *Buffer) SetLifecycle(l *obs.Lifecycle) { b.life = l }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.cap }

// Len returns the number of buffered entries (ready or not).
func (b *Buffer) Len() int { return len(b.entries) }

// Full reports whether a Put would be rejected.
func (b *Buffer) Full() bool { return len(b.entries) >= b.cap }

// Put appends a fault entry. It returns the assigned sequence number and
// false when the buffer was full (the fault is dropped; the warp will
// re-fault after the next replay).
func (b *Buffer) Put(page mem.PageID, write bool, sm int, raised, readyAt sim.Time) (uint64, bool) {
	if b.Full() {
		b.drops++
		return 0, false
	}
	var act PutAction
	if b.perturb != nil {
		act = b.perturb.PerturbPut(page, write)
	}
	if act.Drop {
		// Injected loss is indistinguishable from overflow to the GPU:
		// the warp stalls and must be recovered by a (forced) replay.
		b.drops++
		b.injDrops++
		return 0, false
	}
	readyAt = readyAt.Add(act.ExtraReadyDelay)
	b.seq++
	b.total++
	b.entries = append(b.entries, Entry{
		Seq: b.seq, Page: page, Write: write, SM: sm, Raised: raised, ReadyAt: readyAt,
	})
	b.life.Born(b.seq, raised)
	seq := b.seq
	if act.Duplicate && !b.Full() {
		b.seq++
		b.total++
		b.injDups++
		b.entries = append(b.entries, Entry{
			Seq: b.seq, Page: page, Write: write, SM: sm, Raised: raised, ReadyAt: readyAt,
		})
		b.life.Born(b.seq, raised)
	}
	return seq, true
}

// FetchReady pops up to max entries from the head whose ready flag is
// visible at time now. It stops early at the first not-ready entry,
// mirroring the driver's fetch loop.
func (b *Buffer) FetchReady(max int, now sim.Time) []Entry {
	n := 0
	for n < len(b.entries) && n < max && b.entries[n].ReadyAt <= now {
		n++
	}
	out := b.entries[:n:n]
	b.entries = b.entries[n:]
	b.fetched += uint64(n)
	if len(b.entries) == 0 {
		b.entries = nil // release backing array once drained
	}
	return out
}

// HeadReadyAt returns when the head entry becomes ready. ok is false when
// the buffer is empty.
func (b *Buffer) HeadReadyAt() (t sim.Time, ok bool) {
	if len(b.entries) == 0 {
		return 0, false
	}
	return b.entries[0].ReadyAt, true
}

// Flush discards every buffered entry (the batch-flush replay policy) and
// returns how many were dropped.
func (b *Buffer) Flush() int {
	n := len(b.entries)
	if b.life.Enabled() {
		for _, e := range b.entries {
			b.life.Flushed(e.Seq)
		}
	}
	b.entries = nil
	b.flushed += uint64(n)
	return n
}

// Drops returns how many faults were rejected, by a full buffer or by
// injection. Every dropped fault leaves a stalled warp behind that only
// a replay can recover, so the driver must track this count.
func (b *Buffer) Drops() uint64 { return b.drops }

// InjectedDrops returns the subset of Drops caused by fault injection.
func (b *Buffer) InjectedDrops() uint64 { return b.injDrops }

// InjectedDups returns how many extra duplicate entries injection added.
func (b *Buffer) InjectedDups() uint64 { return b.injDups }

// Flushed returns how many entries Flush has discarded in total.
func (b *Buffer) Flushed() uint64 { return b.flushed }

// Fetched returns how many entries FetchReady has handed to the driver.
func (b *Buffer) Fetched() uint64 { return b.fetched }

// Total returns how many entries have been accepted in total.
func (b *Buffer) Total() uint64 { return b.total }

// CheckConsistency validates the buffer's structural invariants: FIFO
// sequence order, capacity bounds, and entry conservation (every
// accepted entry is buffered, fetched, or flushed — none lost). The
// runtime invariant checker calls it after simulation events.
func (b *Buffer) CheckConsistency() error {
	if len(b.entries) > b.cap {
		return fmt.Errorf("faultbuf: %d entries exceed capacity %d", len(b.entries), b.cap)
	}
	if got := b.fetched + b.flushed + uint64(len(b.entries)); got != b.total {
		return fmt.Errorf("faultbuf: conservation broken: accepted %d != fetched %d + flushed %d + buffered %d",
			b.total, b.fetched, b.flushed, len(b.entries))
	}
	for i := 1; i < len(b.entries); i++ {
		if b.entries[i].Seq <= b.entries[i-1].Seq {
			return fmt.Errorf("faultbuf: FIFO order broken at index %d: seq %d after %d",
				i, b.entries[i].Seq, b.entries[i-1].Seq)
		}
	}
	return nil
}
