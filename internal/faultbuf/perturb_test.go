package faultbuf

import (
	"testing"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// scriptedPerturber replays a fixed sequence of actions, then passes
// everything through.
type scriptedPerturber struct {
	actions []PutAction
	calls   int
}

func (p *scriptedPerturber) PerturbPut(mem.PageID, bool) PutAction {
	p.calls++
	if len(p.actions) == 0 {
		return PutAction{}
	}
	act := p.actions[0]
	p.actions = p.actions[1:]
	return act
}

func TestPerturberDrop(t *testing.T) {
	b, _ := New(8)
	b.SetPerturber(&scriptedPerturber{actions: []PutAction{{Drop: true}}})
	if _, ok := b.Put(1, false, 0, 0, 0); ok {
		t.Fatal("perturbed put accepted")
	}
	if b.Len() != 0 {
		t.Errorf("len = %d after injected drop", b.Len())
	}
	if b.Drops() != 1 || b.InjectedDrops() != 1 {
		t.Errorf("drops = %d, injected = %d, want 1, 1", b.Drops(), b.InjectedDrops())
	}
	// A dropped entry never counts as accepted: conservation must hold.
	if b.Total() != 0 {
		t.Errorf("total = %d, want 0", b.Total())
	}
	if err := b.CheckConsistency(); err != nil {
		t.Error(err)
	}
	// Subsequent puts pass through.
	if _, ok := b.Put(2, false, 0, 0, 0); !ok {
		t.Fatal("unperturbed put rejected")
	}
}

func TestPerturberDuplicate(t *testing.T) {
	b, _ := New(8)
	b.SetPerturber(&scriptedPerturber{actions: []PutAction{{Duplicate: true}}})
	seq, ok := b.Put(7, true, 3, 10, 20)
	if !ok {
		t.Fatal("duplicated put rejected")
	}
	if b.Len() != 2 || b.Total() != 2 || b.InjectedDups() != 1 {
		t.Fatalf("len=%d total=%d dups=%d, want 2, 2, 1", b.Len(), b.Total(), b.InjectedDups())
	}
	got := b.FetchReady(10, 100)
	if len(got) != 2 {
		t.Fatalf("fetched %d entries", len(got))
	}
	if got[0].Seq != seq || got[1].Seq <= got[0].Seq {
		t.Errorf("duplicate seq ordering wrong: %d then %d", got[0].Seq, got[1].Seq)
	}
	if got[1].Page != got[0].Page || got[1].Write != got[0].Write || got[1].SM != got[0].SM {
		t.Error("duplicate entry differs from original")
	}
	if err := b.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestPerturberDuplicateRespectsCapacity(t *testing.T) {
	// A duplicate that would overflow the buffer is silently skipped: the
	// hardware cannot write past the ring.
	b, _ := New(1)
	b.SetPerturber(&scriptedPerturber{actions: []PutAction{{Duplicate: true}}})
	if _, ok := b.Put(7, false, 0, 0, 0); !ok {
		t.Fatal("put rejected")
	}
	if b.Len() != 1 || b.InjectedDups() != 0 {
		t.Errorf("len=%d dups=%d, want 1, 0", b.Len(), b.InjectedDups())
	}
	if err := b.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestPerturberReadyDelay(t *testing.T) {
	b, _ := New(8)
	delay := 5 * sim.Microsecond
	b.SetPerturber(&scriptedPerturber{actions: []PutAction{{ExtraReadyDelay: delay}}})
	ready := sim.Time(0).Add(sim.Microsecond)
	b.Put(1, false, 0, 0, ready)
	if got := b.FetchReady(1, ready); len(got) != 0 {
		t.Fatal("delayed entry fetched at its nominal ready time")
	}
	at, ok := b.HeadReadyAt()
	if !ok || at != ready.Add(delay) {
		t.Errorf("head ready at %v, want %v", at, ready.Add(delay))
	}
	if got := b.FetchReady(1, ready.Add(delay)); len(got) != 1 {
		t.Fatal("entry not fetchable after the injected delay")
	}
}

func TestFetchedAccounting(t *testing.T) {
	b, _ := New(8)
	for i := 0; i < 5; i++ {
		b.Put(mem.PageID(i), false, 0, 0, 0)
	}
	b.FetchReady(3, 0)
	if b.Fetched() != 3 {
		t.Errorf("fetched = %d, want 3", b.Fetched())
	}
	b.Flush()
	if b.Flushed() != 2 {
		t.Errorf("flushed = %d, want 2", b.Flushed())
	}
	if err := b.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	b, _ := New(8)
	b.Put(1, false, 0, 0, 0)
	b.Put(2, false, 0, 0, 0)
	if err := b.CheckConsistency(); err != nil {
		t.Fatalf("clean buffer reported: %v", err)
	}
	// Lost entry: accepted count no longer balances.
	b.total++
	if err := b.CheckConsistency(); err == nil {
		t.Error("conservation break undetected")
	}
	b.total--
	// FIFO order break.
	b.at(1).Seq = b.at(0).Seq
	if err := b.CheckConsistency(); err == nil {
		t.Error("sequence order break undetected")
	}
	b.at(1).Seq = b.at(0).Seq + 1
	// Over capacity: shrink the ring under the occupied count.
	b.ring = b.ring[:1]
	if err := b.CheckConsistency(); err == nil {
		t.Error("over-capacity undetected")
	}
}
