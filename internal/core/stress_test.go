package core

import (
	"testing"

	"uvmsim/internal/driver"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/workloads"
)

// Regression: when a batch spans more VABlocks than the framebuffer
// holds, the LRU cascade used to evict the same head bins every batch and
// livelock the warps behind them. The rotated service order must keep
// this configuration terminating. (Capacity 4 blocks, random demand over
// 8 blocks, no prefetch — far outside the healthy envelope on purpose.)
func TestTinyCapacityRandomTerminates(t *testing.T) {
	s := newSys(t, 8<<20, noPrefetch)
	k, err := workloads.PageTouchRandom(s, 16<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Error("expected heavy eviction churn")
	}
	t.Logf("terminated in %v with %d faults, %d evictions", res.TotalTime, res.Faults, res.Evictions)
}

// Every replay policy must terminate the same pathological configuration.
func TestTinyCapacityAllReplayPolicies(t *testing.T) {
	for _, pol := range []string{"block", "batch", "batchflush", "once"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			s := newSys(t, 8<<20, func(c *Config) {
				c.PrefetchPolicy = "none"
				p, err := driver.ParseReplayPolicy(pol)
				if err != nil {
					t.Fatal(err)
				}
				c.Driver.Policy = p
			})
			k, err := workloads.PageTouchRandom(s, 12<<20, workloads.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunUVM(k); err != nil {
				t.Fatal(err)
			}
			if got, want := s.ResidentPages(), 8<<20/mem.PageSize; got > want {
				t.Errorf("resident %d exceeds capacity %d", got, want)
			}
		})
	}
}

// Arbitrary random kernels complete with every touched page serviced,
// across a range of seeds, policies, and shapes (a fuzz-style sweep of
// the full pipeline).
func TestRandomKernelsAlwaysComplete(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := sim.NewRNG(seed * 977)
			gpuMem := int64(16+rng.Intn(48)) << 20
			cfg := DefaultConfig(gpuMem)
			cfg.Seed = seed
			cfg.PrefetchPolicy = []string{"none", "density", "aggressive", "adaptive"}[rng.Intn(4)]
			cfg.EvictPolicy = []string{"lru", "fifo", "random", "lru+thrash"}[rng.Intn(4)]
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// A made-up kernel: random pages over a random allocation,
			// random warp shapes, mixed reads and writes.
			allocPages := 512 + rng.Intn(8192)
			r, err := s.MallocManaged(mem.Bytes(allocPages), "fuzz")
			if err != nil {
				t.Fatal(err)
			}
			k := &gpusim.Kernel{Name: "fuzz", ComputePerAccess: sim.Duration(rng.Intn(100))}
			touched := map[mem.PageID]bool{}
			nblocks := 1 + rng.Intn(20)
			for b := 0; b < nblocks; b++ {
				var tb gpusim.ThreadBlock
				for w := 0; w < 1+rng.Intn(6); w++ {
					n := 1 + rng.Intn(64)
					accs := make(gpusim.SliceProgram, n)
					for i := range accs {
						pg := r.StartPage + mem.PageID(rng.Intn(allocPages))
						accs[i] = gpusim.Access{Page: pg, Write: rng.Intn(2) == 0}
						touched[pg] = true
					}
					tb.Warps = append(tb.Warps, accs)
				}
				k.Blocks = append(k.Blocks, tb)
			}
			res, err := s.RunUVM(k)
			if err != nil {
				t.Fatalf("seed %d (%s/%s): %v", seed, cfg.PrefetchPolicy, cfg.EvictPolicy, err)
			}
			if res.GPU.Accesses == 0 {
				t.Error("no accesses executed")
			}
			// Unless evicted afterwards, touched pages were serviced at
			// least once: total demand served must cover the footprint
			// when nothing was evicted.
			if res.Evictions == 0 {
				for pg := range touched {
					if !s.Space().IsResident(pg) {
						t.Fatalf("page %d never became resident", pg)
					}
				}
			}
		})
	}
}
