package core

import (
	"testing"

	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/sim"
	"uvmsim/internal/workloads"
)

func TestMultiGPURunCompletes(t *testing.T) {
	s := newSys(t, 64<<20, func(c *Config) { c.GPUs = 2 })
	res := runRegular(t, s, 8<<20)
	if res.Faults == 0 {
		t.Error("no faults at K=2")
	}
	if s.MultiGPU() == nil {
		t.Fatal("no residency manager at K=2")
	}
	// Contiguous block split: each device first-touches its half, so both
	// devices own part of the footprint.
	owned := make(map[int]bool)
	for d := 0; d < 2; d++ {
		pages := 0
		s.SpaceOf(d).ForEachBlock(func(b *mem.VABlock) {
			if b.Allocated {
				pages += b.Resident.Count()
			}
		})
		if pages > 0 {
			owned[d] = true
		}
	}
	if len(owned) != 2 {
		t.Errorf("expected both devices to own pages, got %v", owned)
	}
	if got := s.ResidentPages(); got != 2048 {
		t.Errorf("resident = %d, want 2048", got)
	}
}

func TestMultiGPUZeroMeansOne(t *testing.T) {
	run := func(gpus int) (sim.Duration, uint64) {
		s := newSys(t, 64<<20, func(c *Config) { c.GPUs = gpus })
		res := runRegular(t, s, 8<<20)
		return res.TotalTime, res.Faults
	}
	t0, f0 := run(0)
	t1, f1 := run(1)
	if t0 != t1 || f0 != f1 {
		t.Errorf("GPUs=0 (%v,%d) differs from GPUs=1 (%v,%d)", t0, f0, t1, f1)
	}
}

func TestMultiGPUDeterminism(t *testing.T) {
	run := func() (sim.Duration, uint64, uint64) {
		s := newSys(t, 32<<20, func(c *Config) {
			c.GPUs = 4
			c.Migration = multigpu.AccessCounter
		})
		res := runRegular(t, s, 16<<20)
		return res.TotalTime, res.Faults, res.Counters.Get("p2p_remote_accesses")
	}
	t1, f1, r1 := run()
	t2, f2, r2 := run()
	if t1 != t2 || f1 != f2 || r1 != r2 {
		t.Errorf("non-deterministic K=4: (%v,%d,%d) vs (%v,%d,%d)", t1, f1, r1, t2, f2, r2)
	}
}

func TestMultiGPUValidation(t *testing.T) {
	bad := DefaultConfig(64 << 20)
	bad.GPUs = -1
	if _, err := NewSystem(bad); err == nil {
		t.Error("negative GPU count accepted")
	}
	bad = DefaultConfig(64 << 20)
	bad.GPUs = multigpu.MaxDevices + 1
	if _, err := NewSystem(bad); err == nil {
		t.Error("GPU count over MaxDevices accepted")
	}
	bad = DefaultConfig(64 << 20)
	bad.GPUs = 2
	bad.Migration = multigpu.Policy(99)
	if _, err := NewSystem(bad); err == nil {
		t.Error("bogus migration policy accepted")
	}
}

func TestMultiGPUMetricsMerge(t *testing.T) {
	s := newSys(t, 64<<20, func(c *Config) { c.GPUs = 2 })
	runRegular(t, s, 8<<20)
	reg := s.Metrics()
	found := false
	for _, sample := range reg.Samples() {
		if sample.Name == "p2p_remote_accesses" {
			found = true
		}
	}
	if !found {
		t.Error("merged K=2 metrics missing manager counters")
	}
}

// Access-counter migration must move ownership toward the accessor where
// first-touch pins it: on a workload re-read by a device that did not
// first-touch it, the two policies must diverge in p2p traffic.
func TestMultiGPUPolicyDivergence(t *testing.T) {
	run := func(p multigpu.Policy) (migrations, remote uint64) {
		s := newSys(t, 64<<20, func(c *Config) {
			c.GPUs = 2
			c.Migration = p
			c.MigrationThreshold = 2
		})
		k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		// First run: contiguous halves first-touched per device. Second
		// run of the same kernel re-touches warm data; any blocks split
		// across the partition boundary plus replays generate remote
		// traffic that the access-counter policy converts to migrations.
		if _, err := s.RunUVM(k); err != nil {
			t.Fatal(err)
		}
		res, err := s.RunUVM(k)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Get("p2p_migrations"), res.Counters.Get("p2p_remote_accesses")
	}
	ftMig, _ := run(multigpu.FirstTouch)
	acMig, _ := run(multigpu.AccessCounter)
	if ftMig != 0 {
		t.Errorf("first-touch migrated %d blocks; must never migrate", ftMig)
	}
	_ = acMig // divergence asserted at the sweep level; here first-touch purity is the invariant
}

// TestMultiGPUChaosConverges is the cross-device chaos gate: a seeded
// K=4 run under all-layer fault injection (buffer drops/dups, DMA
// failures, eviction stalls) must execute exactly the accesses of the
// uninjected baseline with full residency and zero invariant
// violations — the per-device conservation checkers and the
// cross-device residency audit both run throughout.
func TestMultiGPUChaosConverges(t *testing.T) {
	run := func(injected bool) (uint64, int) {
		s := newSys(t, 8<<20, func(c *Config) {
			c.GPUs = 4
			c.Migration = multigpu.AccessCounter
			c.InvariantStride = 16
			if injected {
				c.Inject = inject.DefaultConfig(7)
			}
		})
		// 40 MB over 4×8 MB framebuffers: every device oversubscribes, so
		// evictions invalidate peer mappings under injection pressure.
		res := runRegular(t, s, 40<<20)
		return res.GPU.Accesses, s.ResidentPages()
	}
	baseAcc, _ := run(false)
	injAcc, injPages := run(true)
	if injAcc != baseAcc {
		t.Errorf("injected K=4 run executed %d accesses, baseline %d", injAcc, baseAcc)
	}
	if injPages == 0 {
		t.Error("nothing resident after injected K=4 run")
	}
}

func TestMultiGPUExplicitPrestagesToDeviceZero(t *testing.T) {
	s := newSys(t, 64<<20, func(c *Config) { c.GPUs = 2 })
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunExplicit(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 {
		t.Errorf("explicit K=2 run faulted %d times", res.Faults)
	}
	// Device 1 executed half the kernel against remote mappings: its
	// accesses stream over the fabric to device 0.
	if res.Counters.Get("p2p_remote_accesses") == 0 {
		t.Error("no remote accesses despite device-0 prestage")
	}
}

func TestMultiGPUHostReadReleasesAllDevices(t *testing.T) {
	s := newSys(t, 64<<20, func(c *Config) { c.GPUs = 2 })
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUVM(k); err != nil {
		t.Fatal(err)
	}
	if s.ResidentPages() == 0 {
		t.Fatal("nothing resident after run")
	}
	for _, r := range s.Space().Ranges() {
		if _, err := s.HostRead(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ResidentPages(); got != 0 {
		t.Errorf("resident = %d after HostRead of every range, want 0", got)
	}
	mgr := s.MultiGPU()
	s.Space().ForEachBlock(func(b *mem.VABlock) {
		if mgr.Owner(b.ID) != -1 {
			t.Errorf("block %d still owned after HostRead", b.ID)
		}
	})
}
