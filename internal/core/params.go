package core

import (
	"fmt"
	"strconv"
	"strings"

	"uvmsim/internal/driver"
)

// ApplyModuleParams mutates cfg according to NVIDIA UVM kernel-module
// parameters, using their real names, so configurations written for the
// actual driver translate directly:
//
//	uvm_perf_prefetch_enable=0|1        prefetching off/on
//	uvm_perf_prefetch_threshold=N       density threshold (1-99)
//	uvm_perf_fault_batch_count=N        fault batch size
//	uvm_perf_fault_replay_policy=N      0=block 1=batch 2=batchflush 3=once
//	uvm_perf_fault_coalesce=0|1         (accepted; always on in this model)
//
// Parameters are space- or comma-separated "name=value" pairs. Unknown
// parameters are rejected so typos do not silently change nothing.
func ApplyModuleParams(cfg *Config, params string) error {
	fields := strings.FieldsFunc(params, func(r rune) bool { return r == ' ' || r == ',' || r == '\n' || r == '\t' })
	for _, f := range fields {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("core: module param %q is not name=value", f)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("core: module param %s: bad value %q", name, val)
		}
		switch name {
		case "uvm_perf_prefetch_enable":
			switch n {
			case 0:
				cfg.PrefetchPolicy = "none"
			case 1:
				if cfg.PrefetchPolicy == "none" || cfg.PrefetchPolicy == "" {
					cfg.PrefetchPolicy = "density"
				}
			default:
				return fmt.Errorf("core: uvm_perf_prefetch_enable must be 0 or 1, got %d", n)
			}
		case "uvm_perf_prefetch_threshold":
			if n < 1 || n > 99 {
				return fmt.Errorf("core: uvm_perf_prefetch_threshold %d out of [1,99]", n)
			}
			cfg.PrefetchPolicy = fmt.Sprintf("density:%d", n)
		case "uvm_perf_fault_batch_count":
			if n < 1 {
				return fmt.Errorf("core: uvm_perf_fault_batch_count %d must be >= 1", n)
			}
			cfg.Driver.BatchSize = n
		case "uvm_perf_fault_replay_policy":
			if n < 0 || n > 3 {
				return fmt.Errorf("core: uvm_perf_fault_replay_policy %d out of [0,3]", n)
			}
			cfg.Driver.Policy = driver.ReplayPolicy(n)
		case "uvm_perf_fault_coalesce":
			if n != 0 && n != 1 {
				return fmt.Errorf("core: uvm_perf_fault_coalesce must be 0 or 1, got %d", n)
			}
			// µTLB coalescing is structural in this model; accept for
			// compatibility.
		default:
			return fmt.Errorf("core: unknown module param %q", name)
		}
	}
	return nil
}
