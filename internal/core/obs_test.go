package core

import (
	"testing"

	"uvmsim/internal/driver"
	"uvmsim/internal/inject"
	"uvmsim/internal/obs"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// obsSys builds a system with a fresh collector cell and lifecycle
// tracking enabled.
func obsSys(t *testing.T, gpuMem int64, mut ...func(*Config)) (*System, *obs.Collector) {
	t.Helper()
	col := obs.NewCollector()
	withObs := func(c *Config) {
		c.Obs = obs.Options{Collector: col, Label: "test", Lifecycle: true}
	}
	s := newSys(t, gpuMem, append(mut, withObs)...)
	return s, col
}

func runWorkload(t *testing.T, s *System, name string, bytes int64) *RunResult {
	t.Helper()
	builder, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	k, err := builder(s, bytes, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObsSpanBreakdownReconciliation is the tentpole invariant: summing
// span durations grouped by PhaseOf must equal the run's stats.Breakdown
// exactly — the driver books both from the same charge points.
func TestObsSpanBreakdownReconciliation(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		frac     float64 // of GPU memory
		mut      []func(*Config)
	}{
		{"regular-nopf", "regular", 0.5, []func(*Config){noPrefetch}},
		{"random-prefetch", "random", 0.5, nil},
		{"random-oversub", "random", 1.25, nil}, // exercises evict spans
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gpuMem := int64(48 << 20)
			s, _ := obsSys(t, gpuMem, tc.mut...)
			res := runWorkload(t, s, tc.workload, int64(tc.frac*float64(gpuMem)))
			spans := s.ObsCell().Sink.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}
			got := obs.PhaseTotals(spans)
			for _, p := range stats.Phases() {
				if got.Get(p) != res.Breakdown.Get(p) {
					t.Errorf("phase %v: spans total %v, breakdown %v", p, got.Get(p), res.Breakdown.Get(p))
				}
			}
		})
	}
}

// TestObsBatchEnvelope checks that every driver-phase span carries the
// batch it ran in and that batch envelope spans cover their sub-spans.
func TestObsBatchEnvelope(t *testing.T) {
	s, _ := obsSys(t, 48<<20, noPrefetch)
	runWorkload(t, s, "regular", 8<<20)
	var batches, fetches int
	for _, sp := range s.ObsCell().Sink.Spans() {
		switch sp.Kind {
		case obs.SpanBatch:
			batches++
			if sp.Arg <= 0 {
				t.Errorf("batch span %d with fault count %d", sp.Batch, sp.Arg)
			}
		case obs.SpanFetch:
			fetches++
			if sp.Batch == 0 {
				t.Error("fetch span outside any batch")
			}
		}
	}
	if batches == 0 || fetches == 0 {
		t.Fatalf("batches=%d fetches=%d, want both > 0", batches, fetches)
	}
	if got := s.Metrics().Histogram("batch_ns").Hist().Count(); got != uint64(batches) {
		t.Errorf("batch_ns count = %d, span batches = %d", got, batches)
	}
}

// TestObsLifecycleConservation asserts the fault-conservation equation
// (born = replayed + stale + flushed) at end of run for every replay
// policy, with and without fault-injection perturbations.
func TestObsLifecycleConservation(t *testing.T) {
	policies := []driver.ReplayPolicy{
		driver.ReplayBlock, driver.ReplayBatch, driver.ReplayBatchFlush, driver.ReplayOnce,
	}
	for _, injected := range []bool{false, true} {
		for _, pol := range policies {
			name := pol.String()
			if injected {
				name += "-injected"
			}
			t.Run(name, func(t *testing.T) {
				gpuMem := int64(32 << 20)
				mut := []func(*Config){noPrefetch, func(c *Config) {
					c.Driver.Policy = pol
					if injected {
						c.Inject = inject.DefaultConfig(7)
					}
				}}
				s, _ := obsSys(t, gpuMem, mut...)
				runWorkload(t, s, "random", gpuMem/2)
				life := s.Lifecycle()
				if err := life.Final(); err != nil {
					t.Fatal(err)
				}
				born, fetched, _, replayed, stale, flushed := life.Counts()
				if born == 0 {
					t.Fatal("no faults tracked")
				}
				if born != replayed+stale+flushed {
					t.Errorf("conservation: born=%d != replayed=%d + stale=%d + flushed=%d",
						born, replayed, stale, flushed)
				}
				if fetched != replayed+stale {
					t.Errorf("fetched=%d != replayed=%d + stale=%d", fetched, replayed, stale)
				}
				if life.BirthToReplay().Count() != replayed {
					t.Errorf("birth_to_replay n=%d, replayed=%d", life.BirthToReplay().Count(), replayed)
				}
			})
		}
	}
}

// TestObsDisabledByDefault: a default system must not assemble any
// instrumentation.
func TestObsDisabledByDefault(t *testing.T) {
	s := newSys(t, 32<<20, noPrefetch)
	if s.ObsCell() != nil {
		t.Error("cell created without a collector")
	}
	if s.Lifecycle().Enabled() {
		t.Error("lifecycle enabled without opt-in")
	}
	runWorkload(t, s, "regular", 4<<20)
	if got := s.Metrics().Counter("faults_fetched").Get(); got == 0 {
		t.Error("metrics registry should still count with tracing off")
	}
}

// TestObsMetricsMatchLegacyCounters: the registry-backed CounterSet must
// agree with the run-result counter deltas for a fresh system.
func TestObsMetricsMatchLegacyCounters(t *testing.T) {
	s := newSys(t, 32<<20, noPrefetch)
	res := runWorkload(t, s, "regular", 4<<20)
	byName := map[string]uint64{}
	for _, sample := range s.Metrics().Samples() {
		byName[sample.Name] = sample.Value
	}
	for _, c := range res.Counters.Sorted() {
		if got, ok := byName[c.Name]; !ok || got != c.Value {
			t.Errorf("metric %s: registry=%d (present=%v) delta=%d", c.Name, got, ok, c.Value)
		}
	}
}

// BenchmarkDriverService measures a small end-to-end UVM run with
// instrumentation off and fully on. The "off" variant is the alloc
// guard: tracing must add no allocations when disabled, so off/on
// allocs/op quantify the observability layer's total overhead.
func BenchmarkDriverService(b *testing.B) {
	run := func(b *testing.B, o obs.Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := DefaultConfig(32 << 20)
			cfg.PrefetchPolicy = "none"
			cfg.Obs = o
			s, err := NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			k, err := workloads.PageTouchRegular(s, 2<<20, workloads.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.RunUVM(k); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("obs-off", func(b *testing.B) { run(b, obs.Options{}) })
	b.Run("obs-on", func(b *testing.B) {
		run(b, obs.Options{Collector: obs.NewCollector(), Label: "bench", Lifecycle: true})
	})
}
