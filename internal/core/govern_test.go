package core

import (
	"errors"
	"testing"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/workloads"
)

// A run whose event budget trips must surface a *sim.StopError instead
// of hanging or misreporting a deadlock.
func TestRunUVMStopsOnEventBudget(t *testing.T) {
	s := newSys(t, 64<<20, noPrefetch, func(c *Config) {
		c.Budget = sim.Budget{MaxEvents: 500}
	})
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunUVM(k)
	var stop *sim.StopError
	if !errors.As(err, &stop) {
		t.Fatalf("err = %v, want *sim.StopError", err)
	}
	if stop.Reason != sim.StopEventBudget {
		t.Fatalf("reason = %v, want event budget", stop.Reason)
	}
	if s.Engine().Executed() != 500 {
		t.Fatalf("executed %d events, budget was 500", s.Engine().Executed())
	}
}

// Cancellation set before the run starts must stop it within the polling
// cadence and stamp a cancel span into the capture.
func TestRunUVMCancelStampsSpan(t *testing.T) {
	cancel := &sim.Cancel{}
	col := obs.NewCollector()
	s := newSys(t, 64<<20, noPrefetch, func(c *Config) {
		c.Cancel = cancel
		c.Obs = obs.Options{Collector: col, Label: "cancelled-cell"}
	})
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cancel.Set()
	_, err = s.RunUVM(k)
	var stop *sim.StopError
	if !errors.As(err, &stop) || stop.Reason != sim.StopCancelled {
		t.Fatalf("err = %v, want cancelled StopError", err)
	}
	spans := s.ObsCell().Sink.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans captured")
	}
	last := spans[len(spans)-1]
	if last.Kind != obs.SpanCancel || last.Arg != int64(sim.StopCancelled) {
		t.Fatalf("last span = %+v, want cancel marker", last)
	}
}

// A simulated-time budget must stop the run without the clock passing
// the deadline.
func TestRunUVMSimDeadline(t *testing.T) {
	deadline := sim.Time(50 * sim.Microsecond)
	s := newSys(t, 64<<20, noPrefetch, func(c *Config) {
		c.Budget = sim.Budget{SimDeadline: deadline}
	})
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunUVM(k)
	var stop *sim.StopError
	if !errors.As(err, &stop) || stop.Reason != sim.StopSimBudget {
		t.Fatalf("err = %v, want sim-budget StopError", err)
	}
	if s.Engine().Now() > deadline {
		t.Fatalf("clock %v passed the deadline %v", s.Engine().Now(), deadline)
	}
}

// An ungoverned system must be entirely unaffected by the new fields.
func TestUngovernedRunUnchanged(t *testing.T) {
	s := newSys(t, 64<<20, noPrefetch)
	res := runRegular(t, s, 8<<20)
	if res.Faults == 0 {
		t.Fatal("run did not execute")
	}
	if s.Engine().StopReason() != sim.StopNone {
		t.Fatalf("stop reason = %v on ungoverned run", s.Engine().StopReason())
	}
}
