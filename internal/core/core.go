// Package core assembles the complete simulated UVM system: address
// space, GPU, fault buffer, interconnect, physical allocator, eviction
// and prefetch policies, and the UVM driver. It exposes the two execution
// modes the paper compares: demand-paged UVM kernels and the
// explicit-transfer baseline.
//
// A system holds K ≥ 1 devices. K=1 constructs exactly the classic
// single-GPU object graph (the multi-GPU hooks stay nil, so outputs are
// byte-identical to the pre-multi-GPU simulator). K>1 instantiates one
// driver/GPU/allocator/eviction stack per device over per-device views
// of one shared managed address space, coordinated by the
// internal/multigpu residency map and interconnect fabric.
package core

import (
	"fmt"
	"sort"
	"strings"

	"uvmsim/internal/driver"
	"uvmsim/internal/evict"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/pma"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/thrash"
	"uvmsim/internal/trace"
	"uvmsim/internal/xfer"
)

// deviceSeedStride decorrelates per-device RNG streams (the golden-ratio
// increment, the same stream-splitting constant sim.RNG uses). Device 0
// keeps the configured seed, so K=1 consumes the exact classic stream.
const deviceSeedStride = 0x9e3779b97f4a7c15

// Config describes a complete system. Zero-valid fields fall back to the
// calibrated defaults in DefaultConfig.
type Config struct {
	// Seed drives every random decision in the simulation.
	Seed uint64
	// GPUs is the device count K (0 means 1). Every device gets its own
	// framebuffer of GPUMemoryBytes, driver instance, fault buffer, and
	// host link; K>1 adds the shared residency map and peer fabric.
	GPUs int
	// Migration selects the multi-GPU page-placement policy; ignored at
	// K=1. The zero value is multigpu.FirstTouch.
	Migration multigpu.Policy
	// MigrationThreshold is the access-counter migration threshold
	// (0 selects multigpu.DefaultThreshold).
	MigrationThreshold int
	// Peer describes the peer↔peer interconnect channels; the zero value
	// selects xfer.DefaultNVLink2.
	Peer xfer.LinkConfig
	// GPUMemoryBytes is the usable framebuffer size per device. The
	// paper's Titan V has 12 GB; experiments typically use a scaled-down
	// value with proportionally scaled problem sizes.
	GPUMemoryBytes int64
	// VABlockSize is the allocation/eviction granularity (default 2 MB;
	// the §VI-B flexible-granularity extension changes it).
	VABlockSize int64
	// PrefetchPolicy names the prefetcher (see prefetch.New).
	PrefetchPolicy string
	// EvictPolicy names the eviction policy (see evict.New).
	EvictPolicy string
	// KernelLaunch is the host-side launch overhead.
	KernelLaunch sim.Duration
	// TraceCapacity bounds recorded trace events; 0 disables tracing and
	// a negative value records unbounded.
	TraceCapacity int
	// Inject configures the deterministic fault-injection layer; the
	// zero value (Enabled=false) wires no injector.
	Inject inject.Config
	// InvariantStride is the invariant checker's deep-check period in
	// events; 0 selects inject.DefaultStride. The checker itself is
	// always on.
	InvariantStride int
	// Obs selects deep runtime instrumentation (span tracing into a
	// collector cell, fault-lifecycle tracking). The zero value disables
	// it all; the hot path then takes only nil checks. At K>1 each device
	// gets its own cell labeled "<label> [gpu<d>]".
	Obs obs.Options
	// Cancel, when non-nil, is polled by the engine's dispatch loop so a
	// host-side signal or context can stop the run between events.
	Cancel *sim.Cancel
	// Budget bounds the run in simulated time, event count, and forward
	// progress; the zero value imposes no bounds.
	Budget sim.Budget

	GPU    gpusim.Config
	Driver driver.Config
	Link   xfer.LinkConfig
	PMA    pma.Config // CapacityBytes/ChunkBytes are overridden from above
}

// DefaultConfig returns the calibrated Titan-V-like system with the given
// framebuffer size.
func DefaultConfig(gpuMemBytes int64) Config {
	return Config{
		Seed:           1,
		GPUs:           1,
		GPUMemoryBytes: gpuMemBytes,
		VABlockSize:    mem.DefaultVABlockSize,
		PrefetchPolicy: "density",
		EvictPolicy:    "lru",
		KernelLaunch:   12 * sim.Microsecond,
		TraceCapacity:  0,
		GPU:            gpusim.DefaultConfig(),
		Driver:         driver.DefaultConfig(),
		Link:           xfer.DefaultPCIe3x16(),
		Peer:           xfer.DefaultNVLink2(),
		PMA:            pma.DefaultConfig(gpuMemBytes),
	}
}

// deviceSys is one device's complete component stack.
type deviceSys struct {
	rng     *sim.RNG
	space   *mem.AddressSpace
	pm      *pma.PMA
	link    *xfer.Link
	gpu     *gpusim.GPU
	drv     *driver.Driver
	evictor evict.Policy
	pf      prefetch.Prefetcher
	cell    *obs.Cell      // nil when span tracing is disabled
	life    *obs.Lifecycle // nil when lifecycle tracking is disabled
	inv     *inject.Invariants
}

// System is an assembled simulated machine. Create one per experiment
// cell; allocations and residency persist across kernel launches on the
// same system (so warm reuse and multi-kernel applications work).
type System struct {
	cfg  Config
	eng  *sim.Engine
	rec  *trace.Recorder  // shared across devices; nil-safe
	inj  *inject.Injector // nil when injection is disabled
	devs []*deviceSys
	mgr  *multigpu.Manager    // nil at K=1
	minv *multigpu.Invariants // nil at K=1
}

// NewSystem validates cfg and assembles the system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.GPUMemoryBytes <= 0 {
		return nil, fmt.Errorf("core: GPUMemoryBytes %d must be positive", cfg.GPUMemoryBytes)
	}
	if cfg.GPUs == 0 {
		cfg.GPUs = 1
	}
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("core: GPUs %d must be at least 1", cfg.GPUs)
	}
	if cfg.GPUs > multigpu.MaxDevices {
		return nil, fmt.Errorf("core: GPUs %d exceeds the supported maximum %d", cfg.GPUs, multigpu.MaxDevices)
	}
	if cfg.VABlockSize == 0 {
		cfg.VABlockSize = mem.DefaultVABlockSize
	}
	geom, err := mem.NewGeometry(cfg.VABlockSize)
	if err != nil {
		return nil, err
	}
	K := cfg.GPUs
	eng := sim.NewEngine()
	if cfg.Cancel != nil {
		eng.SetCancel(cfg.Cancel)
	}
	if cfg.Budget.Active() {
		eng.SetBudget(cfg.Budget)
	}
	var rec *trace.Recorder
	switch {
	case cfg.TraceCapacity < 0:
		rec = trace.New()
	case cfg.TraceCapacity > 0:
		rec = trace.NewBounded(cfg.TraceCapacity)
	}
	var inj *inject.Injector
	if cfg.Inject.Enabled {
		// The injector runs on its own RNG stream so injected and
		// baseline runs of the same seed execute identical workloads.
		inj, err = inject.New(cfg.Inject)
		if err != nil {
			return nil, err
		}
	}

	cfg.PMA.CapacityBytes = cfg.GPUMemoryBytes
	cfg.PMA.ChunkBytes = cfg.VABlockSize
	devs := make([]*deviceSys, K)
	tracers := make([]*obs.Tracer, K)
	for d := 0; d < K; d++ {
		rng := sim.NewRNG(cfg.Seed + uint64(d)*deviceSeedStride)
		space := mem.NewAddressSpace(geom)
		if K > 1 {
			// Peer-owned blocks gain remote mappings dynamically, so the
			// GPU's resident-access fast path must always consult the block.
			space.MarkSpecial()
		}
		pm, err := pma.New(cfg.PMA, rng)
		if err != nil {
			return nil, err
		}
		link, err := xfer.NewLink(eng, cfg.Link)
		if err != nil {
			return nil, err
		}
		gpu, err := gpusim.New(eng, cfg.GPU, space, rng)
		if err != nil {
			return nil, err
		}
		ev, err := buildEvictPolicy(cfg.EvictPolicy, rng)
		if err != nil {
			return nil, err
		}
		pf, err := prefetch.New(cfg.PrefetchPolicy)
		if err != nil {
			return nil, err
		}
		if inj != nil {
			gpu.FaultBuffer().SetPerturber(inj)
			link.SetFaultHook(inj.DMAFault)
		}
		dv := &deviceSys{rng: rng, space: space, pm: pm, link: link, gpu: gpu, evictor: ev, pf: pf}
		if cfg.Obs.Collector != nil {
			label := cfg.Obs.Label
			if K > 1 {
				label = fmt.Sprintf("%s [gpu%d]", label, d)
			}
			dv.cell = cfg.Obs.Collector.NewCell(label)
			tracers[d] = obs.NewTracer(dv.cell.Sink)
			gpu.SetTracer(tracers[d])
			link.SetTracer(tracers[d])
		}
		if cfg.Obs.Lifecycle {
			dv.life = obs.NewLifecycle()
			gpu.FaultBuffer().SetLifecycle(dv.life)
		}
		devs[d] = dv
	}

	var mgr *multigpu.Manager
	if K > 1 {
		mdevs := make([]*multigpu.Device, K)
		for d, dv := range devs {
			mdevs[d] = &multigpu.Device{
				ID: d, Space: dv.space, PMA: dv.pm, Evict: dv.evictor,
				Link: dv.link, Tracer: tracers[d],
			}
		}
		mgr, err = multigpu.NewManager(eng, multigpu.Config{
			Policy:    cfg.Migration,
			Threshold: cfg.MigrationThreshold,
			Peer:      cfg.Peer,
		}, mdevs)
		if err != nil {
			return nil, err
		}
	}

	for d, dv := range devs {
		deps := driver.Deps{
			Engine:   eng,
			Space:    dv.space,
			Buffer:   dv.gpu.FaultBuffer(),
			PMA:      dv.pm,
			Link:     dv.link,
			Evict:    dv.evictor,
			Prefetch: dv.pf,
			Replayer: dv.gpu,
			Trace:    rec,
			Obs:      tracers[d],
			Life:     dv.life,
		}
		if inj != nil {
			deps.Inject = inj
		}
		if mgr != nil {
			deps.Residency = mgr.DriverHook(d)
		}
		drv, err := driver.New(cfg.Driver, deps)
		if err != nil {
			return nil, err
		}
		if dv.cell != nil {
			dv.cell.Bind(drv.Metrics(), dv.life)
		}
		dv.gpu.SetHandler(drv)
		dv.gpu.SetRemoteLink(dv.link)
		if mgr != nil {
			dev := d
			dv.gpu.SetRemoteHook(func(a gpusim.Access, b *mem.VABlock) sim.Duration {
				return mgr.RemoteAccess(dev, a.Page, a.Write, b)
			})
		}
		dv.drv = drv
		dv.inv = inject.NewInvariants(eng, dv.gpu.FaultBuffer(), dv.space, dv.pm, cfg.Seed, cfg.InvariantStride)
	}

	s := &System{cfg: cfg, eng: eng, rec: rec, inj: inj, devs: devs, mgr: mgr}
	if K == 1 {
		devs[0].inv.Attach()
	} else {
		// The engine has a single observer slot: compose every device's
		// conservation checker with the cross-device residency audit.
		s.minv = multigpu.NewInvariants(mgr, cfg.InvariantStride)
		eng.SetObserver(func(now sim.Time) {
			for _, dv := range devs {
				dv.inv.Observe(now)
			}
			s.minv.Observe(now)
		})
	}
	return s, nil
}

// buildEvictPolicy resolves an eviction policy name, supporting a
// "+thrash" suffix that wraps the base policy with the thrashing
// detector (e.g. "lru+thrash").
func buildEvictPolicy(name string, rng *sim.RNG) (evict.Policy, error) {
	base, wrap := name, false
	if strings.HasSuffix(name, "+thrash") {
		base, wrap = strings.TrimSuffix(name, "+thrash"), true
	}
	ev, err := evict.New(base, rng)
	if err != nil {
		return nil, err
	}
	if !wrap {
		return ev, nil
	}
	return thrash.New(thrash.DefaultConfig(), ev)
}

// ValidatePolicies resolves the policy names and multi-GPU knobs in cfg
// without assembling a system. Sweep front-ends use it to reject a
// misspelled policy before any simulation has run, rather than failing
// mid-sweep when the bad combination is finally reached.
func ValidatePolicies(cfg Config) error {
	if _, err := buildEvictPolicy(cfg.EvictPolicy, sim.NewRNG(0)); err != nil {
		return err
	}
	if _, err := prefetch.New(cfg.PrefetchPolicy); err != nil {
		return err
	}
	if cfg.GPUs < 0 || cfg.GPUs > multigpu.MaxDevices {
		return fmt.Errorf("core: GPUs %d out of range [1, %d]", cfg.GPUs, multigpu.MaxDevices)
	}
	if cfg.Migration < multigpu.FirstTouch || cfg.Migration > multigpu.AccessCounter {
		return fmt.Errorf("core: invalid migration policy %d", int(cfg.Migration))
	}
	return nil
}

// Config returns the system's (normalized) configuration.
func (s *System) Config() Config { return s.cfg }

// GPUs returns the device count K.
func (s *System) GPUs() int { return len(s.devs) }

// Space returns device 0's address-space view for inspection. At K=1 it
// is the address space.
func (s *System) Space() *mem.AddressSpace { return s.devs[0].space }

// SpaceOf returns device d's address-space view.
func (s *System) SpaceOf(d int) *mem.AddressSpace { return s.devs[d].space }

// Engine returns the simulation engine (advanced use).
func (s *System) Engine() *sim.Engine { return s.eng }

// Trace returns the trace recorder (nil when tracing is disabled).
func (s *System) Trace() *trace.Recorder { return s.rec }

// Driver exposes device 0's driver for white-box inspection.
func (s *System) Driver() *driver.Driver { return s.devs[0].drv }

// DriverOf exposes device d's driver.
func (s *System) DriverOf(d int) *driver.Driver { return s.devs[d].drv }

// PMA exposes device 0's physical allocator for inspection.
func (s *System) PMA() *pma.PMA { return s.devs[0].pm }

// GPU exposes device 0 for inspection.
func (s *System) GPU() *gpusim.GPU { return s.devs[0].gpu }

// GPUOf exposes device d.
func (s *System) GPUOf(d int) *gpusim.GPU { return s.devs[d].gpu }

// Injector exposes the fault-injection layer (nil when disabled).
func (s *System) Injector() *inject.Injector { return s.inj }

// MultiGPU exposes the shared residency map and fabric (nil at K=1).
func (s *System) MultiGPU() *multigpu.Manager { return s.mgr }

// ObsCell exposes device 0's observability capture (nil when span
// tracing is disabled).
func (s *System) ObsCell() *obs.Cell { return s.devs[0].cell }

// ObsCells exposes every device's observability capture in device order
// (empty when span tracing is disabled).
func (s *System) ObsCells() []*obs.Cell {
	var cells []*obs.Cell
	for _, dv := range s.devs {
		if dv.cell != nil {
			cells = append(cells, dv.cell)
		}
	}
	return cells
}

// Lifecycle exposes device 0's fault-lifecycle collector (nil when
// disabled).
func (s *System) Lifecycle() *obs.Lifecycle { return s.devs[0].drv.Lifecycle() }

// Metrics exposes the driver metrics registry. At K=1 this is device 0's
// live registry; at K>1 it is a merged snapshot summing every device's
// counters plus the residency manager's fabric/migration counters.
func (s *System) Metrics() *obs.Registry {
	if len(s.devs) == 1 {
		return s.devs[0].drv.Metrics()
	}
	reg := obs.NewRegistry()
	for _, dv := range s.devs {
		reg.Absorb("", dv.drv.Metrics().Samples())
	}
	reg.Absorb("", s.mgr.Registry().Samples())
	return reg
}

// Invariants exposes device 0's runtime invariant checker.
func (s *System) Invariants() *inject.Invariants { return s.devs[0].inv }

// MallocManaged reserves a managed range (the cudaMallocManaged
// analogue). Data starts on the host; pages migrate on demand.
func (s *System) MallocManaged(size int64, label string) (*mem.Range, error) {
	return s.MallocManagedMode(size, label, mem.ModeMigrate)
}

// MallocManagedMode reserves a managed range with one of UVM's three
// access behaviors (§III-A): paged migration, remote mapping, or
// read-only duplication. At K>1 the range is mirrored into every
// device's view — the views share one virtual layout, so PageIDs and
// VABlockIDs are global.
func (s *System) MallocManagedMode(size int64, label string, mode mem.AccessMode) (*mem.Range, error) {
	r, err := s.devs[0].space.AllocMode(size, label, mode)
	if err != nil {
		return nil, err
	}
	for _, dv := range s.devs[1:] {
		if _, err := dv.space.AllocMode(size, label, mode); err != nil {
			return nil, fmt.Errorf("core: mirroring range %q: %w", label, err)
		}
	}
	return r, nil
}

// RunResult reports one kernel execution, aggregated across devices.
type RunResult struct {
	// KernelTime spans launch to retirement of the last block on any
	// device.
	KernelTime sim.Duration
	// TotalTime additionally includes explicit staging transfers (equal
	// to KernelTime for UVM runs).
	TotalTime sim.Duration
	// Breakdown is the driver-phase time charged during this run, summed
	// across devices.
	Breakdown stats.Breakdown
	// Counters are the driver event-counter deltas for this run, summed
	// across devices.
	Counters *stats.CounterSet
	// GPU is the GPU-side statistics delta for this run, summed across
	// devices (MaxStalled is the per-device maximum).
	GPU gpusim.Stats
	// BytesH2D and BytesD2H are host-interconnect byte deltas summed
	// across devices; BytesP2P is the peer-fabric byte delta (0 at K=1).
	BytesH2D, BytesD2H, BytesP2P int64
	// Faults is the number of fault entries the drivers fetched.
	Faults uint64
	// Evictions is the number of VABlock evictions.
	Evictions uint64
}

// snapshot captures cumulative state so runs can report deltas.
type snapshot struct {
	bd       stats.Breakdown
	counters map[string]uint64
	gpu      gpusim.Stats
	h2d, d2h int64
	p2p      int64
}

func (s *System) snap() snapshot {
	sn := snapshot{counters: make(map[string]uint64)}
	for _, dv := range s.devs {
		bd := dv.drv.Breakdown()
		for _, p := range stats.Phases() {
			sn.bd.Add(p, bd.Get(p))
		}
		g := dv.gpu.Stats()
		sn.gpu.Accesses += g.Accesses
		sn.gpu.FaultsRaised += g.FaultsRaised
		sn.gpu.FaultsCoalesced += g.FaultsCoalesced
		sn.gpu.FaultsDropped += g.FaultsDropped
		sn.gpu.FaultsThrottled += g.FaultsThrottled
		sn.gpu.RemoteAccesses += g.RemoteAccesses
		sn.gpu.Replays += g.Replays
		sn.gpu.StallTime += g.StallTime
		if g.MaxStalled > sn.gpu.MaxStalled {
			sn.gpu.MaxStalled = g.MaxStalled
		}
		sn.h2d += dv.link.BytesMoved(xfer.HostToDevice)
		sn.d2h += dv.link.BytesMoved(xfer.DeviceToHost)
		for _, c := range dv.drv.Counters().Sorted() {
			sn.counters[c.Name] += c.Value
		}
	}
	if s.mgr != nil {
		sn.p2p = s.mgr.Fabric().TotalBytes()
		for _, sample := range s.mgr.Registry().Samples() {
			if sample.Kind == obs.KindCounter {
				sn.counters[sample.Name] += sample.Value
			}
		}
	}
	return sn
}

func (s *System) delta(before snapshot, kernelTime, totalTime sim.Duration) *RunResult {
	after := s.snap()
	res := &RunResult{
		KernelTime: kernelTime,
		TotalTime:  totalTime,
		Counters:   stats.NewCounterSet(),
		BytesH2D:   after.h2d - before.h2d,
		BytesD2H:   after.d2h - before.d2h,
		BytesP2P:   after.p2p - before.p2p,
	}
	for _, p := range stats.Phases() {
		res.Breakdown.Add(p, after.bd.Get(p)-before.bd.Get(p))
	}
	names := make([]string, 0, len(after.counters))
	for name := range after.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res.Counters.Inc(name, after.counters[name]-before.counters[name])
	}
	res.GPU = gpusim.Stats{
		Accesses:        after.gpu.Accesses - before.gpu.Accesses,
		FaultsRaised:    after.gpu.FaultsRaised - before.gpu.FaultsRaised,
		FaultsCoalesced: after.gpu.FaultsCoalesced - before.gpu.FaultsCoalesced,
		FaultsDropped:   after.gpu.FaultsDropped - before.gpu.FaultsDropped,
		FaultsThrottled: after.gpu.FaultsThrottled - before.gpu.FaultsThrottled,
		RemoteAccesses:  after.gpu.RemoteAccesses - before.gpu.RemoteAccesses,
		Replays:         after.gpu.Replays - before.gpu.Replays,
		StallTime:       after.gpu.StallTime - before.gpu.StallTime,
		MaxStalled:      after.gpu.MaxStalled,
	}
	res.Faults = res.Counters.Get("faults_fetched")
	res.Evictions = res.Counters.Get("evictions")
	return res
}

// stopErr converts a tripped engine governor into the run's error,
// stamping a cancel point-span into every capture so a truncated trace
// carries its own explanation. Nil when no governor tripped.
func (s *System) stopErr() error {
	reason := s.eng.StopReason()
	if reason == sim.StopNone {
		return nil
	}
	now := s.eng.Now()
	for _, dv := range s.devs {
		if dv.cell != nil {
			dv.cell.Sink.Span(obs.Span{Kind: obs.SpanCancel, Start: now, End: now, Arg: int64(reason)})
		}
	}
	return &sim.StopError{Reason: reason, Now: now, Executed: s.eng.Executed()}
}

// splitKernel partitions k's thread blocks across devices in contiguous
// slices (the standard multi-GPU domain decomposition). K=1 returns the
// kernel itself, untouched. Partitions that would be empty (more devices
// than blocks) are nil.
func (s *System) splitKernel(k *gpusim.Kernel) []*gpusim.Kernel {
	K := len(s.devs)
	if K == 1 {
		return []*gpusim.Kernel{k}
	}
	parts := make([]*gpusim.Kernel, K)
	n := len(k.Blocks)
	for d := 0; d < K; d++ {
		lo, hi := d*n/K, (d+1)*n/K
		if lo == hi {
			continue
		}
		parts[d] = &gpusim.Kernel{
			Name:             fmt.Sprintf("%s.gpu%d", k.Name, d),
			Blocks:           k.Blocks[lo:hi],
			ComputePerAccess: k.ComputePerAccess,
		}
	}
	return parts
}

// finalChecks runs every device's end-of-run invariant audit plus (K>1)
// the cross-device residency audit.
func (s *System) finalChecks() error {
	for d, dv := range s.devs {
		if err := dv.inv.Final(); err != nil {
			if len(s.devs) > 1 {
				return fmt.Errorf("gpu%d: %w", d, err)
			}
			return err
		}
		if err := dv.drv.Lifecycle().CheckConservation(); err != nil {
			if len(s.devs) > 1 {
				return fmt.Errorf("gpu%d: %w", d, err)
			}
			return err
		}
	}
	if s.minv != nil {
		if err := runRecovered(func() { s.minv.Final(s.eng.Now()) }); err != nil {
			return err
		}
	}
	return nil
}

// runRecovered converts an *inject.Violation panic into an error so
// final multi-GPU audits report like per-device ones; other panics
// propagate.
func runRecovered(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*inject.Violation); ok {
				err = v
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

// RunUVM executes k under demand paging and returns its measurements.
// At K>1 the kernel's thread blocks are partitioned contiguously across
// devices and launched simultaneously; the run completes when the last
// device retires its partition.
func (s *System) RunUVM(k *gpusim.Kernel) (*RunResult, error) {
	before := s.snap()
	start := s.eng.Now().Add(s.cfg.KernelLaunch)
	parts := s.splitKernel(k)
	var doneAt sim.Time = -1
	remaining := 0
	for _, p := range parts {
		if p != nil {
			remaining++
		}
	}
	s.eng.At(start, func() {
		for d, p := range parts {
			if p == nil {
				continue
			}
			if err := s.devs[d].gpu.Launch(p, func(at sim.Time) {
				remaining--
				if at > doneAt {
					doneAt = at
				}
			}); err != nil {
				panic(err) // single-threaded: Launch cannot race; config errors are programmer bugs
			}
		}
	})
	s.eng.Run()
	if err := s.stopErr(); err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	if remaining > 0 || doneAt < 0 {
		if len(s.devs) == 1 {
			return nil, fmt.Errorf("core: kernel %q deadlocked: %d warps blocked, %d buffered faults, driver idle=%v",
				k.Name, s.devs[0].gpu.BlockedWarps(), s.devs[0].gpu.FaultBuffer().Len(), s.devs[0].drv.Idle())
		}
		var parts []string
		for d, dv := range s.devs {
			parts = append(parts, fmt.Sprintf("gpu%d: %d warps blocked, %d buffered, idle=%v",
				d, dv.gpu.BlockedWarps(), dv.gpu.FaultBuffer().Len(), dv.drv.Idle()))
		}
		return nil, fmt.Errorf("core: kernel %q deadlocked on %d of %d devices [%s]",
			k.Name, remaining, len(s.devs), strings.Join(parts, "; "))
	}
	if err := s.finalChecks(); err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	elapsed := doneAt.Sub(start) + s.cfg.KernelLaunch
	return s.delta(before, elapsed, elapsed), nil
}

// Prestage explicitly transfers every allocated range to the GPU and maps
// it (the cudaMemcpy baseline). It fails when the data does not fit. At
// K>1 everything stages to device 0 (the naive explicit multi-GPU
// distribution) and peers receive remote mappings — remote-access
// traffic then shows exactly why explicit multi-GPU code wants manual
// domain decomposition.
func (s *System) Prestage() (sim.Duration, error) {
	dev0 := s.devs[0]
	geom := dev0.space.Geometry()
	needBlocks := 0
	for _, r := range dev0.space.Ranges() {
		if r.Mode != mem.ModeMigrate {
			continue // remote/duplicated data does not consume GPU memory here
		}
		needBlocks += r.Blocks
	}
	if int64(needBlocks)*s.cfg.VABlockSize > s.cfg.GPUMemoryBytes {
		return 0, fmt.Errorf("core: explicit prestage needs %d blocks but GPU holds %d",
			needBlocks, s.cfg.GPUMemoryBytes/s.cfg.VABlockSize)
	}
	start := s.eng.Now()
	var end sim.Time = start
	for _, r := range dev0.space.Ranges() {
		if r.Mode == mem.ModeRemoteMap {
			continue // already mapped; nothing to stage
		}
		done := dev0.link.Enqueue(xfer.HostToDevice, mem.Bytes(r.Pages), nil)
		if done > end {
			end = done
		}
		for b := 0; b < r.Blocks; b++ {
			id := geom.BlockOf(r.StartPage) + mem.VABlockID(b)
			blk := dev0.space.Block(id)
			if blk.Allocated {
				continue
			}
			if _, err := dev0.pm.Alloc(); err != nil {
				return 0, fmt.Errorf("core: prestage allocation: %w", err)
			}
			blk.Allocated = true
			valid := dev0.space.ValidPagesIn(id)
			for p := 0; p < valid; p++ {
				blk.Resident.Set(p)
			}
			if s.mgr != nil {
				s.mgr.PrestageOwner(0, blk)
			}
		}
	}
	s.eng.RunUntil(end)
	if err := s.stopErr(); err != nil {
		return 0, fmt.Errorf("core: prestage: %w", err)
	}
	return end.Sub(start), nil
}

// RunExplicit executes k with all data prestaged: the paper's explicit
// direct-transfer baseline. TotalTime includes the transfer.
func (s *System) RunExplicit(k *gpusim.Kernel) (*RunResult, error) {
	before := s.snap()
	xferTime, err := s.Prestage()
	if err != nil {
		return nil, err
	}
	start := s.eng.Now().Add(s.cfg.KernelLaunch)
	parts := s.splitKernel(k)
	var doneAt sim.Time = -1
	remaining := 0
	for _, p := range parts {
		if p != nil {
			remaining++
		}
	}
	s.eng.At(start, func() {
		for d, p := range parts {
			if p == nil {
				continue
			}
			if err := s.devs[d].gpu.Launch(p, func(at sim.Time) {
				remaining--
				if at > doneAt {
					doneAt = at
				}
			}); err != nil {
				panic(err)
			}
		}
	})
	s.eng.Run()
	if err := s.stopErr(); err != nil {
		return nil, fmt.Errorf("core: explicit kernel %q: %w", k.Name, err)
	}
	if remaining > 0 || doneAt < 0 {
		return nil, fmt.Errorf("core: explicit kernel %q did not finish (faulted on unstaged page?)", k.Name)
	}
	kernel := doneAt.Sub(start) + s.cfg.KernelLaunch
	return s.delta(before, kernel, kernel+xferTime), nil
}

// ResidentPages reports current GPU residency summed across devices
// (locally backed pages only; remote mappings are not residency).
func (s *System) ResidentPages() int {
	if len(s.devs) == 1 {
		return s.devs[0].space.ResidentPages()
	}
	total := 0
	for d, dv := range s.devs {
		dv.space.ForEachBlock(func(b *mem.VABlock) {
			if b.Allocated && s.mgr.Owner(b.ID) == d {
				total += b.Resident.Count()
			}
		})
	}
	return total
}

// HostRead simulates the CPU consuming a range after kernel completion
// (e.g. validating results): GPU-resident pages of the range migrate
// back to the host and their blocks are released, mirroring the
// CPU-fault path of UVM. At K>1 each block migrates home from whichever
// device owns it and peers' remote mappings are invalidated. It returns
// the simulated time consumed. No kernel may be running.
func (s *System) HostRead(r *mem.Range) (sim.Duration, error) {
	for _, dv := range s.devs {
		if dv.gpu.Running() {
			return 0, fmt.Errorf("core: HostRead(%q) while a kernel is running", r.Label)
		}
	}
	geom := s.devs[0].space.Geometry()
	start := s.eng.Now()
	var end sim.Time = start
	firstBlock := geom.BlockOf(r.StartPage)
	for b := 0; b < r.Blocks; b++ {
		id := firstBlock + mem.VABlockID(b)
		dv := s.devs[0]
		owner := 0
		if s.mgr != nil {
			owner = s.mgr.Owner(id)
			if owner < 0 {
				continue
			}
			dv = s.devs[owner]
		}
		blk := dv.space.BlockIfExists(id)
		if blk == nil || blk.Remote || !blk.Allocated {
			continue
		}
		// Migrate the resident pages home; read-duplicated clean pages
		// already have a valid host copy and need no transfer.
		pages := blk.Resident.Count()
		if blk.ReadDup {
			pages = blk.Dirty.Count()
		}
		if pages > 0 {
			done := dv.link.Enqueue(xfer.DeviceToHost, mem.Bytes(pages), nil)
			if done > end {
				end = done
			}
		}
		blk.Resident.Reset()
		blk.Dirty.Reset()
		blk.Allocated = false
		dv.pm.Free()
		// The block leaves GPU memory outside the fault path; it must
		// also leave the eviction policy's working set.
		dv.evictor.Remove(blk)
		if s.mgr != nil {
			// Ownership returns to the host and peer mappings invalidate,
			// exactly as if the owner's driver had evicted the block.
			s.mgr.DriverHook(owner).Released(blk)
		}
	}
	s.eng.RunUntil(end)
	if err := s.stopErr(); err != nil {
		return 0, fmt.Errorf("core: HostRead(%q): %w", r.Label, err)
	}
	return end.Sub(start), nil
}
