// Package core assembles the complete simulated UVM system: address
// space, GPU, fault buffer, interconnect, physical allocator, eviction
// and prefetch policies, and the UVM driver. It exposes the two execution
// modes the paper compares: demand-paged UVM kernels and the
// explicit-transfer baseline.
package core

import (
	"fmt"
	"strings"

	"uvmsim/internal/driver"
	"uvmsim/internal/evict"
	"uvmsim/internal/gpusim"
	"uvmsim/internal/inject"
	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/pma"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/thrash"
	"uvmsim/internal/trace"
	"uvmsim/internal/xfer"
)

// Config describes a complete system. Zero-valid fields fall back to the
// calibrated defaults in DefaultConfig.
type Config struct {
	// Seed drives every random decision in the simulation.
	Seed uint64
	// GPUMemoryBytes is the usable framebuffer size. The paper's Titan V
	// has 12 GB; experiments typically use a scaled-down value with
	// proportionally scaled problem sizes.
	GPUMemoryBytes int64
	// VABlockSize is the allocation/eviction granularity (default 2 MB;
	// the §VI-B flexible-granularity extension changes it).
	VABlockSize int64
	// PrefetchPolicy names the prefetcher (see prefetch.New).
	PrefetchPolicy string
	// EvictPolicy names the eviction policy (see evict.New).
	EvictPolicy string
	// KernelLaunch is the host-side launch overhead.
	KernelLaunch sim.Duration
	// TraceCapacity bounds recorded trace events; 0 disables tracing and
	// a negative value records unbounded.
	TraceCapacity int
	// Inject configures the deterministic fault-injection layer; the
	// zero value (Enabled=false) wires no injector.
	Inject inject.Config
	// InvariantStride is the invariant checker's deep-check period in
	// events; 0 selects inject.DefaultStride. The checker itself is
	// always on.
	InvariantStride int
	// Obs selects deep runtime instrumentation (span tracing into a
	// collector cell, fault-lifecycle tracking). The zero value disables
	// it all; the hot path then takes only nil checks.
	Obs obs.Options
	// Cancel, when non-nil, is polled by the engine's dispatch loop so a
	// host-side signal or context can stop the run between events.
	Cancel *sim.Cancel
	// Budget bounds the run in simulated time, event count, and forward
	// progress; the zero value imposes no bounds.
	Budget sim.Budget

	GPU    gpusim.Config
	Driver driver.Config
	Link   xfer.LinkConfig
	PMA    pma.Config // CapacityBytes/ChunkBytes are overridden from above
}

// DefaultConfig returns the calibrated Titan-V-like system with the given
// framebuffer size.
func DefaultConfig(gpuMemBytes int64) Config {
	return Config{
		Seed:           1,
		GPUMemoryBytes: gpuMemBytes,
		VABlockSize:    mem.DefaultVABlockSize,
		PrefetchPolicy: "density",
		EvictPolicy:    "lru",
		KernelLaunch:   12 * sim.Microsecond,
		TraceCapacity:  0,
		GPU:            gpusim.DefaultConfig(),
		Driver:         driver.DefaultConfig(),
		Link:           xfer.DefaultPCIe3x16(),
		PMA:            pma.DefaultConfig(gpuMemBytes),
	}
}

// System is an assembled simulated machine. Create one per experiment
// cell; allocations and residency persist across kernel launches on the
// same system (so warm reuse and multi-kernel applications work).
type System struct {
	cfg     Config
	eng     *sim.Engine
	rng     *sim.RNG
	space   *mem.AddressSpace
	gpu     *gpusim.GPU
	drv     *driver.Driver
	pm      *pma.PMA
	link    *xfer.Link
	rec     *trace.Recorder
	pf      prefetch.Prefetcher
	evictor evict.Policy
	inj     *inject.Injector // nil when injection is disabled
	inv     *inject.Invariants
	cell    *obs.Cell // nil when span tracing is disabled
}

// NewSystem validates cfg and assembles the system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.GPUMemoryBytes <= 0 {
		return nil, fmt.Errorf("core: GPUMemoryBytes %d must be positive", cfg.GPUMemoryBytes)
	}
	if cfg.VABlockSize == 0 {
		cfg.VABlockSize = mem.DefaultVABlockSize
	}
	geom, err := mem.NewGeometry(cfg.VABlockSize)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	if cfg.Cancel != nil {
		eng.SetCancel(cfg.Cancel)
	}
	if cfg.Budget.Active() {
		eng.SetBudget(cfg.Budget)
	}
	rng := sim.NewRNG(cfg.Seed)
	space := mem.NewAddressSpace(geom)

	cfg.PMA.CapacityBytes = cfg.GPUMemoryBytes
	cfg.PMA.ChunkBytes = cfg.VABlockSize
	pm, err := pma.New(cfg.PMA, rng)
	if err != nil {
		return nil, err
	}
	link, err := xfer.NewLink(eng, cfg.Link)
	if err != nil {
		return nil, err
	}
	gpu, err := gpusim.New(eng, cfg.GPU, space, rng)
	if err != nil {
		return nil, err
	}
	ev, err := buildEvictPolicy(cfg.EvictPolicy, rng)
	if err != nil {
		return nil, err
	}
	pf, err := prefetch.New(cfg.PrefetchPolicy)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	switch {
	case cfg.TraceCapacity < 0:
		rec = trace.New()
	case cfg.TraceCapacity > 0:
		rec = trace.NewBounded(cfg.TraceCapacity)
	}
	var inj *inject.Injector
	if cfg.Inject.Enabled {
		// The injector runs on its own RNG stream so injected and
		// baseline runs of the same seed execute identical workloads.
		inj, err = inject.New(cfg.Inject)
		if err != nil {
			return nil, err
		}
		gpu.FaultBuffer().SetPerturber(inj)
		link.SetFaultHook(inj.DMAFault)
	}
	deps := driver.Deps{
		Engine:   eng,
		Space:    space,
		Buffer:   gpu.FaultBuffer(),
		PMA:      pm,
		Link:     link,
		Evict:    ev,
		Prefetch: pf,
		Replayer: gpu,
		Trace:    rec,
	}
	if inj != nil {
		deps.Inject = inj
	}
	var cell *obs.Cell
	if cfg.Obs.Collector != nil {
		cell = cfg.Obs.Collector.NewCell(cfg.Obs.Label)
		tr := obs.NewTracer(cell.Sink)
		deps.Obs = tr
		gpu.SetTracer(tr)
		link.SetTracer(tr)
	}
	if cfg.Obs.Lifecycle {
		deps.Life = obs.NewLifecycle()
		gpu.FaultBuffer().SetLifecycle(deps.Life)
	}
	drv, err := driver.New(cfg.Driver, deps)
	if err != nil {
		return nil, err
	}
	if cell != nil {
		cell.Bind(drv.Metrics(), deps.Life)
	}
	gpu.SetHandler(drv)
	gpu.SetRemoteLink(link)
	inv := inject.NewInvariants(eng, gpu.FaultBuffer(), space, pm, cfg.Seed, cfg.InvariantStride)
	inv.Attach()
	return &System{
		cfg: cfg, eng: eng, rng: rng, space: space,
		gpu: gpu, drv: drv, pm: pm, link: link, rec: rec, pf: pf, evictor: ev,
		inj: inj, inv: inv, cell: cell,
	}, nil
}

// buildEvictPolicy resolves an eviction policy name, supporting a
// "+thrash" suffix that wraps the base policy with the thrashing
// detector (e.g. "lru+thrash").
func buildEvictPolicy(name string, rng *sim.RNG) (evict.Policy, error) {
	base, wrap := name, false
	if strings.HasSuffix(name, "+thrash") {
		base, wrap = strings.TrimSuffix(name, "+thrash"), true
	}
	ev, err := evict.New(base, rng)
	if err != nil {
		return nil, err
	}
	if !wrap {
		return ev, nil
	}
	return thrash.New(thrash.DefaultConfig(), ev)
}

// ValidatePolicies resolves the prefetch and eviction policy names in
// cfg without assembling a system. Sweep front-ends use it to reject a
// misspelled policy before any simulation has run, rather than failing
// mid-sweep when the bad combination is finally reached.
func ValidatePolicies(cfg Config) error {
	if _, err := buildEvictPolicy(cfg.EvictPolicy, sim.NewRNG(0)); err != nil {
		return err
	}
	_, err := prefetch.New(cfg.PrefetchPolicy)
	return err
}

// Config returns the system's (normalized) configuration.
func (s *System) Config() Config { return s.cfg }

// Space returns the address space for inspection.
func (s *System) Space() *mem.AddressSpace { return s.space }

// Engine returns the simulation engine (advanced use).
func (s *System) Engine() *sim.Engine { return s.eng }

// Trace returns the trace recorder (nil when tracing is disabled).
func (s *System) Trace() *trace.Recorder { return s.rec }

// Driver exposes the driver for white-box inspection.
func (s *System) Driver() *driver.Driver { return s.drv }

// PMA exposes the physical allocator for inspection.
func (s *System) PMA() *pma.PMA { return s.pm }

// GPU exposes the device for inspection.
func (s *System) GPU() *gpusim.GPU { return s.gpu }

// Injector exposes the fault-injection layer (nil when disabled).
func (s *System) Injector() *inject.Injector { return s.inj }

// ObsCell exposes this system's observability capture (nil when span
// tracing is disabled).
func (s *System) ObsCell() *obs.Cell { return s.cell }

// Lifecycle exposes the fault-lifecycle collector (nil when disabled).
func (s *System) Lifecycle() *obs.Lifecycle { return s.drv.Lifecycle() }

// Metrics exposes the driver's typed metrics registry.
func (s *System) Metrics() *obs.Registry { return s.drv.Metrics() }

// Invariants exposes the always-on runtime invariant checker.
func (s *System) Invariants() *inject.Invariants { return s.inv }

// MallocManaged reserves a managed range (the cudaMallocManaged
// analogue). Data starts on the host; pages migrate on demand.
func (s *System) MallocManaged(size int64, label string) (*mem.Range, error) {
	return s.space.Alloc(size, label)
}

// MallocManagedMode reserves a managed range with one of UVM's three
// access behaviors (§III-A): paged migration, remote mapping, or
// read-only duplication.
func (s *System) MallocManagedMode(size int64, label string, mode mem.AccessMode) (*mem.Range, error) {
	return s.space.AllocMode(size, label, mode)
}

// RunResult reports one kernel execution.
type RunResult struct {
	// KernelTime spans launch to retirement of the last block.
	KernelTime sim.Duration
	// TotalTime additionally includes explicit staging transfers (equal
	// to KernelTime for UVM runs).
	TotalTime sim.Duration
	// Breakdown is the driver-phase time charged during this run.
	Breakdown stats.Breakdown
	// Counters are the driver event-counter deltas for this run.
	Counters *stats.CounterSet
	// GPU is the GPU-side statistics delta for this run.
	GPU gpusim.Stats
	// BytesH2D and BytesD2H are interconnect byte deltas.
	BytesH2D, BytesD2H int64
	// Faults is the number of fault entries the driver fetched.
	Faults uint64
	// Evictions is the number of VABlock evictions.
	Evictions uint64
}

// snapshot captures cumulative state so runs can report deltas.
type snapshot struct {
	bd       stats.Breakdown
	counters map[string]uint64
	gpu      gpusim.Stats
	h2d, d2h int64
}

func (s *System) snap() snapshot {
	sn := snapshot{
		bd:       *s.drv.Breakdown(),
		counters: make(map[string]uint64),
		gpu:      s.gpu.Stats(),
		h2d:      s.link.BytesMoved(xfer.HostToDevice),
		d2h:      s.link.BytesMoved(xfer.DeviceToHost),
	}
	for _, c := range s.drv.Counters().Sorted() {
		sn.counters[c.Name] = c.Value
	}
	return sn
}

func (s *System) delta(before snapshot, kernelTime, totalTime sim.Duration) *RunResult {
	res := &RunResult{
		KernelTime: kernelTime,
		TotalTime:  totalTime,
		Counters:   stats.NewCounterSet(),
		BytesH2D:   s.link.BytesMoved(xfer.HostToDevice) - before.h2d,
		BytesD2H:   s.link.BytesMoved(xfer.DeviceToHost) - before.d2h,
	}
	after := *s.drv.Breakdown()
	for _, p := range stats.Phases() {
		res.Breakdown.Add(p, after.Get(p)-before.bd.Get(p))
	}
	for _, c := range s.drv.Counters().Sorted() {
		res.Counters.Inc(c.Name, c.Value-before.counters[c.Name])
	}
	g := s.gpu.Stats()
	res.GPU = gpusim.Stats{
		Accesses:        g.Accesses - before.gpu.Accesses,
		FaultsRaised:    g.FaultsRaised - before.gpu.FaultsRaised,
		FaultsCoalesced: g.FaultsCoalesced - before.gpu.FaultsCoalesced,
		FaultsDropped:   g.FaultsDropped - before.gpu.FaultsDropped,
		FaultsThrottled: g.FaultsThrottled - before.gpu.FaultsThrottled,
		RemoteAccesses:  g.RemoteAccesses - before.gpu.RemoteAccesses,
		Replays:         g.Replays - before.gpu.Replays,
		StallTime:       g.StallTime - before.gpu.StallTime,
		MaxStalled:      g.MaxStalled,
	}
	res.Faults = res.Counters.Get("faults_fetched")
	res.Evictions = res.Counters.Get("evictions")
	return res
}

// stopErr converts a tripped engine governor into the run's error,
// stamping a cancel point-span into the capture so a truncated trace
// carries its own explanation. Nil when no governor tripped.
func (s *System) stopErr() error {
	reason := s.eng.StopReason()
	if reason == sim.StopNone {
		return nil
	}
	now := s.eng.Now()
	if s.cell != nil {
		s.cell.Sink.Span(obs.Span{Kind: obs.SpanCancel, Start: now, End: now, Arg: int64(reason)})
	}
	return &sim.StopError{Reason: reason, Now: now, Executed: s.eng.Executed()}
}

// RunUVM executes k under demand paging and returns its measurements.
func (s *System) RunUVM(k *gpusim.Kernel) (*RunResult, error) {
	before := s.snap()
	start := s.eng.Now().Add(s.cfg.KernelLaunch)
	var doneAt sim.Time = -1
	launch := func() {
		if err := s.gpu.Launch(k, func(at sim.Time) { doneAt = at }); err != nil {
			panic(err) // single-threaded: Launch cannot race; config errors are programmer bugs
		}
	}
	s.eng.At(start, launch)
	s.eng.Run()
	if err := s.stopErr(); err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	if doneAt < 0 {
		return nil, fmt.Errorf("core: kernel %q deadlocked: %d warps blocked, %d buffered faults, driver idle=%v",
			k.Name, s.gpu.BlockedWarps(), s.gpu.FaultBuffer().Len(), s.drv.Idle())
	}
	if err := s.inv.Final(); err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	if err := s.drv.Lifecycle().CheckConservation(); err != nil {
		return nil, fmt.Errorf("core: kernel %q: %w", k.Name, err)
	}
	elapsed := doneAt.Sub(start) + s.cfg.KernelLaunch
	return s.delta(before, elapsed, elapsed), nil
}

// Prestage explicitly transfers every allocated range to the GPU and maps
// it (the cudaMemcpy baseline). It fails when the data does not fit.
func (s *System) Prestage() (sim.Duration, error) {
	geom := s.space.Geometry()
	needBlocks := 0
	for _, r := range s.space.Ranges() {
		if r.Mode != mem.ModeMigrate {
			continue // remote/duplicated data does not consume GPU memory here
		}
		needBlocks += r.Blocks
	}
	if int64(needBlocks)*s.cfg.VABlockSize > s.cfg.GPUMemoryBytes {
		return 0, fmt.Errorf("core: explicit prestage needs %d blocks but GPU holds %d",
			needBlocks, s.cfg.GPUMemoryBytes/s.cfg.VABlockSize)
	}
	start := s.eng.Now()
	var end sim.Time = start
	for _, r := range s.space.Ranges() {
		if r.Mode == mem.ModeRemoteMap {
			continue // already mapped; nothing to stage
		}
		done := s.link.Enqueue(xfer.HostToDevice, mem.Bytes(r.Pages), nil)
		if done > end {
			end = done
		}
		for b := 0; b < r.Blocks; b++ {
			id := geom.BlockOf(r.StartPage) + mem.VABlockID(b)
			blk := s.space.Block(id)
			if blk.Allocated {
				continue
			}
			if _, err := s.pm.Alloc(); err != nil {
				return 0, fmt.Errorf("core: prestage allocation: %w", err)
			}
			blk.Allocated = true
			valid := s.space.ValidPagesIn(id)
			for p := 0; p < valid; p++ {
				blk.Resident.Set(p)
			}
		}
	}
	s.eng.RunUntil(end)
	if err := s.stopErr(); err != nil {
		return 0, fmt.Errorf("core: prestage: %w", err)
	}
	return end.Sub(start), nil
}

// RunExplicit executes k with all data prestaged: the paper's explicit
// direct-transfer baseline. TotalTime includes the transfer.
func (s *System) RunExplicit(k *gpusim.Kernel) (*RunResult, error) {
	before := s.snap()
	xferTime, err := s.Prestage()
	if err != nil {
		return nil, err
	}
	start := s.eng.Now().Add(s.cfg.KernelLaunch)
	var doneAt sim.Time = -1
	s.eng.At(start, func() {
		if err := s.gpu.Launch(k, func(at sim.Time) { doneAt = at }); err != nil {
			panic(err)
		}
	})
	s.eng.Run()
	if err := s.stopErr(); err != nil {
		return nil, fmt.Errorf("core: explicit kernel %q: %w", k.Name, err)
	}
	if doneAt < 0 {
		return nil, fmt.Errorf("core: explicit kernel %q did not finish (faulted on unstaged page?)", k.Name)
	}
	kernel := doneAt.Sub(start) + s.cfg.KernelLaunch
	return s.delta(before, kernel, kernel+xferTime), nil
}

// ResidentPages reports current GPU residency.
func (s *System) ResidentPages() int { return s.space.ResidentPages() }

// HostRead simulates the CPU consuming a range after kernel completion
// (e.g. validating results): GPU-resident pages of the range migrate
// back to the host and their blocks are released, mirroring the
// CPU-fault path of UVM. It returns the simulated time consumed. No
// kernel may be running.
func (s *System) HostRead(r *mem.Range) (sim.Duration, error) {
	if s.gpu.Running() {
		return 0, fmt.Errorf("core: HostRead(%q) while a kernel is running", r.Label)
	}
	geom := s.space.Geometry()
	start := s.eng.Now()
	var end sim.Time = start
	firstBlock := geom.BlockOf(r.StartPage)
	for b := 0; b < r.Blocks; b++ {
		blk := s.space.BlockIfExists(firstBlock + mem.VABlockID(b))
		if blk == nil || blk.Remote || !blk.Allocated {
			continue
		}
		// Migrate the resident pages home; read-duplicated clean pages
		// already have a valid host copy and need no transfer.
		pages := blk.Resident.Count()
		if blk.ReadDup {
			pages = blk.Dirty.Count()
		}
		if pages > 0 {
			done := s.link.Enqueue(xfer.DeviceToHost, mem.Bytes(pages), nil)
			if done > end {
				end = done
			}
		}
		blk.Resident.Reset()
		blk.Dirty.Reset()
		blk.Allocated = false
		s.pm.Free()
		// The block leaves GPU memory outside the fault path; it must
		// also leave the eviction policy's working set.
		s.evictor.Remove(blk)
	}
	s.eng.RunUntil(end)
	if err := s.stopErr(); err != nil {
		return 0, fmt.Errorf("core: HostRead(%q): %w", r.Label, err)
	}
	return end.Sub(start), nil
}
