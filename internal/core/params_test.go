package core

import (
	"strings"
	"testing"

	"uvmsim/internal/driver"
)

func TestApplyModuleParams(t *testing.T) {
	cfg := DefaultConfig(64 << 20)
	err := ApplyModuleParams(&cfg,
		"uvm_perf_prefetch_threshold=25 uvm_perf_fault_batch_count=512,uvm_perf_fault_replay_policy=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PrefetchPolicy != "density:25" {
		t.Errorf("prefetch = %q", cfg.PrefetchPolicy)
	}
	if cfg.Driver.BatchSize != 512 {
		t.Errorf("batch = %d", cfg.Driver.BatchSize)
	}
	if cfg.Driver.Policy != driver.ReplayBatch {
		t.Errorf("policy = %v", cfg.Driver.Policy)
	}
	// The resulting config must build.
	if _, err := NewSystem(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestApplyModuleParamsPrefetchToggle(t *testing.T) {
	cfg := DefaultConfig(64 << 20)
	if err := ApplyModuleParams(&cfg, "uvm_perf_prefetch_enable=0"); err != nil {
		t.Fatal(err)
	}
	if cfg.PrefetchPolicy != "none" {
		t.Errorf("prefetch = %q", cfg.PrefetchPolicy)
	}
	if err := ApplyModuleParams(&cfg, "uvm_perf_prefetch_enable=1"); err != nil {
		t.Fatal(err)
	}
	if cfg.PrefetchPolicy != "density" {
		t.Errorf("re-enabled prefetch = %q", cfg.PrefetchPolicy)
	}
	// Re-enabling must not clobber an explicit threshold.
	cfg.PrefetchPolicy = "density:25"
	if err := ApplyModuleParams(&cfg, "uvm_perf_prefetch_enable=1"); err != nil {
		t.Fatal(err)
	}
	if cfg.PrefetchPolicy != "density:25" {
		t.Errorf("threshold clobbered: %q", cfg.PrefetchPolicy)
	}
}

func TestApplyModuleParamsRejections(t *testing.T) {
	for name, in := range map[string]string{
		"unknown":         "uvm_bogus=1",
		"no value":        "uvm_perf_prefetch_enable",
		"non-numeric":     "uvm_perf_fault_batch_count=lots",
		"bad enable":      "uvm_perf_prefetch_enable=2",
		"threshold range": "uvm_perf_prefetch_threshold=100",
		"batch range":     "uvm_perf_fault_batch_count=0",
		"policy range":    "uvm_perf_fault_replay_policy=4",
		"coalesce range":  "uvm_perf_fault_coalesce=7",
	} {
		cfg := DefaultConfig(64 << 20)
		if err := ApplyModuleParams(&cfg, in); err == nil {
			t.Errorf("%s: %q accepted", name, in)
		} else if !strings.Contains(err.Error(), "core:") {
			t.Errorf("%s: error %v lacks package prefix", name, err)
		}
	}
}

func TestApplyModuleParamsCoalesceAccepted(t *testing.T) {
	cfg := DefaultConfig(64 << 20)
	if err := ApplyModuleParams(&cfg, "uvm_perf_fault_coalesce=1"); err != nil {
		t.Fatal(err)
	}
}
