package core

import (
	"strings"
	"testing"

	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/workloads"
)

// newSys builds a system with the given framebuffer and options applied
// to the default config.
func newSys(t *testing.T, gpuMem int64, mut ...func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig(gpuMem)
	for _, m := range mut {
		m(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func noPrefetch(c *Config) { c.PrefetchPolicy = "none" }

func runRegular(t *testing.T, s *System, bytes int64) *RunResult {
	t.Helper()
	k, err := workloads.PageTouchRegular(s, bytes, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUVMRunCompletesAndMigratesEverything(t *testing.T) {
	s := newSys(t, 64<<20, noPrefetch)
	res := runRegular(t, s, 8<<20)
	if got := s.ResidentPages(); got != 2048 {
		t.Errorf("resident = %d, want 2048", got)
	}
	if res.Faults == 0 || res.GPU.Replays == 0 {
		t.Errorf("faults=%d replays=%d", res.Faults, res.GPU.Replays)
	}
	if res.BytesH2D < 8<<20 {
		t.Errorf("H2D bytes = %d, want >= 8MB", res.BytesH2D)
	}
	if res.KernelTime <= 0 || res.TotalTime != res.KernelTime {
		t.Errorf("times: kernel=%v total=%v", res.KernelTime, res.TotalTime)
	}
	if res.Breakdown.Total() <= 0 {
		t.Error("empty breakdown")
	}
}

// Calibration: the paper reports 400-600 µs total for data under 100 KB.
// Our target band is the same order: hundreds of microseconds.
func TestCalibrationSmallSizeBaseOverhead(t *testing.T) {
	s := newSys(t, 64<<20, noPrefetch)
	res := runRegular(t, s, 96<<10) // 24 pages
	if res.KernelTime < 100*sim.Microsecond || res.KernelTime > 2*sim.Millisecond {
		t.Errorf("96KB page-touch = %v, want hundreds of µs", res.KernelTime)
	}
}

// Calibration: explicit transfer beats no-prefetch UVM by an order of
// magnitude at moderate sizes (paper Fig. 1).
func TestCalibrationExplicitVsUVM(t *testing.T) {
	bytes := int64(32 << 20)
	uvm := runRegular(t, newSys(t, 256<<20, noPrefetch), bytes)

	s2 := newSys(t, 256<<20, noPrefetch)
	k, err := workloads.PageTouchRegular(s2, bytes, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := s2.RunExplicit(k)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Faults != 0 {
		t.Errorf("explicit run faulted %d times", explicit.Faults)
	}
	ratio := float64(uvm.TotalTime) / float64(explicit.TotalTime)
	if ratio < 4 {
		t.Errorf("UVM/explicit ratio = %.1f (uvm=%v explicit=%v), want >= 4",
			ratio, uvm.TotalTime, explicit.TotalTime)
	}
	t.Logf("uvm=%v explicit=%v ratio=%.1fx", uvm.TotalTime, explicit.TotalTime, ratio)
}

// Calibration: prefetching eliminates most faults (paper Table I: >= 64%
// for every workload) and reduces runtime for in-core regular access.
func TestCalibrationPrefetchFaultReduction(t *testing.T) {
	bytes := int64(32 << 20)
	noPf := runRegular(t, newSys(t, 256<<20, noPrefetch), bytes)
	withPf := runRegular(t, newSys(t, 256<<20), bytes)
	// The paper reports 82% for regular access; a strict-51% density tree
	// over a touch-once contiguous pattern has a structural ceiling near
	// 50% (see EXPERIMENTS.md), so the bar here is 30%.
	reduction := 1 - float64(withPf.Faults)/float64(noPf.Faults)
	if reduction < 0.30 {
		t.Errorf("fault reduction = %.2f (no-pf=%d pf=%d), want >= 0.30",
			reduction, noPf.Faults, withPf.Faults)
	}
	if withPf.TotalTime >= noPf.TotalTime {
		t.Errorf("prefetch did not help: %v vs %v", withPf.TotalTime, noPf.TotalTime)
	}
	t.Logf("faults %d -> %d (%.1f%% reduction), time %v -> %v",
		noPf.Faults, withPf.Faults, reduction*100, noPf.TotalTime, withPf.TotalTime)
}

// Oversubscription: random access degrades by an order of magnitude more
// than regular (paper Fig. 9).
func TestCalibrationOversubscriptionRandomVsRegular(t *testing.T) {
	gpuMem := int64(32 << 20)
	bytes := int64(40 << 20) // 125% of GPU memory

	reg := runRegular(t, newSys(t, gpuMem), bytes)

	s := newSys(t, gpuMem)
	k, err := workloads.PageTouchRandom(s, bytes, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Evictions <= reg.Evictions {
		t.Errorf("random evictions %d <= regular %d", rnd.Evictions, reg.Evictions)
	}
	ratio := float64(rnd.TotalTime) / float64(reg.TotalTime)
	if ratio < 3 {
		t.Errorf("random/regular oversubscribed ratio = %.1f, want >= 3", ratio)
	}
	t.Logf("regular=%v (evict %d), random=%v (evict %d), ratio=%.1fx",
		reg.TotalTime, reg.Evictions, rnd.TotalTime, rnd.Evictions, ratio)
}

func TestExplicitRefusesOversubscription(t *testing.T) {
	s := newSys(t, 16<<20)
	k, err := workloads.PageTouchRegular(s, 32<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunExplicit(k); err == nil {
		t.Error("oversubscribed explicit run accepted")
	}
}

func TestWarmSecondRunHasNoFaults(t *testing.T) {
	s := newSys(t, 64<<20)
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if second.Faults != 0 {
		t.Errorf("warm run faulted %d times", second.Faults)
	}
	if second.TotalTime >= first.TotalTime {
		t.Errorf("warm run %v not faster than cold %v", second.TotalTime, first.TotalTime)
	}
}

func TestTraceRecording(t *testing.T) {
	s := newSys(t, 64<<20, func(c *Config) { c.TraceCapacity = -1; c.PrefetchPolicy = "none" })
	runRegular(t, s, 4<<20)
	if s.Trace() == nil || s.Trace().Count() == 0 {
		t.Fatal("no trace recorded")
	}
	s2 := newSys(t, 64<<20)
	runRegular(t, s2, 4<<20)
	if s2.Trace() != nil {
		t.Error("trace recorded despite being disabled")
	}
}

func TestRunDeltasAreIndependent(t *testing.T) {
	s := newSys(t, 64<<20, noPrefetch)
	r1 := runRegular(t, s, 4<<20)
	k, err := workloads.PageTouchRegular(s, 4<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	// Second kernel touches a fresh range: roughly the same fault count,
	// not cumulative.
	if r2.Faults > 2*r1.Faults {
		t.Errorf("delta accounting broken: r1=%d r2=%d", r1.Faults, r2.Faults)
	}
	if r2.Breakdown.Total() > 2*r1.Breakdown.Total() {
		t.Errorf("breakdown delta broken: %v vs %v", r2.Breakdown.Total(), r1.Breakdown.Total())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		s := newSys(t, 64<<20)
		res := runRegular(t, s, 8<<20)
		return res.TotalTime, res.Faults
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestSeedChangesOutcomeSlightly(t *testing.T) {
	s1 := newSys(t, 64<<20)
	r1 := runRegular(t, s1, 8<<20)
	s2 := newSys(t, 64<<20, func(c *Config) { c.Seed = 7 })
	r2 := runRegular(t, s2, 8<<20)
	if r1.TotalTime == r2.TotalTime {
		t.Log("warning: different seeds produced identical times (possible but unlikely)")
	}
	// Both must still complete with full residency.
	if s1.ResidentPages() != s2.ResidentPages() {
		t.Error("seed changed functional outcome")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := DefaultConfig(64 << 20)
	bad.PrefetchPolicy = "bogus"
	if _, err := NewSystem(bad); err == nil {
		t.Error("bogus prefetch policy accepted")
	}
	bad = DefaultConfig(64 << 20)
	bad.EvictPolicy = "bogus"
	if _, err := NewSystem(bad); err == nil {
		t.Error("bogus evict policy accepted")
	}
	bad = DefaultConfig(64 << 20)
	bad.VABlockSize = 3 << 20
	if _, err := NewSystem(bad); err == nil {
		t.Error("non-power-of-two VABlock accepted")
	}
}

func TestBreakdownPhasesAllCharged(t *testing.T) {
	s := newSys(t, 16<<20, noPrefetch)
	res := runRegular(t, s, 24<<20) // oversubscribed -> eviction phase too
	for _, p := range stats.Phases() {
		if res.Breakdown.Get(p) == 0 {
			t.Errorf("phase %v never charged", p)
		}
	}
}

func TestDeadlockReportsDiagnostics(t *testing.T) {
	// A kernel touching a page outside any range panics in Block(); this
	// test instead checks the error path for an unstaged explicit run is
	// informative — the UVM path cannot deadlock by construction, so we
	// simulate the report by checking error text of a failing prestage.
	s := newSys(t, 16<<20)
	k, err := workloads.PageTouchRegular(s, 32<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunExplicit(k)
	if err == nil || !strings.Contains(err.Error(), "blocks") {
		t.Errorf("error not informative: %v", err)
	}
}

func TestAccessorSurface(t *testing.T) {
	s := newSys(t, 64<<20)
	if s.Config().GPUMemoryBytes != 64<<20 {
		t.Error("Config accessor wrong")
	}
	if s.Space() == nil || s.Engine() == nil || s.Driver() == nil || s.PMA() == nil {
		t.Error("nil accessor")
	}
}
