package core

import (
	"testing"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/workloads"
)

// remoteAlloc adapts a System to allocate every workload range with a
// fixed access mode.
type remoteAlloc struct {
	s    *System
	mode mem.AccessMode
}

func (a remoteAlloc) MallocManaged(size int64, label string) (*mem.Range, error) {
	return a.s.MallocManagedMode(size, label, a.mode)
}

func TestRemoteMapRunsWithoutFaults(t *testing.T) {
	s := newSys(t, 64<<20)
	k, err := workloads.PageTouchRandom(remoteAlloc{s, mem.ModeRemoteMap}, 16<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 0 || res.Evictions != 0 {
		t.Errorf("remote map faulted: faults=%d evictions=%d", res.Faults, res.Evictions)
	}
	if res.GPU.RemoteAccesses != 4096 {
		t.Errorf("remote accesses = %d, want 4096", res.GPU.RemoteAccesses)
	}
	if res.BytesH2D != 0 {
		t.Errorf("remote map migrated %d bytes", res.BytesH2D)
	}
	// No GPU memory consumed.
	if s.PMA().UsedChunks() != 0 {
		t.Errorf("remote map used %d chunks", s.PMA().UsedChunks())
	}
}

func TestRemoteMapBeatsMigrationForSparseSingleTouch(t *testing.T) {
	// Oversubscribed random single-touch: migration thrashes, remote
	// mapping streams — the EMOGI-style insight enabled by §III-A's
	// remote mapping behavior.
	migrate := newSys(t, 16<<20)
	k1, err := workloads.PageTouchRandom(migrate, 24<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	resM, err := migrate.RunUVM(k1)
	if err != nil {
		t.Fatal(err)
	}
	remote := newSys(t, 16<<20)
	k2, err := workloads.PageTouchRandom(remoteAlloc{remote, mem.ModeRemoteMap}, 24<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	resR, err := remote.RunUVM(k2)
	if err != nil {
		t.Fatal(err)
	}
	if resR.TotalTime >= resM.TotalTime {
		t.Errorf("remote map (%v) not faster than migration (%v) for sparse oversubscribed access",
			resR.TotalTime, resM.TotalTime)
	}
	t.Logf("migrate=%v (evict %d) remote=%v", resM.TotalTime, resM.Evictions, resR.TotalTime)
}

func TestReadDupEvictionSkipsWriteback(t *testing.T) {
	// Read-only workload over a read-duplicated range, oversubscribed:
	// evictions must move zero bytes D2H.
	s := newSys(t, 8<<20)
	r, err := s.MallocManagedMode(12<<20, "dup", mem.ModeReadDup)
	if err != nil {
		t.Fatal(err)
	}
	k := readOnlyTouch(r)
	res, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("expected evictions at 150% footprint")
	}
	if res.BytesD2H != 0 {
		t.Errorf("read-dup eviction wrote back %d bytes", res.BytesD2H)
	}
	if res.Counters.Get("readdup_pages") == 0 {
		t.Error("no read-dup pages counted")
	}
}

// readOnlyTouch builds a one-read-per-page kernel over an existing range.
func readOnlyTouch(r *mem.Range) *gpusim.Kernel {
	k := &gpusim.Kernel{Name: "rotouch"}
	const warp = 32
	const perBlock = 4
	var blk gpusim.ThreadBlock
	for p := 0; p < r.Pages; p += warp {
		n := warp
		if p+n > r.Pages {
			n = r.Pages - p
		}
		blk.Warps = append(blk.Warps, gpusim.StridedProgram{
			Start: r.StartPage + mem.PageID(p), Stride: 1, Count: n, Repeat: 1,
		})
		if len(blk.Warps) == perBlock {
			k.Blocks = append(k.Blocks, blk)
			blk = gpusim.ThreadBlock{}
		}
	}
	if len(blk.Warps) > 0 {
		k.Blocks = append(k.Blocks, blk)
	}
	return k
}

func TestHostReadMigratesBack(t *testing.T) {
	s := newSys(t, 64<<20)
	k, err := workloads.PageTouchRegular(s, 8<<20, workloads.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUVM(k); err != nil {
		t.Fatal(err)
	}
	r := s.Space().Ranges()[0]
	if s.ResidentPages() != r.Pages {
		t.Fatalf("precondition: %d resident", s.ResidentPages())
	}
	usedBefore := s.PMA().UsedChunks()
	d, err := s.HostRead(r)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("HostRead consumed no time")
	}
	if s.ResidentPages() != 0 {
		t.Errorf("%d pages still resident after HostRead", s.ResidentPages())
	}
	if s.PMA().UsedChunks() != usedBefore-r.Blocks {
		t.Errorf("chunks not released: %d -> %d", usedBefore, s.PMA().UsedChunks())
	}
	// The kernel wrote every page; all of them migrate back.
	// (BytesD2H accounting is cumulative on the link.)
	// Re-running the kernel faults again from scratch.
	res2, err := s.RunUVM(k)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Faults == 0 {
		t.Error("no faults after HostRead invalidated residency")
	}
}

func TestHostReadOnRemoteRangeIsFree(t *testing.T) {
	s := newSys(t, 64<<20)
	r, err := s.MallocManagedMode(4<<20, "remote", mem.ModeRemoteMap)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.HostRead(r)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("remote-range HostRead cost %v, want 0", d)
	}
}

func TestAllocModeValidation(t *testing.T) {
	s := newSys(t, 64<<20)
	if _, err := s.MallocManagedMode(1<<20, "bad", mem.AccessMode(9)); err == nil {
		t.Error("invalid mode accepted")
	}
	if mem.ModeMigrate.String() != "migrate" ||
		mem.ModeRemoteMap.String() != "remote-map" ||
		mem.ModeReadDup.String() != "read-dup" {
		t.Error("mode names wrong")
	}
}

func TestPrestageIsIdempotent(t *testing.T) {
	s := newSys(t, 64<<20)
	if _, err := s.MallocManaged(8<<20, "d"); err != nil {
		t.Fatal(err)
	}
	d1, err := s.Prestage()
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Error("first prestage free")
	}
	used := s.PMA().UsedChunks()
	// Second prestage finds everything resident: no new chunks, only the
	// (already counted) transfer of range bytes again is avoided too.
	if _, err := s.Prestage(); err != nil {
		t.Fatal(err)
	}
	if s.PMA().UsedChunks() != used {
		t.Errorf("chunks changed: %d -> %d", used, s.PMA().UsedChunks())
	}
}
