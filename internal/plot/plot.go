// Package plot renders simple ASCII scatter and line charts for terminal
// output, so the paper's figures can be *seen*, not just tabulated: the
// Fig. 7 access-pattern panels and Fig. 8's eviction overlay render
// directly from fault traces in cmd/faulttrace and cmd/uvmreport.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Canvas is a character grid with data-space scaling.
type Canvas struct {
	w, h         int
	cells        [][]rune
	xmin, xmax   float64
	ymin, ymax   float64
	scaleLocked  bool
	titleStr     string
	xLabel, yLab string
}

// NewCanvas returns a w×h plotting surface (plot area, excluding axes).
func NewCanvas(w, h int) *Canvas {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	c := &Canvas{w: w, h: h}
	c.cells = make([][]rune, h)
	for i := range c.cells {
		c.cells[i] = make([]rune, w)
		for j := range c.cells[i] {
			c.cells[i][j] = ' '
		}
	}
	return c
}

// Title sets the chart title.
func (c *Canvas) Title(s string) *Canvas { c.titleStr = s; return c }

// Labels sets the axis labels.
func (c *Canvas) Labels(x, y string) *Canvas { c.xLabel, c.yLab = x, y; return c }

// SetScale fixes the data-space bounds; otherwise the first Scatter call
// auto-scales to its data.
func (c *Canvas) SetScale(xmin, xmax, ymin, ymax float64) *Canvas {
	c.xmin, c.xmax, c.ymin, c.ymax = xmin, xmax, ymin, ymax
	if c.xmax <= c.xmin {
		c.xmax = c.xmin + 1
	}
	if c.ymax <= c.ymin {
		c.ymax = c.ymin + 1
	}
	c.scaleLocked = true
	return c
}

func (c *Canvas) autoScale(xs, ys []float64) {
	if c.scaleLocked || len(xs) == 0 {
		return
	}
	c.xmin, c.xmax = math.Inf(1), math.Inf(-1)
	c.ymin, c.ymax = math.Inf(1), math.Inf(-1)
	for i := range xs {
		c.xmin = math.Min(c.xmin, xs[i])
		c.xmax = math.Max(c.xmax, xs[i])
		c.ymin = math.Min(c.ymin, ys[i])
		c.ymax = math.Max(c.ymax, ys[i])
	}
	if c.xmax <= c.xmin {
		c.xmax = c.xmin + 1
	}
	if c.ymax <= c.ymin {
		c.ymax = c.ymin + 1
	}
	c.scaleLocked = true
}

// cell maps a data point to grid coordinates.
func (c *Canvas) cell(x, y float64) (col, row int, ok bool) {
	if x < c.xmin || x > c.xmax || y < c.ymin || y > c.ymax {
		return 0, 0, false
	}
	col = int((x - c.xmin) / (c.xmax - c.xmin) * float64(c.w-1))
	row = c.h - 1 - int((y-c.ymin)/(c.ymax-c.ymin)*float64(c.h-1))
	return col, row, true
}

// Scatter plots points with the given mark. Later marks overwrite
// earlier ones, so draw dense series first and highlights last.
func (c *Canvas) Scatter(xs, ys []float64, mark rune) *Canvas {
	c.autoScale(xs, ys)
	for i := range xs {
		if col, row, ok := c.cell(xs[i], ys[i]); ok {
			c.cells[row][col] = mark
		}
	}
	return c
}

// Line plots a series connected by linear interpolation.
func (c *Canvas) Line(xs, ys []float64, mark rune) *Canvas {
	c.autoScale(xs, ys)
	for i := 1; i < len(xs); i++ {
		c.segment(xs[i-1], ys[i-1], xs[i], ys[i], mark)
	}
	if len(xs) == 1 {
		c.Scatter(xs, ys, mark)
	}
	return c
}

func (c *Canvas) segment(x0, y0, x1, y1 float64, mark rune) {
	steps := c.w * 2
	for s := 0; s <= steps; s++ {
		f := float64(s) / float64(steps)
		if col, row, ok := c.cell(x0+f*(x1-x0), y0+f*(y1-y0)); ok {
			c.cells[row][col] = mark
		}
	}
}

// String renders the chart with a box, axis bounds, and labels.
func (c *Canvas) String() string {
	var sb strings.Builder
	if c.titleStr != "" {
		sb.WriteString(c.titleStr + "\n")
	}
	yhi := trimNum(c.ymax)
	ylo := trimNum(c.ymin)
	pad := len(yhi)
	if len(ylo) > pad {
		pad = len(ylo)
	}
	if len(c.yLab) > pad {
		pad = len(c.yLab)
	}
	border := strings.Repeat("-", c.w)
	sb.WriteString(fmt.Sprintf("%*s +%s+\n", pad, yhi, border))
	for i, row := range c.cells {
		label := strings.Repeat(" ", pad)
		if i == c.h/2 && c.yLab != "" {
			label = fmt.Sprintf("%*s", pad, c.yLab)
		}
		sb.WriteString(fmt.Sprintf("%s |%s|\n", label, string(row)))
	}
	sb.WriteString(fmt.Sprintf("%*s +%s+\n", pad, ylo, border))
	xlo, xhi := trimNum(c.xmin), trimNum(c.xmax)
	gap := c.w - len(xlo) - len(xhi)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(fmt.Sprintf("%*s  %s%s%s", pad, "", xlo, strings.Repeat(" ", gap), xhi))
	if c.xLabel != "" {
		sb.WriteString("  " + c.xLabel)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// trimNum formats a float compactly.
func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
