package plot

import (
	"strings"
	"testing"
)

func TestScatterPlacesMarks(t *testing.T) {
	c := NewCanvas(20, 10)
	c.Scatter([]float64{0, 50, 100}, []float64{0, 50, 100}, 'x')
	out := c.String()
	if strings.Count(out, "x") != 3 {
		t.Errorf("marks = %d, want 3:\n%s", strings.Count(out, "x"), out)
	}
	lines := strings.Split(out, "\n")
	// Diagonal: first mark bottom-left, last top-right.
	var firstRow, lastRow int
	for i, l := range lines {
		if strings.Contains(l, "x") {
			if firstRow == 0 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow >= lastRow {
		t.Errorf("diagonal not rendered:\n%s", out)
	}
}

func TestAutoScaleBounds(t *testing.T) {
	c := NewCanvas(20, 10)
	c.Scatter([]float64{5, 15}, []float64{100, 300}, '*')
	out := c.String()
	if !strings.Contains(out, "300") || !strings.Contains(out, "100") {
		t.Errorf("y bounds missing:\n%s", out)
	}
	if !strings.Contains(out, "5") || !strings.Contains(out, "15") {
		t.Errorf("x bounds missing:\n%s", out)
	}
}

func TestSetScaleClipsOutOfRange(t *testing.T) {
	c := NewCanvas(20, 10).SetScale(0, 10, 0, 10)
	c.Scatter([]float64{5, 50}, []float64{5, 50}, 'o')
	if strings.Count(c.String(), "o") != 1 {
		t.Errorf("out-of-range point drawn:\n%s", c.String())
	}
}

func TestLineConnects(t *testing.T) {
	c := NewCanvas(30, 10).SetScale(0, 10, 0, 10)
	c.Line([]float64{0, 10}, []float64{0, 10}, '.')
	marks := strings.Count(c.String(), ".")
	if marks < 10 {
		t.Errorf("line too sparse (%d marks):\n%s", marks, c.String())
	}
}

func TestTitleAndLabels(t *testing.T) {
	c := NewCanvas(20, 6).Title("demo").Labels("occurrence", "page")
	c.Scatter([]float64{1}, []float64{1}, 'x')
	out := c.String()
	for _, want := range []string{"demo", "occurrence", "pag"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Single point, zero span, empty series: no panics, sane output.
	if out := NewCanvas(0, 0).Scatter(nil, nil, 'x').String(); out == "" {
		t.Error("empty canvas rendered nothing")
	}
	c := NewCanvas(10, 5)
	c.Scatter([]float64{3}, []float64{3}, 'x')
	if !strings.Contains(c.String(), "x") {
		t.Error("single point not drawn")
	}
	c2 := NewCanvas(10, 5)
	c2.Line([]float64{1}, []float64{2}, 'o')
	if !strings.Contains(c2.String(), "o") {
		t.Error("single-point line not drawn")
	}
}

func TestOverwriteOrder(t *testing.T) {
	c := NewCanvas(10, 5).SetScale(0, 10, 0, 10)
	c.Scatter([]float64{5}, []float64{5}, '.')
	c.Scatter([]float64{5}, []float64{5}, 'E')
	out := c.String()
	if !strings.Contains(out, "E") || strings.Contains(out, ".") {
		t.Errorf("later mark should overwrite:\n%s", out)
	}
}
