// Package confighash is the one canonical content address for
// simulation configurations and their results. A cell's full replay
// recipe (every knob plus the seed, rendered as a label string) hashes
// to a short stable key; because the simulator is deterministic
// (DESIGN.md §7), equal keys mean equal results, which is what lets the
// sweep journal match records to cells across crashes and the serving
// layer return one cached simulation to every request that asks for the
// same configuration.
//
// The format is pinned: first 16 hex characters (8 bytes) of SHA-256.
// Journals and caches persist these keys, so changing the format
// silently orphans every existing record — the cross-package tests hold
// both producers to the same bytes.
package confighash

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Sum derives the configuration key for a label: the first 16 hex
// characters of its SHA-256. Labels embed every knob plus the seed, so
// equal keys mean "this exact configuration".
func Sum(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:8])
}

// Rows hashes a rendered result row with length-prefixed cells, so
// consumers (the sweep journal) can reject rows whose bytes were
// damaged after they were persisted.
func Rows(row []string) string {
	h := sha256.New()
	for _, cell := range row {
		fmt.Fprintf(h, "%d:%s|", len(cell), cell)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
