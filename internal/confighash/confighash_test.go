package confighash_test

import (
	"regexp"
	"testing"

	"uvmsim/internal/confighash"
	"uvmsim/internal/journal"
)

// TestPinnedFormat pins the on-disk hash format to exact bytes.
// Journals and serving-layer caches persist these keys: if one of these
// vectors changes, every existing journal record and cached result is
// silently orphaned, so a failure here means "migration", not "update
// the constant".
func TestPinnedFormat(t *testing.T) {
	cases := []struct{ label, want string }{
		{"workload=random footprint=0.5 prefetch=density replay=batch-flush evict=lru batch=256 vablock=2048KiB seed=1",
			"47255690bde20390"},
		{"", "e3b0c44298fc1c14"},
	}
	for _, c := range cases {
		if got := confighash.Sum(c.label); got != c.want {
			t.Errorf("Sum(%q) = %q, want %q", c.label, got, c.want)
		}
	}
	if got, want := confighash.Rows([]string{"50", "density", "batch-flush", "1.2345"}), "f2e8fc8086cb3c56"; got != want {
		t.Errorf("Rows = %q, want %q", got, want)
	}
	if got, want := confighash.Rows(nil), "e3b0c44298fc1c14"; got != want {
		t.Errorf("Rows(nil) = %q, want %q", got, want)
	}
}

// TestJournalUsesCanonicalHash holds internal/journal to the shared
// format: the sweep journal and the serve cache must address the same
// configuration with the same key, or resume and cache hits diverge.
func TestJournalUsesCanonicalHash(t *testing.T) {
	labels := []string{
		"workload=sgemm footprint=1.2 prefetch=none replay=batch evict=lru batch=64 vablock=64KiB seed=7",
		"x", "",
	}
	for _, l := range labels {
		if journal.Hash(l) != confighash.Sum(l) {
			t.Fatalf("journal.Hash(%q) = %q diverged from confighash.Sum = %q",
				l, journal.Hash(l), confighash.Sum(l))
		}
	}
	row := []string{"a", "bb", "c,c"}
	if journal.RowDigest(row) != confighash.Rows(row) {
		t.Fatalf("journal.RowDigest diverged from confighash.Rows")
	}
}

// TestShape pins the key shape itself: 16 lowercase hex characters,
// always, for any input.
func TestShape(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, l := range []string{"", "a", "some long label with spaces and = signs"} {
		if got := confighash.Sum(l); !re.MatchString(got) {
			t.Errorf("Sum(%q) = %q, want 16 lowercase hex chars", l, got)
		}
	}
}
