package tree

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/mem"
)

func smallGeom(t *testing.T) mem.Geometry {
	t.Helper()
	g, err := mem.NewGeometry(64 << 10) // 16 pages, like the paper's Fig. 6 scale
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func bitmapOf(n int, set ...int) *mem.Bitmap {
	b := mem.NewBitmap(n)
	for _, i := range set {
		b.Set(i)
	}
	return b
}

// Fig. 6 scenario: with just over half the leaves occupied, a fault
// anywhere pulls the whole region.
func TestRootCascadeFullBlock(t *testing.T) {
	g := smallGeom(t)
	resident := bitmapOf(16, 0, 1, 2, 3, 4, 5, 6, 7) // 8 of 16 resident
	faulted := bitmapOf(16, 8)
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	// Root density = (8 resident + 1 fault)/16 = 56% > 51% -> whole block.
	if res.Fetch.Count() != 8 { // pages 8..15 (0..7 already resident)
		t.Fatalf("Fetch.Count = %d, want 8", res.Fetch.Count())
	}
	if res.Faulted != 1 || res.Prefetched != 7 {
		t.Errorf("Faulted=%d Prefetched=%d, want 1,7", res.Faulted, res.Prefetched)
	}
}

func TestBelowThresholdFetchesOnlyDenseSubtree(t *testing.T) {
	g := smallGeom(t)
	resident := bitmapOf(16, 0) // leaf 0 resident
	faulted := bitmapOf(16, 1)
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	// Pair [0,1] = 100% dense; quad [0..3] = 50% (not >51). Only the
	// demanded page is fetched; nothing extra.
	if res.Fetch.Count() != 1 || !res.Fetch.Get(1) {
		t.Fatalf("Fetch = %d pages, want just page 1", res.Fetch.Count())
	}
	if res.Prefetched != 0 {
		t.Errorf("Prefetched = %d, want 0", res.Prefetched)
	}
}

func TestNoPrefetchWhenSparse(t *testing.T) {
	g := smallGeom(t)
	resident := mem.NewBitmap(16)
	faulted := bitmapOf(16, 9)
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	if res.Fetch.Count() != 1 || !res.Fetch.Get(9) {
		t.Fatalf("sparse fault fetched %d pages", res.Fetch.Count())
	}
}

func TestAggressiveThresholdFetchesEverything(t *testing.T) {
	g := smallGeom(t)
	resident := mem.NewBitmap(16)
	faulted := bitmapOf(16, 3)
	pl := &Planner{Threshold: 1, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	// 1/16 = 6.25% > 1% at the root -> whole block.
	if res.Fetch.Count() != 16 {
		t.Fatalf("aggressive fetch = %d, want 16", res.Fetch.Count())
	}
}

func TestThresholdDisabledStage2(t *testing.T) {
	g := smallGeom(t)
	resident := bitmapOf(16, 0, 1, 2, 3, 4, 5, 6, 7, 8)
	faulted := bitmapOf(16, 9)
	pl := &Planner{Threshold: 0, BigPages: false} // stage 2 off
	res := pl.Plan(g, resident, faulted, 16)
	if res.Fetch.Count() != 1 {
		t.Fatalf("disabled prefetcher fetched %d pages", res.Fetch.Count())
	}
}

func TestBigPageUpgrade(t *testing.T) {
	g := mem.DefaultGeometry() // 512 pages
	resident := mem.NewBitmap(512)
	faulted := bitmapOf(512, 5)
	pl := NewPlanner(DefaultThreshold)
	res := pl.Plan(g, resident, faulted, 512)
	// Upgrade to big page [0,16); that 16-page subtree is 100% dense so
	// the region sticks at the big page; the 32-page parent is 50%.
	if res.Fetch.Count() != 16 {
		t.Fatalf("Fetch = %d pages, want 16 (one big page)", res.Fetch.Count())
	}
	for i := 0; i < 16; i++ {
		if !res.Fetch.Get(i) {
			t.Fatalf("page %d missing from big-page upgrade", i)
		}
	}
	if res.Faulted != 1 || res.Prefetched != 15 {
		t.Errorf("Faulted=%d Prefetched=%d", res.Faulted, res.Prefetched)
	}
}

// The cascade the paper describes: a handful of faults placed in distinct
// subtrees escalates to fetching the entire 2 MB VABlock.
func TestCascadeFetchesFullVABlockInSixFaults(t *testing.T) {
	g := mem.DefaultGeometry()
	resident := mem.NewBitmap(512)
	pl := NewPlanner(DefaultThreshold)
	seq := []int{0, 16, 32, 64, 128, 256}
	for n, f := range seq {
		faulted := bitmapOf(512, f)
		res := pl.Plan(g, resident, faulted, 512)
		resident.Or(res.Fetch)
		t.Logf("fault %d at page %d: resident now %d", n+1, f, resident.Count())
	}
	if resident.Count() != 512 {
		t.Fatalf("after 6 cascading faults resident = %d, want 512", resident.Count())
	}
}

func TestPartialTailBlock(t *testing.T) {
	g := smallGeom(t)
	resident := mem.NewBitmap(16)
	faulted := bitmapOf(16, 2)
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	// Only 4 pages valid; fault at 2, residents at 0,1.
	resident.Set(0)
	resident.Set(1)
	res := pl.Plan(g, resident, faulted, 4)
	// Density over valid pages: (2+1)/4 = 75% > 51 -> fetch all 4 valid.
	if res.Fetch.Count() != 2 || !res.Fetch.Get(2) || !res.Fetch.Get(3) {
		t.Fatalf("tail-block fetch = %d pages", res.Fetch.Count())
	}
	// Never fetch beyond the valid region.
	for i := 4; i < 16; i++ {
		if res.Fetch.Get(i) {
			t.Fatalf("fetched invalid page %d", i)
		}
	}
}

func TestFaultOnResidentPageCostsNothing(t *testing.T) {
	g := smallGeom(t)
	resident := bitmapOf(16, 7)
	faulted := bitmapOf(16, 7) // duplicate fault on resident page
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	if res.Fetch.Count() != 0 || res.Faulted != 0 {
		t.Fatalf("resident fault produced fetch=%d faulted=%d", res.Fetch.Count(), res.Faulted)
	}
}

func TestMultipleFaultsOneBatchCascadeWithinBatch(t *testing.T) {
	g := smallGeom(t)
	resident := mem.NewBitmap(16)
	// Nine faults spread over the block: root = 9/16 = 56% > 51.
	faulted := bitmapOf(16, 0, 2, 4, 6, 8, 10, 12, 14, 15)
	pl := &Planner{Threshold: DefaultThreshold, BigPages: false}
	res := pl.Plan(g, resident, faulted, 16)
	if res.Fetch.Count() != 16 {
		t.Fatalf("batch of 9 faults fetched %d, want 16", res.Fetch.Count())
	}
	if res.Faulted != 9 || res.Prefetched != 7 {
		t.Errorf("Faulted=%d Prefetched=%d", res.Faulted, res.Prefetched)
	}
}

func TestSnapshotCounts(t *testing.T) {
	g := smallGeom(t)
	mask := bitmapOf(16, 0, 1, 2, 3)
	levels := Snapshot(g, mask, 16)
	if len(levels) != 5 {
		t.Fatalf("levels = %d, want 5", len(levels))
	}
	if levels[0][0] != 1 || levels[1][0] != 2 || levels[2][0] != 4 || levels[3][0] != 4 || levels[4][0] != 4 {
		t.Errorf("counts wrong: %v", levels)
	}
	if levels[2][1] != 0 {
		t.Errorf("empty subtree counted: %v", levels)
	}
}

// Properties that must hold for any residency/fault pattern.
func TestPlanProperties(t *testing.T) {
	g := mem.DefaultGeometry()
	pl := NewPlanner(DefaultThreshold)
	f := func(residentBits, faultBits []uint16, validRaw uint16) bool {
		resident := mem.NewBitmap(512)
		for _, b := range residentBits {
			resident.Set(int(b) % 512)
		}
		valid := int(validRaw)%512 + 1
		faulted := mem.NewBitmap(512)
		for _, b := range faultBits {
			faulted.Set(int(b) % 512)
		}
		res := pl.Plan(g, resident, faulted, valid)
		ok := true
		// 1. Fetch never includes resident pages.
		res.Fetch.ForEachSet(func(i int) {
			if resident.Get(i) || i >= valid {
				ok = false
			}
		})
		// 2. Every demanded non-resident valid page is fetched.
		faulted.ForEachSet(func(i int) {
			if i < valid && !resident.Get(i) && !res.Fetch.Get(i) {
				ok = false
			}
		})
		// 3. Counters are consistent.
		if res.Faulted+res.Prefetched != res.Fetch.Count() {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: raising the threshold never fetches more pages.
func TestThresholdMonotoneProperty(t *testing.T) {
	g := mem.DefaultGeometry()
	f := func(residentBits, faultBits []uint16) bool {
		resident := mem.NewBitmap(512)
		for _, b := range residentBits {
			resident.Set(int(b) % 512)
		}
		faulted := mem.NewBitmap(512)
		for _, b := range faultBits {
			faulted.Set(int(b) % 512)
		}
		prev := -1
		for _, th := range []int{1, 25, 51, 75, 99} {
			pl := &Planner{Threshold: th, BigPages: true}
			n := pl.Plan(g, resident, faulted, 512).Fetch.Count()
			if prev >= 0 && n > prev {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
