package tree

import (
	"testing"

	"uvmsim/internal/mem"
)

// TestPlanSteadyStateAllocFree pins the planner's retained-scratch
// contract (package comment): after the first call sizes the scratch,
// Plan performs no allocations regardless of threshold or big-page
// configuration.
func TestPlanSteadyStateAllocFree(t *testing.T) {
	g := mem.DefaultGeometry()
	pages := g.PagesPerVABlock
	resident := mem.NewBitmap(pages)
	resident.SetRange(0, pages/2)
	faulted := mem.NewBitmap(pages)
	for i := pages / 2; i < pages; i += 7 {
		faulted.Set(i)
	}
	for _, tc := range []struct {
		name string
		pl   *Planner
	}{
		{"density", NewPlanner(DefaultThreshold)},
		{"aggressive", NewPlanner(1)},
		{"demand-only", &Planner{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.pl.Plan(g, resident, faulted, pages) // warm the scratch
			if n := testing.AllocsPerRun(100, func() {
				tc.pl.Plan(g, resident, faulted, pages)
			}); n != 0 {
				t.Errorf("Plan allocates %v times per call in steady state, want 0", n)
			}
		})
	}
}

// A geometry change (different block size mid-life) must resize the
// scratch instead of corrupting it.
func TestPlanScratchResizesOnGeometryChange(t *testing.T) {
	small, err := mem.NewGeometry(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	big := mem.DefaultGeometry()
	pl := NewPlanner(DefaultThreshold)

	res := pl.Plan(small, mem.NewBitmap(16), bitmapOf(16, 3), 16)
	if res.Fetch.Len() != 16 {
		t.Fatalf("small-geometry fetch capacity = %d, want 16", res.Fetch.Len())
	}
	faulted := mem.NewBitmap(big.PagesPerVABlock)
	faulted.Set(0)
	res = pl.Plan(big, mem.NewBitmap(big.PagesPerVABlock), faulted, big.PagesPerVABlock)
	if res.Fetch.Len() != big.PagesPerVABlock {
		t.Fatalf("big-geometry fetch capacity = %d, want %d", res.Fetch.Len(), big.PagesPerVABlock)
	}
}
