// Package tree implements the two-stage page prefetching mechanism the
// NVIDIA UVM driver uses (paper §IV-A):
//
// Stage 1 upgrades every faulted 4 KB page to its 64 KB-aligned "big
// page", emulating Power9 page granularity on x86.
//
// Stage 2 runs the "density prefetcher": each VABlock is conceptually a
// 9-level binary tree whose 512 leaves are the block's 4 KB pages. A
// node's value is the number of leaves in its subtree that are either
// already resident on the GPU or present in the current fault batch
// (including pages flagged by the big-page upgrade). For each faulted
// leaf, the prefetch region is the largest enclosing subtree whose access
// density exceeds the density threshold (default 51%). All leaves of the
// chosen region are flagged for fetching, which feeds back into the
// counts seen by later faults in the same batch — the cascade effect the
// paper highlights.
package tree

import "uvmsim/internal/mem"

// DefaultThreshold is the driver's default density threshold (percent).
const DefaultThreshold = 51

// Result reports the outcome of planning prefetch for one VABlock within
// one fault batch.
type Result struct {
	// Fetch marks every non-resident page that must be migrated: the
	// faulted pages themselves plus all prefetched pages.
	Fetch *mem.Bitmap
	// Faulted is the number of distinct demanded pages that need
	// migration.
	Faulted int
	// Prefetched is the number of extra pages fetched beyond the demanded
	// ones (big-page upgrades + density regions).
	Prefetched int
}

// Planner plans prefetch regions for VABlocks of a fixed geometry.
// A zero threshold disables stage 2; BigPages disables stage 1 when false.
type Planner struct {
	// Threshold is the density threshold in percent (1-100). The driver
	// default is 51; 1 produces the aggressive mode §IV-C reports as
	// rivaling explicit transfer.
	Threshold int
	// BigPages enables the 64 KB upgrade stage.
	BigPages bool
}

// NewPlanner returns a planner with the given threshold and big-page
// upgrading enabled.
func NewPlanner(threshold int) *Planner {
	return &Planner{Threshold: threshold, BigPages: true}
}

// Plan computes the fetch set for one VABlock.
//
// resident marks pages already on the GPU; faulted marks the demanded
// pages of the current batch (in-block indices); valid is the number of
// leading pages of the block that belong to the allocation (tail blocks
// of a range may be partial — density is computed over valid pages only,
// mirroring the driver's sub-block max region).
func (pl *Planner) Plan(g mem.Geometry, resident, faulted *mem.Bitmap, valid int) Result {
	pages := g.PagesPerVABlock
	if valid > pages {
		valid = pages
	}
	// mask holds resident | demanded | flagged-for-prefetch leaves.
	mask := resident.Clone()
	faulted.ForEachSet(func(i int) {
		if i < valid {
			mask.Set(i)
		}
	})

	// Stage 1: big-page upgrade.
	if pl.BigPages {
		faulted.ForEachSet(func(i int) {
			if i >= valid {
				return
			}
			base := mem.BigPageBase(i)
			end := base + mem.PagesPerBigPage
			if end > valid {
				end = valid
			}
			for p := base; p < end; p++ {
				mask.Set(p)
			}
		})
	}

	// Stage 2: density tree.
	if pl.Threshold > 0 && pl.Threshold < 100 {
		t := newCounts(pages, mask, valid)
		faulted.ForEachSet(func(i int) {
			if i >= valid {
				return
			}
			lvl, node := t.largestDenseRegion(i, pl.Threshold, valid)
			if lvl < 0 {
				return
			}
			lo := node << uint(lvl)
			hi := lo + 1<<uint(lvl)
			if hi > valid {
				hi = valid
			}
			for p := lo; p < hi; p++ {
				if mask.Set(p) {
					t.add(p)
				}
			}
		})
	}

	// Fetch = mask minus already-resident pages.
	res := Result{Fetch: mem.NewBitmap(pages)}
	mask.ForEachSet(func(i int) {
		if !resident.Get(i) {
			res.Fetch.Set(i)
		}
	})
	faulted.ForEachSet(func(i int) {
		if i < valid && !resident.Get(i) {
			res.Faulted++
		}
	})
	res.Prefetched = res.Fetch.Count() - res.Faulted
	return res
}

// counts holds the per-level subtree occupancy of one block's tree.
// Level 0 is the leaf level; level L has pages>>L nodes of span 1<<L.
type counts struct {
	levels [][]int
}

func newCounts(pages int, mask *mem.Bitmap, valid int) *counts {
	nlevels := 1
	for 1<<uint(nlevels-1) < pages {
		nlevels++
	}
	t := &counts{levels: make([][]int, nlevels)}
	for l := range t.levels {
		t.levels[l] = make([]int, pages>>uint(l))
	}
	for i := 0; i < valid; i++ {
		if mask.Get(i) {
			t.add(i)
		}
	}
	return t
}

// add increments every ancestor of leaf i.
func (t *counts) add(i int) {
	for l := range t.levels {
		t.levels[l][i>>uint(l)]++
	}
}

// largestDenseRegion walks from leaf i to the root and returns the level
// and node index of the largest subtree whose density over valid leaves
// strictly exceeds threshold percent, or (-1, -1) when none does.
func (t *counts) largestDenseRegion(i, threshold, valid int) (level, node int) {
	level, node = -1, -1
	for l := range t.levels {
		n := i >> uint(l)
		lo := n << uint(l)
		hi := lo + 1<<uint(l)
		if hi > valid {
			hi = valid
		}
		span := hi - lo
		if span <= 0 {
			break
		}
		// Density strictly exceeds threshold: count/span*100 > threshold.
		if t.levels[l][n]*100 > threshold*span {
			level, node = l, n
		}
	}
	return level, node
}

// Snapshot returns the per-level subtree counts for a mask; it exists for
// visualization (cmd/prefetchviz) and white-box tests. Level 0 is the
// leaf level.
func Snapshot(g mem.Geometry, mask *mem.Bitmap, valid int) [][]int {
	t := newCounts(g.PagesPerVABlock, mask, valid)
	return t.levels
}
