// Package tree implements the two-stage page prefetching mechanism the
// NVIDIA UVM driver uses (paper §IV-A):
//
// Stage 1 upgrades every faulted 4 KB page to its 64 KB-aligned "big
// page", emulating Power9 page granularity on x86.
//
// Stage 2 runs the "density prefetcher": each VABlock is conceptually a
// 9-level binary tree whose 512 leaves are the block's 4 KB pages. A
// node's value is the number of leaves in its subtree that are either
// already resident on the GPU or present in the current fault batch
// (including pages flagged by the big-page upgrade). For each faulted
// leaf, the prefetch region is the largest enclosing subtree whose access
// density exceeds the density threshold (default 51%). All leaves of the
// chosen region are flagged for fetching, which feeds back into the
// counts seen by later faults in the same batch — the cascade effect the
// paper highlights.
//
// Plan is on the driver's batch hot path (once per bin per batch), so
// the planner retains all of its working state — the occupancy mask,
// the per-level subtree counts, and the result bitmap — as scratch
// across calls: steady-state planning performs no allocations (pinned
// by TestPlanSteadyStateAllocFree). The scratch is run-scoped: a
// planner belongs to one driver and Plan overwrites every scratch word
// before use, so no state leaks between blocks, batches, or runs.
package tree

import (
	"math/bits"

	"uvmsim/internal/mem"
)

// DefaultThreshold is the driver's default density threshold (percent).
const DefaultThreshold = 51

// Result reports the outcome of planning prefetch for one VABlock within
// one fault batch.
type Result struct {
	// Fetch marks every non-resident page that must be migrated: the
	// faulted pages themselves plus all prefetched pages. The bitmap is
	// planner-owned scratch: it is valid until the planner's next Plan
	// call, which the driver's strictly serial batch pipeline guarantees
	// comes only after the previous bin's service fully retires.
	Fetch *mem.Bitmap
	// Faulted is the number of distinct demanded pages that need
	// migration.
	Faulted int
	// Prefetched is the number of extra pages fetched beyond the demanded
	// ones (big-page upgrades + density regions).
	Prefetched int
}

// Planner plans prefetch regions for VABlocks of a fixed geometry.
// A zero threshold disables stage 2; BigPages disables stage 1 when false.
// The zero value is valid (demand-only planning); scratch state
// materializes lazily on first use and is retained thereafter.
type Planner struct {
	// Threshold is the density threshold in percent (1-100). The driver
	// default is 51; 1 produces the aggressive mode §IV-C reports as
	// rivaling explicit transfer.
	Threshold int
	// BigPages enables the 64 KB upgrade stage.
	BigPages bool

	// Retained scratch (see package comment). Sized to the geometry of
	// the first Plan call and resized only if the geometry changes.
	scratch counts
	mask    *mem.Bitmap
	fetch   *mem.Bitmap
}

// NewPlanner returns a planner with the given threshold and big-page
// upgrading enabled.
func NewPlanner(threshold int) *Planner {
	return &Planner{Threshold: threshold, BigPages: true}
}

// ensureScratch (re)sizes the retained scratch for a block of pages
// leaves. It allocates only on the first call or a geometry change.
func (pl *Planner) ensureScratch(pages int) {
	if pl.mask == nil || pl.mask.Len() != pages {
		pl.mask = mem.NewBitmap(pages)
		pl.fetch = mem.NewBitmap(pages)
		pl.scratch.init(pages)
	}
}

// Plan computes the fetch set for one VABlock.
//
// resident marks pages already on the GPU; faulted marks the demanded
// pages of the current batch (in-block indices); valid is the number of
// leading pages of the block that belong to the allocation (tail blocks
// of a range may be partial — density is computed over valid pages only,
// mirroring the driver's sub-block max region).
func (pl *Planner) Plan(g mem.Geometry, resident, faulted *mem.Bitmap, valid int) Result {
	pages := g.PagesPerVABlock
	if valid > pages {
		valid = pages
	}
	pl.ensureScratch(pages)

	// mask holds resident | demanded | flagged-for-prefetch leaves.
	mask := pl.mask
	mask.CopyFrom(resident)
	if valid == pages {
		mask.Or(faulted)
	} else {
		faulted.ForEachSet(func(i int) {
			if i < valid {
				mask.Set(i)
			}
		})
	}

	// Stage 1: big-page upgrade, word-at-a-time: every 16-bit big-page
	// lane of a faulted word with at least one fault upgrades whole.
	if pl.BigPages {
		faulted.ForEachSetWord(func(w int, bits uint64) {
			base := w << 6
			if base >= valid {
				return
			}
			if base+64 > valid {
				// Faults beyond the valid prefix never upgrade.
				bits &= (uint64(1) << uint(valid-base)) - 1
			}
			for lane := 0; lane < 64; lane += mem.PagesPerBigPage {
				if bits&(bigPageLane<<uint(lane)) == 0 {
					continue
				}
				lo := base + lane
				if lo >= valid {
					break
				}
				hi := lo + mem.PagesPerBigPage
				if hi > valid {
					hi = valid
				}
				mask.SetRange(lo, hi)
			}
		})
	}

	// Stage 2: density tree.
	if pl.Threshold > 0 && pl.Threshold < 100 {
		t := &pl.scratch
		t.build(mask, valid)
		faulted.ForEachSet(func(i int) {
			if i >= valid {
				return
			}
			lvl, node := t.largestDenseRegion(i, pl.Threshold, valid)
			if lvl < 0 {
				return
			}
			lo := node << uint(lvl)
			hi := lo + 1<<uint(lvl)
			if hi > valid {
				hi = valid
			}
			for p := lo; p < hi; p++ {
				if mask.Set(p) {
					t.add(p)
				}
			}
		})
	}

	// Fetch = mask minus already-resident pages.
	res := Result{Fetch: pl.fetch}
	res.Fetch.AndNotFrom(mask, resident)
	res.Faulted = faulted.DiffCount(resident, 0, valid)
	res.Prefetched = res.Fetch.Count() - res.Faulted
	return res
}

// bigPageLane is a mask covering one 64 KB big page's 16 leaf bits.
const bigPageLane = (uint64(1) << mem.PagesPerBigPage) - 1

// counts holds the per-level subtree occupancy of one block's tree.
// Level 0 is the leaf level; level L has pages>>L nodes of span 1<<L.
type counts struct {
	levels [][]int
}

// init sizes the level arrays for a block of pages leaves, reusing one
// backing array for all levels.
func (t *counts) init(pages int) {
	nlevels := 1
	for 1<<uint(nlevels-1) < pages {
		nlevels++
	}
	// One contiguous backing array: levels are slices into it, so init
	// performs exactly two allocations regardless of depth.
	total := 0
	for l := 0; l < nlevels; l++ {
		total += pages >> uint(l)
	}
	backing := make([]int, total)
	t.levels = make([][]int, nlevels)
	for l := 0; l < nlevels; l++ {
		n := pages >> uint(l)
		t.levels[l], backing = backing[:n:n], backing[n:]
	}
}

// build refills the counts from mask, considering only leaves below
// valid: the leaf level comes from a word scan of the mask, each upper
// level from pairwise sums of the one below — O(2·pages) integer ops
// instead of per-set-bit ancestor walks.
func (t *counts) build(mask *mem.Bitmap, valid int) {
	leaves := t.levels[0]
	for i := range leaves {
		leaves[i] = 0
	}
	mask.ForEachSetWord(func(w int, word uint64) {
		base := w << 6
		if base >= valid {
			return
		}
		if base+64 > valid {
			word &= (uint64(1) << uint(valid-base)) - 1
		}
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			leaves[base+tz] = 1
			word &= word - 1
		}
	})
	for l := 1; l < len(t.levels); l++ {
		lower, cur := t.levels[l-1], t.levels[l]
		for n := range cur {
			cur[n] = lower[2*n] + lower[2*n+1]
		}
	}
}

// newCounts builds a freshly allocated tree for mask (Snapshot and
// white-box tests; the planner hot path reuses its scratch instead).
func newCounts(pages int, mask *mem.Bitmap, valid int) *counts {
	t := &counts{}
	t.init(pages)
	t.build(mask, valid)
	return t
}

// add increments every ancestor of leaf i.
func (t *counts) add(i int) {
	for l := range t.levels {
		t.levels[l][i>>uint(l)]++
	}
}

// largestDenseRegion walks from leaf i to the root and returns the level
// and node index of the largest subtree whose density over valid leaves
// strictly exceeds threshold percent, or (-1, -1) when none does.
func (t *counts) largestDenseRegion(i, threshold, valid int) (level, node int) {
	level, node = -1, -1
	for l := range t.levels {
		n := i >> uint(l)
		lo := n << uint(l)
		hi := lo + 1<<uint(l)
		if hi > valid {
			hi = valid
		}
		span := hi - lo
		if span <= 0 {
			break
		}
		// Density strictly exceeds threshold: count/span*100 > threshold.
		if t.levels[l][n]*100 > threshold*span {
			level, node = l, n
		}
	}
	return level, node
}

// Snapshot returns the per-level subtree counts for a mask; it exists for
// visualization (cmd/prefetchviz) and white-box tests. Level 0 is the
// leaf level.
func Snapshot(g mem.Geometry, mask *mem.Bitmap, valid int) [][]int {
	t := newCounts(g.PagesPerVABlock, mask, valid)
	return t.levels
}
