package tree

import (
	"testing"

	"uvmsim/internal/mem"
)

// BenchmarkPlan measures one density-prefetch planning pass over a
// half-resident block with scattered faults — the per-bin work of the
// driver's migrate step. The alloc gate holds it at zero allocs/op.
func BenchmarkPlan(b *testing.B) {
	g := mem.DefaultGeometry()
	pages := g.PagesPerVABlock
	resident := mem.NewBitmap(pages)
	resident.SetRange(0, pages/2)
	faulted := mem.NewBitmap(pages)
	for i := pages / 2; i < pages; i += 7 {
		faulted.Set(i)
	}
	pl := NewPlanner(DefaultThreshold)
	pl.Plan(g, resident, faulted, pages)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Plan(g, resident, faulted, pages)
	}
}
