// Package prof attaches runtime/pprof CPU and heap profiling to the
// CLIs behind uniform -cpuprofile/-memprofile flags.
//
// Usage:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// The returned stop function is idempotent and reports its own errors
// to stderr, so it is safe in defer position even on error paths.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges
// for a heap profile to be written to memPath (if non-empty) when the
// returned stop function runs. Empty paths disable the corresponding
// profile; Start("", "") returns a no-op stop.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			runtime.GC() // materialize recent allocations in the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
