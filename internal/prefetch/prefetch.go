// Package prefetch wraps the density tree (internal/tree) behind a policy
// interface and adds the alternatives discussed in the paper: disabled
// prefetching, the aggressive 1% threshold that §IV-C reports as rivaling
// explicit transfer for undersubscribed workloads, the adaptive scheme
// sketched in §VI-B, and a stream prefetcher that exploits the
// fault-origin information extension (§VI-B) which the baseline driver
// does not have.
package prefetch

import (
	"fmt"

	"uvmsim/internal/mem"
	"uvmsim/internal/tree"
)

// Context carries everything a policy may consult when planning the fetch
// set for one VABlock within one fault batch.
type Context struct {
	Geom  mem.Geometry
	Block *mem.VABlock
	// Valid is the number of leading pages of the block inside its range.
	Valid int
	// Faulted marks the demanded in-block pages of this batch.
	Faulted *mem.Bitmap
	// FaultSMs maps in-block page index -> originating SM for the
	// fault-origin extension; nil for the baseline driver (source erasure).
	FaultSMs map[int]int
	// Oversubscribed reports whether the allocator is under eviction
	// pressure (used by the adaptive policy).
	Oversubscribed bool
}

// Prefetcher plans which pages to migrate for a faulted VABlock.
type Prefetcher interface {
	Name() string
	Plan(ctx *Context) tree.Result
}

// New returns the named policy:
//
//	"none"            — demand paging only
//	"density"         — the driver default (threshold 51, big pages)
//	"aggressive"      — density with threshold 1
//	"adaptive"        — aggressive when undersubscribed, none when evicting
//	"stream"          — per-SM sequential streams (needs fault origin info)
//	"density:<n>"     — density with threshold n (1-99)
func New(name string) (Prefetcher, error) {
	switch name {
	case "none":
		return &None{}, nil
	case "density", "":
		return NewDensity(tree.DefaultThreshold), nil
	case "aggressive":
		return NewDensity(1), nil
	case "adaptive":
		return &Adaptive{Under: NewDensity(1), Over: &None{}}, nil
	case "stream":
		return NewStream(8), nil
	}
	var th int
	if n, err := fmt.Sscanf(name, "density:%d", &th); err == nil && n == 1 {
		if th < 1 || th > 99 {
			return nil, fmt.Errorf("prefetch: threshold %d out of range [1,99]", th)
		}
		return NewDensity(th), nil
	}
	return nil, fmt.Errorf("prefetch: unknown policy %q", name)
}

// demandOnly computes the fetch set containing exactly the non-resident
// demanded pages, using pl's retained scratch (a zero-valued planner
// plans demand-only). Each prefetcher owns its demand planner so
// steady-state planning stays allocation-free.
func demandOnly(pl *tree.Planner, ctx *Context) tree.Result {
	return pl.Plan(ctx.Geom, ctx.Block.Resident, ctx.Faulted, ctx.Valid)
}

// None disables prefetching entirely. The zero value is ready to use;
// the embedded planner scratch materializes on first Plan.
type None struct {
	planner tree.Planner // zero value: threshold 0, big pages off
}

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// Plan implements Prefetcher.
func (n *None) Plan(ctx *Context) tree.Result { return demandOnly(&n.planner, ctx) }

// Density is the production two-stage prefetcher.
type Density struct {
	planner *tree.Planner
}

// NewDensity returns the density prefetcher with the given threshold
// (percent) and big-page upgrading enabled.
func NewDensity(threshold int) *Density {
	return &Density{planner: tree.NewPlanner(threshold)}
}

// Name implements Prefetcher.
func (d *Density) Name() string { return fmt.Sprintf("density:%d", d.planner.Threshold) }

// Threshold returns the density threshold in percent.
func (d *Density) Threshold() int { return d.planner.Threshold }

// Plan implements Prefetcher.
func (d *Density) Plan(ctx *Context) tree.Result {
	return d.planner.Plan(ctx.Geom, ctx.Block.Resident, ctx.Faulted, ctx.Valid)
}

// Adaptive switches between two policies on the oversubscription signal
// (§VI-B "adaptive prefetching": aggressive under the memory limit,
// conservative once eviction starts).
type Adaptive struct {
	Under Prefetcher // used while memory pressure is absent
	Over  Prefetcher // used under eviction pressure
}

// Name implements Prefetcher.
func (a *Adaptive) Name() string { return "adaptive" }

// Plan implements Prefetcher.
func (a *Adaptive) Plan(ctx *Context) tree.Result {
	if ctx.Oversubscribed {
		return a.Over.Plan(ctx)
	}
	return a.Under.Plan(ctx)
}

// Stream is a classic per-core sequential prefetcher enabled by the
// fault-origin-information extension: each SM has a stream tracker; a
// fault continuing the SM's stream deepens the prefetch distance, a
// non-sequential fault resets it. Without FaultSMs in the context it
// degrades to demand paging, illustrating why such designs are impossible
// under fault source erasure.
type Stream struct {
	maxDepth int
	lastPage map[int]mem.PageID // SM -> last faulted global page
	depth    map[int]int        // SM -> current prefetch depth
	planner  tree.Planner       // demand-only planner with retained scratch
}

// NewStream returns a stream prefetcher with the given maximum depth.
func NewStream(maxDepth int) *Stream {
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Stream{
		maxDepth: maxDepth,
		lastPage: make(map[int]mem.PageID),
		depth:    make(map[int]int),
	}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return fmt.Sprintf("stream:%d", s.maxDepth) }

// Plan implements Prefetcher.
func (s *Stream) Plan(ctx *Context) tree.Result {
	res := demandOnly(&s.planner, ctx)
	if ctx.FaultSMs == nil {
		return res // source erasure: nothing to correlate
	}
	first := ctx.Geom.FirstPage(ctx.Block.ID)
	extra := 0
	ctx.Faulted.ForEachSet(func(idx int) {
		if idx >= ctx.Valid {
			return
		}
		sm, ok := ctx.FaultSMs[idx]
		if !ok {
			return
		}
		page := first + mem.PageID(idx)
		if last, seen := s.lastPage[sm]; seen && page == last+1 {
			if s.depth[sm] < s.maxDepth {
				s.depth[sm]++
			}
		} else {
			s.depth[sm] = 1
		}
		s.lastPage[sm] = page
		for k := 1; k <= s.depth[sm]; k++ {
			next := idx + k
			if next >= ctx.Valid {
				break
			}
			if !ctx.Block.Resident.Get(next) && res.Fetch.Set(next) {
				extra++
			}
		}
	})
	res.Prefetched += extra
	return res
}

// Reset clears stream state between kernels.
func (s *Stream) Reset() {
	s.lastPage = make(map[int]mem.PageID)
	s.depth = make(map[int]int)
}
