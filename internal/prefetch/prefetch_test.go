package prefetch

import (
	"testing"

	"uvmsim/internal/mem"
	"uvmsim/internal/tree"
)

func ctxWith(t *testing.T, faulted ...int) *Context {
	t.Helper()
	g := mem.DefaultGeometry()
	b := &mem.VABlock{
		ID:       0,
		Resident: mem.NewBitmap(g.PagesPerVABlock),
		Dirty:    mem.NewBitmap(g.PagesPerVABlock),
	}
	fb := mem.NewBitmap(g.PagesPerVABlock)
	for _, i := range faulted {
		fb.Set(i)
	}
	return &Context{Geom: g, Block: b, Valid: g.PagesPerVABlock, Faulted: fb}
}

func TestNoneFetchesOnlyDemanded(t *testing.T) {
	ctx := ctxWith(t, 5, 100)
	res := (&None{}).Plan(ctx)
	if res.Fetch.Count() != 2 || res.Prefetched != 0 {
		t.Fatalf("none fetched %d (prefetched %d)", res.Fetch.Count(), res.Prefetched)
	}
}

func TestDensityDefaultUpgradesBigPage(t *testing.T) {
	ctx := ctxWith(t, 5)
	res := NewDensity(tree.DefaultThreshold).Plan(ctx)
	if res.Fetch.Count() != 16 {
		t.Fatalf("density fetched %d, want 16 (one big page)", res.Fetch.Count())
	}
}

func TestAggressiveFetchesWholeBlock(t *testing.T) {
	ctx := ctxWith(t, 5)
	res := NewDensity(1).Plan(ctx)
	if res.Fetch.Count() != 512 {
		t.Fatalf("aggressive fetched %d, want 512", res.Fetch.Count())
	}
}

func TestAdaptiveSwitchesOnPressure(t *testing.T) {
	a := &Adaptive{Under: NewDensity(1), Over: &None{}}
	ctx := ctxWith(t, 5)
	if n := a.Plan(ctx).Fetch.Count(); n != 512 {
		t.Fatalf("undersubscribed adaptive fetched %d, want 512", n)
	}
	ctx.Oversubscribed = true
	if n := a.Plan(ctx).Fetch.Count(); n != 1 {
		t.Fatalf("oversubscribed adaptive fetched %d, want 1", n)
	}
}

func TestStreamNeedsOriginInfo(t *testing.T) {
	s := NewStream(4)
	ctx := ctxWith(t, 10)
	if n := s.Plan(ctx).Fetch.Count(); n != 1 {
		t.Fatalf("stream without origin info fetched %d, want 1", n)
	}
}

func TestStreamDeepensOnSequentialFaults(t *testing.T) {
	s := NewStream(4)
	// SM 3 faults pages 10, 11, 12 in consecutive batches.
	var lastCount int
	for _, p := range []int{10, 11, 12} {
		ctx := ctxWith(t, p)
		ctx.FaultSMs = map[int]int{p: 3}
		res := s.Plan(ctx)
		lastCount = res.Fetch.Count()
	}
	// Third sequential fault: depth 3 -> page 12 plus pages 13,14,15.
	if lastCount != 4 {
		t.Fatalf("stream depth-3 fetch = %d, want 4", lastCount)
	}
	// A non-sequential fault resets the stream.
	ctx := ctxWith(t, 100)
	ctx.FaultSMs = map[int]int{100: 3}
	if n := s.Plan(ctx).Fetch.Count(); n != 2 { // page 100 + depth-1 next page
		t.Fatalf("post-reset fetch = %d, want 2", n)
	}
	s.Reset()
	ctx = ctxWith(t, 101)
	ctx.FaultSMs = map[int]int{101: 3}
	if n := s.Plan(ctx).Fetch.Count(); n != 2 {
		t.Fatalf("after Reset fetch = %d, want 2", n)
	}
}

func TestStreamRespectsValidBound(t *testing.T) {
	s := NewStream(8)
	ctx := ctxWith(t, 510)
	ctx.Valid = 511
	ctx.FaultSMs = map[int]int{510: 0}
	res := s.Plan(ctx)
	if res.Fetch.Get(511) {
		t.Fatal("stream prefetched past the valid region")
	}
}

func TestFactory(t *testing.T) {
	cases := map[string]string{
		"none":       "none",
		"density":    "density:51",
		"":           "density:51",
		"aggressive": "density:1",
		"adaptive":   "adaptive",
		"stream":     "stream:8",
		"density:25": "density:25",
	}
	for in, want := range cases {
		p, err := New(in)
		if err != nil {
			t.Errorf("New(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("New(%q).Name() = %q, want %q", in, p.Name(), want)
		}
	}
	for _, bad := range []string{"density:0", "density:100", "nonsense"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestPlanNeverFetchesResident(t *testing.T) {
	ctx := ctxWith(t, 5)
	for i := 0; i < 16; i++ {
		ctx.Block.Resident.Set(i)
	}
	for _, p := range []Prefetcher{&None{}, NewDensity(51), NewDensity(1), NewStream(4)} {
		res := p.Plan(ctx)
		res.Fetch.ForEachSet(func(i int) {
			if ctx.Block.Resident.Get(i) {
				t.Errorf("%s fetched resident page %d", p.Name(), i)
			}
		})
	}
}
