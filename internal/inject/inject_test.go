package inject

import (
	"testing"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"zero config ok", func(c *Config) { *c = Config{} }, false},
		{"default ok", func(c *Config) {}, false},
		{"drop prob 1 livelocks", func(c *Config) { c.DropProb = 1 }, true},
		{"storm prob 1 livelocks", func(c *Config) { c.StormProb = 1 }, true},
		{"dma fail prob 1 livelocks", func(c *Config) { c.DMAFailProb = 1 }, true},
		{"dup prob 1 ok", func(c *Config) { c.DupProb = 1 }, false},
		{"dup prob above 1", func(c *Config) { c.DupProb = 1.5 }, true},
		{"negative drop prob", func(c *Config) { c.DropProb = -0.1 }, true},
		{"negative ready delay prob", func(c *Config) { c.ReadyDelayProb = -1 }, true},
		{"ready delay without max", func(c *Config) {
			c.ReadyDelayProb = 0.5
			c.ReadyDelayMax = 0
		}, true},
		{"evict stall without max", func(c *Config) {
			c.EvictStallProb = 0.5
			c.EvictStallMax = 0
		}, true},
		{"negative storm len", func(c *Config) { c.StormLen = -1 }, true},
		{"negative dma consecutive", func(c *Config) { c.DMAMaxConsecutive = -1 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
	if _, err := New(Config{DropProb: 2}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	// Two injectors with the same seed must make identical decisions —
	// that is what makes a chaos campaign replayable.
	mk := func() *Injector {
		inj, err := New(DefaultConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(), mk()
	for i := 0; i < 2000; i++ {
		actA := a.PerturbPut(0, false)
		actB := b.PerturbPut(0, false)
		if actA != actB {
			t.Fatalf("put %d diverged: %+v vs %+v", i, actA, actB)
		}
		if fa, fb := a.DMAFault(xfer.HostToDevice, 4096, 0), b.DMAFault(xfer.HostToDevice, 4096, 0); fa != fb {
			t.Fatalf("dma decision %d diverged", i)
		}
		if sa, sb := a.EvictStall(), b.EvictStall(); sa != sb {
			t.Fatalf("evict stall %d diverged: %v vs %v", i, sa, sb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	// A different seed must eventually diverge.
	c, err := New(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	d := mk()
	same := true
	for i := 0; i < 2000 && same; i++ {
		same = c.PerturbPut(0, false) == d.PerturbPut(0, false)
	}
	if same {
		t.Error("seeds 42 and 43 produced identical perturbation streams")
	}
}

func TestStormDropsConsecutivePuts(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 7, StormProb: 0.9, StormLen: 5}
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With p=0.9 the first storm starts almost immediately; once started,
	// exactly StormLen puts in a row must drop.
	run := 0
	maxRun := 0
	for i := 0; i < 200; i++ {
		if inj.PerturbPut(0, false).Drop {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	st := inj.Stats()
	if st.Storms == 0 {
		t.Fatal("no storm started in 200 puts at p=0.9")
	}
	if maxRun < cfg.StormLen {
		t.Errorf("longest drop run = %d, want >= StormLen %d", maxRun, cfg.StormLen)
	}
	// Every storm drops StormLen puts, except the last which the loop may
	// truncate mid-storm.
	if st.Drops < uint64(st.Storms-1)*uint64(cfg.StormLen) {
		t.Errorf("drops = %d, want >= (storms-1)(%d) * len(%d)", st.Drops, st.Storms-1, cfg.StormLen)
	}
}

func TestDMAConsecutiveFailureCap(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 3, DMAFailProb: 0.99, DMAMaxConsecutive: 3}
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Even at a 99% failure rate, no direction may fail more than
	// DMAMaxConsecutive times in a row — the guarantee that the driver's
	// bounded retry always converges.
	consec := 0
	for i := 0; i < 1000; i++ {
		if inj.DMAFault(xfer.HostToDevice, 4096, 0) {
			consec++
			if consec > cfg.DMAMaxConsecutive {
				t.Fatalf("attempt %d: %d consecutive failures, cap is %d", i, consec, cfg.DMAMaxConsecutive)
			}
		} else {
			consec = 0
		}
	}
	if inj.Stats().DMAFailures == 0 {
		t.Error("no DMA failures at p=0.99")
	}
	// The cap is per direction: D2H failures do not reset the H2D run.
	inj2, _ := New(cfg)
	h2dConsec := 0
	for i := 0; i < 1000; i++ {
		inj2.DMAFault(xfer.DeviceToHost, 4096, 0)
		if inj2.DMAFault(xfer.HostToDevice, 4096, 0) {
			h2dConsec++
			if h2dConsec > cfg.DMAMaxConsecutive {
				t.Fatalf("interleaved: %d consecutive H2D failures", h2dConsec)
			}
		} else {
			h2dConsec = 0
		}
	}
}

func TestReadyDelayBounded(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 9, ReadyDelayProb: 1, ReadyDelayMax: 10 * sim.Microsecond}
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		act := inj.PerturbPut(0, false)
		if act.Drop || act.Duplicate {
			t.Fatal("unexpected drop/dup")
		}
		if act.ExtraReadyDelay <= 0 || act.ExtraReadyDelay > cfg.ReadyDelayMax {
			t.Fatalf("delay %v outside (0, %v]", act.ExtraReadyDelay, cfg.ReadyDelayMax)
		}
	}
	if got := inj.Stats().ReadyDelays; got != 500 {
		t.Errorf("ReadyDelays = %d, want 500", got)
	}
}

func TestEvictStallBounded(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 9, EvictStallProb: 1, EvictStallMax: 50 * sim.Microsecond}
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if s := inj.EvictStall(); s <= 0 || s > cfg.EvictStallMax {
			t.Fatalf("stall %v outside (0, %v]", s, cfg.EvictStallMax)
		}
	}
	// Probability zero never stalls.
	quiet, _ := New(Config{Enabled: true, Seed: 9})
	for i := 0; i < 100; i++ {
		if quiet.EvictStall() != 0 {
			t.Fatal("zero-probability injector stalled an eviction")
		}
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if act := inj.PerturbPut(0, false); act != (faultbuf.PutAction{}) {
			t.Fatalf("zero config perturbed put: %+v", act)
		}
		if inj.DMAFault(xfer.HostToDevice, 4096, 0) {
			t.Fatal("zero config failed a DMA")
		}
	}
	if inj.Stats() != (Stats{}) {
		t.Errorf("zero config recorded stats: %+v", inj.Stats())
	}
}
