package inject

import (
	"strings"
	"testing"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/pma"
	"uvmsim/internal/sim"
)

// invRig assembles the minimal system the checker observes: engine,
// buffer, address space with one 4 MB range, and a PMA of capBytes.
func invRig(t *testing.T, capBytes int64) (*sim.Engine, *faultbuf.Buffer, *mem.AddressSpace, *pma.PMA) {
	t.Helper()
	eng := sim.NewEngine()
	buf, err := faultbuf.New(64)
	if err != nil {
		t.Fatal(err)
	}
	space := mem.NewAddressSpace(mem.DefaultGeometry())
	if _, err := space.Alloc(4<<20, "data"); err != nil {
		t.Fatal(err)
	}
	pcfg := pma.DefaultConfig(capBytes)
	pcfg.RMJitterFrac = 0
	pm, err := pma.New(pcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, buf, space, pm
}

// expectViolation runs fn and asserts it panics with a *Violation whose
// message contains want.
func expectViolation(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no violation raised, want one containing %q", want)
		}
		v, ok := r.(*Violation)
		if !ok {
			panic(r) // not ours; let the real panic through
		}
		if !strings.Contains(v.Msg, want) {
			t.Errorf("violation %q does not contain %q", v.Msg, want)
		}
		if !strings.Contains(v.Msg, "replay: seed=") {
			t.Errorf("violation lacks replay recipe: %q", v.Msg)
		}
		if v.Error() != v.Msg {
			t.Error("Error() does not return the message")
		}
	}()
	fn()
}

func TestInvariantsCleanRun(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1) // deep-check every event
	inv.Attach()
	eng.At(10, func() {
		buf.Put(0, false, 0, eng.Now(), eng.Now())
		buf.Put(1, false, 0, eng.Now(), eng.Now())
	})
	eng.At(20, func() { buf.FetchReady(10, eng.Now()) })
	eng.At(30, func() {})
	eng.Run()
	if inv.Checks() != 3 {
		t.Errorf("checks = %d, want 3 (one per event)", inv.Checks())
	}
	if inv.DeepChecks() != 3 {
		t.Errorf("deep checks = %d, want 3 at stride 1", inv.DeepChecks())
	}
	if inv.Violations() != 0 {
		t.Errorf("violations = %d in a clean run", inv.Violations())
	}
	if err := inv.Final(); err != nil {
		t.Errorf("Final() = %v for a drained buffer", err)
	}
}

func TestInvariantsDefaultStride(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 0, 0)
	inv.Attach()
	for i := 0; i < 130; i++ {
		eng.At(sim.Time(i+1), func() {})
	}
	eng.Run()
	if inv.Checks() != 130 {
		t.Errorf("checks = %d, want 130", inv.Checks())
	}
	// Stride 64: deep sweeps at events 64 and 128.
	if inv.DeepChecks() != 2 {
		t.Errorf("deep checks = %d, want 2 at default stride", inv.DeepChecks())
	}
}

func TestResidentWithoutBackingViolates(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	inv.Attach()
	eng.At(10, func() {
		// Corruption: a page marked resident in a block that holds no
		// physical backing.
		space.Block(0).Resident.Set(3)
	})
	expectViolation(t, "without physical backing", func() { eng.Run() })
	if inv.Violations() != 1 {
		t.Errorf("violations = %d, want 1", inv.Violations())
	}
}

func TestAllocatedOverCapacityViolates(t *testing.T) {
	// PMA of one 2 MB chunk but two blocks claiming physical backing.
	eng, buf, space, pm := invRig(t, 2<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	inv.Attach()
	eng.At(10, func() {
		space.Block(0).Allocated = true
		space.Block(1).Allocated = true
	})
	expectViolation(t, "VABlocks allocated", func() { eng.Run() })
}

func TestRemoteBlocksExemptFromSweep(t *testing.T) {
	// Remote-mapped blocks are fully "resident" without GPU backing by
	// design; the sweep must not flag them.
	eng, buf, space, pm := invRig(t, 64<<20)
	b := space.Block(0)
	b.Remote = true
	for i := 0; i < 5; i++ {
		b.Resident.Set(i)
	}
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	inv.Attach()
	eng.At(10, func() {})
	eng.Run()
	if inv.Violations() != 0 {
		t.Errorf("remote block tripped %d violations", inv.Violations())
	}
}

func TestFinalReportsLostFaults(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	buf.Put(0, false, 0, eng.Now(), eng.Now())
	err := inv.Final()
	if err == nil || !strings.Contains(err.Error(), "never serviced") {
		t.Errorf("Final() = %v, want lost-fault error", err)
	}
	buf.FetchReady(1, 0)
	if err := inv.Final(); err != nil {
		t.Errorf("Final() = %v after drain", err)
	}
}

func TestDetachStopsChecking(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	inv.Attach()
	eng.At(1, func() {})
	eng.At(2, func() { inv.Detach() })
	eng.At(3, func() {
		// Would violate if still attached.
		space.Block(0).Resident.Set(0)
	})
	eng.At(4, func() {})
	eng.Run()
	if inv.Checks() != 1 {
		t.Errorf("checks = %d after detach, want 1", inv.Checks())
	}
}

func TestViolationIncludesTrail(t *testing.T) {
	eng, buf, space, pm := invRig(t, 64<<20)
	inv := NewInvariants(eng, buf, space, pm, 11, 1)
	inv.Attach()
	// A few healthy events populate the trail before the corruption.
	for i := 1; i <= 5; i++ {
		at := sim.Time(i)
		eng.At(at, func() { buf.Put(mem.PageID(at), false, 0, at, at) })
	}
	eng.At(10, func() { space.Block(0).Resident.Set(0) })
	expectViolation(t, "recent events", func() { eng.Run() })
}
