// Invariant checker: validates conservation properties of the simulated
// UVM stack after every simulation event. Simulator-credibility work
// (MGSim's always-on assertions, gem5 runtime validation) shows that
// discrete-event models earn trust through injected perturbation plus
// runtime checking; this is the checking half. It hooks the engine's
// per-event observer and panics with a replayable trail on violation, so
// a bug surfaces at the event that caused it, not as a silently wrong
// result table.
package inject

import (
	"fmt"
	"strings"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/pma"
	"uvmsim/internal/sim"
)

// Violation is the panic value raised when an invariant breaks. It
// carries the full diagnostic message including the replay recipe (seed
// and event ordinal).
type Violation struct {
	Msg string
}

// Error implements error so recovered violations compose with err paths.
func (v *Violation) Error() string { return v.Msg }

// trailLen is how many recent event samples the violation report includes.
const trailLen = 16

// sample is one cheap per-event observation kept for the violation trail.
type sample struct {
	now      sim.Time
	executed uint64
	bufLen   int
	total    uint64
	fetched  uint64
	flushed  uint64
	drops    uint64
	resident int // -1 when not sampled (deep checks only)
}

func (s sample) String() string {
	res := "-"
	if s.resident >= 0 {
		res = fmt.Sprintf("%d", s.resident)
	}
	return fmt.Sprintf("event=%d t=%v buf=%d accepted=%d fetched=%d flushed=%d drops=%d resident=%s",
		s.executed, s.now, s.bufLen, s.total, s.fetched, s.flushed, s.drops, res)
}

// Invariants is the always-on runtime checker. Cheap O(1) conservation
// checks run after every event; structural sweeps (FIFO order, residency
// vs. capacity) run every Stride events to keep the hot path fast.
type Invariants struct {
	eng   *sim.Engine
	buf   *faultbuf.Buffer
	space *mem.AddressSpace
	pm    *pma.PMA
	seed  uint64
	// stride is the deep-check period in events (>= 1).
	stride uint64

	lastNow    sim.Time
	checks     uint64
	deepChecks uint64
	violations uint64
	trail      [trailLen]sample
}

// DefaultStride is the deep-check period used when none is configured: a
// structural sweep every 64 events keeps overhead negligible while still
// catching corruption within microseconds of simulated time.
const DefaultStride = 64

// NewInvariants builds a checker over the system's components. stride <= 0
// selects DefaultStride.
func NewInvariants(eng *sim.Engine, buf *faultbuf.Buffer, space *mem.AddressSpace, pm *pma.PMA, seed uint64, stride int) *Invariants {
	if stride <= 0 {
		stride = DefaultStride
	}
	return &Invariants{eng: eng, buf: buf, space: space, pm: pm, seed: seed, stride: uint64(stride)}
}

// Attach hooks the checker into the engine's per-event observer.
func (v *Invariants) Attach() { v.eng.SetObserver(v.onEvent) }

// Detach removes the hook.
func (v *Invariants) Detach() { v.eng.SetObserver(nil) }

// Observe runs one per-event check without owning the engine's single
// observer slot. Multi-GPU systems compose one checker per device plus
// the cross-device checker behind a single composite observer and call
// Observe on each; single-GPU systems keep using Attach.
func (v *Invariants) Observe(now sim.Time) { v.onEvent(now) }

// Checks returns how many per-event checks have run.
func (v *Invariants) Checks() uint64 { return v.checks }

// DeepChecks returns how many structural sweeps have run.
func (v *Invariants) DeepChecks() uint64 { return v.deepChecks }

// Violations returns how many invariant violations were detected (the
// first one panics, so this is 0 in any simulation that completed).
func (v *Invariants) Violations() uint64 { return v.violations }

func (v *Invariants) onEvent(now sim.Time) {
	v.checks++

	// Clock monotonicity: the engine contract every cost model relies on.
	if now < v.lastNow {
		v.violate("clock went backwards: %v after %v", now, v.lastNow)
	}
	v.lastNow = now

	// Fault conservation, O(1): every accepted entry is buffered, fetched,
	// or flushed. An entry that vanishes any other way is a lost fault —
	// a warp that will stall forever.
	total, fetched, flushed := v.buf.Total(), v.buf.Fetched(), v.buf.Flushed()
	bufLen := v.buf.Len()
	if got := fetched + flushed + uint64(bufLen); got != total {
		v.violate("fault conservation broken: accepted %d != fetched %d + flushed %d + buffered %d",
			total, fetched, flushed, bufLen)
	}
	if bufLen > v.buf.Cap() {
		v.violate("fault buffer over capacity: %d > %d", bufLen, v.buf.Cap())
	}

	s := sample{
		now: now, executed: v.eng.Executed(), bufLen: bufLen,
		total: total, fetched: fetched, flushed: flushed, drops: v.buf.Drops(),
		resident: -1,
	}
	if v.checks%v.stride == 0 {
		s.resident = v.deep()
	}
	v.trail[v.checks%trailLen] = s
}

// deep runs the structural sweeps: buffer FIFO consistency and residency
// vs. physical capacity. It returns the resident page count it measured.
func (v *Invariants) deep() int {
	v.deepChecks++
	if err := v.buf.CheckConsistency(); err != nil {
		v.violate("%v", err)
	}
	if used, capacity := v.pm.UsedChunks(), v.pm.CapacityChunks(); used > capacity {
		v.violate("PMA over capacity: %d chunks used of %d", used, capacity)
	}
	geom := v.space.Geometry()
	allocated, resident := 0, 0
	v.space.ForEachBlock(func(b *mem.VABlock) {
		if b.Remote {
			return // remote pages live in host memory, not the framebuffer
		}
		n := b.Resident.Count()
		if b.Allocated {
			allocated++
		} else if n > 0 {
			v.violate("block %d holds %d resident pages without physical backing", b.ID, n)
		}
		resident += n
	})
	if capacity := v.pm.CapacityChunks(); allocated > capacity {
		v.violate("%d VABlocks allocated but GPU holds %d", allocated, capacity)
	}
	if maxPages := v.pm.CapacityChunks() * geom.PagesPerVABlock; resident > maxPages {
		v.violate("%d resident pages exceed GPU capacity of %d", resident, maxPages)
	}
	return resident
}

// Final runs the end-of-run conservation checks once the engine has
// drained and the kernel retired: the fault buffer must be empty (every
// raised fault was serviced or explicitly flushed) and structurally
// consistent.
func (v *Invariants) Final() error {
	if err := v.buf.CheckConsistency(); err != nil {
		return fmt.Errorf("inject: final check: %w", err)
	}
	if n := v.buf.Len(); n != 0 {
		return fmt.Errorf("inject: final check: %d fault entries never serviced (lost faults)", n)
	}
	return nil
}

// violate records the violation and panics with the replay recipe and
// the recent event trail.
func (v *Invariants) violate(format string, args ...interface{}) {
	v.violations++
	var b strings.Builder
	fmt.Fprintf(&b, "uvmsim invariant violation: ")
	fmt.Fprintf(&b, format, args...)
	fmt.Fprintf(&b, "\n  replay: seed=%d at event %d (t=%v), after %d checks (%d deep)",
		v.seed, v.eng.Executed(), v.eng.Now(), v.checks, v.deepChecks)
	fmt.Fprintf(&b, "\n  recent events (oldest first):")
	for i := uint64(0); i < trailLen; i++ {
		s := v.trail[(v.checks+1+i)%trailLen]
		if s.executed == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n    %s", s)
	}
	panic(&Violation{Msg: b.String()})
}
