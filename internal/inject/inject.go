// Package inject is the deterministic fault-injection layer: seeded,
// reproducible perturbations of every layer of the simulated UVM stack.
// The paper's central finding is that UVM cost is dominated by driver
// behavior under pressure — serialized fault storms, batch boundaries,
// replay policy interactions (§III, §IV) — so the simulator must stay
// correct when the stack misbehaves, not just on the happy path. The
// injector perturbs the fault buffer (dropped entries, duplicated
// entries, delayed ready flags, overflow storms), the interconnect
// (transient DMA failures), and the eviction path (stalls); every
// decision comes from a private RNG so a campaign is reproducible from a
// single seed and never disturbs the workload's random stream.
//
// The companion invariant checker (invariant.go) validates conservation
// properties after every simulation event, so injected chaos that the
// stack fails to absorb is caught at the event where it happens rather
// than as a corrupted result.
package inject

import (
	"fmt"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
	"uvmsim/internal/xfer"
)

// Config describes one injection campaign. Probabilities are evaluated
// per opportunity (per fault-buffer Put, per DMA attempt, per eviction).
// The zero value injects nothing.
type Config struct {
	// Enabled gates the whole layer; when false the system wires no
	// injector at all.
	Enabled bool
	// Seed drives every injection decision, independent of the system
	// seed so the injected and baseline runs execute identical workloads.
	Seed uint64

	// DropProb is the per-Put probability of rejecting a fault entry as
	// if the buffer were full. Must stay below 1 or stalled warps could
	// re-fault forever.
	DropProb float64
	// DupProb is the per-Put probability of writing the entry twice.
	DupProb float64
	// ReadyDelayProb is the per-Put probability of stretching the entry's
	// asynchronous ready delay by up to ReadyDelayMax.
	ReadyDelayProb float64
	// ReadyDelayMax bounds the injected extra ready delay.
	ReadyDelayMax sim.Duration
	// StormProb is the per-Put probability of starting an overflow storm:
	// the next StormLen puts are rejected wholesale, emulating a burst of
	// faults arriving faster than the buffer drains.
	StormProb float64
	// StormLen is how many consecutive puts one storm rejects.
	StormLen int

	// DMAFailProb is the per-attempt probability of a transient DMA
	// failure on the interconnect.
	DMAFailProb float64
	// DMAMaxConsecutive caps consecutive failures per direction so the
	// driver's bounded retry always eventually succeeds (0 means 3).
	DMAMaxConsecutive int

	// EvictStallProb is the per-eviction probability of an injected
	// stall of up to EvictStallMax.
	EvictStallProb float64
	// EvictStallMax bounds the injected eviction stall.
	EvictStallMax sim.Duration
}

// DefaultConfig returns a moderate all-layers campaign: every
// perturbation class fires often enough to exercise the recovery paths
// without drowning the workload.
func DefaultConfig(seed uint64) Config {
	return Config{
		Enabled:           true,
		Seed:              seed,
		DropProb:          0.02,
		DupProb:           0.02,
		ReadyDelayProb:    0.05,
		ReadyDelayMax:     20 * sim.Microsecond,
		StormProb:         0.002,
		StormLen:          32,
		DMAFailProb:       0.05,
		DMAMaxConsecutive: 3,
		EvictStallProb:    0.1,
		EvictStallMax:     50 * sim.Microsecond,
	}
}

// Validate checks the campaign for configurations that cannot converge.
func (c *Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DupProb", c.DupProb},
		{"ReadyDelayProb", c.ReadyDelayProb},
		{"EvictStallProb", c.EvictStallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("inject: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.DropProb},
		{"StormProb", c.StormProb},
		{"DMAFailProb", c.DMAFailProb},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("inject: %s %v outside [0, 1) (1 would livelock the retry paths)", p.name, p.v)
		}
	}
	if c.StormLen < 0 {
		return fmt.Errorf("inject: StormLen %d must be >= 0", c.StormLen)
	}
	if c.ReadyDelayProb > 0 && c.ReadyDelayMax <= 0 {
		return fmt.Errorf("inject: ReadyDelayProb set with non-positive ReadyDelayMax %v", c.ReadyDelayMax)
	}
	if c.EvictStallProb > 0 && c.EvictStallMax <= 0 {
		return fmt.Errorf("inject: EvictStallProb set with non-positive EvictStallMax %v", c.EvictStallMax)
	}
	if c.DMAMaxConsecutive < 0 {
		return fmt.Errorf("inject: DMAMaxConsecutive %d must be >= 0", c.DMAMaxConsecutive)
	}
	return nil
}

// Stats tallies what the injector actually did.
type Stats struct {
	Drops       uint64 // fault entries rejected
	Dups        uint64 // fault entries duplicated
	ReadyDelays uint64 // ready flags delayed
	Storms      uint64 // overflow storms started
	DMAFailures uint64 // DMA attempts failed
	EvictStalls uint64 // evictions stalled
}

// Injector applies a Config. It implements faultbuf.Perturber,
// xfer.FaultHook (via DMAFault), and driver.FaultInjector; one injector
// serves all three hook points of a single system.
type Injector struct {
	cfg Config
	rng *sim.RNG

	stormLeft  int
	consecFail [2]int
	stats      Stats
}

// New validates cfg and returns an injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DMAMaxConsecutive == 0 {
		cfg.DMAMaxConsecutive = 3
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}, nil
}

// Stats returns the injection tallies so far.
func (i *Injector) Stats() Stats { return i.stats }

// PerturbPut implements faultbuf.Perturber: per-entry drop, duplication,
// ready-flag delay, and overflow storms.
func (i *Injector) PerturbPut(page mem.PageID, write bool) faultbuf.PutAction {
	var act faultbuf.PutAction
	if i.stormLeft > 0 {
		i.stormLeft--
		i.stats.Drops++
		act.Drop = true
		return act
	}
	if i.cfg.StormProb > 0 && i.cfg.StormLen > 0 && i.rng.Float64() < i.cfg.StormProb {
		i.stats.Storms++
		i.stormLeft = i.cfg.StormLen - 1
		i.stats.Drops++
		act.Drop = true
		return act
	}
	if i.cfg.DropProb > 0 && i.rng.Float64() < i.cfg.DropProb {
		i.stats.Drops++
		act.Drop = true
		return act
	}
	if i.cfg.DupProb > 0 && i.rng.Float64() < i.cfg.DupProb {
		i.stats.Dups++
		act.Duplicate = true
	}
	if i.cfg.ReadyDelayProb > 0 && i.rng.Float64() < i.cfg.ReadyDelayProb {
		i.stats.ReadyDelays++
		act.ExtraReadyDelay = sim.Duration(i.rng.Uint64n(uint64(i.cfg.ReadyDelayMax)) + 1)
	}
	return act
}

// DMAFault is the xfer.FaultHook: transient per-attempt failures, capped
// at DMAMaxConsecutive in a row per direction so retries always succeed
// within the driver's bounded budget.
func (i *Injector) DMAFault(dir xfer.Direction, bytes int64, attempt int) bool {
	if i.cfg.DMAFailProb <= 0 {
		return false
	}
	if i.consecFail[dir] >= i.cfg.DMAMaxConsecutive {
		i.consecFail[dir] = 0
		return false
	}
	if i.rng.Float64() < i.cfg.DMAFailProb {
		i.consecFail[dir]++
		i.stats.DMAFailures++
		return true
	}
	i.consecFail[dir] = 0
	return false
}

// EvictStall implements driver.FaultInjector: extra latency on the
// eviction path.
func (i *Injector) EvictStall() sim.Duration {
	if i.cfg.EvictStallProb <= 0 || i.rng.Float64() >= i.cfg.EvictStallProb {
		return 0
	}
	i.stats.EvictStalls++
	return sim.Duration(i.rng.Uint64n(uint64(i.cfg.EvictStallMax)) + 1)
}
