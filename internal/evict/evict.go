// Package evict implements VABlock eviction policies. The production UVM
// driver uses least-recently-used eviction where the LRU list is updated
// only when a *fault* is serviced on a block (paper §V-A). That
// restriction creates the pathology the paper highlights: fully-resident
// hot blocks are never touched again and drift to the LRU tail, so the
// hottest data can be the first evicted. Alternative policies (FIFO,
// random, and an access-counter-aware variant of LRU per §VI-B) exist for
// the ablation experiments.
package evict

import (
	"fmt"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// Policy selects eviction victims among GPU-allocated VABlocks.
//
// Insert registers a newly allocated block; Touch records a fault-service
// event on a registered block; Remove deregisters a block (after eviction
// or teardown); Victim returns the block to evict next without removing
// it, or nil when none is registered.
type Policy interface {
	Name() string
	Insert(b *mem.VABlock)
	Touch(b *mem.VABlock)
	Remove(b *mem.VABlock)
	Victim() *mem.VABlock
	Len() int
}

// New returns the named policy: "lru", "fifo", "random", or
// "access-aware". rng is required by "random" only.
func New(name string, rng *sim.RNG) (Policy, error) {
	switch name {
	case "lru", "":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "random":
		if rng == nil {
			return nil, fmt.Errorf("evict: random policy requires an RNG")
		}
		return NewRandom(rng), nil
	case "access-aware":
		return NewAccessAware(), nil
	default:
		return nil, fmt.Errorf("evict: unknown policy %q", name)
	}
}

type lruNode struct {
	block      *mem.VABlock
	prev, next *lruNode
}

// LRU is the driver's default policy: victims come from the tail; Touch
// moves a block to the head. Only fault servicing calls Touch.
//
// Removed nodes go to an intrusive free list instead of the garbage
// collector: under oversubscription every serviced bin can evict and
// re-insert a block, so the steady-state Insert/Remove churn reuses a
// bounded set of nodes and allocates nothing.
type LRU struct {
	head, tail *lruNode // head = most recently touched
	nodes      map[mem.VABlockID]*lruNode
	free       *lruNode // singly linked (via next) recycled nodes
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{nodes: make(map[mem.VABlockID]*lruNode)}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Len implements Policy.
func (l *LRU) Len() int { return len(l.nodes) }

func (l *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Insert implements Policy. Inserting an already-present block panics:
// the driver allocates a block exactly once per residency period.
func (l *LRU) Insert(b *mem.VABlock) {
	if _, ok := l.nodes[b.ID]; ok {
		panic(fmt.Sprintf("evict: duplicate insert of block %d", b.ID))
	}
	n := l.free
	if n != nil {
		l.free = n.next
		n.next = nil
		n.block = b
	} else {
		n = &lruNode{block: b}
	}
	l.nodes[b.ID] = n
	l.pushFront(n)
}

// Touch implements Policy.
func (l *LRU) Touch(b *mem.VABlock) {
	n, ok := l.nodes[b.ID]
	if !ok {
		panic(fmt.Sprintf("evict: touch of unregistered block %d", b.ID))
	}
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// Remove implements Policy.
func (l *LRU) Remove(b *mem.VABlock) {
	n, ok := l.nodes[b.ID]
	if !ok {
		panic(fmt.Sprintf("evict: remove of unregistered block %d", b.ID))
	}
	l.unlink(n)
	delete(l.nodes, b.ID)
	n.block = nil // drop the block reference while pooled
	n.next = l.free
	l.free = n
}

// Victim implements Policy: the least recently touched block.
func (l *LRU) Victim() *mem.VABlock {
	if l.tail == nil {
		return nil
	}
	return l.tail.block
}

// Tail returns up to n blocks from the LRU end, oldest first (testing and
// diagnostics).
func (l *LRU) Tail(n int) []*mem.VABlock {
	out := make([]*mem.VABlock, 0, n)
	for node := l.tail; node != nil && len(out) < n; node = node.prev {
		out = append(out, node.block)
	}
	return out
}

// FIFO evicts in allocation order; Touch is a no-op.
type FIFO struct {
	lru LRU
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{lru: *NewLRU()} }

// Name implements Policy.
func (f *FIFO) Name() string { return "fifo" }

// Len implements Policy.
func (f *FIFO) Len() int { return f.lru.Len() }

// Insert implements Policy.
func (f *FIFO) Insert(b *mem.VABlock) { f.lru.Insert(b) }

// Touch implements Policy (no reordering).
func (f *FIFO) Touch(b *mem.VABlock) {
	if _, ok := f.lru.nodes[b.ID]; !ok {
		panic(fmt.Sprintf("evict: touch of unregistered block %d", b.ID))
	}
}

// Remove implements Policy.
func (f *FIFO) Remove(b *mem.VABlock) { f.lru.Remove(b) }

// Victim implements Policy: the oldest allocation.
func (f *FIFO) Victim() *mem.VABlock { return f.lru.Victim() }

// Random evicts a uniformly random registered block.
type Random struct {
	rng   *sim.RNG
	order []*mem.VABlock
	index map[mem.VABlockID]int
}

// NewRandom returns an empty random policy using rng.
func NewRandom(rng *sim.RNG) *Random {
	return &Random{rng: rng, index: make(map[mem.VABlockID]int)}
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Len implements Policy.
func (r *Random) Len() int { return len(r.order) }

// Insert implements Policy.
func (r *Random) Insert(b *mem.VABlock) {
	if _, ok := r.index[b.ID]; ok {
		panic(fmt.Sprintf("evict: duplicate insert of block %d", b.ID))
	}
	r.index[b.ID] = len(r.order)
	r.order = append(r.order, b)
}

// Touch implements Policy (no-op).
func (r *Random) Touch(b *mem.VABlock) {
	if _, ok := r.index[b.ID]; !ok {
		panic(fmt.Sprintf("evict: touch of unregistered block %d", b.ID))
	}
}

// Remove implements Policy (swap-delete).
func (r *Random) Remove(b *mem.VABlock) {
	i, ok := r.index[b.ID]
	if !ok {
		panic(fmt.Sprintf("evict: remove of unregistered block %d", b.ID))
	}
	last := len(r.order) - 1
	r.order[i] = r.order[last]
	r.index[r.order[i].ID] = i
	r.order = r.order[:last]
	delete(r.index, b.ID)
}

// Victim implements Policy.
func (r *Random) Victim() *mem.VABlock {
	if len(r.order) == 0 {
		return nil
	}
	return r.order[r.rng.Intn(len(r.order))]
}

// AccessAware is the §VI-B extension: LRU augmented with Volta-style
// access counters. A tail block whose GPU access counter advanced since
// the policy last examined it gets a second chance (moved to the head),
// fixing the hot-data starvation of fault-only LRU. The scan is bounded
// to one full cycle so Victim always terminates.
type AccessAware struct {
	lru      LRU
	lastSeen map[mem.VABlockID]uint64
}

// NewAccessAware returns an empty access-aware policy.
func NewAccessAware() *AccessAware {
	return &AccessAware{lru: *NewLRU(), lastSeen: make(map[mem.VABlockID]uint64)}
}

// Name implements Policy.
func (a *AccessAware) Name() string { return "access-aware" }

// Len implements Policy.
func (a *AccessAware) Len() int { return a.lru.Len() }

// Insert implements Policy.
func (a *AccessAware) Insert(b *mem.VABlock) {
	a.lru.Insert(b)
	a.lastSeen[b.ID] = b.GPUAccesses
}

// Touch implements Policy.
func (a *AccessAware) Touch(b *mem.VABlock) { a.lru.Touch(b) }

// Remove implements Policy.
func (a *AccessAware) Remove(b *mem.VABlock) {
	a.lru.Remove(b)
	delete(a.lastSeen, b.ID)
}

// Victim implements Policy.
func (a *AccessAware) Victim() *mem.VABlock {
	n := a.lru.Len()
	for i := 0; i < n; i++ {
		v := a.lru.Victim()
		if v == nil {
			return nil
		}
		if v.GPUAccesses > a.lastSeen[v.ID] {
			// Accessed since last inspection: second chance.
			a.lastSeen[v.ID] = v.GPUAccesses
			a.lru.Touch(v)
			continue
		}
		return v
	}
	// Every block was recently accessed; fall back to plain LRU order.
	return a.lru.Victim()
}
