package evict

import "testing"

// TestLRUFreeListReuse exercises the node pool: churned nodes come back
// from the free list with clean links and the list stays consistent.
func TestLRUFreeListReuse(t *testing.T) {
	l := NewLRU()
	bs := blocks(4)
	for _, b := range bs {
		l.Insert(b)
	}
	for round := 0; round < 3; round++ {
		// Evict-style churn: remove the victim, re-insert it.
		v := l.Victim()
		l.Remove(v)
		if l.Len() != len(bs)-1 {
			t.Fatalf("len = %d after remove", l.Len())
		}
		l.Insert(v)
		if got := l.Victim(); got == v {
			t.Fatal("freshly re-inserted block is the victim")
		}
	}
	l.Remove(l.Victim())
	if l.free == nil {
		t.Fatal("free list empty after remove")
	}
	if l.free.block != nil {
		t.Error("pooled node retains a block reference")
	}
}

// TestLRUChurnAllocFree pins the steady-state Insert/Touch/Remove cycle
// at zero allocations once the pool is warm. The map delete/re-add pair
// stays within the map's existing buckets, so the whole eviction churn
// path never reaches the allocator.
func TestLRUChurnAllocFree(t *testing.T) {
	l := NewLRU()
	bs := blocks(8)
	for _, b := range bs {
		l.Insert(b)
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		v := l.Victim()
		l.Remove(v)
		l.Insert(v)
		l.Touch(bs[i%len(bs)])
		i++
	}); n != 0 {
		t.Errorf("LRU churn allocates %v times per cycle, want 0", n)
	}
}
