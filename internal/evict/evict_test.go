package evict

import (
	"testing"
	"testing/quick"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

func blocks(n int) []*mem.VABlock {
	out := make([]*mem.VABlock, n)
	for i := range out {
		out[i] = &mem.VABlock{ID: mem.VABlockID(i)}
	}
	return out
}

func TestLRUOrder(t *testing.T) {
	l := NewLRU()
	bs := blocks(3)
	for _, b := range bs {
		l.Insert(b)
	}
	if l.Victim() != bs[0] {
		t.Fatal("victim should be the oldest insert")
	}
	l.Touch(bs[0]) // 0 becomes MRU; victim now 1
	if l.Victim() != bs[1] {
		t.Fatal("touch did not reorder")
	}
	l.Remove(bs[1])
	if l.Victim() != bs[2] || l.Len() != 2 {
		t.Fatal("remove wrong")
	}
}

func TestLRUFaultOnlyPathology(t *testing.T) {
	// The paper's §V-A observation: a block that was hottest early (many
	// touches) but then fully resident (no more faults) sinks to the tail.
	l := NewLRU()
	hot, cold1, cold2 := blocks(3)[0], blocks(3)[1], blocks(3)[2]
	l.Insert(hot)
	for i := 0; i < 100; i++ {
		l.Touch(hot) // heavily faulted early
	}
	l.Insert(cold1)
	l.Touch(cold1)
	l.Insert(cold2)
	l.Touch(cold2)
	// hot had the most touches but the oldest last-touch: it is the victim.
	if l.Victim() != hot {
		t.Fatal("fault-only LRU should evict the early-hot block")
	}
}

func TestLRUTail(t *testing.T) {
	l := NewLRU()
	bs := blocks(4)
	for _, b := range bs {
		l.Insert(b)
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0] != bs[0] || tail[1] != bs[1] {
		t.Fatalf("Tail = %v", tail)
	}
}

func TestLRUMisusePanics(t *testing.T) {
	l := NewLRU()
	b := blocks(1)[0]
	l.Insert(b)
	for name, fn := range map[string]func(){
		"duplicate insert": func() { l.Insert(b) },
		"touch missing":    func() { l.Touch(&mem.VABlock{ID: 99}) },
		"remove missing":   func() { l.Remove(&mem.VABlock{ID: 99}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEmptyVictims(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewRandom(sim.NewRNG(1)), NewAccessAware()} {
		if p.Victim() != nil {
			t.Errorf("%s: victim on empty policy", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: nonzero len", p.Name())
		}
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	f := NewFIFO()
	bs := blocks(3)
	for _, b := range bs {
		f.Insert(b)
	}
	f.Touch(bs[0])
	f.Touch(bs[0])
	if f.Victim() != bs[0] {
		t.Fatal("FIFO reordered on touch")
	}
	f.Remove(bs[0])
	if f.Victim() != bs[1] {
		t.Fatal("FIFO order wrong after remove")
	}
}

func TestRandomVictimIsMember(t *testing.T) {
	r := NewRandom(sim.NewRNG(42))
	bs := blocks(10)
	for _, b := range bs {
		r.Insert(b)
	}
	seen := map[mem.VABlockID]bool{}
	for i := 0; i < 200; i++ {
		v := r.Victim()
		if v == nil || int(v.ID) >= 10 {
			t.Fatal("invalid victim")
		}
		seen[v.ID] = true
	}
	if len(seen) < 5 {
		t.Errorf("random victims not diverse: %d distinct", len(seen))
	}
	r.Remove(bs[3])
	for i := 0; i < 100; i++ {
		if r.Victim() == bs[3] {
			t.Fatal("removed block returned as victim")
		}
	}
	if r.Len() != 9 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestAccessAwareSecondChance(t *testing.T) {
	a := NewAccessAware()
	hot, cold := &mem.VABlock{ID: 1}, &mem.VABlock{ID: 2}
	a.Insert(hot)
	a.Insert(cold)
	// hot is at the tail (inserted first, never touched) but its access
	// counter advanced: it must be skipped in favor of cold.
	hot.GPUAccesses = 50
	if v := a.Victim(); v != cold {
		t.Fatalf("victim = %v, want cold block", v.ID)
	}
	// Second call without further accesses: hot was cycled to the head,
	// cold remains the victim.
	if v := a.Victim(); v != cold {
		t.Fatal("second victim changed unexpectedly")
	}
}

func TestAccessAwareFallsBackWhenAllHot(t *testing.T) {
	a := NewAccessAware()
	bs := blocks(3)
	for _, b := range bs {
		a.Insert(b)
	}
	for _, b := range bs {
		b.GPUAccesses = 10
	}
	v := a.Victim()
	if v == nil {
		t.Fatal("no victim despite nonempty policy")
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "random", "access-aware", ""} {
		p, err := New(name, sim.NewRNG(1))
		if err != nil || p == nil {
			t.Errorf("New(%q) failed: %v", name, err)
		}
	}
	if _, err := New("clock", nil); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New("random", nil); err == nil {
		t.Error("random without RNG accepted")
	}
}

// Property: for any op sequence, Len matches a reference set and Victim
// is always a member.
func TestPolicyMembershipProperty(t *testing.T) {
	type op struct {
		Kind uint8 // 0 insert, 1 touch, 2 remove
		ID   uint8
	}
	for _, mk := range []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewFIFO() },
		func() Policy { return NewRandom(sim.NewRNG(7)) },
		func() Policy { return NewAccessAware() },
	} {
		p := mk()
		f := func(ops []op) bool {
			p := mk()
			live := map[mem.VABlockID]*mem.VABlock{}
			for _, o := range ops {
				id := mem.VABlockID(o.ID % 16)
				switch o.Kind % 3 {
				case 0:
					if _, ok := live[id]; !ok {
						b := &mem.VABlock{ID: id}
						live[id] = b
						p.Insert(b)
					}
				case 1:
					if b, ok := live[id]; ok {
						p.Touch(b)
					}
				case 2:
					if b, ok := live[id]; ok {
						p.Remove(b)
						delete(live, id)
					}
				}
				if p.Len() != len(live) {
					return false
				}
				v := p.Victim()
				if len(live) == 0 {
					if v != nil {
						return false
					}
				} else if v == nil || live[v.ID] != v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
