package telemetry

import (
	"log/slog"

	"uvmsim/internal/govern"
)

// ArmGovern installs a govern status hook that records every abnormal
// run outcome into the flight ring and, for the two outcomes that name
// a broken assumption rather than an external decision — budget
// overruns (deadline/livelock) and recovered invariant panics — dumps
// the ring to dir. Cancellations and ordinary failures are recorded
// but do not trigger dumps: they are routine under drain and retry.
//
// The returned func disarms the hook (tests; process shutdown does not
// need it).
func ArmGovern(flight *Flight, dir string, lg *slog.Logger) func() {
	govern.SetStatusHook(func(st govern.RunStatus) {
		if flight == nil {
			return
		}
		flight.Record(Event{
			Level: slog.LevelWarn.String(),
			Msg:   "run " + string(st.State),
			Attrs: map[string]string{"state": string(st.State), "err": st.Err},
		})
		var reason string
		switch st.State {
		case govern.StateDeadline, govern.StateLivelock:
			reason = "budget_overrun"
		case govern.StatePanicked:
			reason = "invariant_panic"
		default:
			return
		}
		if dir == "" {
			return
		}
		if path, err := flight.DumpToFile(dir, reason); err == nil {
			if lg != nil {
				lg.Warn("flight recorder dumped", slog.String("reason", reason), slog.String("path", path))
			}
		} else if lg != nil {
			lg.Error("flight recorder dump failed", slog.String("reason", reason), slog.String("err", err.Error()))
		}
	})
	return func() { govern.SetStatusHook(nil) }
}
