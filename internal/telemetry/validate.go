package telemetry

import (
	"encoding/json"
	"fmt"
)

// ValidateLine checks one JSON log line against the fleet schema: it
// must parse as an object, carry non-empty "time", "level" and "msg"
// keys, the level must be a known slog level, and when trace_id /
// req_id are present they must satisfy the ID grammar. This is the
// contract `make logcheck` enforces over every structured log a check
// script captures.
func ValidateLine(raw []byte) error {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("log line: %w", err)
	}
	for _, key := range []string{"time", "level", "msg"} {
		v, ok := m[key]
		if !ok {
			return fmt.Errorf("log line: missing %q", key)
		}
		s, ok := v.(string)
		if !ok || s == "" {
			return fmt.Errorf("log line: %q must be a non-empty string", key)
		}
	}
	switch m["level"] {
	case "DEBUG", "INFO", "WARN", "ERROR":
	default:
		return fmt.Errorf("log line: unknown level %v", m["level"])
	}
	if v, ok := m[KeyTraceID]; ok {
		s, _ := v.(string)
		if !ValidTraceID(s) {
			return fmt.Errorf("log line: malformed %s %q", KeyTraceID, s)
		}
	}
	if v, ok := m[KeyReqID]; ok {
		s, _ := v.(string)
		if !ValidID(s) {
			return fmt.Errorf("log line: malformed %s %q", KeyReqID, s)
		}
	}
	return nil
}

// LineTraceID returns the trace_id a JSON log line carries, or "" when
// the line does not parse or has none.
func LineTraceID(raw []byte) string {
	var m struct {
		TraceID string `json:"trace_id"`
	}
	if json.Unmarshal(raw, &m) != nil {
		return ""
	}
	return m.TraceID
}
