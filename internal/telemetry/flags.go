package telemetry

import (
	"flag"
	"log/slog"
	"os"
)

// Flags is the standard telemetry flag set shared by the fleet CLIs
// (uvmserved, uvmworker, uvmsweep, uvmload).
type Flags struct {
	// Format is the log encoding: "text" (default, grep-compatible with
	// the historical log.Printf output) or "json" (the fleet schema).
	Format string
	// Level is the minimum emitted log level (debug/info/warn/error).
	Level string
	// FlightDir, when non-empty, enables flight-recorder dumps into
	// that directory on triggers (5xx, budget overrun, quarantine,
	// invariant panic). The in-memory ring is always on regardless.
	FlightDir string
	// FlightEvents sizes the ring.
	FlightEvents int
}

// Register installs the flags on the default CommandLine set.
func (f *Flags) Register() {
	flag.StringVar(&f.Format, "log-format", "text", "log encoding: text or json (json carries the fleet telemetry schema)")
	flag.StringVar(&f.Level, "log-level", "info", "minimum log level: debug, info, warn, error")
	flag.StringVar(&f.FlightDir, "flight-dir", "", "directory for flight-recorder dumps on failure triggers (empty = no file dumps; the in-memory ring and /debug/flightrec stay on)")
	flag.IntVar(&f.FlightEvents, "flight-events", DefaultFlightEvents, "flight-recorder ring size in events")
}

// Flight builds the ring the flags describe.
func (f *Flags) Flight() *Flight { return NewFlight(f.FlightEvents) }

// Logger builds the component logger on stderr, teeing into flight
// (which may be nil).
func (f *Flags) Logger(component string, flight *Flight) *slog.Logger {
	return New(os.Stderr, Config{
		Format:    f.Format,
		Level:     f.Level,
		Component: component,
		Flight:    flight,
	})
}
