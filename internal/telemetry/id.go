package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"regexp"
	"sync/atomic"
)

// Trace and request IDs are 16 lowercase hex characters (64 random
// bits): short enough to read in a log line, long enough that a fleet
// never collides in practice. A cell-scoped trace derives from its
// sweep's root trace as "<root>-c<index>", so one grep on the root
// finds the whole sweep and one grep on the derived ID isolates a cell.

// idRE is the grammar of a bare generated ID.
var idRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// traceRE is the grammar of any trace ID this package mints: a bare ID
// or a cell-derived one.
var traceRE = regexp.MustCompile(`^[0-9a-f]{16}(-c[0-9]+)?$`)

// idFallback feeds deterministic-but-unique IDs if crypto/rand ever
// fails (it effectively cannot on supported platforms).
var idFallback atomic.Uint64

// NewID returns a fresh 16-hex-character ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// CellTraceID derives the trace ID for one sweep cell from the sweep's
// root trace. The derivation is stable across lease retries: every
// attempt at the cell logs under the same trace.
func CellTraceID(root string, index int) string {
	return fmt.Sprintf("%s-c%03d", root, index)
}

// ValidID reports whether s is a bare generated ID.
func ValidID(s string) bool { return idRE.MatchString(s) }

// ValidTraceID reports whether s is a bare or cell-derived trace ID.
func ValidTraceID(s string) bool { return traceRE.MatchString(s) }
