package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestContextIDs(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" || ReqID(ctx) != "" {
		t.Fatalf("empty context should carry no IDs")
	}
	ctx = WithTraceID(ctx, "deadbeefdeadbeef")
	ctx = WithReqID(ctx, "cafebabecafebabe")
	if got := TraceID(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("TraceID = %q", got)
	}
	if got := ReqID(ctx); got != "cafebabecafebabe" {
		t.Fatalf("ReqID = %q", got)
	}
	if TraceID(nil) != "" || ReqID(nil) != "" { //nolint:staticcheck // nil-safety contract
		t.Fatalf("nil context should carry no IDs")
	}
	// Empty IDs are no-ops, not overwrites.
	if got := TraceID(WithTraceID(ctx, "")); got != "deadbeefdeadbeef" {
		t.Fatalf("empty WithTraceID overwrote: %q", got)
	}
}

func TestNewID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID produced invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("NewID collision on %q", id)
		}
		seen[id] = true
	}
}

func TestCellTraceID(t *testing.T) {
	root := "0123456789abcdef"
	got := CellTraceID(root, 7)
	if got != "0123456789abcdef-c007" {
		t.Fatalf("CellTraceID = %q", got)
	}
	if !ValidTraceID(got) {
		t.Fatalf("cell trace %q should validate", got)
	}
	if ValidID(got) {
		t.Fatalf("cell trace %q is not a bare ID", got)
	}
	if !ValidTraceID(CellTraceID(root, 1234)) {
		t.Fatalf("wide cell index should still validate")
	}
	for _, bad := range []string{"", "xyz", "0123456789abcde", "0123456789abcdef-c", "0123456789abcdef-d1"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) should be false", bad)
		}
	}
}

func TestHandlerStampsContextIDs(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Config{Format: "json", Component: "testcomp"})
	ctx := WithReqID(WithTraceID(context.Background(), "deadbeefdeadbeef"), "cafebabecafebabe")
	lg.InfoContext(ctx, "hello", slog.String("k", "v"))

	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if m[KeyTraceID] != "deadbeefdeadbeef" {
		t.Fatalf("trace_id missing: %v", m)
	}
	if m[KeyReqID] != "cafebabecafebabe" {
		t.Fatalf("req_id missing: %v", m)
	}
	if m[KeyComponent] != "testcomp" {
		t.Fatalf("component missing: %v", m)
	}
	if m["k"] != "v" {
		t.Fatalf("attr missing: %v", m)
	}
	if err := ValidateLine(buf.Bytes()); err != nil {
		t.Fatalf("emitted line fails its own validator: %v", err)
	}
}

func TestHandlerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Config{Format: "text", Component: "c"})
	lg.InfoContext(WithTraceID(context.Background(), "deadbeefdeadbeef"), "lease granted")
	out := buf.String()
	if !strings.Contains(out, "lease granted") || !strings.Contains(out, "trace_id=deadbeefdeadbeef") {
		t.Fatalf("text output missing fields: %q", out)
	}
	if json.Valid(buf.Bytes()) {
		t.Fatalf("text format should not be JSON")
	}
}

func TestHandlerTeesBelowLevelIntoFlight(t *testing.T) {
	var buf bytes.Buffer
	fl := NewFlight(8)
	lg := New(&buf, Config{Format: "json", Level: "warn", Flight: fl})
	lg.Debug("invisible in output", slog.String("x", "1"))
	lg.Warn("visible")

	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("want exactly the warn line emitted, got %d lines: %s", got, buf.String())
	}
	evs := fl.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("flight should hold both records, got %d", len(evs))
	}
	if evs[0].Msg != "invisible in output" || evs[0].Attrs["x"] != "1" {
		t.Fatalf("flight missed the debug record: %+v", evs[0])
	}
}

func TestHandlerWithAttrsReachFlight(t *testing.T) {
	fl := NewFlight(8)
	lg := New(new(bytes.Buffer), Config{Format: "json", Component: "worker-1", Flight: fl})
	lg = lg.With(slog.String(KeyConfigHash, "abc123"))
	lg.InfoContext(WithTraceID(context.Background(), "deadbeefdeadbeef"), "cache fill")
	evs := fl.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("flight events = %d", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != "deadbeefdeadbeef" {
		t.Fatalf("flight event lost trace: %+v", ev)
	}
	if ev.Attrs[KeyComponent] != "worker-1" || ev.Attrs[KeyConfigHash] != "abc123" {
		t.Fatalf("flight event lost With attrs: %+v", ev)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "warn": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
		" DEBUG ": slog.LevelDebug, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestValidateLine(t *testing.T) {
	good := []string{
		`{"time":"2026-01-01T00:00:00Z","level":"INFO","msg":"ok"}`,
		`{"time":"t","level":"WARN","msg":"m","trace_id":"0123456789abcdef"}`,
		`{"time":"t","level":"ERROR","msg":"m","trace_id":"0123456789abcdef-c003","req_id":"fedcba9876543210"}`,
	}
	for _, line := range good {
		if err := ValidateLine([]byte(line)); err != nil {
			t.Errorf("ValidateLine(%s) = %v, want nil", line, err)
		}
	}
	bad := []string{
		`not json`,
		`{"level":"INFO","msg":"no time"}`,
		`{"time":"t","msg":"no level"}`,
		`{"time":"t","level":"INFO"}`,
		`{"time":"t","level":"TRACE","msg":"bad level"}`,
		`{"time":"t","level":"INFO","msg":"m","trace_id":"nope"}`,
		`{"time":"t","level":"INFO","msg":"m","req_id":"0123456789abcdef-c001"}`,
		`{"time":"","level":"INFO","msg":"empty time"}`,
	}
	for _, line := range bad {
		if err := ValidateLine([]byte(line)); err == nil {
			t.Errorf("ValidateLine(%s) = nil, want error", line)
		}
	}
}
