package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// RED holds per-endpoint rate/errors/duration metrics in an
// obs.Registry, so the wall-clock serving metrics ride the exact same
// snapshot/exposition machinery as the simulated-clock ones. The
// registry has no label support — deliberately, it keeps the sim hot
// path lock-free — so the route is encoded in the metric name:
//
//	<prefix>_<route>_requests_total   counter: every response
//	<prefix>_<route>_errors_total     counter: 5xx responses
//	<prefix>_<route>_latency_wall_ns  histogram: wall-clock latency
//
// The latency histogram carries the WallSuffix, which the Prometheus
// writer renders as a true cumulative _bucket{le=...} histogram.
type RED struct {
	prefix string

	mu     sync.Mutex
	reg    *obs.Registry
	routes map[string]*redRoute
}

type redRoute struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.HistogramMetric
}

// NewRED returns an empty RED set whose metric names start with prefix
// (e.g. "uvmserved_http").
func NewRED(prefix string) *RED {
	return &RED{prefix: prefix, reg: obs.NewRegistry(), routes: make(map[string]*redRoute)}
}

// route returns (registering on first use) the handles for one route.
func (r *RED) route(name string) *redRoute {
	if rt, ok := r.routes[name]; ok {
		return rt
	}
	base := r.prefix + "_" + sanitizeRoute(name)
	rt := &redRoute{
		requests: r.reg.Counter(base + "_requests_total"),
		errors:   r.reg.Counter(base + "_errors_total"),
		latency:  r.reg.Histogram(base + "_latency" + WallSuffix),
	}
	r.routes[name] = rt
	return rt
}

// Observe records one served response: its route, HTTP status, and
// wall-clock latency.
func (r *RED) Observe(route string, status int, d time.Duration) {
	r.mu.Lock()
	rt := r.route(route)
	rt.requests.Inc(1)
	if status >= 500 {
		rt.errors.Inc(1)
	}
	rt.latency.Observe(sim.Duration(d.Nanoseconds()))
	r.mu.Unlock()
}

// Samples snapshots every registered route's metrics, name-sorted.
func (r *RED) Samples() []obs.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.Samples()
}

// sanitizeRoute coerces a route label into metric-name-safe snake case.
func sanitizeRoute(route string) string {
	if route == "" {
		return "other"
	}
	var b strings.Builder
	for i, r := range route {
		switch {
		case r >= 'a' && r <= 'z' || r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// String summarizes the set for debugging.
func (r *RED) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("telemetry.RED{prefix: %s, routes: %d}", r.prefix, len(r.routes))
}
