package telemetry

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/sim"
)

// fixedClock steps one nanosecond per call from a fixed origin, making
// dumps byte-reproducible.
func fixedClock() func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := int64(0)
	return func() time.Time {
		n++
		return base.Add(time.Duration(n))
	}
}

func TestFlightRingRotation(t *testing.T) {
	f := NewFlight(4)
	f.SetClock(fixedClock())
	for i := 0; i < 10; i++ {
		f.Record(Event{Level: "INFO", Msg: "m", Attrs: map[string]string{"i": string(rune('a' + i))}})
	}
	evs := f.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring should hold 4 events, got %d", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i) // seqs 7..10 survive
		if ev.Seq != want {
			t.Fatalf("event %d: seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFlightDumpByteReproducible(t *testing.T) {
	build := func() *Flight {
		f := NewFlight(4)
		f.SetClock(fixedClock())
		for i := 0; i < 6; i++ {
			f.Record(Event{Level: "INFO", Msg: "step", TraceID: "0123456789abcdef",
				Attrs: map[string]string{"b": "2", "a": "1"}})
		}
		return f
	}
	var one, two bytes.Buffer
	if err := build().WriteJSON(&one, "test"); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&two, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("dumps differ:\n%s\n---\n%s", one.String(), two.String())
	}
	d, err := ValidateDump(one.Bytes())
	if err != nil {
		t.Fatalf("ValidateDump: %v", err)
	}
	if d.Reason != "test" || d.Dropped != 2 || len(d.Events) != 4 {
		t.Fatalf("dump shape: reason=%q dropped=%d events=%d", d.Reason, d.Dropped, len(d.Events))
	}
}

func TestFlightDumpToFile(t *testing.T) {
	dir := t.TempDir()
	f := NewFlight(4)
	f.SetClock(fixedClock())
	f.Record(Event{Level: "ERROR", Msg: "boom"})
	path, err := f.DumpToFile(dir, "quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), "flightrec-") {
		t.Fatalf("unexpected dump path %q", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ValidateDump(raw)
	if err != nil {
		t.Fatalf("dump file invalid: %v", err)
	}
	if d.Reason != "quarantine" || len(d.Events) != 1 || d.Events[0].Msg != "boom" {
		t.Fatalf("dump contents: %+v", d)
	}
	// Second dump gets a distinct file name even under the fixed clock.
	path2, err := f.DumpToFile(dir, "quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if path2 == path {
		t.Fatalf("dump files collide: %q", path2)
	}
}

func TestValidateDumpRejects(t *testing.T) {
	bad := []string{
		`not json`,
		`{"dumped_at_ns":1,"events":[]}`, // no reason
		`{"reason":"r","events":[{"seq":2,"msg":"a"},{"seq":2,"msg":"b"}]}`, // seq not increasing
		`{"reason":"r","events":[{"seq":1,"msg":""}]}`,                      // empty msg
	}
	for _, raw := range bad {
		if _, err := ValidateDump([]byte(raw)); err == nil {
			t.Errorf("ValidateDump(%s) = nil, want error", raw)
		}
	}
}

func TestArmGovern(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlight(8)
	fl.SetClock(fixedClock())
	var buf bytes.Buffer
	lg := New(&buf, Config{Format: "json"})
	disarm := ArmGovern(fl, dir, lg)
	defer disarm()

	// Completed: no event, no dump.
	govern.StatusOf(nil)
	if fl.Len() != 0 {
		t.Fatalf("completed run should not record")
	}

	// Failed: recorded, no dump.
	govern.StatusOf(context.DeadlineExceeded)
	if fl.Len() != 1 {
		t.Fatalf("cancelled run should record one event, ring=%d", fl.Len())
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("cancellation must not dump")
	}

	// Budget overrun: recorded and dumped.
	govern.StatusOf(&sim.StopError{Reason: sim.StopEventBudget})
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("budget overrun should dump exactly once: %v %d", err, len(ents))
	}
	raw, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ValidateDump(raw)
	if err != nil {
		t.Fatalf("overrun dump invalid: %v", err)
	}
	if d.Reason != "budget_overrun" {
		t.Fatalf("reason = %q", d.Reason)
	}
	if !strings.Contains(buf.String(), "flight recorder dumped") {
		t.Fatalf("dump should be logged: %s", buf.String())
	}

	// Disarmed: nothing further reaches the ring.
	disarm()
	govern.StatusOf(context.Canceled)
	if fl.Len() != 2 {
		t.Fatalf("hook fired after disarm: ring=%d", fl.Len())
	}
}
