// Package telemetry is the wall-clock companion to the simulated-clock
// observability layer in internal/obs. Where obs answers "where did the
// simulated nanoseconds go inside one run", telemetry answers "where
// did the wall-clock milliseconds go across the fleet": structured
// JSON/text logging with one shared schema, trace/request IDs that
// propagate from the serve edge through lease grants, worker runs, and
// cache fills, per-endpoint RED metrics, and an always-on flight
// recorder that keeps the last moments of a process for post-mortems.
//
// The schema is four well-known keys every component stamps the same
// way, so one grep (or jq filter) reconstructs a request's full path:
//
//	trace_id    follows one logical request across processes
//	req_id      one HTTP exchange (stable across client retries)
//	component   which process/subsystem emitted the line
//	confighash  the content-address of the simulation cell involved
//
// Loggers are log/slog loggers; the package's handler pulls trace and
// request IDs out of the context automatically, so call sites pass ctx
// and never thread IDs by hand. Every record is also teed into the
// flight recorder (regardless of the emit level), which is what makes
// the recorder "always on": the ring sees debug-level events even when
// the log output is filtered to info.
package telemetry

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Shared schema keys. Every component logs these under exactly these
// names; scripts and the logcheck validator depend on them.
const (
	KeyTraceID    = "trace_id"
	KeyReqID      = "req_id"
	KeyComponent  = "component"
	KeyConfigHash = "confighash"
	// KeyNode names a cache-tier endpoint (its base URL) in routing,
	// failover, and breaker-transition lines.
	KeyNode = "node"
)

// HTTP headers carrying the IDs between processes.
const (
	HeaderTraceID = "X-Trace-ID"
	HeaderReqID   = "X-Request-ID"
)

// WallSuffix marks a metrics-registry histogram as wall-clock latency
// (integer nanoseconds on the host clock). The Prometheus exposition
// renders these as true cumulative histograms (_bucket{le=...}) while
// simulated-clock histograms stay summaries — the two clocks must never
// be confused in one series.
const WallSuffix = "_wall_ns"

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	ctxTraceID ctxKey = iota
	ctxReqID
)

// WithTraceID returns ctx carrying the trace ID. Empty id is a no-op.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxTraceID, id)
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxTraceID).(string)
	return id
}

// WithReqID returns ctx carrying the request ID. Empty id is a no-op.
func WithReqID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxReqID, id)
}

// ReqID returns the request ID carried by ctx, or "".
func ReqID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxReqID).(string)
	return id
}

// Handler is the schema-enforcing slog.Handler: it appends trace_id and
// req_id from the record's context, and tees every record into the
// flight recorder before the level filter — the ring is always on even
// when the emitted log is not.
type Handler struct {
	inner  slog.Handler
	flight *Flight
	// attrs accumulates WithAttrs so flight events carry the same
	// context (component, worker name) the emitted lines do.
	attrs []slog.Attr
}

// NewHandler wraps inner. flight may be nil (no ring).
func NewHandler(inner slog.Handler, flight *Flight) *Handler {
	return &Handler{inner: inner, flight: flight}
}

// Enabled reports whether a record at this level should reach Handle.
// With a flight recorder attached, everything does: the ring captures
// below-threshold records that the inner handler then drops.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	if h.flight != nil {
		return true
	}
	return h.inner.Enabled(ctx, level)
}

// Handle tees the record into the flight ring, then emits it through
// the inner handler when its level passes.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	tid, rid := TraceID(ctx), ReqID(ctx)
	if h.flight != nil {
		ev := Event{Level: r.Level.String(), Msg: r.Message, TraceID: tid, ReqID: rid}
		for _, a := range h.attrs {
			ev.addAttr(a)
		}
		r.Attrs(func(a slog.Attr) bool {
			ev.addAttr(a)
			return true
		})
		h.flight.Record(ev)
	}
	if !h.inner.Enabled(ctx, r.Level) {
		return nil
	}
	if tid != "" {
		r.AddAttrs(slog.String(KeyTraceID, tid))
	}
	if rid != "" {
		r.AddAttrs(slog.String(KeyReqID, rid))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs returns a handler whose records carry attrs.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &Handler{inner: h.inner.WithAttrs(attrs), flight: h.flight, attrs: merged}
}

// WithGroup returns a handler grouping subsequent attrs. Flight events
// flatten groups (the ring is a post-mortem aid, not a parser target).
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name), flight: h.flight, attrs: h.attrs}
}

// Config describes one component's logger.
type Config struct {
	// Format selects the output encoding: "json" or "text" (default).
	// Text keeps historical script greps working; json is the fleet
	// format the jq recipes and the logcheck validator target.
	Format string
	// Level is the minimum emitted level: debug, info (default), warn,
	// error. The flight ring records below the level regardless.
	Level string
	// Component stamps every line (schema key "component").
	Component string
	// Flight, when set, receives every record.
	Flight *Flight
}

// ParseLevel maps a level name to its slog level (default info).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// New builds the component logger writing to w according to cfg.
func New(w io.Writer, cfg Config) *slog.Logger {
	opts := &slog.HandlerOptions{Level: ParseLevel(cfg.Level)}
	var inner slog.Handler
	if strings.EqualFold(cfg.Format, "json") {
		inner = slog.NewJSONHandler(w, opts)
	} else {
		inner = slog.NewTextHandler(w, opts)
	}
	lg := slog.New(NewHandler(inner, cfg.Flight))
	if cfg.Component != "" {
		lg = lg.With(slog.String(KeyComponent, cfg.Component))
	}
	return lg
}
