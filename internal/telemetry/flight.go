package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"uvmsim/internal/atomicio"
)

// The flight recorder is a fixed ring of the most recent telemetry
// events in this process, always on and cheap enough to leave on: one
// mutex, no allocation beyond the event's own attrs. When something
// goes wrong — an invariant panic, a budget overrun, a lease
// quarantine, a 5xx — the ring is dumped atomically to a timestamped
// JSON file, so the post-mortem starts with the last N things the
// process did rather than with an empty log at the default level.
//
// The dump is byte-reproducible given a fixed event sequence and clock:
// events carry monotonically increasing sequence numbers, attrs encode
// in sorted key order (encoding/json sorts map keys), and the only
// nondeterminism — wall timestamps — comes from an injectable clock.

// DefaultFlightEvents is the ring size when none is configured.
const DefaultFlightEvents = 256

// Event is one recorded telemetry event.
type Event struct {
	// Seq is the process-lifetime sequence number (1-based); gaps never
	// occur, so a dump's coverage window is self-describing.
	Seq uint64 `json:"seq"`
	// TimeNs is the wall-clock capture time in Unix nanoseconds.
	TimeNs int64 `json:"time_ns"`
	// Level is the slog level string (DEBUG/INFO/WARN/ERROR).
	Level string `json:"level"`
	Msg   string `json:"msg"`
	// TraceID/ReqID are the schema IDs when the event's context carried
	// them.
	TraceID string `json:"trace_id,omitempty"`
	ReqID   string `json:"req_id,omitempty"`
	// Attrs holds the record's remaining attributes, stringified.
	// encoding/json marshals maps in sorted key order, which keeps
	// dumps deterministic.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// addAttr folds one slog attr into the event, routing schema IDs to
// their typed fields.
func (e *Event) addAttr(a slog.Attr) {
	switch a.Key {
	case KeyTraceID:
		e.TraceID = a.Value.String()
		return
	case KeyReqID:
		e.ReqID = a.Value.String()
		return
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string, 4)
	}
	e.Attrs[a.Key] = a.Value.String()
}

// Dump is the file form of a flight-recorder snapshot.
type Dump struct {
	// Reason names the trigger: "invariant_panic", "budget_overrun",
	// "quarantine", "http_5xx", or a caller-specific tag.
	Reason string `json:"reason"`
	// DumpedAtNs is the wall-clock dump time in Unix nanoseconds.
	DumpedAtNs int64 `json:"dumped_at_ns"`
	// Dropped counts events that rotated out of the ring before this
	// dump (total recorded minus ring size, floored at zero).
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// Flight is the lock-protected ring. The zero value is not usable; use
// NewFlight.
type Flight struct {
	mu    sync.Mutex
	ring  []Event
	seq   uint64 // events ever recorded
	dumps uint64 // dump files written
	now   func() time.Time
}

// NewFlight returns a recorder holding the last size events (size <= 0
// selects DefaultFlightEvents).
func NewFlight(size int) *Flight {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	return &Flight{ring: make([]Event, 0, size), now: time.Now}
}

// SetClock injects the capture clock (tests; nil restores time.Now).
func (f *Flight) SetClock(now func() time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	f.now = now
}

// Record appends one event, stamping its sequence number and time.
func (f *Flight) Record(ev Event) {
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	ev.TimeNs = f.now().UnixNano()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		// Overwrite the oldest slot: the ring is stored in seq order
		// rotated, with the oldest at index seq % cap.
		f.ring[(f.seq-1)%uint64(cap(f.ring))] = ev
	}
	f.mu.Unlock()
}

// Snapshot returns the ring's events in sequence order.
func (f *Flight) Snapshot() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *Flight) snapshotLocked() []Event {
	out := make([]Event, 0, len(f.ring))
	if f.seq <= uint64(cap(f.ring)) {
		out = append(out, f.ring...)
		return out
	}
	start := f.seq % uint64(cap(f.ring))
	out = append(out, f.ring[start:]...)
	out = append(out, f.ring[:start]...)
	return out
}

// Len returns how many events the ring currently holds.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// WriteJSON renders the current snapshot as an indented JSON dump.
func (f *Flight) WriteJSON(w io.Writer, reason string) error {
	f.mu.Lock()
	d := Dump{
		Reason:     reason,
		DumpedAtNs: f.now().UnixNano(),
		Events:     f.snapshotLocked(),
	}
	if n := uint64(len(d.Events)); f.seq > n {
		d.Dropped = f.seq - n
	}
	f.mu.Unlock()
	b, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DumpToFile writes the snapshot atomically (via internal/atomicio)
// into dir as flightrec-<unixnano>-<n>.json and returns the path. A
// crash mid-dump leaves no partial file.
func (f *Flight) DumpToFile(dir, reason string) (string, error) {
	f.mu.Lock()
	f.dumps++
	name := fmt.Sprintf("flightrec-%d-%d.json", f.now().UnixNano(), f.dumps)
	f.mu.Unlock()
	path := filepath.Join(dir, name)
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return f.WriteJSON(w, reason)
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

// HTTPHandler serves the ring read-only as JSON (the /debug/flightrec
// endpoint).
func (f *Flight) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := f.WriteJSON(w, "http_snapshot"); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ValidateDump checks that raw parses as a flight dump with strictly
// increasing sequence numbers — the logcheck gate's definition of "a
// parseable flight-recorder dump".
func ValidateDump(raw []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("flight dump: %w", err)
	}
	if d.Reason == "" {
		return nil, fmt.Errorf("flight dump: empty reason")
	}
	var last uint64
	for i, ev := range d.Events {
		if ev.Seq <= last {
			return nil, fmt.Errorf("flight dump: event %d seq %d not increasing (prev %d)", i, ev.Seq, last)
		}
		if ev.Msg == "" {
			return nil, fmt.Errorf("flight dump: event %d (seq %d) has empty msg", i, ev.Seq)
		}
		last = ev.Seq
	}
	return &d, nil
}
