package telemetry

import (
	"log/slog"
	"net/http"
	"time"
)

// MiddlewareOptions configures the serve-edge telemetry middleware.
// Every field is optional; the zero options still propagate and echo
// IDs (that contract is what lets downstream hops rely on them).
type MiddlewareOptions struct {
	// Logger receives one access line per request.
	Logger *slog.Logger
	// RED receives one observation per request.
	RED *RED
	// Flight receives a dump trigger on 5xx responses when FlightDir is
	// set; the access line itself reaches the ring through Logger.
	Flight    *Flight
	FlightDir string
	// Route maps a request to its stable route label for RED metrics
	// and access lines. Nil uses the URL path verbatim.
	Route func(r *http.Request) string
}

// statusWriter observes the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Middleware wraps h with the telemetry edge: it adopts inbound
// X-Trace-ID/X-Request-ID headers (generating fresh IDs when absent),
// echoes both on the response, stamps them into the request context so
// every handler log line carries them, emits one structured access line
// per request, feeds the per-route RED metrics, and dumps the flight
// ring on 5xx responses.
func Middleware(h http.Handler, opt MiddlewareOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid := r.Header.Get(HeaderTraceID)
		if tid == "" {
			tid = NewID()
		}
		rid := r.Header.Get(HeaderReqID)
		if rid == "" {
			rid = NewID()
		}
		w.Header().Set(HeaderTraceID, tid)
		w.Header().Set(HeaderReqID, rid)

		ctx := WithReqID(WithTraceID(r.Context(), tid), rid)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing
		}
		dur := time.Since(start)

		route := r.URL.Path
		if opt.Route != nil {
			route = opt.Route(r)
		}
		if opt.RED != nil {
			opt.RED.Observe(route, sw.status, dur)
		}
		if opt.Logger != nil {
			opt.Logger.LogAttrs(ctx, slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Int64("dur_ms", dur.Milliseconds()),
			)
		}
		if sw.status >= 500 && opt.Flight != nil && opt.FlightDir != "" {
			if path, err := opt.Flight.DumpToFile(opt.FlightDir, "http_5xx"); err == nil {
				if opt.Logger != nil {
					opt.Logger.LogAttrs(ctx, slog.LevelWarn, "flight recorder dumped",
						slog.String("reason", "http_5xx"), slog.String("path", path))
				}
			} else if opt.Logger != nil {
				opt.Logger.LogAttrs(ctx, slog.LevelError, "flight recorder dump failed",
					slog.String("reason", "http_5xx"), slog.String("err", err.Error()))
			}
		}
	})
}
