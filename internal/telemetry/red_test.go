package telemetry

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uvmsim/internal/obs"
)

func TestREDObserve(t *testing.T) {
	red := NewRED("test_http")
	red.Observe("v1_sim", 200, 5*time.Millisecond)
	red.Observe("v1_sim", 200, 7*time.Millisecond)
	red.Observe("v1_sim", 500, time.Millisecond)
	red.Observe("metrics", 200, time.Microsecond)

	byName := map[string]obs.Sample{}
	for _, s := range red.Samples() {
		byName[s.Name] = s
	}
	if got := byName["test_http_v1_sim_requests_total"].Value; got != 3 {
		t.Fatalf("requests_total = %d", got)
	}
	if got := byName["test_http_v1_sim_errors_total"].Value; got != 1 {
		t.Fatalf("errors_total = %d", got)
	}
	lat, ok := byName["test_http_v1_sim_latency"+WallSuffix]
	if !ok || lat.Hist == nil {
		t.Fatalf("latency histogram missing: %v", byName)
	}
	if lat.Value != 3 {
		t.Fatalf("latency count = %d", lat.Value)
	}
	if got := byName["test_http_metrics_requests_total"].Value; got != 1 {
		t.Fatalf("second route requests_total = %d", got)
	}
	if _, ok := byName["test_http_metrics_errors_total"]; !ok {
		t.Fatalf("errors counter should exist at zero for every route")
	}
}

func TestSanitizeRoute(t *testing.T) {
	cases := map[string]string{
		"v1_sim":       "v1_sim",
		"/v1/jobs":     "_v1_jobs",
		"V1-Sim":       "v1_sim",
		"":             "other",
		"9lives":       "_9lives",
		"jobs.result":  "jobs_result",
		"UPPER_lower1": "upper_lower1",
	}
	for in, want := range cases {
		if got := sanitizeRoute(in); got != want {
			t.Errorf("sanitizeRoute(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMiddleware(t *testing.T) {
	red := NewRED("mw")
	fl := NewFlight(8)
	fl.SetClock(fixedClock())
	dir := t.TempDir()
	var seenTrace, seenReq string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenTrace = TraceID(r.Context())
		seenReq = ReqID(r.Context())
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}), MiddlewareOptions{
		RED: red, Flight: fl, FlightDir: dir,
		Route: func(*http.Request) string { return "root" },
	})

	// No inbound IDs: middleware mints both and echoes them.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if !ValidID(rr.Header().Get(HeaderTraceID)) || !ValidID(rr.Header().Get(HeaderReqID)) {
		t.Fatalf("missing echoed IDs: %v", rr.Header())
	}
	if seenTrace != rr.Header().Get(HeaderTraceID) || seenReq != rr.Header().Get(HeaderReqID) {
		t.Fatalf("handler context IDs differ from echoed headers")
	}

	// Inbound IDs are adopted, not replaced.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(HeaderTraceID, "0123456789abcdef-c002")
	req.Header.Set(HeaderReqID, "fedcba9876543210")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Header().Get(HeaderTraceID) != "0123456789abcdef-c002" || seenTrace != "0123456789abcdef-c002" {
		t.Fatalf("inbound trace not adopted: hdr=%q ctx=%q", rr.Header().Get(HeaderTraceID), seenTrace)
	}
	if rr.Header().Get(HeaderReqID) != "fedcba9876543210" {
		t.Fatalf("inbound req id not adopted")
	}

	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("2xx must not dump the flight ring")
	}

	// A 5xx dumps the ring.
	boom := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}), MiddlewareOptions{RED: red, Flight: fl, FlightDir: dir,
		Route: func(*http.Request) string { return "boom" }})
	fl.Record(Event{Level: "INFO", Msg: "before the crash"})
	rr = httptest.NewRecorder()
	boom.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil))
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("5xx should dump once: %v %d", err, len(ents))
	}
	raw, _ := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	d, err := ValidateDump(raw)
	if err != nil {
		t.Fatalf("5xx dump invalid: %v", err)
	}
	if d.Reason != "http_5xx" {
		t.Fatalf("dump reason = %q", d.Reason)
	}

	byName := map[string]obs.Sample{}
	for _, s := range red.Samples() {
		byName[s.Name] = s
	}
	if byName["mw_root_requests_total"].Value != 2 {
		t.Fatalf("root requests = %d", byName["mw_root_requests_total"].Value)
	}
	if byName["mw_boom_errors_total"].Value != 1 {
		t.Fatalf("boom errors = %d", byName["mw_boom_errors_total"].Value)
	}
}

func TestFlightHTTPHandler(t *testing.T) {
	fl := NewFlight(4)
	fl.SetClock(fixedClock())
	fl.Record(Event{Level: "INFO", Msg: "hello"})
	rr := httptest.NewRecorder()
	fl.HTTPHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	d, err := ValidateDump(rr.Body.Bytes())
	if err != nil {
		t.Fatalf("endpoint body invalid: %v", err)
	}
	if d.Reason != "http_snapshot" || len(d.Events) != 1 {
		t.Fatalf("snapshot shape: %+v", d)
	}
}
