package gpusim

import (
	"fmt"

	"uvmsim/internal/faultbuf"
	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/xfer"
)

// Config describes the simulated GPU.
type Config struct {
	// NumSMs is the number of streaming multiprocessors (Titan V: 80).
	NumSMs int
	// WarpSlotsPerSM bounds concurrently resident warps per SM.
	WarpSlotsPerSM int
	// FaultBufferCap is the hardware fault buffer capacity in entries.
	FaultBufferCap int
	// BlockDispatch is the scheduler cost to place one thread block.
	BlockDispatch sim.Duration
	// WarpStartSpread staggers each warp's first issue uniformly within
	// this window, modeling SM warp-scheduler serialization and µTLB walk
	// queuing. It decorrelates fault arrival order from block order — the
	// paper's "no fixed ordering due to the nondeterminism of the GPU
	// parallelism" (§IV-B).
	WarpStartSpread sim.Duration
	// AccessTime is the cost of one resident page access (issue +
	// pipeline, excluding the kernel's ComputePerAccess).
	AccessTime sim.Duration
	// FaultIssue is the GPU-side cost to record one far-fault.
	FaultIssue sim.Duration
	// FaultReadyDelay is the asynchrony between a fault entering the
	// buffer and its ready flag becoming host-visible (§III-C).
	FaultReadyDelay sim.Duration
	// ReplayWake is the latency from the driver's replay notification to
	// stalled warps retrying their access.
	ReplayWake sim.Duration
	// RemoteAccess is the extra per-access latency for pages in
	// remote-mapped ranges (a host-memory round trip over the
	// interconnect instead of a migration).
	RemoteAccess sim.Duration
	// ChunkAccesses bounds how many consecutive resident accesses one
	// simulation event executes (a pure simulator-performance knob; it
	// trades event count against residency-check granularity).
	ChunkAccesses int
	// SIMTWidth is the number of upcoming accesses that issue together as
	// one warp instruction: when the leading access faults, every
	// non-resident page in the group faults simultaneously. This is what
	// makes "access regular within a warp" produce contiguous fault runs
	// and is the source of parallel fault arrival.
	SIMTWidth int
	// MaxOutstandingPerSM bounds distinct in-flight faulted pages per SM
	// (the µTLB/MSHR limit). It throttles replay-driven fault storms: a
	// warp's leading access always gets an entry first, so stalled warps
	// cannot starve each other's forward progress by re-raising their
	// entire groups.
	MaxOutstandingPerSM int
	// JitterFrac adds seeded nondeterminism to dispatch and access
	// timing, reproducing the paper's "no fixed ordering" observation.
	JitterFrac float64
	// AccessCounters enables Volta-style memory access counters
	// (required by the access-aware eviction extension).
	AccessCounters bool
}

// DefaultConfig returns a scaled-down Titan-V-like GPU (1/10 of the SM
// array) matched to the scaled framebuffers the experiments use: the
// paper's effects require the data footprint to dwarf the in-flight warp
// footprint (NumSMs × WarpSlotsPerSM × SIMTWidth pages), as it does on
// the real machine with multi-GB problems. Use TitanV for the full-scale
// device.
func DefaultConfig() Config {
	cfg := TitanV()
	cfg.NumSMs = 8
	cfg.WarpSlotsPerSM = 8
	// Keep the in-flight-demand to buffer-capacity ratio of the full
	// machine (~40960 potential simultaneous faults vs 4096 entries):
	// overflow-and-retry is what lets density prefetching eliminate
	// faults for first-touch patterns. The capacity must stay above the
	// driver batch size (256) so unfetched entries can persist across
	// replays — the source of the duplicate faults Fig. 5 studies.
	cfg.FaultBufferCap = 768
	return cfg
}

// TitanV returns the full-scale 80-SM device of the paper's testbed.
func TitanV() Config {
	return Config{
		NumSMs:              80,
		WarpSlotsPerSM:      16,
		FaultBufferCap:      4096,
		BlockDispatch:       150 * sim.Nanosecond,
		WarpStartSpread:     25 * sim.Microsecond,
		AccessTime:          40 * sim.Nanosecond,
		FaultIssue:          200 * sim.Nanosecond,
		FaultReadyDelay:     800 * sim.Nanosecond,
		ReplayWake:          3 * sim.Microsecond,
		RemoteAccess:        1500 * sim.Nanosecond,
		ChunkAccesses:       64,
		SIMTWidth:           32,
		MaxOutstandingPerSM: 64,
		JitterFrac:          0.1,
		AccessCounters:      false,
	}
}

// Handler receives the GPU-to-host interrupt when a fault lands in the
// buffer. The UVM driver implements it.
type Handler interface {
	OnFault()
}

type warpRun struct {
	prog  WarpProgram
	pc    int
	sm    int
	block *blockRun
	// stalledAt is the time the warp blocked on a fault; -1 when running.
	stalledAt sim.Time
}

type blockRun struct {
	id        int
	warps     []*warpRun
	remaining int
}

type smState struct {
	freeSlots int
	// outstanding is the µTLB view: pages with an in-flight fault from
	// this SM. Duplicate accesses coalesce onto the existing fault. It is
	// a flat slice scanned linearly: the MSHR budget caps it at
	// MaxOutstandingPerSM (64) entries, where a scan beats map hashing
	// and the storage is reused across the whole run.
	outstanding []mem.PageID
}

// hasOutstanding reports whether page already has an in-flight fault.
func (sm *smState) hasOutstanding(page mem.PageID) bool {
	for _, p := range sm.outstanding {
		if p == page {
			return true
		}
	}
	return false
}

// Stats aggregates GPU-side measurements for one run.
type Stats struct {
	Accesses        uint64       // resident accesses executed
	FaultsRaised    uint64       // fault entries accepted into the buffer
	FaultsCoalesced uint64       // faults absorbed by µTLB coalescing
	FaultsDropped   uint64       // faults rejected by a full buffer
	FaultsThrottled uint64       // group faults deferred by the per-SM MSHR budget
	RemoteAccesses  uint64       // accesses served over the interconnect (remote-mapped ranges)
	Replays         uint64       // replay commands received
	StallTime       sim.Duration // cumulative warp stall time
	MaxStalled      int          // high-water mark of simultaneously stalled warps
}

// GPU is the simulated device.
type GPU struct {
	eng     *sim.Engine
	cfg     Config
	rng     *sim.RNG
	space   *mem.AddressSpace
	buf     *faultbuf.Buffer
	handler Handler

	sms     []*smState
	pending []*blockRun
	blocked []*warpRun

	// Run-state pools: block and warp runs recycled at block drain. A
	// multi-kernel workload (or one with more blocks than SM slots) reuses
	// the same bounded set of runs instead of allocating per launch.
	freeBlocks []*blockRun
	freeWarps  []*warpRun

	// remoteLink, when set, charges remote-mapped accesses for
	// interconnect bandwidth (pipelined, contending with DMA traffic).
	remoteLink *xfer.Link
	// remoteHook, when set, routes remote accesses through the multi-GPU
	// fabric instead of remoteLink: the hook resolves the owning device,
	// charges the peer channel, and feeds access-counter migration. It
	// returns the wait the warp observes beyond the access itself.
	remoteHook func(a Access, b *mem.VABlock) sim.Duration

	kernel      *Kernel
	doneCb      func(sim.Time)
	totalBlocks int
	doneBlocks  int
	running     bool

	stats     Stats
	stallHist stats.Histogram
	tr        *obs.Tracer // optional span tracing; nil when disabled
}

// New builds a GPU over the engine, address space, and RNG.
func New(eng *sim.Engine, cfg Config, space *mem.AddressSpace, rng *sim.RNG) (*GPU, error) {
	if cfg.NumSMs <= 0 || cfg.WarpSlotsPerSM <= 0 {
		return nil, fmt.Errorf("gpusim: NumSMs and WarpSlotsPerSM must be positive")
	}
	if cfg.ChunkAccesses <= 0 {
		return nil, fmt.Errorf("gpusim: ChunkAccesses must be positive")
	}
	if cfg.SIMTWidth <= 0 {
		return nil, fmt.Errorf("gpusim: SIMTWidth must be positive")
	}
	if cfg.MaxOutstandingPerSM <= 0 {
		return nil, fmt.Errorf("gpusim: MaxOutstandingPerSM must be positive")
	}
	buf, err := faultbuf.New(cfg.FaultBufferCap)
	if err != nil {
		return nil, err
	}
	g := &GPU{eng: eng, cfg: cfg, rng: rng, space: space, buf: buf}
	g.sms = make([]*smState, cfg.NumSMs)
	for i := range g.sms {
		g.sms[i] = &smState{
			freeSlots:   cfg.WarpSlotsPerSM,
			outstanding: make([]mem.PageID, 0, cfg.MaxOutstandingPerSM),
		}
	}
	return g, nil
}

// FaultBuffer exposes the hardware fault buffer to the driver.
func (g *GPU) FaultBuffer() *faultbuf.Buffer { return g.buf }

// SetHandler installs the driver's interrupt handler.
func (g *GPU) SetHandler(h Handler) { g.handler = h }

// SetRemoteLink routes remote-mapped access traffic over the given link
// so it contends with migration DMA for bandwidth.
func (g *GPU) SetRemoteLink(l *xfer.Link) { g.remoteLink = l }

// SetRemoteHook installs the multi-GPU remote-access router. When set it
// takes precedence over the remote link; single-GPU systems leave it nil
// and keep the byte-identical legacy path.
func (g *GPU) SetRemoteHook(h func(a Access, b *mem.VABlock) sim.Duration) { g.remoteHook = h }

// SetTracer installs (or, with nil, removes) span tracing of GPU-side
// events: warp stall windows and µTLB coalesce points.
func (g *GPU) SetTracer(t *obs.Tracer) { g.tr = t }

// Stats returns the accumulated GPU statistics.
func (g *GPU) Stats() Stats { return g.stats }

// StallHistogram returns the distribution of individual warp stall
// times (fault raise to replay wake), cumulative across runs.
func (g *GPU) StallHistogram() *stats.Histogram { return &g.stallHist }

// Running reports whether a kernel is in flight.
func (g *GPU) Running() bool { return g.running }

// BlockedWarps returns the number of currently stalled warps.
func (g *GPU) BlockedWarps() int { return len(g.blocked) }

func (g *GPU) jitter(d sim.Duration) sim.Duration {
	if g.cfg.JitterFrac <= 0 {
		return d
	}
	return g.rng.Jitter(d, g.cfg.JitterFrac)
}

// Launch starts executing k; done fires when every block retires. Only
// one kernel may run at a time.
func (g *GPU) Launch(k *Kernel, done func(at sim.Time)) error {
	if g.running {
		return fmt.Errorf("gpusim: kernel %q launched while %q is running", k.Name, g.kernel.Name)
	}
	if err := k.Validate(); err != nil {
		return err
	}
	g.kernel = k
	g.doneCb = done
	g.totalBlocks = len(k.Blocks)
	g.doneBlocks = 0
	g.running = true
	g.pending = g.pending[:0]
	for i := range k.Blocks {
		br := g.getBlockRun(i, len(k.Blocks[i].Warps))
		for _, wp := range k.Blocks[i].Warps {
			br.warps = append(br.warps, g.getWarpRun(wp, br))
		}
		g.pending = append(g.pending, br)
	}
	g.dispatch()
	return nil
}

// getBlockRun returns a reset block run, reusing a pooled one when
// available.
func (g *GPU) getBlockRun(id, warps int) *blockRun {
	var br *blockRun
	if n := len(g.freeBlocks); n > 0 {
		br = g.freeBlocks[n-1]
		g.freeBlocks = g.freeBlocks[:n-1]
		br.warps = br.warps[:0]
	} else {
		br = &blockRun{}
	}
	br.id = id
	br.remaining = warps
	return br
}

// getWarpRun returns a reset warp run for br, reusing a pooled one when
// available.
func (g *GPU) getWarpRun(prog WarpProgram, br *blockRun) *warpRun {
	var w *warpRun
	if n := len(g.freeWarps); n > 0 {
		w = g.freeWarps[n-1]
		g.freeWarps = g.freeWarps[:n-1]
	} else {
		w = &warpRun{}
	}
	*w = warpRun{prog: prog, block: br, stalledAt: -1}
	return w
}

// dispatch fills free SM slots with pending blocks in ascending block-id
// order ("the GPU scheduler will prefer lower-numbered blocks"), with
// jittered start times providing the nondeterministic interleaving.
func (g *GPU) dispatch() {
	delay := sim.Duration(0)
	for len(g.pending) > 0 {
		br := g.pending[0]
		smIdx := g.pickSM(len(br.warps))
		if smIdx < 0 {
			return // no SM can host this block now
		}
		g.pending = g.pending[1:]
		g.sms[smIdx].freeSlots -= len(br.warps)
		delay += g.jitter(g.cfg.BlockDispatch)
		for _, w := range br.warps {
			w.sm = smIdx
			w := w
			start := delay
			if g.cfg.WarpStartSpread > 0 {
				start += sim.Duration(g.rng.Uint64n(uint64(g.cfg.WarpStartSpread)))
			}
			g.eng.After(start, func() { g.step(w) })
		}
	}
}

// pickSM returns the SM with the most free slots that fits warps, or -1.
func (g *GPU) pickSM(warps int) int {
	best, bestFree := -1, 0
	for i, sm := range g.sms {
		if sm.freeSlots >= warps && sm.freeSlots > bestFree {
			best, bestFree = i, sm.freeSlots
		}
	}
	return best
}

// step runs a warp until it faults, finishes, or exhausts its event
// budget of consecutive resident accesses.
func (g *GPU) step(w *warpRun) {
	var elapsed sim.Duration
	perAccess := g.cfg.AccessTime + g.kernel.ComputePerAccess
	for budget := g.cfg.ChunkAccesses; budget > 0; budget-- {
		if w.pc >= w.prog.Len() {
			g.eng.After(elapsed, func() { g.retire(w) })
			return
		}
		a := w.prog.At(w.pc)
		if !g.space.IsResident(a.Page) {
			if elapsed > 0 {
				// Charge the time already executed, then re-examine the
				// same access (it will fault, or proceed if a concurrent
				// migration landed it).
				g.eng.After(elapsed, func() { g.step(w) })
				return
			}
			g.faultGroup(w)
			return
		}
		if debugLog != nil {
			debugLog("t=%v warp sm=%d pc=%d HIT page=%d", g.eng.Now(), w.sm, w.pc, a.Page)
		}
		elapsed += g.noteAccess(a)
		w.pc++
		elapsed += g.jitter(perAccess)
	}
	g.eng.After(elapsed, func() { g.step(w) })
}

// noteAccess records a resident access — dirty tracking for writes,
// optional access counters, remote-mapping surcharge — and returns any
// extra latency the access incurs.
func (g *GPU) noteAccess(a Access) sim.Duration {
	g.stats.Accesses++
	geom := g.space.Geometry()
	if !a.Write && !g.cfg.AccessCounters && !g.space.Special() {
		return 0 // fast path: nothing consults the block
	}
	b := g.space.Block(geom.BlockOf(a.Page))
	var extra sim.Duration
	if b.Remote {
		// The access is a host-memory round trip; no migration, no dirty
		// tracking on the GPU side (writes land in host memory).
		g.stats.RemoteAccesses++
		extra = g.jitter(g.cfg.RemoteAccess)
		if g.remoteHook != nil {
			if wait := g.remoteHook(a, b); wait > extra {
				extra = wait
			}
		} else if g.remoteLink != nil {
			dir := xfer.HostToDevice
			if a.Write {
				dir = xfer.DeviceToHost
			}
			end := g.remoteLink.EnqueueStream(dir, mem.PageSize)
			if wait := end.Sub(g.eng.Now()); wait > extra {
				extra = wait
			}
		}
	} else if a.Write {
		b.Dirty.Set(geom.PageIndex(a.Page))
	}
	if g.cfg.AccessCounters {
		b.GPUAccesses++
	}
	return extra
}

// faultGroup stalls w on its current SIMT instruction: every non-resident
// page among the next SIMTWidth accesses faults simultaneously (the 32
// threads of a warp issue together). µTLB coalescing absorbs pages this
// SM already has in flight; a full buffer drops entries (the warp still
// wakes on the next replay and re-faults).
func (g *GPU) faultGroup(w *warpRun) {
	sm := g.sms[w.sm]
	now := g.eng.Now()
	w.stalledAt = now
	g.blocked = append(g.blocked, w)
	if len(g.blocked) > g.stats.MaxStalled {
		g.stats.MaxStalled = len(g.blocked)
	}
	end := w.pc + g.cfg.SIMTWidth
	if n := w.prog.Len(); end > n {
		end = n
	}
	anyRaised := false
	anyDropped := false
	if debugLog != nil {
		a := w.prog.At(w.pc)
		debugLog("t=%v warp sm=%d pc=%d FAULT page=%d outstanding=%d", g.eng.Now(), w.sm, w.pc, a.Page, len(sm.outstanding))
	}
	for i := w.pc; i < end; i++ {
		a := w.prog.At(i)
		if g.space.IsResident(a.Page) {
			continue
		}
		if sm.hasOutstanding(a.Page) {
			// µTLB coalescing: an identical fault from this SM is in flight.
			g.stats.FaultsCoalesced++
			g.tr.Emit(obs.SpanCoalesce, now, now, 0, int64(a.Page))
			continue
		}
		if len(sm.outstanding) >= g.cfg.MaxOutstandingPerSM {
			// MSHR budget exhausted: the trailing lanes' faults are
			// deferred to a later retry of the instruction.
			g.stats.FaultsThrottled++
			break
		}
		sm.outstanding = append(sm.outstanding, a.Page)
		ready := now.Add(g.cfg.FaultIssue + g.jitter(g.cfg.FaultReadyDelay))
		if _, ok := g.buf.Put(a.Page, a.Write, w.sm, now, ready); !ok {
			g.stats.FaultsDropped++
			anyDropped = true
			// The fault left no buffer entry; clear the µTLB slot (the
			// page was just appended, so it is the last element) so the
			// retry after the recovery replay re-raises it instead of
			// coalescing onto a fault that does not exist.
			sm.outstanding = sm.outstanding[:len(sm.outstanding)-1]
			continue
		}
		g.stats.FaultsRaised++
		anyRaised = true
	}
	// Dropped faults raise the interrupt too: the driver must observe the
	// overflow so it can issue the forced replay that un-wedges the
	// stalled warp (nothing else would, if the buffer is otherwise idle).
	if (anyRaised || anyDropped) && g.handler != nil {
		g.handler.OnFault()
	}
}

// Replay is the driver's replay notification: after the wake latency all
// stalled warps retry their faulting access, and µTLB state clears so
// unsatisfied accesses generate fresh (duplicate) fault entries.
func (g *GPU) Replay() {
	g.stats.Replays++
	g.eng.After(g.cfg.ReplayWake, g.wake)
}

func (g *GPU) wake() {
	if len(g.blocked) == 0 {
		return
	}
	now := g.eng.Now()
	// The woken view aliases g.blocked's storage; that is safe because the
	// loop below only schedules events (no warp steps synchronously), so
	// nothing appends to g.blocked until wake returns.
	woken := g.blocked
	g.blocked = g.blocked[:0]
	for _, sm := range g.sms {
		sm.outstanding = sm.outstanding[:0]
	}
	if debugLog != nil {
		debugLog("t=%v WAKE %d warps", now, len(woken))
	}
	for _, w := range woken {
		if w.stalledAt >= 0 {
			stall := now.Sub(w.stalledAt)
			g.stats.StallTime += stall
			g.stallHist.Observe(stall)
			g.tr.Emit(obs.SpanStall, w.stalledAt, now, 0, int64(w.sm))
			w.stalledAt = -1
		}
		w := w
		g.eng.After(0, func() { g.step(w) })
	}
}

// retire finishes one warp; when its block drains, the SM slots free and
// more blocks dispatch.
func (g *GPU) retire(w *warpRun) {
	br := w.block
	br.remaining--
	if br.remaining > 0 {
		return
	}
	g.sms[w.sm].freeSlots += len(br.warps)
	// The block has fully drained: every warp (including w) has retired
	// and holds no pending events, so its runs recycle into the pools.
	g.freeWarps = append(g.freeWarps, br.warps...)
	g.freeBlocks = append(g.freeBlocks, br)
	g.doneBlocks++
	if g.doneBlocks == g.totalBlocks {
		g.running = false
		if g.doneCb != nil {
			g.doneCb(g.eng.Now())
		}
		return
	}
	g.dispatch()
}

// debugLog, when non-nil, receives warp-level execution events. It is a
// development hook set by tests/tools; production paths leave it nil.
var debugLog func(format string, args ...interface{})

// SetDebugLog installs (or clears) the warp-event debug hook.
func SetDebugLog(fn func(format string, args ...interface{})) { debugLog = fn }
