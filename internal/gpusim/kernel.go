// Package gpusim models the GPU side of the UVM system: streaming
// multiprocessors executing warps, a thread-block scheduler that prefers
// low-numbered blocks (paper §IV-B) with nondeterministic jitter, µTLB
// fault coalescing per SM, the replayable-fault stall/wake cycle, and
// Volta-style access counters for the §VI-B eviction extension.
//
// The model is page-granular: a warp's program is a sequence of page
// accesses, which is exactly the granularity the UVM driver observes.
package gpusim

import (
	"fmt"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// Access is a single page-granularity memory access by a warp.
type Access struct {
	Page  mem.PageID
	Write bool
}

// WarpProgram is the access sequence one warp executes. Implementations
// are typically compact generators (internal/workloads) rather than
// materialized slices, so multi-gigabyte traces stay cheap.
type WarpProgram interface {
	Len() int
	At(i int) Access
}

// SliceProgram is a WarpProgram backed by an explicit access slice.
type SliceProgram []Access

// Len implements WarpProgram.
func (p SliceProgram) Len() int { return len(p) }

// At implements WarpProgram.
func (p SliceProgram) At(i int) Access { return p[i] }

// StridedProgram is a compact WarpProgram touching Count pages starting
// at Start with the given Stride (in pages), Repeat times over.
type StridedProgram struct {
	Start  mem.PageID
	Stride int64
	Count  int
	Repeat int // >= 1
	Write  bool
}

// Len implements WarpProgram.
func (p StridedProgram) Len() int {
	r := p.Repeat
	if r < 1 {
		r = 1
	}
	return p.Count * r
}

// At implements WarpProgram.
func (p StridedProgram) At(i int) Access {
	idx := i % p.Count
	return Access{
		Page:  mem.PageID(int64(p.Start) + int64(idx)*p.Stride),
		Write: p.Write,
	}
}

// ThreadBlock groups the warps that are scheduled onto one SM together.
type ThreadBlock struct {
	Warps []WarpProgram
}

// Kernel is a grid of thread blocks plus the per-access compute cost that
// separates memory operations (the "compute gap").
type Kernel struct {
	Name             string
	Blocks           []ThreadBlock
	ComputePerAccess sim.Duration
}

// TotalAccesses returns the number of accesses across all warps.
func (k *Kernel) TotalAccesses() int64 {
	var n int64
	for _, b := range k.Blocks {
		for _, w := range b.Warps {
			n += int64(w.Len())
		}
	}
	return n
}

// Validate checks structural sanity.
func (k *Kernel) Validate() error {
	if len(k.Blocks) == 0 {
		return fmt.Errorf("gpusim: kernel %q has no blocks", k.Name)
	}
	for i, b := range k.Blocks {
		if len(b.Warps) == 0 {
			return fmt.Errorf("gpusim: kernel %q block %d has no warps", k.Name, i)
		}
	}
	return nil
}
