package gpusim

import (
	"testing"

	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// testRig wires a GPU to a trivial in-test "driver" that services every
// buffered fault after a fixed delay and replays.
type testRig struct {
	eng   *sim.Engine
	space *mem.AddressSpace
	gpu   *GPU

	serviceDelay sim.Duration
	busy         bool
	serviced     int
}

func newRig(t *testing.T, cfg Config, allocPages int) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	space := mem.NewAddressSpace(mem.DefaultGeometry())
	if _, err := space.Alloc(mem.Bytes(allocPages), "data"); err != nil {
		t.Fatal(err)
	}
	gpu, err := New(eng, cfg, space, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	r := &testRig{eng: eng, space: space, gpu: gpu, serviceDelay: 5 * sim.Microsecond}
	gpu.SetHandler(r)
	return r
}

// OnFault implements Handler: drain the buffer, make pages resident,
// replay.
func (r *testRig) OnFault() {
	if r.busy {
		return
	}
	r.busy = true
	r.eng.After(r.serviceDelay, r.pass)
}

func (r *testRig) pass() {
	geom := r.space.Geometry()
	entries := r.gpu.FaultBuffer().FetchReady(1024, r.eng.Now())
	for _, e := range entries {
		b := r.space.Block(geom.BlockOf(e.Page))
		b.Resident.Set(geom.PageIndex(e.Page))
		r.serviced++
	}
	if len(entries) > 0 {
		r.gpu.Replay()
	}
	if r.gpu.FaultBuffer().Len() > 0 {
		r.eng.After(r.serviceDelay, r.pass)
		return
	}
	r.busy = false
}

func touchKernel(pages, warpSize, warpsPerBlock int) *Kernel {
	k := &Kernel{Name: "touch", ComputePerAccess: 10}
	perBlock := warpSize * warpsPerBlock
	for base := 0; base < pages; base += perBlock {
		var tb ThreadBlock
		for w := 0; w < warpsPerBlock; w++ {
			start := base + w*warpSize
			if start >= pages {
				break
			}
			n := warpSize
			if start+n > pages {
				n = pages - start
			}
			tb.Warps = append(tb.Warps, StridedProgram{
				Start: mem.PageID(start), Stride: 1, Count: n, Repeat: 1,
			})
		}
		if len(tb.Warps) > 0 {
			k.Blocks = append(k.Blocks, tb)
		}
	}
	return k
}

func TestKernelCompletesWithAllPagesResident(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1024)
	var doneAt sim.Time = -1
	if err := r.gpu.Launch(touchKernel(1024, 32, 4), func(at sim.Time) { doneAt = at }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if doneAt < 0 {
		t.Fatalf("kernel did not complete; blocked=%d bufLen=%d", r.gpu.BlockedWarps(), r.gpu.FaultBuffer().Len())
	}
	if got := r.space.ResidentPages(); got != 1024 {
		t.Errorf("resident pages = %d, want 1024", got)
	}
	st := r.gpu.Stats()
	if st.FaultsRaised == 0 || st.Replays == 0 {
		t.Errorf("stats = %+v, want faults and replays", st)
	}
	if st.StallTime <= 0 {
		t.Error("no stall time recorded")
	}
}

func TestNoFaultsWhenAllResident(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	geom := r.space.Geometry()
	b := r.space.Block(0)
	for i := 0; i < geom.PagesPerVABlock; i++ {
		b.Resident.Set(i)
	}
	var done bool
	if err := r.gpu.Launch(touchKernel(512, 32, 4), func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	st := r.gpu.Stats()
	if st.FaultsRaised != 0 || st.Replays != 0 {
		t.Errorf("unexpected faults: %+v", st)
	}
	if st.Accesses != 512 {
		t.Errorf("accesses = %d, want 512", st.Accesses)
	}
}

func TestMicroTLBCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpSlotsPerSM = 8
	r := newRig(t, cfg, 64)
	// Two warps in the same block (same SM) touch the same page.
	k := &Kernel{Name: "dup", Blocks: []ThreadBlock{{
		Warps: []WarpProgram{
			SliceProgram{{Page: 7}},
			SliceProgram{{Page: 7}},
		},
	}}}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	st := r.gpu.Stats()
	if st.FaultsRaised != 1 || st.FaultsCoalesced != 1 {
		t.Errorf("raised=%d coalesced=%d, want 1,1", st.FaultsRaised, st.FaultsCoalesced)
	}
}

func TestCrossSMDuplicatesAreNotCoalesced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.WarpSlotsPerSM = 1
	cfg.WarpStartSpread = 0 // both warps must fault before service lands
	r := newRig(t, cfg, 64)
	// Two single-warp blocks land on different SMs and fault on the same
	// page: fault source erasure means the driver sees two entries.
	k := &Kernel{Name: "dup2", Blocks: []ThreadBlock{
		{Warps: []WarpProgram{SliceProgram{{Page: 7}}}},
		{Warps: []WarpProgram{SliceProgram{{Page: 7}}}},
	}}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	if st := r.gpu.Stats(); st.FaultsRaised != 2 {
		t.Errorf("raised = %d, want 2 (no cross-SM coalescing)", st.FaultsRaised)
	}
}

func TestWriteAccessSetsDirty(t *testing.T) {
	r := newRig(t, DefaultConfig(), 64)
	k := &Kernel{Name: "w", Blocks: []ThreadBlock{{
		Warps: []WarpProgram{SliceProgram{{Page: 3, Write: true}, {Page: 4, Write: false}}},
	}}}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	b := r.space.Block(0)
	if !b.Dirty.Get(3) {
		t.Error("write access did not set dirty bit")
	}
	if b.Dirty.Get(4) {
		t.Error("read access set dirty bit")
	}
}

func TestAccessCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AccessCounters = true
	r := newRig(t, cfg, 64)
	k := &Kernel{Name: "ac", Blocks: []ThreadBlock{{
		Warps: []WarpProgram{StridedProgram{Start: 0, Stride: 1, Count: 8, Repeat: 3}},
	}}}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	b := r.space.Block(0)
	if b.GPUAccesses != 24 {
		t.Errorf("GPUAccesses = %d, want 24", b.GPUAccesses)
	}
}

func TestSchedulerPrefersLowBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpSlotsPerSM = 1
	cfg.JitterFrac = 0
	r := newRig(t, cfg, 1024)
	// Pre-resident everything so execution order is purely scheduling.
	for blk := 0; blk < 2; blk++ {
		b := r.space.Block(mem.VABlockID(blk))
		for i := 0; i < 512; i++ {
			b.Resident.Set(i)
		}
	}
	var order []int
	k := &Kernel{Name: "order"}
	for i := 0; i < 5; i++ {
		i := i
		k.Blocks = append(k.Blocks, ThreadBlock{Warps: []WarpProgram{
			recordingProgram{pages: []mem.PageID{mem.PageID(i)}, onFirst: func() { order = append(order, i) }},
		}})
	}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("dispatch order = %v, want ascending", order)
		}
	}
}

type recordingProgram struct {
	pages   []mem.PageID
	onFirst func()
	fired   *bool
}

func (p recordingProgram) Len() int { return len(p.pages) }
func (p recordingProgram) At(i int) Access {
	if i == 0 && p.onFirst != nil {
		p.onFirst()
	}
	return Access{Page: p.pages[i]}
}

func TestLaunchWhileRunningFails(t *testing.T) {
	r := newRig(t, DefaultConfig(), 64)
	k := touchKernel(32, 32, 1)
	if err := r.gpu.Launch(k, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.gpu.Launch(k, nil); err == nil {
		t.Error("concurrent launch accepted")
	}
	r.eng.Run()
}

func TestLaunchValidation(t *testing.T) {
	r := newRig(t, DefaultConfig(), 64)
	if err := r.gpu.Launch(&Kernel{Name: "empty"}, nil); err == nil {
		t.Error("empty kernel accepted")
	}
	if err := r.gpu.Launch(&Kernel{Name: "noblock", Blocks: []ThreadBlock{{}}}, nil); err == nil {
		t.Error("block without warps accepted")
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	space := mem.NewAddressSpace(mem.DefaultGeometry())
	bad := DefaultConfig()
	bad.NumSMs = 0
	if _, err := New(eng, bad, space, sim.NewRNG(1)); err == nil {
		t.Error("zero SMs accepted")
	}
	bad = DefaultConfig()
	bad.ChunkAccesses = 0
	if _, err := New(eng, bad, space, sim.NewRNG(1)); err == nil {
		t.Error("zero chunk accepted")
	}
	bad = DefaultConfig()
	bad.FaultBufferCap = 0
	if _, err := New(eng, bad, space, sim.NewRNG(1)); err == nil {
		t.Error("zero fault buffer accepted")
	}
}

func TestStridedProgram(t *testing.T) {
	p := StridedProgram{Start: 10, Stride: 2, Count: 3, Repeat: 2, Write: true}
	if p.Len() != 6 {
		t.Fatalf("Len = %d", p.Len())
	}
	want := []mem.PageID{10, 12, 14, 10, 12, 14}
	for i, wp := range want {
		a := p.At(i)
		if a.Page != wp || !a.Write {
			t.Fatalf("At(%d) = %+v", i, a)
		}
	}
	zero := StridedProgram{Start: 0, Stride: 1, Count: 4}
	if zero.Len() != 4 {
		t.Errorf("Repeat=0 Len = %d, want 4", zero.Len())
	}
}

func TestKernelTotalAccesses(t *testing.T) {
	k := touchKernel(100, 32, 2)
	if k.TotalAccesses() != 100 {
		t.Errorf("TotalAccesses = %d, want 100", k.TotalAccesses())
	}
}

func TestFaultBufferOverflowStillCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultBufferCap = 8 // tiny buffer forces drops
	r := newRig(t, cfg, 2048)
	var done bool
	if err := r.gpu.Launch(touchKernel(2048, 32, 4), func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete despite drops")
	}
	if r.gpu.Stats().FaultsDropped == 0 {
		t.Error("expected dropped faults with a tiny buffer")
	}
	if r.space.ResidentPages() != 2048 {
		t.Errorf("resident = %d, want 2048", r.space.ResidentPages())
	}
}

func TestMSHRThrottleBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpSlotsPerSM = 4
	cfg.MaxOutstandingPerSM = 8
	cfg.WarpStartSpread = 0
	r := newRig(t, cfg, 2048)
	// Delay the test driver so the initial fault wave is observable.
	r.serviceDelay = sim.Second
	// Four warps × 32-page groups = 128 potential simultaneous faults,
	// but the SM may only keep 8 outstanding.
	var done bool
	if err := r.gpu.Launch(touchKernel(128, 32, 4), func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(sim.Time(100 * sim.Microsecond))
	if got := r.gpu.FaultBuffer().Len(); got > 8 {
		t.Errorf("outstanding faults %d exceed MSHR budget 8", got)
	}
	if r.gpu.Stats().FaultsThrottled == 0 {
		t.Error("no throttling recorded")
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete under throttling")
	}
}

func TestStallHistogramPopulated(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1024)
	var done bool
	if err := r.gpu.Launch(touchKernel(1024, 32, 4), func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
	h := r.gpu.StallHistogram()
	if h.Count() == 0 {
		t.Fatal("stall histogram empty")
	}
	if h.Quantile(0.5) <= 0 || h.Quantile(0.99) < h.Quantile(0.5) {
		t.Errorf("quantiles wrong: p50=%v p99=%v", h.Quantile(0.5), h.Quantile(0.99))
	}
}

func TestSIMTGroupRaisesAllLanes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.WarpSlotsPerSM = 1
	cfg.WarpStartSpread = 0
	r := newRig(t, cfg, 64)
	// One warp touching 8 scattered pages: all 8 fault as one group.
	pages := []mem.PageID{3, 9, 17, 21, 33, 41, 50, 63}
	prog := make(SliceProgram, len(pages))
	for i, p := range pages {
		prog[i] = Access{Page: p}
	}
	k := &Kernel{Name: "group", Blocks: []ThreadBlock{{Warps: []WarpProgram{prog}}}}
	var done bool
	if err := r.gpu.Launch(k, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.RunLimit(5)
	if got := r.gpu.Stats().FaultsRaised; got != uint64(len(pages)) {
		t.Errorf("group raised %d faults, want %d", got, len(pages))
	}
	r.eng.Run()
	if !done {
		t.Fatal("kernel did not complete")
	}
}

func TestDeterministicExecutionPerSeed(t *testing.T) {
	run := func(seed uint64) (sim.Time, uint64) {
		eng := sim.NewEngine()
		space := mem.NewAddressSpace(mem.DefaultGeometry())
		if _, err := space.Alloc(mem.Bytes(2048), "d"); err != nil {
			t.Fatal(err)
		}
		gpu, err := New(eng, DefaultConfig(), space, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		rig := &testRig{eng: eng, space: space, gpu: gpu, serviceDelay: 5 * sim.Microsecond}
		gpu.SetHandler(rig)
		var at sim.Time
		if err := gpu.Launch(touchKernel(2048, 32, 4), func(t sim.Time) { at = t }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return at, gpu.Stats().FaultsRaised
	}
	t1, f1 := run(7)
	t2, f2 := run(7)
	if t1 != t2 || f1 != f2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestTitanVFullScaleSmoke(t *testing.T) {
	cfg := TitanV()
	r := newRig(t, cfg, 8192)
	var done bool
	if err := r.gpu.Launch(touchKernel(8192, 32, 4), func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !done {
		t.Fatal("full-scale kernel did not complete")
	}
	if r.space.ResidentPages() != 8192 {
		t.Errorf("resident = %d", r.space.ResidentPages())
	}
}
