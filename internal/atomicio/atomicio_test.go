package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", info.Mode().Perm())
	}
}

// A failing writer must leave the previous file intact and no temp
// droppings behind.
func TestWriteFilePreservesOldContentOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage that must never be visible")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("previous content clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("first version, longer")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("content = %q", got)
	}
}
