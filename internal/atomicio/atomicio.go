// Package atomicio writes files so that a crash, SIGKILL, or full disk
// can never leave a truncated or half-written artifact at the target
// path: content goes to a temporary file in the same directory, is
// synced to stable storage, and is renamed over the destination only
// once it is complete. Readers therefore see either the previous file
// or the whole new one, never a prefix.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams write into path atomically. On any error the
// temporary file is removed and the previous content of path (if any)
// is left untouched. Close and Sync errors are propagated so a full
// disk is reported rather than silently truncating.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	// CreateTemp creates 0600; published artifacts get the conventional
	// umask-independent file mode.
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteFileBytes is WriteFile for in-memory content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
