// Package netchaos is a deterministic fault-injecting HTTP reverse
// proxy for exercising the fleet's failure handling: it sits between a
// client and one upstream and injects added latency, blackholes
// (partition), TCP connection resets, synthesized 5xx responses, and
// truncated bodies, each under an independent probability drawn from a
// seeded PRNG — the same seed replays the same fault schedule, which is
// what lets a chaos gate assert exact outcomes instead of flaky ones.
//
// Faults are configured as a rule string, comma-separated:
//
//	kind[:prob][=value]
//
// where kind is one of latency, blackhole, reset, error500, truncate;
// prob defaults to 1.0; and value is a duration (latency only). For
// example "latency:0.5=100ms,error500:0.1" delays half of all requests
// by 100ms and answers a synthetic 500 for one in ten. Latency rules
// compose with whatever else fires; of the terminal kinds, the first
// matching rule in written order decides the request's fate.
//
// The proxy is live-reconfigurable through an admin endpoint exempt
// from fault injection: GET /__netchaos/rules reports the active rules
// and per-kind applied counts, POST /__netchaos/rules with a rule
// string (or "none") replaces them — how a drill partitions a node
// mid-sweep without restarting anything.
package netchaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault kinds.
const (
	KindLatency   = "latency"   // sleep value before proceeding
	KindBlackhole = "blackhole" // never answer (partition); hold until the client gives up
	KindReset     = "reset"     // abort the TCP connection (RST, not FIN)
	KindError500  = "error500"  // synthesize a 500 without touching the upstream
	KindTruncate  = "truncate"  // forward, then cut the body short mid-stream
)

// Rule is one parsed fault clause.
type Rule struct {
	Kind  string        `json:"kind"`
	Prob  float64       `json:"prob"`
	Value time.Duration `json:"value,omitempty"` // latency only
}

// String renders the rule back into the grammar.
func (r Rule) String() string {
	s := r.Kind
	if r.Prob != 1 {
		s += ":" + strconv.FormatFloat(r.Prob, 'g', -1, 64)
	}
	if r.Value != 0 {
		s += "=" + r.Value.String()
	}
	return s
}

// ParseRules parses a comma-separated rule string. Empty and "none"
// parse to no rules (a clean passthrough proxy).
func ParseRules(s string) ([]Rule, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var out []Rule
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r := Rule{Prob: 1}
		head := clause
		if i := strings.IndexByte(clause, '='); i >= 0 {
			head = clause[:i]
			v, err := time.ParseDuration(clause[i+1:])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("netchaos: bad value in %q", clause)
			}
			r.Value = v
		}
		if i := strings.IndexByte(head, ':'); i >= 0 {
			p, err := strconv.ParseFloat(head[i+1:], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("netchaos: bad probability in %q", clause)
			}
			r.Prob = p
			head = head[:i]
		}
		r.Kind = head
		switch r.Kind {
		case KindLatency:
			if r.Value <= 0 {
				return nil, fmt.Errorf("netchaos: latency rule %q needs =duration", clause)
			}
		case KindBlackhole, KindReset, KindError500, KindTruncate:
			if r.Value != 0 {
				return nil, fmt.Errorf("netchaos: rule %q takes no value", clause)
			}
		default:
			return nil, fmt.Errorf("netchaos: unknown fault kind %q", r.Kind)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatRules renders rules back into the grammar ("none" when empty).
func FormatRules(rules []Rule) string {
	if len(rules) == 0 {
		return "none"
	}
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Proxy is one fault-injecting reverse proxy in front of one upstream.
// It is an http.Handler; all methods are goroutine-safe.
type Proxy struct {
	target *url.URL
	rt     http.RoundTripper

	// done releases blackholed handlers on Close. A client that gave up
	// on a request with an unread body is invisible to the server (it
	// cannot background-read the connection), so without this the
	// handlers — and any test server waiting on them — would hang
	// forever.
	done      chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	counts map[string]uint64
}

// New returns a proxy forwarding to target, drawing fault decisions
// from a PRNG seeded with seed.
func New(target string, seed int64) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("netchaos: bad target: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("netchaos: target %q needs scheme and host", target)
	}
	return &Proxy{
		target: u,
		// A private transport: the shared default would pool connections
		// across proxies and leak them past resets.
		rt:     &http.Transport{MaxIdleConnsPerHost: 4, IdleConnTimeout: 10 * time.Second},
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]uint64),
	}, nil
}

// Close releases any handlers parked in a blackhole. The proxy must not
// serve new requests afterwards.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() { close(p.done) })
}

// SetRules replaces the active rule set.
func (p *Proxy) SetRules(rules []Rule) {
	p.mu.Lock()
	p.rules = append([]Rule(nil), rules...)
	p.mu.Unlock()
}

// Rules snapshots the active rule set.
func (p *Proxy) Rules() []Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Rule(nil), p.rules...)
}

// Counts snapshots how many times each fault kind has been applied.
func (p *Proxy) Counts() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// decide rolls the dice for one request: the total injected delay plus
// the terminal fate ("" = forward cleanly). One lock hold keeps the
// PRNG sequence deterministic even under concurrent requests — the
// schedule depends on arrival order only, never on interleaving.
func (p *Proxy) decide() (delay time.Duration, fate string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if p.rng.Float64() >= r.Prob {
			continue
		}
		if r.Kind == KindLatency {
			delay += r.Value
			p.counts[KindLatency]++
			continue
		}
		if fate == "" {
			fate = r.Kind
			p.counts[r.Kind]++
		}
	}
	return delay, fate
}

// ServeHTTP applies the fault schedule to one request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/__netchaos/") {
		p.admin(w, r) // the control plane is never fault-injected
		return
	}
	delay, fate := p.decide()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-r.Context().Done():
			t.Stop()
			panic(http.ErrAbortHandler)
		case <-p.done:
			t.Stop()
			panic(http.ErrAbortHandler)
		case <-t.C:
		}
	}
	switch fate {
	case KindBlackhole:
		// A partition answers nothing, ever: hold until the client stops
		// waiting (or the proxy shuts down), then drop the connection
		// without a response.
		select {
		case <-r.Context().Done():
		case <-p.done:
		}
		panic(http.ErrAbortHandler)
	case KindReset:
		p.reset(w)
	case KindError500:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"netchaos: injected failure"}`+"\n")
	case KindTruncate:
		p.forward(w, r, true)
	default:
		p.forward(w, r, false)
	}
}

// reset aborts the client connection at the TCP layer: linger 0 turns
// the close into an RST, which clients observe as "connection reset by
// peer" rather than a clean EOF.
func (p *Proxy) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// forward relays the request upstream. With truncate set, the response
// advertises its full Content-Length but carries only half the body
// before the connection is aborted — the corrupt-payload case a client
// must treat as a failed node, not a short answer.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, truncate bool) {
	out := r.Clone(r.Context())
	out.URL.Scheme = p.target.Scheme
	out.URL.Host = p.target.Host
	out.Host = p.target.Host
	out.RequestURI = ""
	out.Close = false
	resp, err := p.rt.RoundTrip(out)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		io.WriteString(w, `{"error":"netchaos: upstream unreachable"}`+"\n")
		return
	}
	defer resp.Body.Close()
	if !truncate {
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body[:len(body)/2])
	// Abort with the advertised length unmet: the client's body read
	// fails with an unexpected EOF instead of quietly succeeding short.
	panic(http.ErrAbortHandler)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// admin serves the fault control plane. GET /__netchaos/rules reports
// the active rules and applied counts; POST replaces the rules with the
// request body's rule string ("none" clears).
func (p *Proxy) admin(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/__netchaos/rules" {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, "netchaos: "+err.Error(), http.StatusBadRequest)
			return
		}
		rules, err := ParseRules(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.SetRules(rules)
	default:
		http.Error(w, "netchaos: GET or POST", http.StatusMethodNotAllowed)
		return
	}
	p.mu.Lock()
	rules := FormatRules(p.rules)
	kinds := make([]string, 0, len(p.counts))
	for k := range p.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "{\"target\":%q,\"rules\":%q,\"counts\":{", p.target.String(), rules)
	for i, k := range kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", k, p.counts[k])
	}
	b.WriteString("}}\n")
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, b.String())
}
