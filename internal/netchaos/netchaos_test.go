package netchaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string // FormatRules round trip
	}{
		{"", "none"},
		{"none", "none"},
		{"blackhole", "blackhole"},
		{"latency=100ms", "latency=100ms"},
		{"latency:0.5=100ms", "latency:0.5=100ms"},
		{"error500:0.1", "error500:0.1"},
		{"latency:0.5=100ms,error500:0.1", "latency:0.5=100ms,error500:0.1"},
		{" reset , truncate ", "reset,truncate"},
	} {
		rules, err := ParseRules(tc.in)
		if err != nil {
			t.Errorf("ParseRules(%q): %v", tc.in, err)
			continue
		}
		if got := FormatRules(rules); got != tc.want {
			t.Errorf("ParseRules(%q) round-trips to %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, in := range []string{
		"latency",           // needs a duration
		"latency=-5ms",      // negative duration
		"blackhole=100ms",   // value on a valueless kind
		"error500:1.5",      // probability out of range
		"error500:x",        // unparsable probability
		"gremlin",           // unknown kind
		"latency:0.5=bogus", // unparsable duration
	} {
		if _, err := ParseRules(in); err == nil {
			t.Errorf("ParseRules(%q) accepted, want error", in)
		}
	}
}

// upstream returns a trivial healthy origin.
func upstream(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Origin", "yes")
		io.WriteString(w, "payload-payload-payload\n")
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func proxyFor(t *testing.T, target, rules string, seed int64) string {
	t.Helper()
	p, err := New(target, seed)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRules(rs)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	t.Cleanup(p.Close) // LIFO: release blackholed handlers before ts.Close waits on them
	return ts.URL
}

// A ruleless proxy is a clean passthrough: status, headers, and body
// arrive intact.
func TestProxyPassthrough(t *testing.T) {
	purl := proxyFor(t, upstream(t), "", 1)
	resp, err := http.Get(purl + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || resp.Header.Get("X-Origin") != "yes" || !strings.Contains(string(body), "payload") {
		t.Fatalf("passthrough mangled response: %d %q", resp.StatusCode, body)
	}
}

// error500 at probability 1 answers every request with a synthetic 500
// without touching the upstream.
func TestProxyError500(t *testing.T) {
	purl := proxyFor(t, upstream(t), "error500", 1)
	resp, err := http.Get(purl + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Origin") == "yes" {
		t.Fatal("injected 500 reached the upstream")
	}
}

// A truncated body fails the client's read instead of quietly
// succeeding short.
func TestProxyTruncate(t *testing.T) {
	purl := proxyFor(t, upstream(t), "truncate", 1)
	resp, err := http.Get(purl + "/x")
	if err != nil {
		// Some transports surface the abort at response time; that is an
		// acceptable failure mode too.
		return
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read succeeded")
	}
}

// A blackholed request never answers: the client's own deadline is the
// only way out.
func TestProxyBlackhole(t *testing.T) {
	purl := proxyFor(t, upstream(t), "blackhole", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, purl+"/x", nil)
	start := time.Now()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("blackholed request answered")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("blackholed request failed after %s, want it to hold until the deadline", d)
	}
}

// A reset aborts the TCP connection; the client observes a transport
// error, not an HTTP response.
func TestProxyReset(t *testing.T) {
	purl := proxyFor(t, upstream(t), "reset", 1)
	if _, err := http.Get(purl + "/x"); err == nil {
		t.Fatal("reset connection produced a response")
	}
}

// The same seed replays the same fault schedule; a different seed
// diverges. This is what makes chaos gates assert exact outcomes.
func TestProxyDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		p, err := New("http://127.0.0.1:1", seed)
		if err != nil {
			t.Fatal(err)
		}
		rs, _ := ParseRules("error500:0.5")
		p.SetRules(rs)
		out := make([]bool, 64)
		for i := range out {
			_, fate := p.decide()
			out[i] = fate == KindError500
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d under the same seed", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("schedules identical under different seeds (PRNG not wired)")
	}
}

// The admin endpoint reconfigures rules live and reports counts, and is
// itself exempt from fault injection.
func TestProxyAdmin(t *testing.T) {
	purl := proxyFor(t, upstream(t), "error500", 1)
	// Admin works even though every data request is faulted.
	resp, err := http.Get(purl + "/__netchaos/rules")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "error500") {
		t.Fatalf("admin GET = %d %q", resp.StatusCode, body)
	}
	// Swap to passthrough: data traffic heals immediately.
	resp, err = http.Post(purl+"/__netchaos/rules", "text/plain", strings.NewReader("none"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("admin POST = %d", resp.StatusCode)
	}
	resp, err = http.Get(purl + "/data")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-heal request = %d, want 200", resp.StatusCode)
	}
	// Bad rule strings are rejected without changing anything.
	resp, err = http.Post(purl+"/__netchaos/rules", "text/plain", strings.NewReader("gremlin"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad rule POST = %d, want 400", resp.StatusCode)
	}
}
