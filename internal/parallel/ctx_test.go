package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestMapCtxNilContextMatchesMap(t *testing.T) {
	results, out, err := MapCtx(nil, 4, 16, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("results[%d] = %d", i, r)
		}
	}
	if out.Skipped != 0 || countTrue(out.Ran) != 16 {
		t.Fatalf("outcome = %+v, want all 16 ran", out)
	}
}

func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		var calls atomic.Int64
		_, out, err := MapCtx(ctx, jobs, 8, func(i int) (int, error) {
			calls.Add(1)
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if calls.Load() != 0 || out.Skipped != 8 {
			t.Fatalf("jobs=%d: %d tasks ran, outcome %+v; want none", jobs, calls.Load(), out)
		}
	}
}

// Cancelling mid-run must stop further dequeues while letting in-flight
// tasks drain, with the outcome accounting exactly for what ran.
func TestMapCtxCancelStopsDequeue(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	_, out, err := MapCtx(ctx, 4, n, func(i int) (int, error) {
		if i == 7 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Skipped == 0 {
		t.Fatal("no tasks skipped after cancellation")
	}
	if got := countTrue(out.Ran); got+out.Skipped != n {
		t.Fatalf("ran %d + skipped %d != %d", got, out.Skipped, n)
	}
	if !out.Ran[7] {
		t.Fatal("the cancelling task itself must be marked as ran")
	}
}

// At jobs=1 the skipped count is fully deterministic: exactly the tasks
// after the cancellation point.
func TestMapCtxSerialCancelDeterministic(t *testing.T) {
	const n, k = 10, 3
	ctx, cancel := context.WithCancel(context.Background())
	_, out, err := MapCtx(ctx, 1, n, func(i int) (int, error) {
		if i == k {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if out.Skipped != n-k-1 {
		t.Fatalf("skipped = %d, want %d", out.Skipped, n-k-1)
	}
	for i := range out.Ran {
		if want := i <= k; out.Ran[i] != want {
			t.Fatalf("Ran[%d] = %v, want %v", i, out.Ran[i], want)
		}
	}
}

// A task error still wins over the context error and stops the pool
// with accurate skip accounting.
func TestMapCtxTaskErrorBeatsContext(t *testing.T) {
	boom := errors.New("boom")
	_, out, err := MapCtx(context.Background(), 1, 5, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out.Skipped != 2 || countTrue(out.Ran) != 3 {
		t.Fatalf("outcome = %+v, want 3 ran / 2 skipped", out)
	}
}

func TestMapCtxPanicAccounting(t *testing.T) {
	_, out, err := MapCtx(context.Background(), 1, 6, func(i int) (int, error) {
		if i == 1 {
			panic("die")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("err = %v, want PanicError at index 1", err)
	}
	if out.Skipped != 4 || !out.Ran[1] {
		t.Fatalf("outcome = %+v, want panicking task ran and 4 skipped", out)
	}
}

func TestForEachCtx(t *testing.T) {
	var calls atomic.Int64
	out, err := ForEachCtx(context.Background(), 3, 9, func(i int) error {
		calls.Add(1)
		return nil
	})
	if err != nil || calls.Load() != 9 || out.Skipped != 0 {
		t.Fatalf("err=%v calls=%d out=%+v", err, calls.Load(), out)
	}
}
