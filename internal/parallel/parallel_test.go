package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobsNormalization(t *testing.T) {
	if Jobs(4) != 4 {
		t.Errorf("Jobs(4) = %d", Jobs(4))
	}
	if Jobs(1) != 1 {
		t.Errorf("Jobs(1) = %d", Jobs(1))
	}
	if got := Jobs(0); got != runtime.NumCPU() {
		t.Errorf("Jobs(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(-3); got != runtime.NumCPU() {
		t.Errorf("Jobs(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// Results must land at their own index regardless of completion order.
func TestMapIndexOrdered(t *testing.T) {
	const n = 64
	for _, jobs := range []int{1, 2, 7, 16} {
		got, err := Map(jobs, n, func(i int) (int, error) {
			if i%3 == 0 {
				time.Sleep(time.Duration(i%5) * time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// The returned error must be the lowest failing index's error — the same
// one the serial loop returns — at every worker count.
func TestMapDeterministicError(t *testing.T) {
	const n = 40
	fail := map[int]bool{11: true, 12: true, 29: true}
	fn := func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	}
	want := "task 11 failed"
	for _, jobs := range []int{1, 3, 8} {
		_, err := Map(jobs, n, fn)
		if err == nil || err.Error() != want {
			t.Errorf("jobs=%d: err = %v, want %q", jobs, err, want)
		}
	}
}

// A panicking task must surface as *PanicError with its index and must
// not deadlock the pool.
func TestMapPanicCapture(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			_, err := Map(jobs, 20, func(i int) (int, error) {
				if i == 7 {
					panic("boom at seven")
				}
				return i, nil
			})
			done <- err
		}()
		select {
		case err := <-done:
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("jobs=%d: err = %v, want *PanicError", jobs, err)
			}
			if pe.Index != 7 {
				t.Errorf("jobs=%d: panic index = %d, want 7", jobs, pe.Index)
			}
			if !strings.Contains(pe.Error(), "boom at seven") {
				t.Errorf("jobs=%d: error misses panic value: %v", jobs, pe)
			}
			if len(pe.Stack) == 0 {
				t.Errorf("jobs=%d: panic stack not captured", jobs)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("jobs=%d: pool deadlocked after worker panic", jobs)
		}
	}
}

// Concurrency must never exceed the requested worker count.
func TestMapRespectsJobsBound(t *testing.T) {
	const jobs, n = 3, 50
	var cur, max atomic.Int64
	_, err := Map(jobs, n, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > jobs {
		t.Errorf("observed %d concurrent tasks, bound is %d", got, jobs)
	}
}

// After a failure, no new tasks start; in-flight lower indices finish.
func TestMapStopsDispatchAfterFailure(t *testing.T) {
	const n = 1000
	var ran atomic.Int64
	_, err := Map(4, n, func(i int) (int, error) {
		ran.Add(1)
		if i == 5 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got == n {
		t.Errorf("all %d tasks ran despite early failure; dispatch did not stop", n)
	}
}

func TestForEach(t *testing.T) {
	const n = 30
	hits := make([]int32, n)
	err := ForEach(4, n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(8, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map over zero tasks: %v, %v", got, err)
	}
}
