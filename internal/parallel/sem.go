package parallel

import "context"

// Sem is a counting semaphore with context-aware acquisition. The
// worker pool bounds CPU-shaped work by task index; Sem bounds
// request-shaped work — the serving layer's admission queue and run
// slots — where callers arrive from arbitrary goroutines and must
// either wait cancellably or be turned away immediately.
type Sem struct {
	slots chan struct{}
}

// NewSem returns a semaphore with n slots. n < 1 is treated as 1: a
// zero-capacity gate would deadlock every caller, which is never what a
// misconfigured flag means.
func NewSem(n int) *Sem {
	if n < 1 {
		n = 1
	}
	return &Sem{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking and reports whether it got
// one. The backpressure path: a full semaphore means "reject now", not
// "wait".
func (s *Sem) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot frees or ctx is done, returning ctx's
// error in the latter case. A nil ctx waits indefinitely.
func (s *Sem) Acquire(ctx context.Context) error {
	if ctx == nil {
		s.slots <- struct{}{}
		return nil
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot. Releasing more than was acquired panics — that
// is a bookkeeping bug, not a runtime condition to tolerate.
func (s *Sem) Release() {
	select {
	case <-s.slots:
	default:
		panic("parallel: Sem.Release without matching Acquire")
	}
}

// InUse returns the number of currently held slots.
func (s *Sem) InUse() int { return len(s.slots) }

// Cap returns the slot capacity.
func (s *Sem) Cap() int { return cap(s.slots) }
