// Package parallel fans independent, deterministic simulation runs out
// across a bounded pool of goroutines while keeping every observable
// output byte-identical to serial execution.
//
// The contract every call site relies on:
//
//   - Tasks are identified by index. Results land in a slice at their
//     own index, never in completion order, so callers emit rows/cells
//     in declaration order and the output cannot depend on scheduling.
//   - Each task must be self-contained: it builds its own engine, RNG,
//     and stats, and shares nothing mutable with other tasks. The pool
//     adds no locks around task state because there must be none.
//   - Errors are deterministic too: the error returned is always the
//     one from the lowest failing index whose task ran, which is the
//     same error the serial loop would have returned (every lower index
//     is dispatched earlier and runs to completion).
//   - A panicking task never deadlocks the pool. The panic is captured
//     into a *PanicError carrying the task index and stack so the caller
//     can attach the offending configuration and seed replay recipe.
//
// jobs <= 0 selects runtime.NumCPU(); jobs == 1 runs the tasks inline on
// the calling goroutine — exactly the pre-pool serial path.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Jobs normalizes a worker-count setting: values >= 1 pass through,
// anything else selects runtime.NumCPU().
func Jobs(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// PanicError is a recovered worker panic. Index identifies the task so
// the caller can name the configuration and seed that crashed; Stack is
// the panicking goroutine's stack at recovery time.
type PanicError struct {
	Index int
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Outcome reports which tasks a pool invocation actually ran. Ran[i] is
// true iff fn(i) was invoked (whether or not it succeeded); Skipped
// counts tasks never dequeued because a failure or cancellation stopped
// the pool first. The slice is written strictly before workers exit and
// read only after the pool joins, so the accounting is race-free and
// always satisfies Skipped == n - countTrue(Ran).
type Outcome struct {
	Ran     []bool
	Skipped int
}

// Map runs fn(0) … fn(n-1) on at most jobs workers and returns the
// results indexed by task. On failure it returns the lowest-index error;
// tasks not yet started when a failure is observed are skipped (their
// results stay zero), matching the serial loop's stop-at-first-error
// behavior.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	results, _, err := MapCtx[T](nil, jobs, n, fn)
	return results, err
}

// MapCtx is Map with cooperative cancellation and skipped-task
// accounting. Workers check ctx before every dequeue: once ctx is
// cancelled (or any task fails) no further task starts, in-flight tasks
// drain to completion, and the Outcome records exactly which indexes
// ran. The error is the lowest-index task error when one exists,
// otherwise the context's error. A nil ctx never cancels.
func MapCtx[T any](ctx context.Context, jobs, n int, fn func(i int) (T, error)) ([]T, Outcome, error) {
	results := make([]T, n)
	out := Outcome{Ran: make([]bool, n)}
	if n == 0 {
		return results, out, nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(); err != nil {
				out.Skipped = n - i
				return results, out, err
			}
			out.Ran[i] = true
			r, err := call(i, fn)
			if err != nil {
				out.Skipped = n - i - 1
				return results, out, err
			}
			results[i] = r
		}
		return results, out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctxErr() != nil {
					return
				}
				out.Ran[i] = true
				r, err := call(i, fn)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, ran := range out.Ran {
		if !ran {
			out.Skipped++
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, out, err
		}
	}
	return results, out, ctxErr()
}

// ForEach runs fn(0) … fn(n-1) on at most jobs workers with the same
// ordering and error semantics as Map.
func ForEach(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachCtx is ForEach with MapCtx's cancellation and accounting.
func ForEachCtx(ctx context.Context, jobs, n int, fn func(i int) error) (Outcome, error) {
	_, out, err := MapCtx(ctx, jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return out, err
}

// call invokes fn(i), converting a panic into a *PanicError.
func call[T any](i int, fn func(i int) (T, error)) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
