package parallel

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSemTryAcquireBounds(t *testing.T) {
	s := NewSem(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("first two TryAcquire must succeed")
	}
	if s.TryAcquire() {
		t.Fatal("third TryAcquire must fail at capacity 2")
	}
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release must succeed")
	}
}

func TestSemAcquireCancellable(t *testing.T) {
	s := NewSem(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Acquire did not return")
	}
}

func TestSemConcurrentNeverExceedsCap(t *testing.T) {
	const capacity, workers = 3, 32
	s := NewSem(capacity)
	var mu sync.Mutex
	inUse, peak := 0, 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				inUse++
				if inUse > peak {
					peak = inUse
				}
				mu.Unlock()
				mu.Lock()
				inUse--
				mu.Unlock()
				s.Release()
			}
		}()
	}
	wg.Wait()
	if peak > capacity {
		t.Fatalf("peak concurrent holders %d exceeded capacity %d", peak, capacity)
	}
}

func TestSemReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire must panic")
		}
	}()
	NewSem(1).Release()
}

func TestSemZeroCapacityClamped(t *testing.T) {
	s := NewSem(0)
	if s.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", s.Cap())
	}
}
