// Package dist is the crash-tolerant distributed sweep fabric: a
// coordinator that shards sweep cells across N stateless workers using
// lease-based assignment, built so that any process death degrades to
// "cells not yet completed" — never to lost or corrupt results.
//
// The fabric's contract mirrors the single-process sweep exactly:
//
//   - Every cell is handed out under a lease with a deadline; workers
//     renew the lease via heartbeats while the cell runs. An expired
//     lease (worker death, partition, stall) returns the cell to the
//     queue for reassignment after capped exponential backoff.
//   - Each cell carries a retry budget across all its lease grants. A
//     poison cell — one that keeps killing or failing workers — is
//     quarantined and reported after the budget is spent, not retried
//     forever.
//   - Completed cells are deduplicated by their confighash key: a slow
//     worker finishing after its lease was reassigned delivers a
//     harmless no-op (the simulator is deterministic, so both rows are
//     identical bytes).
//   - The coordinator journals every grant, expiry, and terminal
//     outcome through the crash-safe sweep journal, so a coordinator
//     crash resumes mid-sweep with completed rows replayed from disk.
//   - The merged output is assembled in cross-product index order from
//     rendered rows, making it byte-identical to a single-process
//     `-jobs 1` run regardless of worker deaths, restarts, or duplicate
//     completions.
//
// Lease and retry outcomes map onto the govern outcome taxonomy:
// completed/deadline/livelock verdicts from workers are terminal
// exactly as in-process runs are, failed/panicked verdicts and lease
// expiries consume the retry budget, and budget exhaustion yields
// govern.StateQuarantined.
package dist

import (
	"time"

	"uvmsim/internal/driver"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/serve"
	"uvmsim/internal/sim"
	"uvmsim/internal/sweep"
)

// Journal audit statuses written by the coordinator alongside the
// govern terminal states. They are not govern states: on a
// single-process resume they fall through the status switch and the
// cell simply reruns, which is the correct recovery for a cell that was
// only ever leased.
const (
	// StatusLeased records a lease grant (cell handed to a worker).
	StatusLeased = "leased"
	// StatusExpired records a lease deadline passing without completion.
	StatusExpired = "expired"
)

// CellSpec is the self-contained wire form of one sweep cell: every
// knob a stateless worker needs to run the cell locally and reproduce
// the coordinator's label byte-for-byte.
type CellSpec struct {
	Workload       string  `json:"workload"`
	GPUMemoryBytes int64   `json:"gpu_mem_bytes"`
	Seed           uint64  `json:"seed"`
	Footprint      float64 `json:"footprint"`
	Prefetch       string  `json:"prefetch"`
	Replay         string  `json:"replay"`
	Evict          string  `json:"evict"`
	Batch          int     `json:"batch"`
	VABlockBytes   int64   `json:"vablock_bytes"`
	// Gpus and Migration are set only on multi-GPU cells (zero-value
	// elision): a K=1 cell serializes exactly as it did before the axes
	// existed, so mixed-version fleets agree on every single-GPU label.
	Gpus      int    `json:"gpus,omitempty"`
	Migration string `json:"migration,omitempty"`
	// Deterministic per-cell budgets (see sim.Budget); part of the spec
	// because a budget trip is a property of the cell, not the worker.
	SimDeadlineNs  int64  `json:"sim_deadline_ns,omitempty"`
	MaxEvents      uint64 `json:"max_events,omitempty"`
	LivelockWindow uint64 `json:"livelock_window,omitempty"`
}

// cellSpecOf flattens one resolved cell of a sweep into its wire form.
func cellSpecOf(s *sweep.Spec, c sweep.Config) CellSpec {
	cs := CellSpec{
		Workload:       s.Workload,
		GPUMemoryBytes: s.GPUMemoryBytes,
		Seed:           s.Seed,
		Footprint:      c.Footprint,
		Prefetch:       c.Prefetch,
		Replay:         c.Replay.String(),
		Evict:          c.Evict,
		Batch:          c.Batch,
		VABlockBytes:   c.VABlock,
		SimDeadlineNs:  int64(s.Budget.SimDeadline),
		MaxEvents:      s.Budget.MaxEvents,
		LivelockWindow: s.Budget.LivelockWindow,
	}
	if c.GPUs > 1 {
		cs.Gpus = c.GPUs
		cs.Migration = c.Migration.String()
	}
	return cs
}

// Spec lifts the cell back into a singleton sweep spec, the worker-side
// execution form. Rendering a singleton sweep reuses the exact
// validation, governance, and row-rendering path the single-process
// sweep runs, which is what makes distributed rows byte-identical.
func (cs CellSpec) Spec() *sweep.Spec {
	sp := &sweep.Spec{
		Workload:       cs.Workload,
		GPUMemoryBytes: cs.GPUMemoryBytes,
		Seed:           cs.Seed,
		Footprints:     []float64{cs.Footprint},
		Prefetch:       []string{cs.Prefetch},
		Replay:         []string{cs.Replay},
		Evict:          []string{cs.Evict},
		Batch:          []int{cs.Batch},
		VABlock:        []int64{cs.VABlockBytes},
		Jobs:           1,
		Budget: sim.Budget{
			SimDeadline:    sim.Time(cs.SimDeadlineNs),
			MaxEvents:      cs.MaxEvents,
			LivelockWindow: cs.LivelockWindow,
		},
	}
	if cs.Gpus > 1 {
		sp.GPUs = []int{cs.Gpus}
		sp.Migration = []string{cs.Migration}
	}
	return sp
}

// SimRequest maps the cell onto the serve tier's single-cell wire form.
// ok is false when the wire form cannot express the cell exactly
// (fractional MiB/ms, zero knobs the server would re-default) — such a
// cell must be simulated locally, never approximated through the tier.
func (cs CellSpec) SimRequest() (serve.SimRequest, bool) {
	const mib = int64(1) << 20
	ms := int64(time.Millisecond)
	if cs.GPUMemoryBytes%mib != 0 || cs.SimDeadlineNs%ms != 0 ||
		cs.Workload == "" || cs.Prefetch == "" || cs.Replay == "" || cs.Evict == "" ||
		cs.Batch == 0 || cs.VABlockBytes%1024 != 0 || cs.VABlockBytes == 0 || cs.Footprint == 0 {
		return serve.SimRequest{}, false
	}
	req := serve.SimRequest{
		Workload:   cs.Workload,
		GPUMemMiB:  cs.GPUMemoryBytes / mib,
		Seed:       cs.Seed,
		Footprint:  cs.Footprint,
		Prefetch:   cs.Prefetch,
		Replay:     cs.Replay,
		Evict:      cs.Evict,
		Batch:      cs.Batch,
		VABlockKiB: cs.VABlockBytes >> 10,
		Budget: serve.BudgetRequest{
			SimBudgetMs:    cs.SimDeadlineNs / ms,
			MaxEvents:      cs.MaxEvents,
			LivelockEvents: cs.LivelockWindow,
		},
	}
	if cs.Gpus > 1 {
		g := cs.Gpus
		req.Gpus = &g
		req.Migration = cs.Migration
	}
	return req, true
}

// Label recomputes the cell's replay recipe. Workers verify it against
// the coordinator's label so a protocol or version skew is caught
// before any simulation runs under the wrong identity.
func (cs CellSpec) Label() (string, error) {
	pol, err := driver.ParseReplayPolicy(cs.Replay)
	if err != nil {
		return "", err
	}
	s := cs.Spec()
	c := sweep.Config{
		Footprint: cs.Footprint, Prefetch: cs.Prefetch, Replay: pol,
		Evict: cs.Evict, Batch: cs.Batch, VABlock: cs.VABlockBytes,
	}
	if cs.Gpus > 1 {
		mpol, err := multigpu.ParsePolicy(cs.Migration)
		if err != nil {
			return "", err
		}
		c.GPUs = cs.Gpus
		c.Migration = mpol
	}
	return c.Label(s), nil
}

// ---- wire messages ----

// LeaseRequest asks the coordinator for one cell to run.
type LeaseRequest struct {
	// Worker is a self-chosen worker identity, used for audit only.
	Worker string `json:"worker"`
}

// LeaseResponse carries a lease grant, a backoff hint, or the
// end-of-sweep signal.
type LeaseResponse struct {
	// Done tells the worker the sweep has settled; it should exit.
	Done bool `json:"done,omitempty"`
	// WaitMs, when no cell is leasable right now (all leased out or
	// backing off), hints when to poll again.
	WaitMs int64 `json:"wait_ms,omitempty"`

	LeaseID string    `json:"lease_id,omitempty"`
	Cell    *CellSpec `json:"cell,omitempty"`
	// Index is the cell's cross-product position; Label its replay
	// recipe; Hash its confighash key (the dedup and journal key).
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	Hash  string `json:"hash,omitempty"`
	// Attempt counts lease grants for this cell, 1-based.
	Attempt int `json:"attempt,omitempty"`
	// TTLMs is the lease deadline; the worker must renew within it.
	TTLMs int64 `json:"ttl_ms,omitempty"`
	// TraceID is the cell's telemetry trace, derived from the sweep's
	// root trace and stable across lease retries: every attempt at this
	// cell — on any worker — logs under the same ID, and workers forward
	// it to the serve cache tier so one grep walks the whole path.
	TraceID string `json:"trace_id,omitempty"`
}

// RenewRequest is the heartbeat extending a held lease.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

// RenewResponse acknowledges a heartbeat. A renew against an expired or
// reassigned lease answers HTTP 410 instead.
type RenewResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest reports one cell's terminal outcome. Completion is
// keyed by Hash, not LeaseID: a deterministic row is accepted even from
// a worker whose lease has already expired — it is the same bytes the
// reassigned worker would produce.
type CompleteRequest struct {
	LeaseID string `json:"lease_id,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Hash    string `json:"hash"`
	// Status is the govern.State verdict of the run.
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	// Row is the rendered result row for completed cells.
	Row []string `json:"row,omitempty"`
	// TraceID echoes the lease grant's trace, closing the loop in the
	// coordinator's completion log.
	TraceID string `json:"trace_id,omitempty"`
}

// CompleteResponse acknowledges a completion report.
type CompleteResponse struct {
	// Duplicate marks a report for a cell that had already settled; the
	// report was a no-op.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Status is the coordinator's progress snapshot.
type Status struct {
	Total       int `json:"total"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Completed   int `json:"completed"`
	Skipped     int `json:"skipped"` // deterministic budget trips
	Quarantined int `json:"quarantined"`
	Reused      int `json:"reused"` // completed rows replayed from the resume journal
}

// Settled reports whether every cell is terminal.
func (st Status) Settled() bool {
	return st.Completed+st.Skipped+st.Quarantined == st.Total
}

// Backoff is the capped exponential reassignment backoff: attempt n
// (1-based count of grants already consumed) waits base<<(n-1), capped.
func Backoff(n int, base, cap time.Duration) time.Duration {
	if n < 1 {
		n = 1
	}
	d := base
	for i := 1; i < n && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}
