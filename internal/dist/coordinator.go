package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/journal"
	"uvmsim/internal/obs"
	"uvmsim/internal/serve"
	"uvmsim/internal/stats"
	"uvmsim/internal/sweep"
	"uvmsim/internal/telemetry"
)

// Coordinator metric names, registered in the obs metrics registry so
// lease-fabric health is observable with the same machinery as every
// other subsystem.
const (
	MetricLeasesGranted = "dist_leases_granted_total"
	MetricLeasesExpired = "dist_leases_expired_total"
	MetricRenewals      = "dist_lease_renewals_total"
	MetricRetries       = "dist_retries_total"
	MetricCompleted     = "dist_cells_completed_total"
	MetricSkipped       = "dist_cells_skipped_total"
	MetricQuarantined   = "dist_quarantined_total"
	MetricDuplicates    = "dist_duplicate_completions_total"
	MetricBadReports    = "dist_bad_reports_total"
	MetricCacheFills    = "dist_cachefills_total"
	MetricFillErrors    = "dist_cachefill_errors_total"
)

// CoordinatorConfig tunes the lease fabric. Zero values select the
// defaults noted on each field.
type CoordinatorConfig struct {
	// LeaseTTL is how long a grant lives between heartbeats (default
	// 15s). Workers renew at a fraction of this.
	LeaseTTL time.Duration
	// RetryBudget is how many times a cell may be re-granted after its
	// first lease (expiry or worker-reported transient failure), before
	// it is quarantined (default 3).
	RetryBudget int
	// BackoffBase/BackoffCap shape the capped exponential pause before a
	// returned cell becomes leasable again (defaults 500ms / 10s).
	BackoffBase, BackoffCap time.Duration
	// Journal, when set, persists every grant, expiry, and terminal
	// outcome to this crash-safe JSONL file; Resume replays it first so
	// a restarted coordinator reuses completed rows.
	Journal string
	Resume  bool
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// Log receives structured lease-lifecycle lines (grants,
	// completions, quarantines); nil logs nothing.
	Log *slog.Logger
	// TraceID is the sweep's root telemetry trace; per-cell traces
	// derive from it. Empty mints a fresh root.
	TraceID string
	// Flight is the process flight recorder; when set with FlightDir,
	// quarantines dump it, and Handler exposes GET /debug/flightrec.
	Flight    *telemetry.Flight
	FlightDir string
	// CacheFill, when set, is called once per freshly completed cell with
	// the cell's rendered row — the write-through hook the cache tier
	// (internal/cachetier) plugs in. Fills run asynchronously under the
	// cell's telemetry trace and are strictly best-effort: an error is
	// counted, never retried, and never affects the sweep.
	CacheFill func(ctx context.Context, cs CellSpec, row []string) error
	// ExtraMetrics, when set, contributes additional samples to the
	// /metrics exposition (e.g. the cache tier's breaker counters).
	ExtraMetrics func() []obs.Sample
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	} else if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.TraceID == "" {
		c.TraceID = telemetry.NewID()
	}
	return c
}

// cellState is the coordinator-side lifecycle of one cell.
type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone        // completed: row held
	cellSkipped     // deterministic budget trip: deadline or livelock
	cellQuarantined // retry budget exhausted
)

type cell struct {
	idx       int
	spec      CellSpec
	label     string
	hash      string
	state     cellState
	attempt   int       // lease grants consumed (1-based once granted)
	notBefore time.Time // backoff gate while pending
	leaseID   string    // current lease when cellLeased
	row       []string  // rendered row when cellDone
	status    govern.State
	errMsg    string
	reused    bool // satisfied from the resume journal
}

// Coordinator owns the cell queue, the lease table, the journal, and
// the merged result. All state lives behind one mutex; the work happens
// in workers, so the coordinator's lock is never on a hot path.
type Coordinator struct {
	spec *sweep.Spec
	cfg  CoordinatorConfig

	mu       sync.Mutex
	cells    []*cell
	byHash   map[string]*cell
	leases   map[string]*cell
	leaseSeq int
	reg      *obs.Registry
	red      *telemetry.RED
	jw       *journal.Writer
	finished bool
	fatalErr error
	done     chan struct{}

	fillWG sync.WaitGroup // in-flight write-through cache fills
}

// traceOf derives a cell's stable telemetry trace from the sweep root.
func (co *Coordinator) traceOf(cl *cell) string {
	return telemetry.CellTraceID(co.cfg.TraceID, cl.idx)
}

// TraceID returns the sweep's root telemetry trace.
func (co *Coordinator) TraceID() string { return co.cfg.TraceID }

// NewCoordinator enumerates the sweep's cells (validating the spec up
// front, exactly like the in-process path), replays the resume journal
// when configured, and returns a coordinator ready to serve leases.
func NewCoordinator(spec *sweep.Spec, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	configs, err := spec.Configs()
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		spec:   spec,
		cfg:    cfg,
		byHash: make(map[string]*cell, len(configs)),
		leases: make(map[string]*cell),
		reg:    obs.NewRegistry(),
		red:    telemetry.NewRED("dist_http"),
		done:   make(chan struct{}),
	}
	for _, name := range []string{
		MetricLeasesGranted, MetricLeasesExpired, MetricRenewals, MetricRetries,
		MetricCompleted, MetricSkipped, MetricQuarantined, MetricDuplicates, MetricBadReports,
		MetricCacheFills, MetricFillErrors,
	} {
		co.reg.Counter(name)
	}
	co.cells = make([]*cell, len(configs))
	for i, c := range configs {
		label := c.Label(spec)
		cl := &cell{idx: i, spec: cellSpecOf(spec, c), label: label, hash: journal.Hash(label)}
		co.cells[i] = cl
		co.byHash[cl.hash] = cl
	}

	var prior map[string]journal.Record
	if cfg.Journal != "" {
		if cfg.Resume {
			recs, err := journal.Load(cfg.Journal)
			if err != nil {
				return nil, fmt.Errorf("dist: resume: %w", err)
			}
			prior = journal.Latest(recs)
			co.jw, err = journal.Open(cfg.Journal)
			if err != nil {
				return nil, err
			}
		} else {
			co.jw, err = journal.Create(cfg.Journal)
			if err != nil {
				return nil, err
			}
		}
	}
	for _, cl := range co.cells {
		rec, ok := prior[cl.hash]
		if !ok {
			continue
		}
		switch govern.State(rec.Status) {
		case govern.StateCompleted:
			cl.state, cl.status, cl.row = cellDone, govern.StateCompleted, rec.Row
			cl.attempt, cl.reused = rec.Attempt, true
			co.reg.Counter(MetricCompleted).Inc(1)
		case govern.StateDeadline, govern.StateLivelock:
			// Deterministic trips reproduce on rerun; keep the verdict.
			cl.state, cl.status, cl.errMsg = cellSkipped, govern.State(rec.Status), rec.Err
			cl.attempt, cl.reused = rec.Attempt, true
			co.reg.Counter(MetricSkipped).Inc(1)
		default:
			// leased / expired / failed / panicked / quarantined /
			// cancelled: the cell never finished — rerun it, but carry the
			// attempt count so a crash-looping coordinator cannot grant a
			// poison cell unboundedly. (A resumed quarantined cell gets a
			// fresh budget: resuming is an operator decision to try again.)
			if govern.State(rec.Status) != govern.StateQuarantined {
				cl.attempt = rec.Attempt
			}
		}
	}
	co.checkSettledLocked()
	return co, nil
}

// Samples snapshots the coordinator's obs metrics registry — lease
// grants, renewals, expiries, retries, quarantines, duplicates.
func (co *Coordinator) Samples() []obs.Sample {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.reg.Samples()
}

// journalLocked appends one record; a journal failure is fatal to the
// sweep (continuing would silently break the resume contract).
func (co *Coordinator) journalLocked(rec journal.Record) {
	if co.jw == nil || co.fatalErr != nil {
		return
	}
	if err := co.jw.Append(rec); err != nil {
		co.fatalErr = fmt.Errorf("dist: journal append: %w", err)
		co.finishLocked()
	}
}

func (co *Coordinator) record(cl *cell, status string) journal.Record {
	return journal.Record{
		Label: cl.label, Hash: cl.hash, Seed: co.spec.Seed,
		Status: status, Attempt: cl.attempt, Err: cl.errMsg,
	}
}

// expireLocked returns every overdue lease to the queue (or quarantine)
// under backoff. Called lazily from every API entry point, which is
// sufficient because workers poll continuously.
func (co *Coordinator) expireLocked(now time.Time) {
	for id, cl := range co.leases {
		if cl.state != cellLeased || cl.leaseID != id {
			delete(co.leases, id) // stale entry for a settled cell
			continue
		}
		if !now.After(cl.notBefore) {
			continue // notBefore doubles as the lease deadline while leased
		}
		delete(co.leases, id)
		co.reg.Counter(MetricLeasesExpired).Inc(1)
		cl.errMsg = fmt.Sprintf("lease %s expired (attempt %d)", id, cl.attempt)
		co.journalLocked(co.record(cl, StatusExpired))
		co.requeueLocked(cl, now)
	}
}

// requeueLocked returns a cell to the queue after an expiry or a
// transient failure, quarantining it once the retry budget is spent. A
// quarantine is the fabric's "something is deeply wrong with this
// cell" verdict, so it also triggers a flight-recorder dump — off the
// lock, since the dump fsyncs.
func (co *Coordinator) requeueLocked(cl *cell, now time.Time) {
	cl.leaseID = ""
	if cl.attempt >= co.cfg.RetryBudget+1 {
		cl.state, cl.status = cellQuarantined, govern.StateQuarantined
		cl.errMsg = fmt.Sprintf("quarantined after %d attempts: %s", cl.attempt, cl.errMsg)
		co.reg.Counter(MetricQuarantined).Inc(1)
		co.journalLocked(co.record(cl, string(govern.StateQuarantined)))
		if co.cfg.Log != nil {
			co.cfg.Log.LogAttrs(context.Background(), slog.LevelWarn, "cell quarantined",
				slog.String(telemetry.KeyTraceID, co.traceOf(cl)),
				slog.String(telemetry.KeyConfigHash, cl.hash),
				slog.Int("attempt", cl.attempt),
				slog.String("err", cl.errMsg))
		}
		if co.cfg.Flight != nil && co.cfg.FlightDir != "" {
			fl, dir, lg := co.cfg.Flight, co.cfg.FlightDir, co.cfg.Log
			go func() {
				if path, err := fl.DumpToFile(dir, "quarantine"); err == nil && lg != nil {
					lg.Warn("flight recorder dumped", slog.String("reason", "quarantine"), slog.String("path", path))
				}
			}()
		}
		co.checkSettledLocked()
		return
	}
	cl.state = cellPending
	cl.notBefore = now.Add(Backoff(cl.attempt, co.cfg.BackoffBase, co.cfg.BackoffCap))
}

// finishLocked settles the sweep: subsequent lease requests answer
// done, and Wait unblocks.
func (co *Coordinator) finishLocked() {
	if !co.finished {
		co.finished = true
		close(co.done)
	}
}

func (co *Coordinator) checkSettledLocked() {
	if co.statusLocked().Settled() {
		co.finishLocked()
	}
}

func (co *Coordinator) statusLocked() Status {
	var st Status
	st.Total = len(co.cells)
	for _, cl := range co.cells {
		switch cl.state {
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellDone:
			st.Completed++
		case cellSkipped:
			st.Skipped++
		case cellQuarantined:
			st.Quarantined++
		}
		if cl.reused {
			st.Reused++
		}
	}
	return st
}

// Acquire grants the lowest-index leasable cell, or reports done / a
// wait hint. Exported for in-process workers and tests; the HTTP
// handler is a thin wrapper.
func (co *Coordinator) Acquire(worker string) LeaseResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.expireLocked(now)
	if co.finished {
		return LeaseResponse{Done: true}
	}
	var pick *cell
	for _, cl := range co.cells {
		if cl.state == cellPending && !now.Before(cl.notBefore) {
			pick = cl
			break
		}
	}
	if pick == nil {
		return LeaseResponse{WaitMs: co.waitHintLocked(now).Milliseconds()}
	}
	co.leaseSeq++
	pick.attempt++
	pick.state = cellLeased
	pick.leaseID = fmt.Sprintf("l%d-%s", co.leaseSeq, pick.hash)
	pick.notBefore = now.Add(co.cfg.LeaseTTL) // lease deadline
	pick.errMsg = ""
	co.leases[pick.leaseID] = pick
	co.reg.Counter(MetricLeasesGranted).Inc(1)
	if pick.attempt > 1 {
		co.reg.Counter(MetricRetries).Inc(1)
	}
	co.journalLocked(co.record(pick, StatusLeased))
	if co.cfg.Log != nil {
		co.cfg.Log.LogAttrs(context.Background(), slog.LevelInfo, "lease granted",
			slog.String(telemetry.KeyTraceID, co.traceOf(pick)),
			slog.String("lease_id", pick.leaseID),
			slog.String("worker", worker),
			slog.String(telemetry.KeyConfigHash, pick.hash),
			slog.Int("attempt", pick.attempt),
			slog.String("label", pick.label))
	}
	spec := pick.spec
	return LeaseResponse{
		LeaseID: pick.leaseID, Cell: &spec, Index: pick.idx,
		Label: pick.label, Hash: pick.hash, Attempt: pick.attempt,
		TTLMs:   co.cfg.LeaseTTL.Milliseconds(),
		TraceID: co.traceOf(pick),
	}
}

// waitHintLocked suggests how long a worker with nothing to lease
// should wait: until the earliest backoff gate or lease deadline,
// clamped to [50ms, 1s].
func (co *Coordinator) waitHintLocked(now time.Time) time.Duration {
	const lo, hi = 50 * time.Millisecond, time.Second
	wait := hi
	for _, cl := range co.cells {
		if cl.state == cellPending || cl.state == cellLeased {
			if d := cl.notBefore.Sub(now); d < wait {
				wait = d
			}
		}
	}
	if wait < lo {
		wait = lo
	}
	return wait
}

// Renew extends a held lease; false means the lease is gone (expired
// and reassigned, or its cell already settled) and the worker should
// abandon the run.
func (co *Coordinator) Renew(leaseID string) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.expireLocked(now)
	cl, ok := co.leases[leaseID]
	if !ok || cl.state != cellLeased || cl.leaseID != leaseID {
		return false
	}
	cl.notBefore = now.Add(co.cfg.LeaseTTL)
	co.reg.Counter(MetricRenewals).Inc(1)
	return true
}

// Complete applies one terminal report. Completion is keyed by hash:
// reports from expired leases are accepted (deterministic rows are
// interchangeable), and reports for already-settled cells are counted
// and dropped as duplicates.
func (co *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.cfg.Now()
	co.expireLocked(now)
	cl, ok := co.byHash[req.Hash]
	if !ok {
		co.reg.Counter(MetricBadReports).Inc(1)
		return CompleteResponse{}, fmt.Errorf("dist: unknown cell hash %q", req.Hash)
	}
	state := govern.State(req.Status)
	switch cl.state {
	case cellDone, cellSkipped:
		co.reg.Counter(MetricDuplicates).Inc(1)
		return CompleteResponse{Duplicate: true}, nil
	case cellQuarantined:
		// A straggler finishing a quarantined cell is still a valid
		// deterministic row — promote it; anything else stays quarantined.
		if state != govern.StateCompleted {
			co.reg.Counter(MetricDuplicates).Inc(1)
			return CompleteResponse{Duplicate: true}, nil
		}
	case cellPending, cellLeased:
		// A non-completed report only counts when it comes from the
		// cell's current lease. A stale worker's failure verdict must not
		// disturb a reassignment already in flight — only its completed
		// row is lease-independent, because rows are deterministic.
		if state != govern.StateCompleted && req.LeaseID != cl.leaseID {
			co.reg.Counter(MetricDuplicates).Inc(1)
			return CompleteResponse{Duplicate: true}, nil
		}
	}
	if cl.leaseID != "" {
		delete(co.leases, cl.leaseID)
		cl.leaseID = ""
	}
	logCompletion := func(level slog.Level) {
		if co.cfg.Log == nil {
			return
		}
		co.cfg.Log.LogAttrs(context.Background(), level, "completion received",
			slog.String(telemetry.KeyTraceID, co.traceOf(cl)),
			slog.String("lease_id", req.LeaseID),
			slog.String("worker", req.Worker),
			slog.String(telemetry.KeyConfigHash, cl.hash),
			slog.String("state", req.Status),
			slog.String("err", req.Err))
	}
	switch state {
	case govern.StateCompleted:
		cl.state, cl.status, cl.errMsg = cellDone, govern.StateCompleted, ""
		cl.row = append([]string(nil), req.Row...)
		co.reg.Counter(MetricCompleted).Inc(1)
		rec := co.record(cl, string(govern.StateCompleted))
		rec.Row, rec.Digest = cl.row, journal.RowDigest(cl.row)
		co.journalLocked(rec)
		logCompletion(slog.LevelInfo)
		co.dispatchFillLocked(cl)
	case govern.StateDeadline, govern.StateLivelock:
		// Deterministic budget trips are terminal, exactly as in-process.
		cl.state, cl.status, cl.errMsg = cellSkipped, state, req.Err
		co.reg.Counter(MetricSkipped).Inc(1)
		co.journalLocked(co.record(cl, req.Status))
		logCompletion(slog.LevelInfo)
	case govern.StateFailed, govern.StatePanicked, govern.StateCancelled:
		// Transient verdicts consume the retry budget like a lease expiry.
		cl.errMsg = req.Err
		co.journalLocked(co.record(cl, req.Status))
		logCompletion(slog.LevelWarn)
		co.requeueLocked(cl, now)
	default:
		co.reg.Counter(MetricBadReports).Inc(1)
		return CompleteResponse{}, fmt.Errorf("dist: unknown status %q", req.Status)
	}
	co.checkSettledLocked()
	return CompleteResponse{}, nil
}

// dispatchFillLocked hands a freshly completed cell to the CacheFill
// hook on its own goroutine: the completion path must never wait on a
// network write to a cache node. Caller holds co.mu; the goroutine
// re-takes it only to bump counters.
func (co *Coordinator) dispatchFillLocked(cl *cell) {
	if co.cfg.CacheFill == nil {
		return
	}
	spec, row, trace := cl.spec, cl.row, co.traceOf(cl)
	co.fillWG.Add(1)
	go func() {
		defer co.fillWG.Done()
		ctx := telemetry.WithTraceID(context.Background(), trace)
		err := co.cfg.CacheFill(ctx, spec, row)
		co.mu.Lock()
		if err != nil {
			co.reg.Counter(MetricFillErrors).Inc(1)
		} else {
			co.reg.Counter(MetricCacheFills).Inc(1)
		}
		co.mu.Unlock()
	}()
}

// Progress returns the live census.
func (co *Coordinator) Progress() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(co.cfg.Now())
	return co.statusLocked()
}

// Stop settles the sweep early (cancellation): lease requests start
// answering done so attached workers exit cleanly, and Wait unblocks
// with whatever completed. The journal keeps every settled cell, so a
// -resume continues where the stop landed.
func (co *Coordinator) Stop() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.finishLocked()
}

// Close releases the journal writer.
func (co *Coordinator) Close() error {
	if co.jw != nil {
		return co.jw.Close()
	}
	return nil
}

// Wait blocks until every cell settles (or ctx cancels / a journal
// failure aborts), then assembles the merged result: rendered rows in
// cross-product index order, byte-identical to a single-process run.
func (co *Coordinator) Wait(ctx context.Context) (*sweep.Result, error) {
	var runErr error
	select {
	case <-co.done:
	case <-ctx.Done():
		runErr = ctx.Err()
		co.Stop()
	}
	// Let in-flight write-through fills land before tearing anything
	// down; they are bounded by the tier's FillTimeout.
	co.fillWG.Wait()
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.fatalErr != nil {
		runErr = co.fatalErr
	}
	res := &sweep.Result{
		Table:    stats.NewTable(fmt.Sprintf("sweep: %s on %d MiB GPU", co.spec.Workload, co.spec.GPUMemoryBytes>>20), sweep.Headers()...),
		Statuses: make([]sweep.CellStatus, len(co.cells)),
	}
	for i, cl := range co.cells {
		res.Statuses[i] = sweep.CellStatus{
			Label: cl.label, Hash: cl.hash, State: cl.status,
			Err: cl.errMsg, Attempts: cl.attempt, Reused: cl.reused,
		}
		if cl.reused {
			res.Reused++
		}
		if cl.state == cellDone {
			res.Table.AddRenderedRow(cl.row)
		}
		if cl.status == "" {
			res.Skipped++ // never settled: stopped or cancelled mid-sweep
		}
	}
	return res, runErr
}

// Summary renders the fabric counters as one line for CLI stderr.
func (co *Coordinator) Summary() string {
	co.mu.Lock()
	defer co.mu.Unlock()
	get := func(name string) uint64 { return co.reg.Counter(name).Get() }
	return fmt.Sprintf("granted=%d renewals=%d expired=%d retries=%d completed=%d skipped=%d quarantined=%d duplicates=%d bad_reports=%d cachefills=%d fill_errors=%d",
		get(MetricLeasesGranted), get(MetricRenewals), get(MetricLeasesExpired), get(MetricRetries),
		get(MetricCompleted), get(MetricSkipped), get(MetricQuarantined), get(MetricDuplicates), get(MetricBadReports),
		get(MetricCacheFills), get(MetricFillErrors))
}

// ---- HTTP surface ----

// Handler serves the coordinator protocol:
//
//	POST /v1/lease     acquire a cell        POST /v1/renew  heartbeat
//	POST /v1/complete  report an outcome     GET  /v1/status progress
//	GET  /metrics      Prometheus            GET  /healthz
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, co.Acquire(req.Worker))
	})
	mux.HandleFunc("POST /v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if !co.Renew(req.LeaseID) {
			writeJSON(w, http.StatusGone, RenewResponse{})
			return
		}
		writeJSON(w, http.StatusOK, RenewResponse{OK: true})
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := co.Complete(req)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.Progress())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		samples := append(co.Samples(), co.red.Samples()...)
		if co.cfg.ExtraMetrics != nil {
			samples = append(samples, co.cfg.ExtraMetrics()...)
		}
		_ = serve.WritePrometheus(w, samples)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if co.cfg.Flight != nil {
		mux.Handle("GET /debug/flightrec", co.cfg.Flight.HTTPHandler())
	}
	// No access logger on the edge: workers poll /v1/lease continuously,
	// and the meaningful lifecycle lines (grants, completions,
	// quarantines) are logged by the methods themselves. RED metrics and
	// 5xx-triggered flight dumps still cover every endpoint.
	return telemetry.Middleware(mux, telemetry.MiddlewareOptions{
		RED:       co.red,
		Flight:    co.cfg.Flight,
		FlightDir: co.cfg.FlightDir,
		Route:     coordRouteLabel,
	})
}

// coordRouteLabel maps coordinator endpoints onto stable route labels.
func coordRouteLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/v1/lease":
		return "v1_lease"
	case "/v1/renew":
		return "v1_renew"
	case "/v1/complete":
		return "v1_complete"
	case "/v1/status":
		return "v1_status"
	case "/metrics":
		return "metrics"
	case "/healthz":
		return "healthz"
	case "/debug/flightrec":
		return "debug_flightrec"
	default:
		return "other"
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}
