package dist

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"uvmsim/internal/govern"
	"uvmsim/internal/obs"
)

// Every completed cell is handed to the CacheFill hook exactly once,
// with the row the worker reported; a failing hook is counted but never
// blocks settlement — fills are an optimization, not a dependency.
func TestCompleteDispatchesCacheFill(t *testing.T) {
	var (
		mu    sync.Mutex
		fills = map[string][]string{} // label -> row
	)
	var failLabel string
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		CacheFill: func(ctx context.Context, cs CellSpec, row []string) error {
			label, lerr := cs.Label()
			if lerr != nil {
				t.Errorf("fill hook got an unlabelable cell: %v", lerr)
				return lerr
			}
			mu.Lock()
			defer mu.Unlock()
			if _, dup := fills[label]; dup {
				t.Errorf("cell %s filled twice", label)
			}
			fills[label] = row
			if label == failLabel {
				return errors.New("injected fill failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	rows := map[string][]string{}
	for {
		lr := co.Acquire("w1")
		if lr.Cell == nil {
			break
		}
		label, _ := lr.Cell.Label()
		if failLabel == "" {
			failLabel = label // first cell's fill will error
		}
		row := []string{"r-" + lr.Hash}
		rows[label] = row
		if _, err := co.Complete(CompleteRequest{
			LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateCompleted), Row: row,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := co.Wait(context.Background()); err != nil {
		t.Fatal(err) // Wait also flushes in-flight fills
	}

	mu.Lock()
	defer mu.Unlock()
	if len(fills) != 6 {
		t.Fatalf("fill hook saw %d cells, want 6", len(fills))
	}
	for label, row := range rows {
		got, ok := fills[label]
		if !ok {
			t.Fatalf("completed cell %s never filled", label)
		}
		if len(got) != 1 || got[0] != row[0] {
			t.Fatalf("cell %s filled with %v, want %v", label, got, row)
		}
	}
	if got := co.counter(t, MetricCacheFills); got != 5 {
		t.Fatalf("cachefills counter = %d, want 5 (one injected failure)", got)
	}
	if got := co.counter(t, MetricFillErrors); got != 1 {
		t.Fatalf("fill errors counter = %d, want 1", got)
	}
}

// Failed cells never reach the fill hook: only completed rows are
// worth write-through caching.
func TestFailedCellsNotFilled(t *testing.T) {
	var filled int
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		RetryBudget: -1, // no retries: each failure quarantines immediately
		CacheFill: func(ctx context.Context, cs CellSpec, row []string) error {
			filled++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	for {
		lr := co.Acquire("w1")
		if lr.Cell == nil {
			break
		}
		if _, err := co.Complete(CompleteRequest{
			LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateFailed), Err: "boom",
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := co.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range res.Statuses {
		if cs.State != govern.StateQuarantined {
			t.Fatalf("cell %s settled %s, want quarantined", cs.Label, cs.State)
		}
	}
	if filled != 0 {
		t.Fatalf("fill hook saw %d failed cells, want 0", filled)
	}
}

// ExtraMetrics samples ride along on the coordinator's /metrics page —
// how the cache tier's counters become visible to the chaos gate.
func TestMetricsIncludesExtraSamples(t *testing.T) {
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		ExtraMetrics: func() []obs.Sample {
			return []obs.Sample{{Name: "cachetier_breaker_open_total", Value: 3}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "cachetier_breaker_open_total 3") {
		t.Fatalf("/metrics missing extra sample:\n%s", body)
	}
}
