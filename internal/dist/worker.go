package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/serve"
	"uvmsim/internal/serve/client"
	"uvmsim/internal/telemetry"
)

// Runner executes one cell and returns its govern verdict, the rendered
// result row (completed cells only), and the failure message (all other
// states). Injected so tests can model poison cells, stalls, and deaths
// without running the engine.
type Runner func(ctx context.Context, cs CellSpec) (state govern.State, row []string, errMsg string)

// LocalRunner executes the cell through the in-process engine as a
// singleton sweep — the exact validation, governance, and row-rendering
// path a single-process `-jobs 1` run takes, which is what keeps
// distributed rows byte-identical to serial ones.
func LocalRunner(ctx context.Context, cs CellSpec) (govern.State, []string, string) {
	s := cs.Spec()
	res, runErr := s.RunContext(ctx)
	if runErr != nil {
		st := govern.StatusOf(runErr)
		return st.State, nil, st.Err
	}
	if res == nil || len(res.Statuses) != 1 {
		return govern.StateFailed, nil, "dist: singleton sweep produced no status"
	}
	st := res.Statuses[0]
	switch {
	case st.State == govern.StateCompleted && len(res.Table.Rows) == 1:
		return govern.StateCompleted, res.Table.Rows[0], ""
	case st.State == "":
		// The pool skipped the cell before it started (cancellation).
		return govern.StateCancelled, nil, "cell never started"
	default:
		return st.State, nil, st.Err
	}
}

// ServeRunner consults a uvmserved result cache before simulating
// locally: identical cells across the fleet (or from previous sweeps)
// are answered from the shared content-addressed cache instead of
// re-simulated. Any miss in capability or availability — units the wire
// form cannot carry exactly, server overload, server-side failure —
// falls back to fallback, so the cache tier is an accelerator, never a
// correctness dependency.
// lg may be nil; when set, each answered cell logs one "cell served
// from cache" line under the cell's trace (the trace rides the request
// to uvmserved, whose own access and cache-fill lines carry it too).
func ServeRunner(sc *client.Client, fallback Runner, lg *slog.Logger) Runner {
	return func(ctx context.Context, cs CellSpec) (govern.State, []string, string) {
		if row, hash, ok := serveLookup(ctx, sc, cs); ok {
			if lg != nil {
				lg.LogAttrs(ctx, slog.LevelInfo, "cell served from cache",
					slog.String(telemetry.KeyConfigHash, hash))
			}
			return govern.StateCompleted, row, ""
		}
		return fallback(ctx, cs)
	}
}

// serveLookup maps the cell onto a /v1/sim request when the mapping is
// exact, and returns the cached row (plus the server's content hash)
// on a completed answer.
func serveLookup(ctx context.Context, sc *client.Client, cs CellSpec) ([]string, string, bool) {
	req, ok := cs.SimRequest()
	if !ok {
		return nil, "", false // the wire form cannot express this cell exactly
	}
	res, err := sc.Sim(ctx, req)
	if err != nil || !res.OK() {
		return nil, "", false
	}
	var resp serve.SimResponse
	if res.Decode(&resp) != nil || resp.Status != string(govern.StateCompleted) || len(resp.Row) == 0 {
		return nil, "", false
	}
	return resp.Row, res.Hash, true
}

// WorkerConfig configures one stateless worker.
type WorkerConfig struct {
	// Coordinator is the coordinator base URL.
	Coordinator string
	// Name identifies the worker in coordinator audit logs.
	Name string
	// Runner executes cells (default LocalRunner).
	Runner Runner
	// HTTPClient overrides the transport (default: 30s per-call timeout).
	HTTPClient *http.Client
	// Logger receives structured worker progress lines (schema:
	// internal/telemetry); nil discards them. CLIs default to a text
	// handler so historical greps ("lease ...") keep matching.
	Logger *slog.Logger
	// Flight is the worker's flight recorder; with FlightDir set, an
	// injected failure (and any future failure trigger) dumps it.
	Flight    *telemetry.Flight
	FlightDir string

	// InjectDupComplete is a chaos hook: the worker re-sends its first
	// completion report, exercising the coordinator's dedup path.
	InjectDupComplete bool
	// InjectFail is a chaos hook: report the first N successfully
	// completed cells as failed instead, exercising the coordinator's
	// retry path and the worker's failure-triggered flight dump. Within
	// the coordinator's retry budget this perturbs nothing: the cell is
	// re-granted and the rerun's deterministic row merges identically.
	InjectFail int
	// SlowStart is a chaos hook: pause this long after acquiring each
	// lease before running, widening the window in which a kill -9 lands
	// on a held lease.
	SlowStart time.Duration
}

// Worker is the stateless lease-loop client: acquire, heartbeat, run,
// report, repeat until the coordinator says done.
type Worker struct {
	cfg      WorkerConfig
	hc       *http.Client
	everOK   bool // at least one successful exchange with the coordinator
	dupSent  bool
	failures int // injected failures delivered so far
}

// NewWorker builds a worker from cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Runner == nil {
		cfg.Runner = LocalRunner
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{cfg: cfg, hc: hc}
}

// logc emits one structured line under ctx (whose trace ID, when set,
// lands on the line automatically).
func (w *Worker) logc(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.LogAttrs(ctx, level, msg, attrs...)
	}
}

// post issues one JSON exchange against the coordinator.
func (w *Worker) post(ctx context.Context, path string, in, out interface{}) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// consecutive transport failures tolerated before the worker gives up
// on the coordinator.
const maxCoordinatorFailures = 10

// Run executes the lease loop until the coordinator reports the sweep
// done (returns nil), the context cancels (returns ctx.Err()), or the
// coordinator stays unreachable. A coordinator that disappears after
// the worker has talked to it successfully is treated as "sweep over"
// — stateless workers hold nothing worth an error exit.
func (w *Worker) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		_, err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.cfg.Name}, &lr)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			failures++
			if failures >= maxCoordinatorFailures {
				if w.everOK {
					w.logc(ctx, slog.LevelWarn, "coordinator gone; exiting clean",
						slog.Int("attempts", failures))
					return nil
				}
				return fmt.Errorf("dist: coordinator unreachable at %s: %w", w.cfg.Coordinator, err)
			}
			if !sleepCtx(ctx, 200*time.Millisecond) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		w.everOK = true
		switch {
		case lr.Done:
			w.logc(ctx, slog.LevelInfo, "sweep done; exiting")
			return nil
		case lr.Cell == nil:
			wait := time.Duration(lr.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
		default:
			w.runLease(ctx, lr)
		}
	}
}

// runLease executes one granted cell under its heartbeat. The lease's
// trace ID is stamped into the context first, so every line the worker
// (or the serve-tier client underneath it) logs for this cell carries
// the same trace the coordinator granted.
func (w *Worker) runLease(ctx context.Context, lr LeaseResponse) {
	ctx = telemetry.WithTraceID(ctx, lr.TraceID)
	w.logc(ctx, slog.LevelInfo, "lease acquired",
		slog.String("lease_id", lr.LeaseID),
		slog.Int("attempt", lr.Attempt),
		slog.String(telemetry.KeyConfigHash, lr.Hash),
		slog.String("label", lr.Label))
	// Verify the wire spec reproduces the coordinator's label: a skew
	// here would journal results under the wrong identity.
	if label, err := lr.Cell.Label(); err != nil || label != lr.Label {
		w.report(ctx, lr, govern.StateFailed, nil,
			fmt.Sprintf("label skew: coordinator %q vs worker %q (err %v)", lr.Label, label, err))
		return
	}
	if w.cfg.SlowStart > 0 && !sleepCtx(ctx, w.cfg.SlowStart) {
		return
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var abandoned bool
	var wg sync.WaitGroup
	hbStop := make(chan struct{})
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	if ttl > 0 {
		interval := ttl / 3
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-runCtx.Done():
					return
				case <-t.C:
					status, err := w.post(runCtx, "/v1/renew", RenewRequest{LeaseID: lr.LeaseID}, nil)
					if err == nil && status == http.StatusGone {
						// The lease was reassigned: stop burning CPU on a row
						// another worker now owns. (A completed row would still
						// have been accepted — rows are deterministic.)
						w.logc(runCtx, slog.LevelWarn, "lease gone; abandoning run",
							slog.String("lease_id", lr.LeaseID))
						abandoned = true
						cancel()
						return
					}
					// Transport errors are survivable: the run continues, and
					// if the lease expires meanwhile a late completed row is
					// still a harmless no-op at the coordinator.
				}
			}
		}()
	}

	state, row, errMsg := w.cfg.Runner(runCtx, *lr.Cell)
	close(hbStop)
	cancel()
	wg.Wait()

	if abandoned && state != govern.StateCompleted {
		// A stale failure verdict carries no information the coordinator
		// wants (it already reassigned); only completed rows are worth
		// reporting late.
		return
	}
	if state == govern.StateCompleted && w.failures < w.cfg.InjectFail {
		// Chaos: misreport the completed run as failed. The coordinator
		// re-grants the cell and the rerun's deterministic row merges
		// identically, so within the retry budget nothing downstream
		// changes — except that the failure path, including the
		// flight-recorder dump, actually runs.
		w.failures++
		state, row, errMsg = govern.StateFailed, nil, "injected failure (chaos)"
		w.logc(ctx, slog.LevelError, "lease run failed",
			slog.String("lease_id", lr.LeaseID), slog.String("err", errMsg))
		if w.cfg.Flight != nil && w.cfg.FlightDir != "" {
			if path, err := w.cfg.Flight.DumpToFile(w.cfg.FlightDir, "injected_failure"); err == nil {
				w.logc(ctx, slog.LevelWarn, "flight recorder dumped",
					slog.String("reason", "injected_failure"), slog.String("path", path))
			}
		}
	}
	w.logc(ctx, slog.LevelInfo, "lease finished",
		slog.String("lease_id", lr.LeaseID), slog.String("state", string(state)))
	w.report(ctx, lr, state, row, errMsg)
}

// report delivers a completion, retrying briefly over transport errors;
// a lost report degrades to a lease expiry at the coordinator.
func (w *Worker) report(ctx context.Context, lr LeaseResponse, state govern.State, row []string, errMsg string) {
	req := CompleteRequest{
		LeaseID: lr.LeaseID, Worker: w.cfg.Name, Hash: lr.Hash,
		Status: string(state), Err: errMsg, Row: row,
		TraceID: lr.TraceID,
	}
	sends := 1
	if w.cfg.InjectDupComplete && !w.dupSent && state == govern.StateCompleted {
		w.dupSent = true
		sends = 2
	}
	for s := 0; s < sends; s++ {
		for attempt := 0; attempt < 3; attempt++ {
			var resp CompleteResponse
			if _, err := w.post(ctx, "/v1/complete", req, &resp); err == nil {
				if resp.Duplicate {
					w.logc(ctx, slog.LevelInfo, "lease completion was a duplicate (harmless)",
						slog.String("lease_id", lr.LeaseID))
				}
				break
			} else if ctx.Err() != nil {
				return
			}
			sleepCtx(ctx, 100*time.Millisecond)
		}
	}
}

// sleepCtx sleeps d unless ctx cancels first; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
