package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"uvmsim/internal/serve"
	"uvmsim/internal/serve/client"
	"uvmsim/internal/telemetry"
)

// syncBuf is a concurrency-safe log sink: the serve tier, coordinator,
// and worker all log from their own goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// logLines parses a JSONL buffer, validating every line against the
// shared telemetry schema as it goes.
func logLines(t *testing.T, who string, raw []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := telemetry.ValidateLine(line); err != nil {
			t.Fatalf("%s log line %d invalid: %v\n%s", who, i+1, err, line)
		}
		m := map[string]any{}
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("%s log line %d: %v", who, i+1, err)
		}
		out = append(out, m)
	}
	return out
}

func str(m map[string]any, k string) string {
	s, _ := m[k].(string)
	return s
}

// tracesFor collects the trace_id of every line with the given msg.
func tracesFor(lines []map[string]any, msg string) map[string]int {
	got := map[string]int{}
	for _, m := range lines {
		if str(m, "msg") == msg {
			got[str(m, telemetry.KeyTraceID)]++
		}
	}
	return got
}

// TestTracePropagationEndToEnd drives the full fleet in-process —
// coordinator, one worker running cells through a real serve-tier cache,
// and a chaos shim that 429s the first /v1/sim call — and asserts one
// trace ID is greppable through every layer's structured logs:
//
//	coordinator "lease granted"  →  worker "lease acquired" / "cell
//	served from cache"  →  serve access log + "cache fill"  →
//	coordinator "completion received"
//
// including across the client retry the injected 429 forces (the retry
// re-sends the same X-Trace-ID and X-Request-ID).
func TestTracePropagationEndToEnd(t *testing.T) {
	var serveBuf, coordBuf, workerBuf syncBuf

	// Real serving tier with a JSON access log.
	serveLg := telemetry.New(&serveBuf, telemetry.Config{Format: "json", Component: "uvmserved"})
	srv := serve.New(serve.Config{QueueSlots: 16, RunSlots: 2, Log: serveLg})
	defer srv.Close()

	// Chaos shim around the serve handler: the first /v1/sim request is
	// rejected with 429 before it reaches the server, capturing the IDs
	// it carried so the test can prove the retry reuses them.
	var mu sync.Mutex
	var rejTrace, rejReq string
	inner := srv.Handler()
	serveSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		inject := rejTrace == "" && r.URL.Path == "/v1/sim"
		if inject {
			rejTrace = r.Header.Get(telemetry.HeaderTraceID)
			rejReq = r.Header.Get(telemetry.HeaderReqID)
		}
		mu.Unlock()
		if inject {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer serveSrv.Close()

	coordLg := telemetry.New(&coordBuf, telemetry.Config{Format: "json", Component: "coordinator"})
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{LeaseTTL: 30 * time.Second, Log: coordLg})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	coSrv := httptest.NewServer(co.Handler())
	defer coSrv.Close()

	workerLg := telemetry.New(&workerBuf, telemetry.Config{Format: "json", Component: "uvmworker"})
	sc := client.New(serveSrv.URL, nil).WithRetry(client.RetryPolicy{
		MaxRetries: 3,
		Base:       10 * time.Millisecond,
	})
	w := NewWorker(WorkerConfig{
		Coordinator: coSrv.URL,
		Name:        "w-trace",
		Logger:      workerLg,
		Runner:      ServeRunner(sc, LocalRunner, workerLg),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if got := len(res.Table.Rows); got != 6 {
		t.Fatalf("completed rows = %d, want 6", got)
	}

	// Quiesce the HTTP surfaces before reading the log sinks.
	serveSrv.Close()
	coSrv.Close()

	serveLines := logLines(t, "serve", serveBuf.Bytes())
	coordLines := logLines(t, "coordinator", coordBuf.Bytes())
	workerLines := logLines(t, "worker", workerBuf.Bytes())

	// Every cell's trace derives from the coordinator's root.
	root := co.TraceID()
	granted := tracesFor(coordLines, "lease granted")
	if len(granted) != 6 {
		t.Fatalf("distinct granted traces = %d, want 6: %v", len(granted), granted)
	}
	for i := 0; i < 6; i++ {
		want := telemetry.CellTraceID(root, i)
		if granted[want] == 0 {
			t.Errorf("no lease-granted line for trace %s", want)
		}
	}

	// Completions close the loop under the same traces.
	completed := tracesFor(coordLines, "completion received")
	for tr := range granted {
		if completed[tr] == 0 {
			t.Errorf("trace %s granted but never logged a completion", tr)
		}
	}

	// The worker's lifecycle lines ride the granted traces.
	for _, msg := range []string{"lease acquired", "lease finished", "cell served from cache"} {
		traces := tracesFor(workerLines, msg)
		if len(traces) == 0 {
			t.Errorf("worker logged no %q lines", msg)
		}
		for tr := range traces {
			if granted[tr] == 0 {
				t.Errorf("worker %q line carries unknown trace %q", msg, tr)
			}
		}
	}

	// The serve tier's access log and cache-fill lines carry the same
	// traces the coordinator granted — end-to-end propagation over HTTP.
	access := tracesFor(serveLines, "http request")
	fills := tracesFor(serveLines, "cache fill")
	if len(fills) == 0 {
		t.Fatal("serve tier logged no cache-fill lines")
	}
	for tr := range fills {
		if granted[tr] == 0 {
			t.Errorf("cache-fill trace %q was never granted", tr)
		}
	}
	for tr := range access {
		if granted[tr] == 0 {
			t.Errorf("serve access-log trace %q was never granted", tr)
		}
	}

	// The injected 429: its retry must have reached the server with the
	// SAME trace and request ID, landing one access-log line under them.
	if rejTrace == "" || rejReq == "" {
		t.Fatal("chaos shim never saw a /v1/sim request with telemetry headers")
	}
	if granted[rejTrace] == 0 {
		t.Errorf("429'd trace %q was never granted", rejTrace)
	}
	var retried bool
	for _, m := range serveLines {
		if str(m, "msg") == "http request" &&
			str(m, telemetry.KeyTraceID) == rejTrace &&
			str(m, telemetry.KeyReqID) == rejReq {
			retried = true
			break
		}
	}
	if !retried {
		t.Errorf("no serve access-log line for the retried request (trace %s, req %s)", rejTrace, rejReq)
	}

	// Sanity: the schema stamps every line with its component.
	for who, lines := range map[string][]map[string]any{
		"uvmserved": serveLines, "coordinator": coordLines, "uvmworker": workerLines,
	} {
		for _, m := range lines {
			if str(m, telemetry.KeyComponent) != who {
				t.Fatalf("%s line carries component %q: %v", who, str(m, telemetry.KeyComponent), m)
			}
		}
	}
}
