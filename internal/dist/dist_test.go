package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"uvmsim/internal/govern"
	"uvmsim/internal/sweep"
)

// smallSpec is the 2 footprints × 3 prefetch policies sweep (6 cells)
// the single-process tests use, at a tiny scale so cells finish in
// milliseconds.
func smallSpec() *sweep.Spec {
	return &sweep.Spec{
		Workload:       "regular",
		GPUMemoryBytes: 16 << 20,
		Seed:           1,
		Footprints:     []float64{0.5, 1.25},
		Prefetch:       []string{"none", "density", "adaptive"},
		Replay:         []string{"batchflush"},
		Evict:          []string{"lru"},
		Batch:          []int{256},
		VABlock:        []int64{2 << 20},
		Jobs:           1,
	}
}

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func (co *Coordinator) counter(t *testing.T, name string) uint64 {
	t.Helper()
	for _, s := range co.Samples() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

func TestBackoff(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	for _, tc := range []struct {
		n    int
		want time.Duration
	}{
		{0, 100 * time.Millisecond}, // clamped to 1
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second}, // capped
		{50, time.Second},
	} {
		if got := Backoff(tc.n, base, cap); got != tc.want {
			t.Errorf("Backoff(%d) = %s, want %s", tc.n, got, tc.want)
		}
	}
}

// The wire form must reproduce the coordinator's label exactly — the
// label is the journal identity, so any skew would corrupt recovery.
func TestCellSpecLabelRoundTrip(t *testing.T) {
	s := smallSpec()
	co, err := NewCoordinator(s, CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	configs, _ := s.Configs()
	for i, c := range configs {
		cs := cellSpecOf(s, c)
		label, err := cs.Label()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if want := c.Label(s); label != want {
			t.Errorf("cell %d label skew:\n  wire   %q\n  direct %q", i, label, want)
		}
	}
}

// An unrenewed lease expires, the cell is requeued under backoff, and
// the next grant carries attempt 2. The dead lease's heartbeat answers
// false.
func TestLeaseExpiryRequeuesUnderBackoff(t *testing.T) {
	clk := newFakeClock()
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		LeaseTTL: time.Second, BackoffBase: 100 * time.Millisecond, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	lr := co.Acquire("w1")
	if lr.Cell == nil || lr.Attempt != 1 {
		t.Fatalf("first acquire = %+v, want a cell at attempt 1", lr)
	}
	if !co.Renew(lr.LeaseID) {
		t.Fatal("renew of a live lease answered false")
	}

	// The renewal pushed the deadline out; expiry counts from it.
	clk.Advance(time.Second + time.Millisecond)
	if co.Renew(lr.LeaseID) {
		t.Fatal("renew of an expired lease answered true")
	}
	if got := co.counter(t, MetricLeasesExpired); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}

	// During backoff the cell is not leasable; other cells still are.
	// Lease everything else out, then ask again: only the backoff gate
	// remains, so the coordinator answers a wait hint.
	held := []LeaseResponse{}
	for {
		next := co.Acquire("w2")
		if next.Cell == nil {
			if next.WaitMs <= 0 {
				t.Fatalf("starved acquire = %+v, want a wait hint", next)
			}
			break
		}
		if next.Hash == lr.Hash {
			t.Fatalf("cell %s re-granted during backoff", lr.Hash)
		}
		held = append(held, next)
	}
	if len(held) != 5 {
		t.Fatalf("leased %d other cells, want 5", len(held))
	}

	// Past the backoff gate the cell comes back at attempt 2.
	clk.Advance(100 * time.Millisecond)
	retry := co.Acquire("w2")
	if retry.Cell == nil || retry.Hash != lr.Hash || retry.Attempt != 2 {
		t.Fatalf("post-backoff acquire = %+v, want cell %s attempt 2", retry, lr.Hash)
	}
	if got := co.counter(t, MetricRetries); got != 1 {
		t.Fatalf("retries counter = %d, want 1", got)
	}
}

// A cell that fails on every grant is quarantined once the retry budget
// is spent — not retried forever — and the sweep still settles.
func TestPoisonCellQuarantined(t *testing.T) {
	clk := newFakeClock()
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		RetryBudget: 1, BackoffBase: 10 * time.Millisecond, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	poison := co.Acquire("w1")
	var poisonGrants int
	for {
		lr := co.Acquire("w1")
		if lr.Cell == nil {
			if lr.Done {
				break
			}
			clk.Advance(time.Duration(lr.WaitMs) * time.Millisecond)
			continue
		}
		if lr.Hash == poison.Hash {
			poisonGrants++
		}
		status := string(govern.StateCompleted)
		errMsg := ""
		row := []string{"r-" + lr.Hash}
		if lr.Hash == poison.Hash || lr.LeaseID == poison.LeaseID {
			status, errMsg, row = string(govern.StateFailed), "simulated poison", nil
		}
		if _, err := co.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: status, Err: errMsg, Row: row}); err != nil {
			t.Fatal(err)
		}
	}
	// The first grant (held from the initial Acquire) plus one retry
	// spends a budget of 1. Fail the held lease too.
	if _, err := co.Complete(CompleteRequest{LeaseID: poison.LeaseID, Hash: poison.Hash, Status: string(govern.StateFailed), Err: "simulated poison"}); err != nil {
		t.Fatal(err)
	}
	// Drain: the poison cell gets its final retry, then quarantine.
	for {
		clk.Advance(50 * time.Millisecond)
		lr := co.Acquire("w1")
		if lr.Done {
			break
		}
		if lr.Cell != nil {
			if lr.Hash != poison.Hash {
				t.Fatalf("unexpected non-poison grant %s after drain", lr.Hash)
			}
			co.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateFailed), Err: "simulated poison"})
		}
	}

	st := co.Progress()
	if st.Quarantined != 1 || st.Completed != 5 || !st.Settled() {
		t.Fatalf("final status = %+v, want 5 completed + 1 quarantined, settled", st)
	}
	if got := co.counter(t, MetricQuarantined); got != 1 {
		t.Fatalf("quarantined counter = %d, want 1", got)
	}
	res, err := co.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var quarantined int
	for _, cs := range res.Statuses {
		if cs.State == govern.StateQuarantined {
			quarantined++
			if cs.Err == "" {
				t.Error("quarantined cell carries no error message")
			}
		}
	}
	if quarantined != 1 || len(res.Table.Rows) != 5 {
		t.Fatalf("result: %d quarantined statuses, %d rows; want 1 and 5", quarantined, len(res.Table.Rows))
	}
}

// A second completion for a settled cell is a harmless, counted no-op.
func TestDuplicateCompletionIsNoOp(t *testing.T) {
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	lr := co.Acquire("w1")
	req := CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateCompleted), Row: []string{"row"}}
	if resp, err := co.Complete(req); err != nil || resp.Duplicate {
		t.Fatalf("first completion: %+v, %v", resp, err)
	}
	resp, err := co.Complete(req)
	if err != nil || !resp.Duplicate {
		t.Fatalf("second completion: %+v, %v; want duplicate", resp, err)
	}
	if got := co.counter(t, MetricDuplicates); got != 1 {
		t.Fatalf("duplicates counter = %d, want 1", got)
	}
	if got := co.counter(t, MetricCompleted); got != 1 {
		t.Fatalf("completed counter = %d, want 1", got)
	}
}

// A stale worker's failure verdict must not disturb a reassignment in
// flight — only its completed row is lease-independent.
func TestStaleReportsAgainstReassignedLease(t *testing.T) {
	clk := newFakeClock()
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		LeaseTTL: time.Second, BackoffBase: 10 * time.Millisecond, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	old := co.Acquire("slow")
	clk.Advance(time.Second + time.Millisecond)
	if co.Renew(old.LeaseID) { // triggers the lazy expiry sweep
		t.Fatal("renew of an expired lease answered true")
	}
	clk.Advance(20 * time.Millisecond) // clear the reassignment backoff
	renewed := co.Acquire("fast")
	if renewed.Cell == nil || renewed.Hash != old.Hash {
		t.Fatalf("post-expiry acquire = %+v, want cell %s re-granted", renewed, old.Hash)
	}
	if renewed.LeaseID == old.LeaseID {
		t.Fatal("reassignment reused the old lease id")
	}

	// Stale failure: dropped as a duplicate, new lease undisturbed.
	resp, err := co.Complete(CompleteRequest{LeaseID: old.LeaseID, Hash: old.Hash, Status: string(govern.StateFailed), Err: "stale"})
	if err != nil || !resp.Duplicate {
		t.Fatalf("stale failure report: %+v, %v; want duplicate", resp, err)
	}
	if !co.Renew(renewed.LeaseID) {
		t.Fatal("current lease was disturbed by a stale failure report")
	}

	// Stale completed row: accepted — deterministic rows are
	// interchangeable, so a slow worker finishing late still counts.
	resp, err = co.Complete(CompleteRequest{LeaseID: old.LeaseID, Hash: old.Hash, Status: string(govern.StateCompleted), Row: []string{"late-row"}})
	if err != nil || resp.Duplicate {
		t.Fatalf("late completed row: %+v, %v; want accepted", resp, err)
	}
	// The fast worker's own completion is now the duplicate.
	resp, err = co.Complete(CompleteRequest{LeaseID: renewed.LeaseID, Hash: renewed.Hash, Status: string(govern.StateCompleted), Row: []string{"late-row"}})
	if err != nil || !resp.Duplicate {
		t.Fatalf("second completion: %+v, %v; want duplicate", resp, err)
	}
}

// Deterministic budget trips (deadline/livelock) are terminal, never
// retried; transient verdicts consume the retry budget.
func TestBudgetTripIsTerminal(t *testing.T) {
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	lr := co.Acquire("w1")
	if _, err := co.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateDeadline), Err: "sim budget"}); err != nil {
		t.Fatal(err)
	}
	st := co.Progress()
	if st.Skipped != 1 || st.Pending != 5 {
		t.Fatalf("status after deadline = %+v, want 1 skipped", st)
	}
	// The tripped cell is never re-granted.
	for {
		next := co.Acquire("w1")
		if next.Cell == nil {
			break
		}
		if next.Hash == lr.Hash {
			t.Fatal("deadline-tripped cell was re-granted")
		}
	}
}

// A coordinator crash mid-sweep resumes from the journal: completed
// rows replay without re-running, unfinished cells rerun, and the final
// table is byte-identical to an uninterrupted serial run.
func TestCoordinatorCrashResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "dist.jsonl")
	spec := smallSpec()

	serialTable, err := smallSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serialTable.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	// First incarnation: complete 3 cells with real rows, then "crash"
	// (drop the coordinator with one lease still outstanding).
	co1, err := NewCoordinator(spec, CoordinatorConfig{Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lr := co1.Acquire("w1")
		state, row, errMsg := LocalRunner(context.Background(), *lr.Cell)
		if _, err := co1.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(state), Row: row, Err: errMsg}); err != nil {
			t.Fatal(err)
		}
	}
	co1.Acquire("w1") // outstanding lease at crash time
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation resumes: 3 rows reused, 3 cells (including the
	// one that was leased at the crash) rerun.
	co2, err := NewCoordinator(spec, CoordinatorConfig{Journal: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if st := co2.Progress(); st.Reused != 3 || st.Completed != 3 || st.Pending != 3 {
		t.Fatalf("resumed status = %+v, want 3 reused completed + 3 pending", st)
	}
	var reruns int
	for {
		lr := co2.Acquire("w2")
		if lr.Done {
			break
		}
		if lr.Cell == nil {
			t.Fatalf("resume starved with %+v", co2.Progress())
		}
		reruns++
		state, row, errMsg := LocalRunner(context.Background(), *lr.Cell)
		if _, err := co2.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(state), Row: row, Err: errMsg}); err != nil {
			t.Fatal(err)
		}
	}
	if reruns != 3 {
		t.Fatalf("resume reran %d cells, want 3", reruns)
	}
	res, err := co2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Table.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("resumed distributed table differs from serial:\n--- serial ---\n%s\n--- resumed ---\n%s", want.String(), got.String())
	}
}

// End to end over real HTTP: three workers (one injecting a duplicate
// completion) drain the sweep through the coordinator handler, and the
// merged table is byte-identical to a single-process -jobs 1 run.
func TestDistributedByteIdenticalToSerial(t *testing.T) {
	serialTable, err := smallSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serialTable.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		w := NewWorker(WorkerConfig{
			Coordinator:       srv.URL,
			Name:              fmt.Sprintf("w%d", i),
			InjectDupComplete: i == 1,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}

	var got bytes.Buffer
	if err := res.Table.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("distributed table differs from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want.String(), got.String())
	}
	if got := co.counter(t, MetricDuplicates); got < 1 {
		t.Errorf("duplicates counter = %d, want >= 1 (dup was injected)", got)
	}
	if res.Reused != 0 || res.Skipped != 0 {
		t.Errorf("clean run reported reused=%d skipped=%d", res.Reused, res.Skipped)
	}
}

// Chaos: a worker dies (kill -9 shaped: heartbeats just stop) while
// holding a lease. The lease expires, the cell is reassigned to a
// surviving worker, and the sweep completes with the full table.
func TestWorkerDeathRecovery(t *testing.T) {
	serialTable, err := smallSpec().Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := serialTable.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{
		LeaseTTL: 200 * time.Millisecond, BackoffBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The victim acquires a lease, then "dies": its context is cut, so
	// heartbeats stop and no report is ever delivered.
	victimCtx, kill := context.WithCancel(ctx)
	acquired := make(chan struct{})
	victim := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		Name:        "victim",
		Runner: func(rctx context.Context, cs CellSpec) (govern.State, []string, string) {
			close(acquired)
			<-rctx.Done()
			return govern.StateCancelled, nil, "killed"
		},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim.Run(victimCtx)
	}()
	select {
	case <-acquired:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never acquired a lease")
	}
	kill()

	// A survivor drains the whole sweep, including the orphaned cell.
	survivor := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "survivor"})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := survivor.Run(ctx); err != nil {
			t.Errorf("survivor: %v", err)
		}
	}()

	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var got bytes.Buffer
	if err := res.Table.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("post-death table differs from serial:\n--- serial ---\n%s\n--- recovered ---\n%s", want.String(), got.String())
	}
	if got := co.counter(t, MetricLeasesExpired); got < 1 {
		t.Errorf("expired counter = %d, want >= 1 (victim died holding a lease)", got)
	}
	if got := co.counter(t, MetricRetries); got < 1 {
		t.Errorf("retries counter = %d, want >= 1 (orphaned cell was re-granted)", got)
	}
}

// Stop settles the sweep early: workers see done and exit, Wait returns
// with the cells that finished, and unstarted cells count as skipped.
func TestStopSettlesEarly(t *testing.T) {
	co, err := NewCoordinator(smallSpec(), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	lr := co.Acquire("w1")
	if _, err := co.Complete(CompleteRequest{LeaseID: lr.LeaseID, Hash: lr.Hash, Status: string(govern.StateCompleted), Row: []string{"row"}}); err != nil {
		t.Fatal(err)
	}
	co.Stop()
	if next := co.Acquire("w1"); !next.Done {
		t.Fatalf("acquire after Stop = %+v, want done", next)
	}
	res, err := co.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 || res.Skipped != 5 {
		t.Fatalf("stopped result: %d rows, %d skipped; want 1 and 5", len(res.Table.Rows), res.Skipped)
	}
}
