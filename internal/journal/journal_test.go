package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func rec(hash, status string, row []string) Record {
	r := Record{Label: "label-" + hash, Hash: hash, Seed: 1, Status: status, Attempt: 1, Row: row}
	if row != nil {
		r.Digest = RowDigest(row)
	}
	return r
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec("aaaa", "completed", []string{"50", "none", "1.5"}),
		rec("bbbb", "deadline", nil),
		rec("cccc", "completed", []string{"125", "density", "2.75"}),
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Hash != want[i].Hash || got[i].Status != want[i].Status {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// A crash mid-append tears the final line; Load must return every
// record before it and silently drop the tail.
func TestLoadToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	w.Append(rec("aaaa", "completed", []string{"1"}))
	w.Append(rec("bbbb", "completed", []string{"2"}))
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"label":"torn","hash":"cc`) // no closing brace, no newline
	f.Close()

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records from torn journal, want 2", len(got))
	}
}

// Interior corruption (flipped bytes mid-file, not a torn tail) ends
// the scan at the damaged line: everything before it loads, everything
// after it is discarded. This is deliberate, not accidental — once a
// middle line is damaged, append ordering can no longer be trusted, so
// recovery degrades to re-running the later cells rather than replaying
// rows whose provenance is suspect. This test pins that contract.
func TestLoadStopsAtInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	w.Append(rec("aaaa", "completed", []string{"1"}))
	w.Append(rec("bbbb", "completed", []string{"2"}))
	w.Append(rec("cccc", "completed", []string{"3"}))
	w.Append(rec("dddd", "completed", []string{"4"}))
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the second line so it is not valid
	// JSON. Lines 1 stays intact; lines 3 and 4 are intact on disk but
	// sit after the damage.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want >= 4", len(lines))
	}
	mid := len(lines[1]) / 2
	lines[1][mid], lines[1][mid+1] = 0xff, 0x00
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Hash != "aaaa" {
		hashes := make([]string, len(got))
		for i, r := range got {
			hashes[i] = r.Hash
		}
		t.Fatalf("interior corruption: loaded %v, want only [aaaa] (records after the damage must be discarded)", hashes)
	}
	// Latest over the survivors plans a resume that reruns every cell at
	// or after the damage — never one that trusts a post-damage row.
	m := Latest(got)
	for _, h := range []string{"bbbb", "cccc", "dddd"} {
		if _, ok := m[h]; ok {
			t.Errorf("cell %s survived interior corruption; it must rerun", h)
		}
	}
}

// A corrupt interior line that still parses as JSON but fails its row
// digest is dropped individually — the scan continues, because the line
// framing itself was intact.
func TestLoadInteriorBadDigestDropsOnlyThatRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	mangled := rec("bbbb", "completed", []string{"2"})
	mangled.Digest = "0000000000000000"
	w.Append(rec("aaaa", "completed", []string{"1"}))
	w.Append(mangled)
	w.Append(rec("cccc", "completed", []string{"3"}))
	w.Close()
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Hash != "aaaa" || got[1].Hash != "cccc" {
		t.Fatalf("digest-damaged interior record: loaded %v, want [aaaa cccc]", got)
	}
}

// A completed record whose row was damaged on disk must be dropped so
// the cell reruns instead of emitting corrupt output.
func TestLoadRejectsBadDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	good := rec("aaaa", "completed", []string{"1", "2"})
	bad := rec("bbbb", "completed", []string{"3", "4"})
	bad.Digest = "0000000000000000"
	w.Append(good)
	w.Append(bad)
	w.Close()
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Hash != "aaaa" {
		t.Fatalf("Load kept %v, want only the intact record", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	got, err := Load(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing journal: %v, %v; want nil, nil", got, err)
	}
}

// Open must append to an existing journal (the resume path), and Latest
// must fold retries last-record-wins.
func TestOpenAppendsAndLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	w.Append(rec("aaaa", "failed", nil))
	w.Close()
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(rec("aaaa", "completed", []string{"ok"}))
	w2.Append(rec("bbbb", "completed", []string{"ok2"}))
	w2.Close()
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	m := Latest(recs)
	if m["aaaa"].Status != "completed" {
		t.Errorf("Latest kept %q for retried cell, want the completed retry", m["aaaa"].Status)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	w, _ := Create(path)
	w.Append(rec("aaaa", "failed", nil))
	w.Append(rec("aaaa", "completed", []string{"1"}))
	w.Close()
	recs, _ := Load(path)
	kept := make([]Record, 0, 1)
	for _, r := range Latest(recs) {
		kept = append(kept, r)
	}
	if err := Compact(path, kept); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Status != "completed" {
		t.Fatalf("compacted journal = %v", recs)
	}
}

func TestHashStability(t *testing.T) {
	if Hash("x") != Hash("x") {
		t.Error("Hash not deterministic")
	}
	if Hash("x") == Hash("y") {
		t.Error("distinct labels collide")
	}
	if len(Hash("x")) != 16 {
		t.Errorf("hash length %d, want 16", len(Hash("x")))
	}
	if RowDigest([]string{"ab", "c"}) == RowDigest([]string{"a", "bc"}) {
		t.Error("RowDigest must be injective over cell boundaries")
	}
}
