// Package journal implements the crash-safe sweep journal: an
// append-only JSONL file with one record per finished cell, keyed by a
// hash of the cell's full configuration label. A killed sweep leaves a
// journal whose completed records replay on resume, so hours of
// deterministic simulation survive a SIGINT or OOM kill.
//
// Crash safety comes from three properties:
//
//   - Each record is one JSON line issued as a single Write to an
//     O_APPEND descriptor and fsynced, so records from concurrent
//     workers never interleave and a completed record survives a crash.
//   - A crash mid-append can only truncate the final line; Load detects
//     the torn tail (JSON parse failure) and discards it, treating that
//     cell as never finished.
//   - Completed records carry a digest of their result row; a record
//     whose digest does not match its row is discarded, so disk
//     corruption degrades to re-running a cell, never to emitting a
//     corrupt result.
//
// Compact rewrites a journal through the atomic temp-file+rename path so
// a resumed sweep can fold retries and drop stale records without any
// window where the journal is invalid on disk.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"

	"uvmsim/internal/atomicio"
	"uvmsim/internal/confighash"
)

// Record is one journal line: the terminal status of one cell attempt.
type Record struct {
	// Label is the cell's full replay recipe (every knob plus the seed).
	Label string `json:"label"`
	// Hash identifies the cell configuration (see Hash); resume matches
	// records to cells by this key, so edits to the spec simply orphan
	// the records they invalidate.
	Hash string `json:"hash"`
	// Seed is the simulation seed, duplicated out of the label for
	// tooling.
	Seed uint64 `json:"seed"`
	// Status is the govern.State string: completed, cancelled, deadline,
	// livelock, panicked, failed.
	Status string `json:"status"`
	// Attempt counts executions of this cell so far (1 = first run).
	Attempt int `json:"attempt,omitempty"`
	// Err carries the failure message for non-completed records.
	Err string `json:"err,omitempty"`
	// Row holds the rendered result-table cells for completed records.
	Row []string `json:"row,omitempty"`
	// Digest authenticates Row (see RowDigest).
	Digest string `json:"digest,omitempty"`
}

// Hash derives the configuration key for a cell label via the shared
// confighash format (first 16 hex characters of SHA-256), so journal
// records and the serving layer's result cache address identical
// configurations with identical keys.
func Hash(label string) string { return confighash.Sum(label) }

// RowDigest hashes a rendered result row so Load can reject records
// whose row bytes were damaged after the append.
func RowDigest(row []string) string { return confighash.Rows(row) }

// Writer appends records to a journal file. Safe for concurrent use by
// sweep workers.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Create opens a fresh journal at path, truncating any previous one.
func Create(path string) (*Writer, error) {
	return open(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC)
}

// Open opens an existing journal for appending (creating it when
// missing) — the resume path.
func Open(path string) (*Writer, error) {
	return open(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND)
}

func open(path string, flags int) (*Writer, error) {
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f}, nil
}

// Append writes one record as a single JSONL line and syncs it to
// stable storage before returning, so a record that Append accepted
// survives any subsequent crash.
func (w *Writer) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Load reads every intact record from path. A torn or corrupt line
// (crash mid-append) ends the scan: everything before it is returned,
// everything after is discarded, because a damaged middle means append
// ordering can no longer be trusted. Completed records with a row whose
// digest does not verify are dropped individually. A missing file
// yields no records and no error.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			break // torn tail from a crash: keep what parsed, drop the rest
		}
		if len(r.Row) > 0 && r.Digest != RowDigest(r.Row) {
			continue // damaged row: forget this record, the cell reruns
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return out, err
	}
	return out, nil
}

// Latest folds records into a last-record-wins map by cell hash — the
// view resume plans from (a retry's record supersedes the failure it
// retried).
func Latest(records []Record) map[string]Record {
	m := make(map[string]Record, len(records))
	for _, r := range records {
		m[r.Hash] = r
	}
	return m
}

// Compact rewrites path to contain exactly records, through the atomic
// temp-file+rename path, so resumed sweeps can drop superseded attempts
// without a moment where the on-disk journal is partial.
func Compact(path string, records []Record) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		for _, r := range records {
			line, err := json.Marshal(r)
			if err != nil {
				return err
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		return nil
	})
}
