// Package thrash implements block-level thrashing detection with
// pinning, modeled on the production driver's uvm_perf_thrashing
// module. The paper (§V, §VI-A) shows that fault-only LRU can evict hot
// VABlocks immediately before they are paged back in; this detector
// notices blocks that bounce — get re-allocated shortly after eviction —
// and pins them (excludes them from victim selection) for a cooldown,
// breaking the evict-and-refault cycle.
//
// Proximity is measured in global eviction counts rather than wall time,
// which makes the detector scale-free: "shortly after" means "within the
// last W evictions", however fast or slow the machine runs.
//
// The detector wraps any eviction policy, so it composes with lru, fifo,
// random, and access-aware.
package thrash

import (
	"fmt"

	"uvmsim/internal/evict"
	"uvmsim/internal/mem"
)

// Config tunes the detector. All knobs are counted in global evictions.
type Config struct {
	// WindowEvictions: a block re-allocated within this many global
	// evictions of its own eviction counts as a bounce.
	WindowEvictions uint64
	// Threshold is how many consecutive bounces pin a block.
	Threshold int
	// PinEvictions is how many global evictions a pin lease lasts.
	PinEvictions uint64
}

// DefaultConfig pins a block on its first bounce inside a 16-eviction
// window, for a 64-eviction lease: a block that came straight back after
// eviction is exactly the evict-before-use case worth protecting.
func DefaultConfig() Config {
	return Config{WindowEvictions: 16, Threshold: 1, PinEvictions: 64}
}

// Stats reports detector activity.
type Stats struct {
	ThrashEvents uint64 // re-allocations inside the window
	Pins         uint64 // blocks pinned
	VictimSkips  uint64 // victim candidates skipped because pinned
}

// Detector wraps an eviction policy with thrash pinning. It implements
// evict.Policy.
type Detector struct {
	cfg   Config
	inner evict.Policy

	clock       uint64 // global eviction counter
	evictedAt   map[mem.VABlockID]uint64
	bounces     map[mem.VABlockID]int
	pinnedUntil map[mem.VABlockID]uint64

	stats Stats
}

// New wraps inner with a detector.
func New(cfg Config, inner evict.Policy) (*Detector, error) {
	if inner == nil {
		return nil, fmt.Errorf("thrash: inner policy is required")
	}
	if cfg.Threshold < 1 {
		return nil, fmt.Errorf("thrash: threshold %d must be >= 1", cfg.Threshold)
	}
	if cfg.WindowEvictions == 0 || cfg.PinEvictions == 0 {
		return nil, fmt.Errorf("thrash: window and pin lease must be positive")
	}
	return &Detector{
		cfg:         cfg,
		inner:       inner,
		evictedAt:   make(map[mem.VABlockID]uint64),
		bounces:     make(map[mem.VABlockID]int),
		pinnedUntil: make(map[mem.VABlockID]uint64),
	}, nil
}

// Name implements evict.Policy.
func (d *Detector) Name() string { return d.inner.Name() + "+thrash" }

// Len implements evict.Policy.
func (d *Detector) Len() int { return d.inner.Len() }

// Stats returns detector activity counters.
func (d *Detector) Stats() Stats { return d.stats }

// Pinned reports whether block id currently holds a pin lease.
func (d *Detector) Pinned(id mem.VABlockID) bool {
	until, ok := d.pinnedUntil[id]
	if !ok {
		return false
	}
	if d.clock >= until {
		delete(d.pinnedUntil, id)
		return false
	}
	return true
}

// Insert implements evict.Policy: a (re-)allocation. Re-allocation soon
// (in eviction counts) after eviction is the thrash signal.
func (d *Detector) Insert(b *mem.VABlock) {
	if at, ok := d.evictedAt[b.ID]; ok {
		if d.clock-at <= d.cfg.WindowEvictions {
			d.bounces[b.ID]++
			d.stats.ThrashEvents++
			if d.bounces[b.ID] >= d.cfg.Threshold && !d.Pinned(b.ID) {
				d.pinnedUntil[b.ID] = d.clock + d.cfg.PinEvictions
				d.stats.Pins++
			}
		} else {
			d.bounces[b.ID] = 0 // the bounce streak cooled off
		}
		delete(d.evictedAt, b.ID)
	}
	d.inner.Insert(b)
}

// Touch implements evict.Policy.
func (d *Detector) Touch(b *mem.VABlock) { d.inner.Touch(b) }

// Remove implements evict.Policy: an eviction (or teardown).
func (d *Detector) Remove(b *mem.VABlock) {
	d.clock++
	d.evictedAt[b.ID] = d.clock
	d.inner.Remove(b)
}

// Victim implements evict.Policy: the inner victim, skipping pinned
// blocks by cycling them to the MRU side, bounded to one full rotation
// so eviction always stays possible even when everything is pinned.
func (d *Detector) Victim() *mem.VABlock {
	n := d.inner.Len()
	for i := 0; i < n; i++ {
		v := d.inner.Victim()
		if v == nil {
			return nil
		}
		if !d.Pinned(v.ID) {
			return v
		}
		d.stats.VictimSkips++
		d.inner.Touch(v)
	}
	return d.inner.Victim()
}
