package thrash

import (
	"testing"

	"uvmsim/internal/evict"
	"uvmsim/internal/mem"
)

func newDetector(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d, err := New(cfg, evict.NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func block(id int) *mem.VABlock { return &mem.VABlock{ID: mem.VABlockID(id)} }

// churn advances the detector's eviction clock by cycling n distinct
// sacrificial blocks (distinct so they never bounce themselves).
func churn(d *Detector, n int) {
	for i := 0; i < n; i++ {
		b := block(10000 + i)
		d.Insert(b)
		d.Remove(b)
	}
}

func TestBounceCountingAndPinning(t *testing.T) {
	cfg := Config{WindowEvictions: 16, Threshold: 2, PinEvictions: 100}
	d := newDetector(t, cfg)
	b := block(1)
	// Two fast evict/realloc bounces pin the block.
	d.Insert(b)
	d.Remove(b)
	d.Insert(b) // bounce 1 (0 evictions in between)
	d.Remove(b)
	d.Insert(b) // bounce 2 -> pinned
	if !d.Pinned(b.ID) {
		t.Fatal("block not pinned after threshold bounces")
	}
	st := d.Stats()
	if st.ThrashEvents != 2 || st.Pins != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSlowReallocDoesNotCount(t *testing.T) {
	cfg := Config{WindowEvictions: 4, Threshold: 1, PinEvictions: 100}
	d := newDetector(t, cfg)
	b := block(1)
	d.Insert(b)
	d.Remove(b)
	churn(d, 10) // push the re-allocation outside the window
	d.Insert(b)
	if d.Pinned(b.ID) || d.Stats().ThrashEvents != 0 {
		t.Error("slow re-allocation counted as thrash")
	}
}

func TestPinExpires(t *testing.T) {
	cfg := Config{WindowEvictions: 16, Threshold: 1, PinEvictions: 5}
	d := newDetector(t, cfg)
	b := block(1)
	d.Insert(b)
	d.Remove(b)
	d.Insert(b) // pinned for 5 evictions
	if !d.Pinned(b.ID) {
		t.Fatal("not pinned")
	}
	churn(d, 6)
	if d.Pinned(b.ID) {
		t.Error("pin did not expire")
	}
}

func TestVictimSkipsPinned(t *testing.T) {
	cfg := Config{WindowEvictions: 16, Threshold: 1, PinEvictions: 1000}
	d := newDetector(t, cfg)
	hot, cold := block(1), block(2)
	d.Insert(hot)
	d.Remove(hot)
	d.Insert(hot) // pinned
	d.Insert(cold)
	// LRU order would pick hot (older); the pin redirects to cold.
	if v := d.Victim(); v != cold {
		t.Fatalf("victim = %v, want cold", v.ID)
	}
	if d.Stats().VictimSkips == 0 {
		t.Error("no victim skips recorded")
	}
}

func TestVictimFallsBackWhenAllPinned(t *testing.T) {
	cfg := Config{WindowEvictions: 16, Threshold: 1, PinEvictions: 1000}
	d := newDetector(t, cfg)
	for i := 1; i <= 3; i++ {
		b := block(i)
		d.Insert(b)
		d.Remove(b)
		d.Insert(b) // all pinned
	}
	if v := d.Victim(); v == nil {
		t.Fatal("no victim despite fallback")
	}
}

func TestEmptyDetector(t *testing.T) {
	d := newDetector(t, DefaultConfig())
	if d.Victim() != nil || d.Len() != 0 {
		t.Error("empty detector misbehaved")
	}
	if d.Name() != "lru+thrash" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestBounceStreakResetsAfterCoolOff(t *testing.T) {
	cfg := Config{WindowEvictions: 4, Threshold: 2, PinEvictions: 100}
	d := newDetector(t, cfg)
	b := block(1)
	d.Insert(b)
	d.Remove(b)
	d.Insert(b) // bounce 1
	d.Remove(b)
	churn(d, 10) // cool off
	d.Insert(b)  // streak reset, not a bounce
	d.Remove(b)
	d.Insert(b) // bounce 1 again
	if d.Pinned(b.ID) {
		t.Error("pinned despite streak reset")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil inner accepted")
	}
	bad := DefaultConfig()
	bad.Threshold = 0
	if _, err := New(bad, evict.NewLRU()); err == nil {
		t.Error("zero threshold accepted")
	}
	bad = DefaultConfig()
	bad.WindowEvictions = 0
	if _, err := New(bad, evict.NewLRU()); err == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultConfig()
	bad.PinEvictions = 0
	if _, err := New(bad, evict.NewLRU()); err == nil {
		t.Error("zero pin lease accepted")
	}
}

// The detector preserves the wrapped policy's membership semantics under
// interleaved operations.
func TestDetectorDelegatesMembership(t *testing.T) {
	d := newDetector(t, DefaultConfig())
	blocks := make([]*mem.VABlock, 8)
	for i := range blocks {
		blocks[i] = block(i)
		d.Insert(blocks[i])
	}
	if d.Len() != 8 {
		t.Fatalf("Len = %d", d.Len())
	}
	d.Touch(blocks[0])
	d.Remove(blocks[3])
	if d.Len() != 7 {
		t.Fatalf("Len after remove = %d", d.Len())
	}
	v := d.Victim()
	if v == nil || v == blocks[3] {
		t.Fatalf("victim = %v", v)
	}
}
