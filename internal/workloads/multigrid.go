package workloads

import (
	"fmt"
	"math"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// TeaLeaf models the TeaLeaf heat-conduction CG solver: a 2D g×g double
// grid with several working vectors (u, p, r, w). Each CG iteration
// performs a 5-point stencil sweep (w = A·p, touching each p page and its
// row neighbors), reductions over r and w, and axpy updates of u, p, r —
// repeated full-range sweeps with strong page reuse across vectors.
func TeaLeaf(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	const vectors = 4
	const iters = 3
	per := bytes / vectors
	if per < mem.PageSize {
		return nil, fmt.Errorf("workloads: tealeaf needs at least %d bytes", vectors*mem.PageSize)
	}
	// Square grid of float64: g*g*8 = per.
	g := int(math.Sqrt(float64(per) / 8))
	if g < 1 {
		g = 1
	}
	alloc := func(label string) (*mem.Range, error) { return a.MallocManaged(per, label) }
	u, err := alloc("u")
	if err != nil {
		return nil, err
	}
	pv, err := alloc("p")
	if err != nil {
		return nil, err
	}
	r, err := alloc("r")
	if err != nil {
		return nil, err
	}
	w, err := alloc("w")
	if err != nil {
		return nil, err
	}
	pages := u.Pages
	rowPages := int64(g) * 8 / mem.PageSize // pages per grid row (>=0)
	if rowPages < 1 {
		rowPages = 1
	}
	var warps []gpusim.WarpProgram
	chunk := p.WarpAccesses
	for it := 0; it < iters; it++ {
		// Stencil sweep: per page of p, touch the page and its row
		// neighbors (previous/next grid row), write w.
		for s := 0; s < pages; s += chunk {
			e := s + chunk
			if e > pages {
				e = pages
			}
			var accs []gpusim.Access
			for i := s; i < e; i++ {
				accs = append(accs, gpusim.Access{Page: pageAt(pv, int64(i))})
				if up := int64(i) - rowPages; up >= 0 {
					accs = append(accs, gpusim.Access{Page: pageAt(pv, up)})
				}
				if dn := int64(i) + rowPages; dn < int64(pages) {
					accs = append(accs, gpusim.Access{Page: pageAt(pv, dn)})
				}
				accs = append(accs, gpusim.Access{Page: pageAt(w, int64(i)), Write: true})
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
		// Reduction + axpy updates: sweep r, w, then update u, p, r.
		for s := 0; s < pages; s += chunk {
			e := s + chunk
			if e > pages {
				e = pages
			}
			var accs []gpusim.Access
			for i := s; i < e; i++ {
				accs = append(accs,
					gpusim.Access{Page: pageAt(r, int64(i))},
					gpusim.Access{Page: pageAt(w, int64(i))},
					gpusim.Access{Page: pageAt(u, int64(i)), Write: true},
					gpusim.Access{Page: pageAt(pv, int64(i)), Write: true},
					gpusim.Access{Page: pageAt(r, int64(i)), Write: true},
				)
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
	}
	return assemble("tealeaf", warps, p), nil
}

// HPGMG models a geometric multigrid V-cycle: a hierarchy of grids, each
// 1/8 the size of the previous (3D halving). Each cycle smooths at every
// level on the way down (sweep + boundary gathers), solves the coarsest,
// and interpolates back up. The boundary gathers produce the random-like
// segments the paper observes for hpgmg.
func HPGMG(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	const levels = 4
	const cycles = 2
	// Geometric series: level0*(1 + 1/8 + 1/64 + ...) ~= bytes.
	level0 := bytes * 7 / 8
	if level0 < mem.PageSize {
		return nil, fmt.Errorf("workloads: hpgmg needs at least %d bytes", mem.PageSize*8)
	}
	type level struct {
		x, rhs *mem.Range
	}
	var lv []level
	size := level0 / 2 // two vectors per level
	for l := 0; l < levels; l++ {
		if size < mem.PageSize {
			break
		}
		x, err := a.MallocManaged(size, fmt.Sprintf("mg_x%d", l))
		if err != nil {
			return nil, err
		}
		rhs, err := a.MallocManaged(size, fmt.Sprintf("mg_rhs%d", l))
		if err != nil {
			return nil, err
		}
		lv = append(lv, level{x, rhs})
		size /= 8
	}
	rng := sim.NewRNG(p.Seed + 7)
	var warps []gpusim.WarpProgram
	chunk := p.WarpAccesses

	smooth := func(l level) {
		pages := l.x.Pages
		for s := 0; s < pages; s += chunk {
			e := s + chunk
			if e > pages {
				e = pages
			}
			var accs []gpusim.Access
			for i := s; i < e; i++ {
				accs = append(accs,
					gpusim.Access{Page: pageAt(l.rhs, int64(i))},
					gpusim.Access{Page: pageAt(l.x, int64(i)), Write: true},
				)
			}
			// Boundary exchange: a few scattered gathers across the level.
			for j := 0; j < 2; j++ {
				accs = append(accs, gpusim.Access{Page: pageAt(l.x, int64(rng.Intn(pages)))})
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
	}
	transfer := func(fine, coarse level, down bool) {
		pages := coarse.x.Pages
		for s := 0; s < pages; s += chunk {
			e := s + chunk
			if e > pages {
				e = pages
			}
			var accs []gpusim.Access
			for i := s; i < e; i++ {
				fi := int64(i) * 8
				if fi >= int64(fine.x.Pages) {
					fi = int64(fine.x.Pages) - 1
				}
				if down { // restrict: read fine, write coarse rhs
					accs = append(accs,
						gpusim.Access{Page: pageAt(fine.x, fi)},
						gpusim.Access{Page: pageAt(coarse.rhs, int64(i)), Write: true},
					)
				} else { // prolong: read coarse, write fine
					accs = append(accs,
						gpusim.Access{Page: pageAt(coarse.x, int64(i))},
						gpusim.Access{Page: pageAt(fine.x, fi), Write: true},
					)
				}
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
	}

	for c := 0; c < cycles; c++ {
		for l := 0; l < len(lv); l++ {
			smooth(lv[l])
			if l+1 < len(lv) {
				transfer(lv[l], lv[l+1], true)
			}
		}
		for l := len(lv) - 2; l >= 0; l-- {
			transfer(lv[l], lv[l+1], false)
			smooth(lv[l])
		}
	}
	return assemble("hpgmg", warps, p), nil
}
