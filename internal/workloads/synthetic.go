package workloads

import (
	"fmt"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// PageTouchRegular is the paper's "regular access" kernel: each thread
// writes exactly one page corresponding to its global ID, so access is
// regular within a warp and block.
func PageTouchRegular(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	r, err := a.MallocManaged(bytes, "touch")
	if err != nil {
		return nil, err
	}
	var warps []gpusim.WarpProgram
	for start := int64(0); start < int64(r.Pages); start += int64(p.WarpAccesses) {
		n := int64(p.WarpAccesses)
		if start+n > int64(r.Pages) {
			n = int64(r.Pages) - start
		}
		warps = append(warps, gpusim.StridedProgram{
			Start: pageAt(r, start), Stride: 1, Count: int(n), Repeat: 1, Write: true,
		})
	}
	return assemble("regular", warps, p), nil
}

// PageTouchRandom is the paper's "random access" kernel: each thread
// writes a single, random, unique page from the global buffer.
func PageTouchRandom(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	r, err := a.MallocManaged(bytes, "touch")
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	perm := rng.Perm(r.Pages)
	accs := make([]gpusim.Access, r.Pages)
	for i, pg := range perm {
		accs[i] = gpusim.Access{Page: pageAt(r, int64(pg)), Write: true}
	}
	return assemble("random", sliceWarps(accs, p), p), nil
}

// StreamTriad reproduces GPU-STREAM's triad kernel a[i] = b[i] + s*c[i]
// over three equal vectors. The three-vector pattern enforces the page
// access dependency ordering the paper highlights: for each chunk the
// warp reads the B page and C page, then writes the A page.
func StreamTriad(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	per := bytes / 3
	if per < mem.PageSize {
		return nil, fmt.Errorf("workloads: stream needs at least %d bytes", 3*mem.PageSize)
	}
	va, err := a.MallocManaged(per, "a")
	if err != nil {
		return nil, err
	}
	vb, err := a.MallocManaged(per, "b")
	if err != nil {
		return nil, err
	}
	vc, err := a.MallocManaged(per, "c")
	if err != nil {
		return nil, err
	}
	pages := va.Pages
	if vb.Pages < pages {
		pages = vb.Pages
	}
	if vc.Pages < pages {
		pages = vc.Pages
	}
	// One warp handles WarpAccesses/3 page triples.
	triplesPerWarp := p.WarpAccesses / 3
	if triplesPerWarp < 1 {
		triplesPerWarp = 1
	}
	var warps []gpusim.WarpProgram
	for start := 0; start < pages; start += triplesPerWarp {
		end := start + triplesPerWarp
		if end > pages {
			end = pages
		}
		accs := make([]gpusim.Access, 0, 3*(end-start))
		for i := start; i < end; i++ {
			accs = append(accs,
				gpusim.Access{Page: pageAt(vb, int64(i))},
				gpusim.Access{Page: pageAt(vc, int64(i))},
				gpusim.Access{Page: pageAt(va, int64(i)), Write: true},
			)
		}
		warps = append(warps, gpusim.SliceProgram(accs))
	}
	return assemble("stream", warps, p), nil
}

// HotCold is an extension workload (not in the paper's suite) built to
// exercise the §V-A eviction pathology directly: a small hot range is
// re-read throughout the run while a large cold range streams past once.
// Fault-only LRU lets the fully-resident hot blocks sink to the LRU tail
// and evicts them ahead of the dead cold data, producing the
// evict-then-refault cycle; access-aware eviction and thrash pinning
// exist to fix exactly this.
func HotCold(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	hotBytes := bytes / 8
	coldBytes := bytes - hotBytes
	if hotBytes < mem.PageSize || coldBytes < mem.PageSize {
		return nil, fmt.Errorf("workloads: hotcold needs at least %d bytes", 16*mem.PageSize)
	}
	hot, err := a.MallocManaged(hotBytes, "hot")
	if err != nil {
		return nil, err
	}
	cold, err := a.MallocManaged(coldBytes, "cold")
	if err != nil {
		return nil, err
	}
	// Each warp interleaves a chunk of the cold stream with re-reads of
	// the hot range (round-robin over hot pages, so every hot page is
	// re-touched many times across the run).
	chunk := p.WarpAccesses / 2
	if chunk < 1 {
		chunk = 1
	}
	// Two passes over the cold stream: the second pass re-creates the
	// eviction pressure after the hot set has already bounced once, which
	// is where thrash pinning can act.
	const passes = 2
	var warps []gpusim.WarpProgram
	hotCursor := int64(0)
	for pass := 0; pass < passes; pass++ {
		for s := 0; s < cold.Pages; s += chunk {
			e := s + chunk
			if e > cold.Pages {
				e = cold.Pages
			}
			accs := make([]gpusim.Access, 0, 2*(e-s))
			for i := s; i < e; i++ {
				accs = append(accs,
					gpusim.Access{Page: pageAt(hot, hotCursor%int64(hot.Pages))},
					gpusim.Access{Page: pageAt(cold, int64(i)), Write: true},
				)
				hotCursor++
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
	}
	return assemble("hotcold", warps, p), nil
}
