package workloads

import (
	"fmt"
	"math"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
)

// sgemmTile is the thread-block tile edge (elements).
const sgemmTile = 64

// SGEMM builds a tiled single-precision matrix multiply C = A*B with
// n×n matrices. Each thread block computes one C tile, sweeping the A row
// panel and B column panel per k-step — the panel-sweep pattern with heavy
// on-GPU reuse the paper shows for sgemm (Fig. 7), which the driver cannot
// see once pages are resident.
func SGEMM(a Allocator, n int, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	if n < sgemmTile {
		return nil, fmt.Errorf("workloads: sgemm n=%d below tile %d", n, sgemmTile)
	}
	n = n / sgemmTile * sgemmTile
	const elem = 4 // float32
	rowBytes := int64(n) * elem
	matBytes := rowBytes * int64(n)
	ma, err := a.MallocManaged(matBytes, "A")
	if err != nil {
		return nil, err
	}
	mb, err := a.MallocManaged(matBytes, "B")
	if err != nil {
		return nil, err
	}
	mc, err := a.MallocManaged(matBytes, "C")
	if err != nil {
		return nil, err
	}
	tiles := n / sgemmTile

	// tilePages appends the page ids covering rows [r0,r0+T) x cols
	// [c0,c0+T) of the matrix starting at range m, deduplicating within
	// the tile.
	tilePages := func(dst []gpusim.Access, m *mem.Range, r0, c0 int, write bool) []gpusim.Access {
		var last mem.PageID
		haveLast := false
		for r := r0; r < r0+sgemmTile; r++ {
			off0 := int64(r)*rowBytes + int64(c0)*elem
			off1 := off0 + sgemmTile*elem - 1
			for pg := off0 / mem.PageSize; pg <= off1/mem.PageSize; pg++ {
				id := pageAt(m, pg)
				if haveLast && id == last {
					continue
				}
				last, haveLast = id, true
				dst = append(dst, gpusim.Access{Page: id, Write: write})
			}
		}
		return dst
	}

	var warps []gpusim.WarpProgram
	var blockSizes []int
	for ti := 0; ti < tiles; ti++ {
		for tj := 0; tj < tiles; tj++ {
			var accs []gpusim.Access
			for tk := 0; tk < tiles; tk++ {
				accs = tilePages(accs, ma, ti*sgemmTile, tk*sgemmTile, false)
				accs = tilePages(accs, mb, tk*sgemmTile, tj*sgemmTile, false)
			}
			accs = tilePages(accs, mc, ti*sgemmTile, tj*sgemmTile, true)
			// Split the block's work across its warps as contiguous chunks.
			per := (len(accs) + p.WarpsPerBlock - 1) / p.WarpsPerBlock
			nw := 0
			for s := 0; s < len(accs); s += per {
				e := s + per
				if e > len(accs) {
					e = len(accs)
				}
				warps = append(warps, gpusim.SliceProgram(accs[s:e]))
				nw++
			}
			blockSizes = append(blockSizes, nw)
		}
	}
	// Blocks were built with exactly their own warps; regroup respecting
	// the per-block warp counts rather than a uniform WarpsPerBlock.
	k := &gpusim.Kernel{Name: "sgemm", ComputePerAccess: p.ComputePerAccess}
	idx := 0
	for _, nw := range blockSizes {
		k.Blocks = append(k.Blocks, gpusim.ThreadBlock{Warps: warps[idx : idx+nw]})
		idx += nw
	}
	return k, nil
}

// SGEMMBytes sizes n so the three matrices total roughly bytes.
func SGEMMBytes(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	n := int(math.Sqrt(float64(bytes) / 12.0))
	if n < sgemmTile {
		n = sgemmTile
	}
	return SGEMM(a, n, p)
}

// CUFFT models out-of-place forward and inverse FFTs: multiple full
// passes over input and output ranges, each pass visiting pages in a
// power-of-two strided order (butterfly/transpose traffic), ping-ponging
// between the two buffers.
func CUFFT(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	half := bytes / 2
	if half < mem.PageSize {
		return nil, fmt.Errorf("workloads: cufft needs at least %d bytes", 2*mem.PageSize)
	}
	in, err := a.MallocManaged(half, "fft_in")
	if err != nil {
		return nil, err
	}
	out, err := a.MallocManaged(half, "fft_out")
	if err != nil {
		return nil, err
	}
	pages := in.Pages
	if out.Pages < pages {
		pages = out.Pages
	}
	const passes = 4 // grouped radix stages: forward ×2, inverse ×2
	var warps []gpusim.WarpProgram
	src, dst := in, out
	for pass := 0; pass < passes; pass++ {
		stride := 1 << uint(pass)
		// Strided full sweep: offsets 0..stride-1 interleave page visits.
		order := make([]int, 0, pages)
		for off := 0; off < stride && off < pages; off++ {
			for i := off; i < pages; i += stride {
				order = append(order, i)
			}
		}
		for s := 0; s < len(order); s += p.WarpAccesses / 2 {
			e := s + p.WarpAccesses/2
			if e > len(order) {
				e = len(order)
			}
			accs := make([]gpusim.Access, 0, 2*(e-s))
			for _, pg := range order[s:e] {
				accs = append(accs,
					gpusim.Access{Page: pageAt(src, int64(pg))},
					gpusim.Access{Page: pageAt(dst, int64(pg)), Write: true},
				)
			}
			warps = append(warps, gpusim.SliceProgram(accs))
		}
		src, dst = dst, src
	}
	return assemble("cufft", warps, p), nil
}
