// Package workloads generates page-granularity GPU kernels reproducing
// the access patterns of the paper's benchmark suite (§III-B): synthetic
// regular and random page-touch kernels, cuBLAS-style SGEMM, STREAM
// triad, cuFFT-style multi-pass transforms, TeaLeaf-style stencil CG,
// HPGMG-style multigrid V-cycles, and a cuSPARSE-style dense-to-CSR
// conversion followed by a sparse-matrix multiply.
//
// Generators emit the page access sequence each warp performs — exactly
// the granularity the UVM driver observes (§IV-B) — so the driver-side
// fault patterns match the paper's Fig. 7 characterizations.
package workloads

import (
	"fmt"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// Allocator abstracts managed allocation; core.System implements it.
type Allocator interface {
	MallocManaged(size int64, label string) (*mem.Range, error)
}

// Params tunes kernel shape.
type Params struct {
	// Seed drives randomized generators (access permutations, sparsity).
	Seed uint64
	// WarpAccesses is the page-access granularity one warp covers per
	// work item (CUDA warps coalesce; 32 threads touching consecutive
	// 4 KB pages yields 32 page accesses per warp in the touch kernels).
	WarpAccesses int
	// WarpsPerBlock groups warps into thread blocks.
	WarpsPerBlock int
	// ComputePerAccess is the compute gap between page accesses.
	ComputePerAccess sim.Duration
}

// DefaultParams returns the shape used throughout the experiments.
func DefaultParams() Params {
	return Params{
		Seed:             42,
		WarpAccesses:     32,
		WarpsPerBlock:    4,
		ComputePerAccess: 30 * sim.Nanosecond,
	}
}

func (p Params) normalized() Params {
	if p.WarpAccesses <= 0 {
		p.WarpAccesses = 32
	}
	if p.WarpsPerBlock <= 0 {
		p.WarpsPerBlock = 4
	}
	return p
}

// assemble groups per-warp programs into thread blocks.
func assemble(name string, warps []gpusim.WarpProgram, p Params) *gpusim.Kernel {
	p = p.normalized()
	k := &gpusim.Kernel{Name: name, ComputePerAccess: p.ComputePerAccess}
	for start := 0; start < len(warps); start += p.WarpsPerBlock {
		end := start + p.WarpsPerBlock
		if end > len(warps) {
			end = len(warps)
		}
		k.Blocks = append(k.Blocks, gpusim.ThreadBlock{Warps: warps[start:end]})
	}
	return k
}

// sliceWarps splits a flat access list into warp programs of p.WarpAccesses.
func sliceWarps(accs []gpusim.Access, p Params) []gpusim.WarpProgram {
	p = p.normalized()
	var warps []gpusim.WarpProgram
	for start := 0; start < len(accs); start += p.WarpAccesses {
		end := start + p.WarpAccesses
		if end > len(accs) {
			end = len(accs)
		}
		warps = append(warps, gpusim.SliceProgram(accs[start:end]))
	}
	return warps
}

// Builder constructs a kernel with roughly the given total data footprint
// on the allocator.
type Builder func(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error)

// Names lists the benchmark suite in the paper's Table I order.
func Names() []string {
	return []string{"regular", "random", "sgemm", "stream", "cufft", "tealeaf", "hpgmg", "cusparse"}
}

// Get returns the named builder.
func Get(name string) (Builder, error) {
	switch name {
	case "regular":
		return PageTouchRegular, nil
	case "random":
		return PageTouchRandom, nil
	case "sgemm":
		return SGEMMBytes, nil
	case "stream":
		return StreamTriad, nil
	case "cufft":
		return CUFFT, nil
	case "tealeaf":
		return TeaLeaf, nil
	case "hpgmg":
		return HPGMG, nil
	case "cusparse":
		return CUSparse, nil
	case "hotcold":
		return HotCold, nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
}

// pagesOf returns the page ids of r as a convenience for generators.
func pageAt(r *mem.Range, i int64) mem.PageID { return r.StartPage + mem.PageID(i) }
