package workloads

import (
	"fmt"
	"math"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
	"uvmsim/internal/sim"
)

// CUSparse models the cuSPARSE example the paper uses: convert a dense
// matrix to CSR, then multiply the sparse matrix by a dense matrix. The
// conversion is a regular sweep; the SpMM gathers rows of the dense
// operand at sparse column positions — the random-like segments the
// paper's Fig. 7 shows for cusparse.
func CUSparse(a Allocator, bytes int64, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	// Footprint split: dense source ~1/2, CSR ~1/8 (10% density), dense
	// operand ~1/4, output ~1/8.
	const density = 0.10
	denseBytes := bytes / 2
	n := int(math.Sqrt(float64(denseBytes) / 4)) // float32 n×n
	if n < 64 {
		return nil, fmt.Errorf("workloads: cusparse needs a larger footprint than %d bytes", bytes)
	}
	dense, err := a.MallocManaged(denseBytes, "dense")
	if err != nil {
		return nil, err
	}
	nnz := int64(float64(n) * float64(n) * density)
	csrBytes := nnz * 8 // value + column index
	if csrBytes < mem.PageSize {
		csrBytes = mem.PageSize
	}
	csr, err := a.MallocManaged(csrBytes, "csr")
	if err != nil {
		return nil, err
	}
	opBytes := bytes / 4
	op, err := a.MallocManaged(opBytes, "B")
	if err != nil {
		return nil, err
	}
	outBytes := bytes / 8
	if outBytes < mem.PageSize {
		outBytes = mem.PageSize
	}
	out, err := a.MallocManaged(outBytes, "C")
	if err != nil {
		return nil, err
	}

	rng := sim.NewRNG(p.Seed + 13)
	var warps []gpusim.WarpProgram
	chunk := p.WarpAccesses

	// Phase 1: dense -> CSR. Sequential read of the dense matrix,
	// interleaved sequential writes of the (much smaller) CSR arrays.
	csrPerDense := float64(csr.Pages) / float64(dense.Pages)
	acc := 0.0
	csrPage := int64(0)
	for s := 0; s < dense.Pages; s += chunk {
		e := s + chunk
		if e > dense.Pages {
			e = dense.Pages
		}
		var accs []gpusim.Access
		for i := s; i < e; i++ {
			accs = append(accs, gpusim.Access{Page: pageAt(dense, int64(i))})
			acc += csrPerDense
			for acc >= 1 && csrPage < int64(csr.Pages) {
				accs = append(accs, gpusim.Access{Page: pageAt(csr, csrPage), Write: true})
				csrPage++
				acc--
			}
		}
		warps = append(warps, gpusim.SliceProgram(accs))
	}

	// Phase 2: SpMM. Sweep CSR sequentially; for every CSR page gather a
	// handful of random operand pages (sparse column positions) and write
	// the output sequentially.
	outPerCSR := float64(out.Pages) / float64(csr.Pages)
	acc = 0
	outPage := int64(0)
	const gathersPerCSRPage = 4
	for s := 0; s < csr.Pages; s += chunk / 2 {
		e := s + chunk/2
		if e > csr.Pages {
			e = csr.Pages
		}
		var accs []gpusim.Access
		for i := s; i < e; i++ {
			accs = append(accs, gpusim.Access{Page: pageAt(csr, int64(i))})
			for g := 0; g < gathersPerCSRPage; g++ {
				accs = append(accs, gpusim.Access{Page: pageAt(op, int64(rng.Intn(op.Pages)))})
			}
			acc += outPerCSR
			for acc >= 1 && outPage < int64(out.Pages) {
				accs = append(accs, gpusim.Access{Page: pageAt(out, outPage), Write: true})
				outPage++
				acc--
			}
		}
		warps = append(warps, gpusim.SliceProgram(accs))
	}
	return assemble("cusparse", warps, p), nil
}
