package workloads

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
)

// TraceAccess is one access of an externally captured page trace.
type TraceAccess struct {
	// Page is the gap-free page index within the traced application's
	// footprint (the same normalization the paper's Fig. 7 uses).
	Page int64
	// Write marks store accesses.
	Write bool
}

// ParseTrace reads a page-access trace in either of two formats:
//
//   - two CSV columns "page_index,rw" where rw is r/w (or 0/1), with an
//     optional header line;
//   - the cmd/faulttrace CSV export (seq,time_ns,kind,page_index,block,
//     range), from which fault rows are replayed in order.
//
// Lines starting with '#' are skipped.
func ParseTrace(r io.Reader) ([]TraceAccess, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []TraceAccess
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		switch {
		case len(fields) >= 6: // faulttrace export
			if fields[0] == "seq" {
				continue // header
			}
			if fields[2] != "fault" {
				continue
			}
			page, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workloads: trace line %d: bad page %q", lineNo, fields[3])
			}
			out = append(out, TraceAccess{Page: page})
		case len(fields) == 2:
			if fields[0] == "page_index" || fields[0] == "page" {
				continue // header
			}
			page, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workloads: trace line %d: bad page %q", lineNo, fields[0])
			}
			rw := strings.TrimSpace(fields[1])
			write := rw == "w" || rw == "W" || rw == "1"
			if !write && rw != "r" && rw != "R" && rw != "0" {
				return nil, fmt.Errorf("workloads: trace line %d: bad rw %q", lineNo, rw)
			}
			out = append(out, TraceAccess{Page: page, Write: write})
		default:
			return nil, fmt.Errorf("workloads: trace line %d: unrecognized format %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workloads: trace contains no accesses")
	}
	return out, nil
}

// Replay builds a kernel that re-issues a captured page trace against a
// single managed allocation sized to the trace's footprint. The trace's
// access order is preserved within each warp; warps partition the trace
// into consecutive chunks, mirroring how the original accesses were
// spread across compute units.
func Replay(a Allocator, accesses []TraceAccess, p Params) (*gpusim.Kernel, error) {
	p = p.normalized()
	if len(accesses) == 0 {
		return nil, fmt.Errorf("workloads: empty trace")
	}
	var maxPage int64 = -1
	for i, acc := range accesses {
		if acc.Page < 0 {
			return nil, fmt.Errorf("workloads: trace access %d has negative page", i)
		}
		if acc.Page > maxPage {
			maxPage = acc.Page
		}
	}
	r, err := a.MallocManaged((maxPage+1)*mem.PageSize, "replay")
	if err != nil {
		return nil, err
	}
	accs := make([]gpusim.Access, len(accesses))
	for i, acc := range accesses {
		accs[i] = gpusim.Access{Page: pageAt(r, acc.Page), Write: acc.Write}
	}
	return assemble("replay", sliceWarps(accs, p), p), nil
}
