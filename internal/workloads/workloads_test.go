package workloads

import (
	"testing"

	"uvmsim/internal/gpusim"
	"uvmsim/internal/mem"
)

// spaceAlloc adapts a bare AddressSpace to the Allocator interface.
type spaceAlloc struct{ s *mem.AddressSpace }

func (a spaceAlloc) MallocManaged(size int64, label string) (*mem.Range, error) {
	return a.s.Alloc(size, label)
}

func newAlloc() spaceAlloc {
	return spaceAlloc{mem.NewAddressSpace(mem.DefaultGeometry())}
}

// touchedPages walks a kernel and returns access statistics.
func touchedPages(k *gpusim.Kernel) (distinct map[mem.PageID]int, writes int, total int) {
	distinct = make(map[mem.PageID]int)
	for _, b := range k.Blocks {
		for _, w := range b.Warps {
			for i := 0; i < w.Len(); i++ {
				a := w.At(i)
				distinct[a.Page]++
				total++
				if a.Write {
					writes++
				}
			}
		}
	}
	return distinct, writes, total
}

func TestRegularTouchesEachPageOnce(t *testing.T) {
	al := newAlloc()
	k, err := PageTouchRegular(al, 8<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	distinct, writes, total := touchedPages(k)
	if len(distinct) != 2048 || total != 2048 || writes != 2048 {
		t.Fatalf("distinct=%d total=%d writes=%d, want 2048 each", len(distinct), total, writes)
	}
	for p, n := range distinct {
		if n != 1 {
			t.Fatalf("page %d touched %d times", p, n)
		}
	}
}

func TestRandomIsPermutation(t *testing.T) {
	al := newAlloc()
	k, err := PageTouchRandom(al, 4<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	distinct, _, total := touchedPages(k)
	if len(distinct) != 1024 || total != 1024 {
		t.Fatalf("distinct=%d total=%d, want 1024", len(distinct), total)
	}
	// Must not be the identity order: check first warp is scrambled.
	w := k.Blocks[0].Warps[0]
	ascending := true
	for i := 1; i < w.Len(); i++ {
		if w.At(i).Page != w.At(i-1).Page+1 {
			ascending = false
			break
		}
	}
	if ascending {
		t.Error("random kernel produced sequential pages")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := DefaultParams()
	k1, _ := PageTouchRandom(newAlloc(), 1<<20, p)
	k2, _ := PageTouchRandom(newAlloc(), 1<<20, p)
	p.Seed = 99
	k3, _ := PageTouchRandom(newAlloc(), 1<<20, p)
	same := func(a, b *gpusim.Kernel) bool {
		wa, wb := a.Blocks[0].Warps[0], b.Blocks[0].Warps[0]
		for i := 0; i < wa.Len(); i++ {
			if wa.At(i).Page != wb.At(i).Page {
				return false
			}
		}
		return true
	}
	if !same(k1, k2) {
		t.Error("same seed produced different kernels")
	}
	if same(k1, k3) {
		t.Error("different seed produced identical kernel")
	}
}

func TestStreamTriadPattern(t *testing.T) {
	al := newAlloc()
	k, err := StreamTriad(al, 12<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ranges := al.s.Ranges()
	if len(ranges) != 3 {
		t.Fatalf("ranges = %d, want 3", len(ranges))
	}
	va, vb, vc := ranges[0], ranges[1], ranges[2]
	w := k.Blocks[0].Warps[0]
	if w.Len() < 3 {
		t.Fatal("warp too short")
	}
	// Pattern per triple: read B, read C, write A.
	a0, a1, a2 := w.At(0), w.At(1), w.At(2)
	if !vb.Contains(a0.Page) || a0.Write {
		t.Errorf("first access should read B: %+v", a0)
	}
	if !vc.Contains(a1.Page) || a1.Write {
		t.Errorf("second access should read C: %+v", a1)
	}
	if !va.Contains(a2.Page) || !a2.Write {
		t.Errorf("third access should write A: %+v", a2)
	}
	distinct, _, _ := touchedPages(k)
	if len(distinct) != va.Pages+vb.Pages+vc.Pages {
		t.Errorf("distinct=%d, want %d", len(distinct), va.Pages+vb.Pages+vc.Pages)
	}
}

func TestSGEMMHasReuse(t *testing.T) {
	al := newAlloc()
	k, err := SGEMM(al, 256, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	distinct, writes, total := touchedPages(k)
	pages := 0
	for _, r := range al.s.Ranges() {
		pages += r.Pages
	}
	if len(distinct) != pages {
		t.Errorf("distinct=%d, want full coverage %d", len(distinct), pages)
	}
	if total <= 2*pages {
		t.Errorf("total=%d, want heavy reuse over %d pages", total, pages)
	}
	if writes == 0 {
		t.Error("sgemm never writes C")
	}
}

func TestSGEMMBytesSizing(t *testing.T) {
	al := newAlloc()
	if _, err := SGEMMBytes(al, 3<<20, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	var totalBytes int64
	for _, r := range al.s.Ranges() {
		totalBytes += mem.Bytes(r.Pages)
	}
	// Three matrices roughly within 2x of the request.
	if totalBytes < 1<<20 || totalBytes > 6<<20 {
		t.Errorf("footprint = %d for 3MB request", totalBytes)
	}
	if _, err := SGEMM(newAlloc(), 10, DefaultParams()); err == nil {
		t.Error("tiny sgemm accepted")
	}
}

func TestCUFFTMultiplePasses(t *testing.T) {
	al := newAlloc()
	k, err := CUFFT(al, 8<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	distinct, writes, total := touchedPages(k)
	pages := 0
	for _, r := range al.s.Ranges() {
		pages += r.Pages
	}
	if len(distinct) != pages {
		t.Errorf("coverage %d of %d pages", len(distinct), pages)
	}
	// 4 passes over in+out -> total = 4 * pages.
	if total != 4*pages {
		t.Errorf("total=%d, want %d", total, 4*pages)
	}
	if writes != total/2 {
		t.Errorf("writes=%d, want half of %d", writes, total)
	}
}

func TestTeaLeafStencilNeighbors(t *testing.T) {
	al := newAlloc()
	k, err := TeaLeaf(al, 16<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	distinct, writes, total := touchedPages(k)
	if len(distinct) == 0 || writes == 0 {
		t.Fatal("empty tealeaf kernel")
	}
	pages := 0
	for _, r := range al.s.Ranges() {
		pages += r.Pages
	}
	if len(distinct) != pages {
		t.Errorf("coverage %d of %d", len(distinct), pages)
	}
	if total < 3*pages {
		t.Errorf("total=%d, want multiple sweeps over %d", total, pages)
	}
}

func TestHPGMGLevels(t *testing.T) {
	al := newAlloc()
	k, err := HPGMG(al, 32<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Expect two ranges (x, rhs) per materialized level.
	if len(al.s.Ranges())%2 != 0 || len(al.s.Ranges()) < 4 {
		t.Errorf("ranges = %d, want >= 4 and even", len(al.s.Ranges()))
	}
	distinct, _, _ := touchedPages(k)
	if len(distinct) == 0 {
		t.Fatal("empty hpgmg kernel")
	}
	// The coarsest level is revisited every cycle: some pages reused.
	reused := 0
	for _, n := range distinct {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no page reuse in multigrid")
	}
}

func TestCUSparseHasRandomGathers(t *testing.T) {
	al := newAlloc()
	k, err := CUSparse(al, 32<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ranges := al.s.Ranges()
	if len(ranges) != 4 {
		t.Fatalf("ranges = %d, want 4 (dense, csr, B, C)", len(ranges))
	}
	distinct, writes, _ := touchedPages(k)
	if writes == 0 {
		t.Error("no writes")
	}
	// Operand gathers are random: the operand range should have repeats
	// and (for a small gather budget) incomplete coverage is fine, but at
	// least a quarter should be hit.
	op := ranges[2]
	hit := 0
	for p := range distinct {
		if op.Contains(p) {
			hit++
		}
	}
	if hit < op.Pages/4 {
		t.Errorf("operand pages hit = %d of %d", hit, op.Pages)
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("Names = %v", Names())
	}
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil || b == nil {
			t.Errorf("Get(%q): %v", name, err)
			continue
		}
		k, err := b(newAlloc(), 32<<20, DefaultParams())
		if err != nil {
			t.Errorf("%s builder: %v", name, err)
			continue
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s kernel invalid: %v", name, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAssembleGrouping(t *testing.T) {
	p := DefaultParams()
	p.WarpsPerBlock = 3
	var warps []gpusim.WarpProgram
	for i := 0; i < 7; i++ {
		warps = append(warps, gpusim.SliceProgram{{Page: mem.PageID(i)}})
	}
	k := assemble("x", warps, p)
	if len(k.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(k.Blocks))
	}
	if len(k.Blocks[0].Warps) != 3 || len(k.Blocks[2].Warps) != 1 {
		t.Error("grouping wrong")
	}
}

func TestParamsNormalization(t *testing.T) {
	var p Params // all zero
	n := p.normalized()
	if n.WarpAccesses <= 0 || n.WarpsPerBlock <= 0 {
		t.Error("normalization failed")
	}
}

func TestBuildersRejectTinyFootprints(t *testing.T) {
	for _, tc := range []struct {
		name  string
		b     Builder
		bytes int64
	}{
		{"stream", StreamTriad, 1000},
		{"cufft", CUFFT, 1000},
		{"tealeaf", TeaLeaf, 1000},
		{"hpgmg", HPGMG, 1000},
		{"cusparse", CUSparse, 1000},
	} {
		if _, err := tc.b(newAlloc(), tc.bytes, DefaultParams()); err == nil {
			t.Errorf("%s accepted %d bytes", tc.name, tc.bytes)
		}
	}
}

func TestHotColdReusePattern(t *testing.T) {
	al := newAlloc()
	k, err := HotCold(al, 16<<20, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ranges := al.s.Ranges()
	if len(ranges) != 2 {
		t.Fatalf("ranges = %d, want hot+cold", len(ranges))
	}
	hot, cold := ranges[0], ranges[1]
	if hot.Pages >= cold.Pages {
		t.Errorf("hot (%d pages) should be much smaller than cold (%d)", hot.Pages, cold.Pages)
	}
	distinct, writes, total := touchedPages(k)
	// Hot pages are re-read many times; cold pages are write-touched
	// twice (two passes).
	var hotTouches, coldTouches int
	for p, n := range distinct {
		if hot.Contains(p) {
			hotTouches += n
		} else {
			coldTouches += n
		}
	}
	if hotTouches != coldTouches {
		t.Errorf("hot/cold touch counts %d/%d, want interleaved 1:1", hotTouches, coldTouches)
	}
	perHotPage := float64(hotTouches) / float64(hot.Pages)
	if perHotPage < 4 {
		t.Errorf("hot reuse = %.1f touches/page, want heavy reuse", perHotPage)
	}
	if writes != coldTouches {
		t.Errorf("writes = %d, want cold touches only (%d)", writes, coldTouches)
	}
	if total != hotTouches+coldTouches {
		t.Errorf("total mismatch")
	}
	if _, err := HotCold(newAlloc(), 1000, DefaultParams()); err == nil {
		t.Error("tiny hotcold accepted")
	}
	if b, err := Get("hotcold"); err != nil || b == nil {
		t.Error("hotcold not in registry")
	}
}
