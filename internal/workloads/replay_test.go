package workloads

import (
	"strings"
	"testing"
)

func TestParseTraceTwoColumn(t *testing.T) {
	in := strings.NewReader("page_index,rw\n0,r\n5,w\n3,0\n7,1\n# comment\n\n")
	accs, err := ParseTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceAccess{{0, false}, {5, true}, {3, false}, {7, true}}
	if len(accs) != len(want) {
		t.Fatalf("accs = %v", accs)
	}
	for i := range want {
		if accs[i] != want[i] {
			t.Fatalf("accs[%d] = %v, want %v", i, accs[i], want[i])
		}
	}
}

func TestParseTraceFaulttraceExport(t *testing.T) {
	in := strings.NewReader(strings.Join([]string{
		"seq,time_ns,kind,page_index,block,range",
		"1,100,fault,42,0,0",
		"2,150,prefetch,43,0,0", // skipped
		"3,200,evict,0,0,0",     // skipped
		"4,250,fault,17,0,0",
	}, "\n"))
	accs, err := ParseTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 2 || accs[0].Page != 42 || accs[1].Page != 17 {
		t.Fatalf("accs = %v", accs)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":     "",
		"bad page":  "x,r\n",
		"bad rw":    "3,q\n",
		"bad shape": "1,2,3\n",
	} {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReplayBuildsKernel(t *testing.T) {
	al := newAlloc()
	accs := []TraceAccess{{Page: 0, Write: true}, {Page: 99}, {Page: 5, Write: true}}
	k, err := Replay(al, accs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := al.s.Ranges()[0]
	if r.Pages != 100 { // footprint sized to max page + 1
		t.Errorf("allocation = %d pages, want 100", r.Pages)
	}
	distinct, writes, total := touchedPages(k)
	if total != 3 || writes != 2 || len(distinct) != 3 {
		t.Errorf("total=%d writes=%d distinct=%d", total, writes, len(distinct))
	}
	// Order preserved within the single warp.
	w := k.Blocks[0].Warps[0]
	if w.At(0).Page != r.StartPage || w.At(1).Page != r.StartPage+99 {
		t.Error("trace order not preserved")
	}
}

func TestReplayRejectsBadTraces(t *testing.T) {
	al := newAlloc()
	if _, err := Replay(al, nil, DefaultParams()); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Replay(al, []TraceAccess{{Page: -1}}, DefaultParams()); err == nil {
		t.Error("negative page accepted")
	}
}

// Round trip: a faulttrace-style export of a simulated run parses and
// replays into a kernel covering the same pages.
func TestReplayRoundTripFormat(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("seq,time_ns,kind,page_index,block,range\n")
	for i := 0; i < 64; i++ {
		sb.WriteString("1,0,fault,")
		sb.WriteString(strings.TrimSpace(string(rune('0' + i%10))))
		sb.WriteString(",0,0\n")
	}
	accs, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 64 {
		t.Fatalf("parsed %d", len(accs))
	}
	k, err := Replay(newAlloc(), accs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if k.TotalAccesses() != 64 {
		t.Errorf("accesses = %d", k.TotalAccesses())
	}
}
