package serve

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"

	"uvmsim/internal/obs"
	"uvmsim/internal/stats"
	"uvmsim/internal/telemetry"
)

// Prometheus text exposition (version 0.0.4) for the obs registry.
// Counters and gauges render as their kind. Histograms split by clock:
// simulated-clock histograms render as summaries with fixed quantiles
// (their log2 bucket edges are a simulator artifact, not a latency
// SLO), while wall-clock histograms — names carrying
// telemetry.WallSuffix — render as true cumulative histograms with
// _bucket{le="..."} series so standard histogram_quantile() queries
// work on serving latency. Output is fully deterministic: samples sort
// by name, every value is an integer (nanoseconds for durations), and
// a golden test pins the bytes.

// promNameRE is the valid Prometheus metric-name grammar.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidPromName reports whether name needs no sanitization.
func ValidPromName(name string) bool { return promNameRE.MatchString(name) }

// PromName sanitizes a registry metric name into a valid Prometheus
// identifier: every invalid rune becomes '_', and a leading digit gains
// a '_' prefix. Registry names are already clean snake_case (a test
// pins that), so in practice this is the identity — the sanitizer
// exists so a future metric with a dash or dot degrades to a renamed
// series instead of a scrape error.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	if ValidPromName(name) {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// summary quantiles rendered for every histogram metric.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus renders samples as Prometheus text exposition,
// sorted by (sanitized) name so the output is byte-stable for any
// sample order in the input.
func WritePrometheus(w io.Writer, samples []obs.Sample) error {
	sorted := make([]obs.Sample, len(samples))
	copy(sorted, samples)
	sort.SliceStable(sorted, func(i, j int) bool {
		return PromName(sorted[i].Name) < PromName(sorted[j].Name)
	})
	var b strings.Builder
	for _, s := range sorted {
		name := PromName(s.Name)
		switch s.Kind {
		case obs.KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Value)
		case obs.KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Value)
		case obs.KindHistogram:
			if strings.HasSuffix(name, telemetry.WallSuffix) {
				writeCumulative(&b, name, s)
				continue
			}
			fmt.Fprintf(&b, "# TYPE %s summary\n", name)
			if s.Hist != nil {
				for _, q := range summaryQuantiles {
					fmt.Fprintf(&b, "%s{quantile=\"%g\"} %d\n", name, q, int64(s.Hist.Quantile(q)))
				}
				fmt.Fprintf(&b, "%s_sum %d\n", name, int64(s.Hist.Sum()))
			}
			fmt.Fprintf(&b, "%s_count %d\n", name, s.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeCumulative renders one wall-clock histogram as a true
// Prometheus histogram: cumulative _bucket{le="..."} series over the
// log2 bucket edges (only edges whose bucket holds observations are
// emitted, so a 64-bucket layout does not bloat the scrape), a closing
// le="+Inf" bucket, then _sum and _count.
func writeCumulative(b *strings.Builder, name string, s obs.Sample) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum uint64
	if s.Hist != nil {
		for i := 0; i < stats.NumBuckets; i++ {
			n := s.Hist.BucketCount(i)
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, int64(s.Hist.BucketUpper(i)), cum)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(b, "%s_sum %d\n", name, int64(s.Hist.Sum()))
	} else {
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Value)
	}
	fmt.Fprintf(b, "%s_count %d\n", name, s.Value)
}
