package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// okCompute returns a compute function that records invocations and
// produces a distinct cacheable body per key.
func okCompute(calls *atomic.Int64, body string) func() ([]byte, int, bool, error) {
	return func() ([]byte, int, bool, error) {
		calls.Add(1)
		return []byte(body), 200, true, nil
	}
}

func TestCacheHitIsByteIdenticalToMiss(t *testing.T) {
	c := NewCache(8)
	var calls atomic.Int64
	miss, status, src, err := c.Do(context.Background(), "k1", okCompute(&calls, "body-1\n"))
	if err != nil || status != 200 || src != SourceMiss {
		t.Fatalf("first Do = (%q, %d, %s, %v), want miss", miss, status, src, err)
	}
	hit, status, src, err := c.Do(context.Background(), "k1", okCompute(&calls, "DIFFERENT\n"))
	if err != nil || status != 200 {
		t.Fatalf("second Do err=%v status=%d", err, status)
	}
	if src != SourceHit {
		t.Fatalf("second Do source = %s, want hit", src)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("hit body %q differs from miss body %q", hit, miss)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	var calls atomic.Int64
	mustDo := func(key string) {
		t.Helper()
		if _, _, _, err := c.Do(context.Background(), key, okCompute(&calls, "b-"+key)); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	mustDo("a")
	mustDo("b")
	mustDo("a") // touch a: b is now least recently used
	mustDo("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, _, ok := c.Get("c"); !ok {
		t.Fatal("c should be cached")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// Re-requesting b is a fresh miss: compute runs again.
	before := calls.Load()
	mustDo("b")
	if calls.Load() != before+1 {
		t.Fatal("evicted key should recompute")
	}
}

func TestCacheCoalescesConcurrentIdenticalRequests(t *testing.T) {
	c := NewCache(8)
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	compute := func() ([]byte, int, bool, error) {
		calls.Add(1)
		once.Do(func() { close(started) })
		<-release
		return []byte("shared\n"), 200, true, nil
	}

	const waiters = 16
	var wg sync.WaitGroup
	bodies := make([][]byte, waiters)
	sources := make([]Source, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, sources[i], errs[i] = c.Do(context.Background(), "k", compute)
		}(i)
	}
	<-started // the flight is in progress; everyone else must coalesce
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times for %d concurrent requests, want 1", calls.Load(), waiters)
	}
	var miss, coalesced, hit int
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], []byte("shared\n")) {
			t.Fatalf("waiter %d body %q", i, bodies[i])
		}
		switch sources[i] {
		case SourceMiss:
			miss++
		case SourceCoalesced:
			coalesced++
		case SourceHit:
			hit++ // raced in after the flight settled
		}
	}
	if miss != 1 {
		t.Fatalf("misses = %d, want exactly 1", miss)
	}
	if coalesced+hit != waiters-1 {
		t.Fatalf("coalesced %d + hit %d != %d", coalesced, hit, waiters-1)
	}
}

func TestCacheDoesNotCacheFailuresOrNonCacheable(t *testing.T) {
	c := NewCache(8)
	var calls atomic.Int64

	boom := errors.New("boom")
	if _, _, _, err := c.Do(context.Background(), "err", func() ([]byte, int, bool, error) {
		calls.Add(1)
		return nil, 0, false, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Cancelled/failed outcome: compute succeeds but is not cacheable.
	if _, _, _, err := c.Do(context.Background(), "nc", func() ([]byte, int, bool, error) {
		calls.Add(1)
		return []byte("cancelled"), 503, false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries, want 0 (nothing cacheable ran)", c.Len())
	}
	// Both keys recompute on retry.
	c.Do(context.Background(), "err", okCompute(&calls, "now-ok"))
	c.Do(context.Background(), "nc", okCompute(&calls, "now-ok"))
	if calls.Load() != 4 {
		t.Fatalf("compute calls = %d, want 4 (no spurious caching)", calls.Load())
	}
}

func TestCachePanicInComputeDoesNotDeadlockWaiters(t *testing.T) {
	c := NewCache(8)
	release := make(chan struct{})
	started := make(chan struct{})

	first := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), "p", func() ([]byte, int, bool, error) {
			close(started)
			<-release
			panic("kaboom")
		})
		first <- err
	}()
	<-started

	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), "p", func() ([]byte, int, bool, error) {
			return []byte("x"), 200, true, nil
		})
		done <- err
	}()
	// Only release the flight once the second caller is provably riding it.
	for c.Stats().Coalesced == 0 {
		runtime.Gosched()
	}
	close(release)
	if err := <-first; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("computing caller err = %v, want compute-panicked error", err)
	}
	if err := <-done; err == nil {
		t.Fatal("waiter on a panicked flight should get an error, not nil")
	}
	if c.Len() != 0 {
		t.Fatal("panicked flight must not be cached")
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(8)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), "slow", func() ([]byte, int, bool, error) {
			close(started)
			<-release
			return []byte("late"), 200, true, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := c.Do(ctx, "slow", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestCacheZeroCapacityStillCoalesces(t *testing.T) {
	c := NewCache(0)
	var calls atomic.Int64
	c.Do(context.Background(), "k", okCompute(&calls, "b"))
	c.Do(context.Background(), "k", okCompute(&calls, "b"))
	if calls.Load() != 2 {
		t.Fatalf("capacity 0 must not store entries; compute ran %d times, want 2", calls.Load())
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCacheManyKeysConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%24) // more keys than capacity: constant eviction
				body, _, _, err := c.Do(context.Background(), key, func() ([]byte, int, bool, error) {
					return []byte("body-" + key), 200, true, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if string(body) != "body-"+key {
					t.Errorf("Do(%s) body = %q", key, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}
