package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Source classifies how a response body was obtained.
type Source string

// Body sources, exported to clients in the X-Uvmsim-Cache header.
const (
	// SourceMiss: this request ran the simulation.
	SourceMiss Source = "miss"
	// SourceHit: the body came from the cache.
	SourceHit Source = "hit"
	// SourceCoalesced: an identical request was already in flight; this
	// one waited for its result instead of simulating again.
	SourceCoalesced Source = "coalesced"
)

// CacheStats is a point-in-time census of cache activity.
type CacheStats struct {
	Hits, Misses, Coalesced, Evictions uint64
	Entries                            int
}

// entry is one cached response: the exact bytes (and status) the miss
// returned, replayed verbatim on every hit.
type entry struct {
	key    string
	body   []byte
	status int
}

// flight is one in-progress computation that concurrent identical
// requests wait on.
type flight struct {
	done   chan struct{}
	body   []byte
	status int
	err    error
}

// Cache is the content-addressed result cache: completed response
// bodies keyed by config hash, bounded LRU, with singleflight
// coalescing. Determinism makes this sound — a key's value can never go
// stale, so eviction is purely a capacity decision and a hit is
// byte-identical to the miss that populated it.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	flights  map[string]*flight
	stats    CacheStats
}

// NewCache returns a cache bounded to capacity entries. Capacity 0
// disables storage but keeps singleflight coalescing: concurrent
// identical requests still cost one simulation.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// Do returns the response body for key, computing it at most once
// across all concurrent callers. compute reports whether its result may
// be cached (only fully-completed runs are; a drained or failed run
// must never leave a partial entry). ctx bounds only the waiting of a
// coalesced caller — the computation itself runs under whatever context
// compute closed over, so an impatient rider cannot cancel the shared
// run.
func (c *Cache) Do(ctx context.Context, key string, compute func() (body []byte, status int, cacheable bool, err error)) ([]byte, int, Source, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		c.stats.Hits++
		c.mu.Unlock()
		return e.body, e.status, SourceHit, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.body, fl.status, SourceCoalesced, fl.err
		case <-ctx.Done():
			return nil, 0, SourceCoalesced, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	body, status, cacheable, err := runCompute(compute)
	fl.body, fl.status, fl.err = body, status, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && cacheable {
		c.insertLocked(key, body, status)
	}
	c.mu.Unlock()
	// Waiters wake only after the entry is visible, so a hit observed by
	// any later request is the same bytes the coalesced riders got.
	close(fl.done)
	return body, status, SourceMiss, err
}

// runCompute shields the flight from a panicking computation: waiters
// must always be released, and a panic becomes an error on every
// coalesced caller instead of a deadlock.
func runCompute(compute func() ([]byte, int, bool, error)) (body []byte, status int, cacheable bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			body, status, cacheable = nil, 0, false
			err = fmt.Errorf("serve: compute panicked: %v", r)
		}
	}()
	return compute()
}

// insertLocked stores the entry and evicts from the LRU tail past
// capacity. Caller holds c.mu.
func (c *Cache) insertLocked(key string, body []byte, status int) {
	if c.capacity == 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A racing Do may have stored this key already; refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, body: body, status: status})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Put inserts exact response bytes for key if it is not already cached,
// reporting whether it stored them. This is the write-through fill
// path: determinism makes a fill indistinguishable from the miss that
// would otherwise populate the key, so "already present" is a no-op,
// never a conflict.
func (c *Cache) Put(key string, body []byte, status int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return false
	}
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.insertLocked(key, body, status)
	return true
}

// Get returns the cached body for key without counting a hit or
// refreshing recency — the async job result path, which must not let
// polling distort eviction order.
func (c *Cache) Get(key string) ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		return e.body, e.status, true
	}
	return nil, 0, false
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of cache activity.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	return st
}
