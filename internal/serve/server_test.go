package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer returns a served instance plus its underlying *Server for
// white-box assertions.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJSON issues one request and returns status, headers, body.
func postJSON(t *testing.T, url string, payload interface{}) (int, http.Header, []byte) {
	t.Helper()
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// smallSim is a cheap single cell (16 MiB framebuffer, quarter
// footprint) used throughout.
func smallSim(seed uint64) SimRequest {
	return SimRequest{Workload: "regular", GPUMemMiB: 16, Seed: seed, Footprint: 0.25}
}

func TestSimMissThenHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, hdr, miss := postJSON(t, ts.URL+"/v1/sim", smallSim(1))
	if status != http.StatusOK {
		t.Fatalf("miss status = %d, body %s", status, miss)
	}
	if got := hdr.Get("X-Uvmsim-Cache"); got != string(SourceMiss) {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	hash := hdr.Get("X-Uvmsim-Hash")
	if len(hash) != 16 {
		t.Fatalf("hash header = %q, want 16 hex chars", hash)
	}

	status, hdr, hit := postJSON(t, ts.URL+"/v1/sim", smallSim(1))
	if status != http.StatusOK {
		t.Fatalf("hit status = %d", status)
	}
	if got := hdr.Get("X-Uvmsim-Cache"); got != string(SourceHit) {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if hdr.Get("X-Uvmsim-Hash") != hash {
		t.Fatal("hash changed between identical requests")
	}
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cache hit body differs from miss:\n%s\nvs\n%s", miss, hit)
	}

	var resp SimResponse
	if err := json.Unmarshal(hit, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "completed" || len(resp.Row) == 0 || resp.Hash != hash {
		t.Fatalf("response = %+v", resp)
	}
}

func TestDefaultSpellingsShareOneCacheEntry(t *testing.T) {
	s, ts := testServer(t, Config{})
	// Empty body, explicit defaults, and zero-valued knobs are the same
	// configuration and must hash identically.
	_, hdrA, _ := postJSON(t, ts.URL+"/v1/sim", SimRequest{})
	_, hdrB, _ := postJSON(t, ts.URL+"/v1/sim", SimRequest{
		Workload: DefaultWorkload, GPUMemMiB: DefaultGPUMemMiB, Footprint: DefaultFootprint,
		Prefetch: DefaultPrefetch, Replay: DefaultReplay, Evict: DefaultEvict,
		Batch: DefaultBatch, VABlockKiB: DefaultVABlockKiB,
	})
	if hdrA.Get("X-Uvmsim-Hash") != hdrB.Get("X-Uvmsim-Hash") {
		t.Fatal("default spellings hash differently — fingerprint is not canonical")
	}
	if got := hdrB.Get("X-Uvmsim-Cache"); got != string(SourceHit) {
		t.Fatalf("explicit-defaults request = %q, want hit on the defaults entry", got)
	}
	if s.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.cache.Len())
	}
}

func TestSweepResponseAndJobResultAgree(t *testing.T) {
	_, ts := testServer(t, Config{SweepJobs: 2})
	req := SweepRequest{
		Workload: "regular", GPUMemMiB: 16,
		Footprints: []float64{0.25, 0.5},
		Prefetch:   []string{"none", "density"},
	}
	status, _, syncBody := postJSON(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", status, syncBody)
	}
	var sr SweepResponse
	if err := json.Unmarshal(syncBody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cells != 4 || len(sr.Rows) != 4 || sr.Status != "completed" || sr.States["completed"] != 4 {
		t.Fatalf("sweep response = %+v", sr)
	}

	// The async path must produce byte-identical output for the same
	// request (here, served from cache — same content address).
	status, _, jobBody := postJSON(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", status, jobBody)
	}
	var info JobInfo
	if err := json.Unmarshal(jobBody, &info); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &info); err != nil {
			t.Fatal(err)
		}
		if info.State == JobDone || info.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.State != JobDone || info.Done != 4 || info.Total != 4 {
		t.Fatalf("job info = %+v", info)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resultBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job result status = %d", resp.StatusCode)
	}
	if !bytes.Equal(resultBody, syncBody) {
		t.Fatalf("async job result differs from sync sweep body:\n%s\nvs\n%s", resultBody, syncBody)
	}
}

func TestBudgetTripReturns422AndIsCached(t *testing.T) {
	s, ts := testServer(t, Config{})
	req := smallSim(1)
	req.Budget = BudgetRequest{MaxEvents: 10} // trips almost immediately, deterministically
	status, hdr, first := postJSON(t, ts.URL+"/v1/sim", req)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budget-tripped status = %d, body %s", status, first)
	}
	var resp SimResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "deadline" || resp.Error == "" {
		t.Fatalf("response = %+v, want deadline state with error", resp)
	}
	if hdr.Get("X-Uvmsim-Cache") != string(SourceMiss) {
		t.Fatalf("cache header = %q", hdr.Get("X-Uvmsim-Cache"))
	}
	// A deterministic budget trip is a replayable verdict: cached.
	status, hdr, second := postJSON(t, ts.URL+"/v1/sim", req)
	if status != http.StatusUnprocessableEntity || hdr.Get("X-Uvmsim-Cache") != string(SourceHit) {
		t.Fatalf("second trip = %d %q, want cached 422", status, hdr.Get("X-Uvmsim-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached 422 body differs from the original")
	}
	if s.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.cache.Len())
	}
	// A different budget is a different configuration (it can trip
	// differently), so it must not share the entry.
	req.Budget = BudgetRequest{MaxEvents: 20}
	_, hdr2, _ := postJSON(t, ts.URL+"/v1/sim", req)
	if hdr2.Get("X-Uvmsim-Hash") == hdr.Get("X-Uvmsim-Hash") {
		t.Fatal("different budgets hash identically")
	}
}

func TestValidationErrorsAre400(t *testing.T) {
	_, ts := testServer(t, Config{MaxCells: 4})
	cases := []struct {
		name    string
		path    string
		payload interface{}
	}{
		{"unknown workload", "/v1/sim", SimRequest{Workload: "nope"}},
		{"unknown prefetch", "/v1/sim", SimRequest{Workload: "regular", Prefetch: "warp-drive"}},
		{"negative footprint", "/v1/sim", SimRequest{Workload: "regular", Footprint: -1}},
		{"too many cells", "/v1/sweep", SweepRequest{
			Workload:   "regular",
			Footprints: []float64{0.1, 0.2, 0.3},
			Batch:      []int{64, 128, 256},
		}},
		{"unknown field", "/v1/sim", map[string]interface{}{"workloadd": "regular"}},
	}
	for _, tc := range cases {
		status, _, body := postJSON(t, ts.URL+tc.path, tc.payload)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d (body %s), want 400", tc.name, status, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, body)
		}
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	s, ts := testServer(t, Config{QueueSlots: 1, RunSlots: 1, RetryAfter: 2 * time.Second})
	// Deterministically fill the admission queue from inside, then prove
	// the next new configuration is shed with 429 + Retry-After.
	if err := s.gate.Enter(); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Leave()

	status, hdr, body := postJSON(t, ts.URL+"/v1/sim", smallSim(7))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d (body %s), want 429", status, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body is not an error envelope: %s", body)
	}
}

func TestCacheHitsBypassAdmission(t *testing.T) {
	s, ts := testServer(t, Config{QueueSlots: 1, RunSlots: 1})
	if status, _, body := postJSON(t, ts.URL+"/v1/sim", smallSim(3)); status != http.StatusOK {
		t.Fatalf("warm-up failed: %d %s", status, body)
	}
	// Saturate admission; the cached configuration must still be served.
	if err := s.gate.Enter(); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Leave()
	status, hdr, _ := postJSON(t, ts.URL+"/v1/sim", smallSim(3))
	if status != http.StatusOK || hdr.Get("X-Uvmsim-Cache") != string(SourceHit) {
		t.Fatalf("cached request under full queue = %d %q, want 200 hit", status, hdr.Get("X-Uvmsim-Cache"))
	}
}

// metricValue extracts one sample's value from Prometheus exposition.
func metricValue(t *testing.T, text, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMixedLoadAccounting drives >= 200 mixed requests at concurrency 8
// against a deliberately tiny server and checks that every request is
// answered (200, 422, or 429), the queue never exceeds its bound, and
// the /metrics counters agree exactly with what clients observed.
func TestMixedLoadAccounting(t *testing.T) {
	s, ts := testServer(t, Config{QueueSlots: 2, RunSlots: 1, CacheEntries: 64})
	const total, conc = 200, 8

	reqs := make([]SimRequest, total)
	for i := range reqs {
		r := smallSim(uint64(i%6 + 1)) // 12 distinct configs: misses, hits, coalesces
		if i%2 == 0 {
			r.Footprint = 0.5
		}
		if i%5 == 0 {
			r.Budget = BudgetRequest{MaxEvents: 10} // sprinkle deterministic 422s
		}
		reqs[i] = r
	}

	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	var next int
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= total {
					return
				}
				status, _, _ := postJSON(t, ts.URL+"/v1/sim", reqs[i])
				mu.Lock()
				counts[status]++
				mu.Unlock()
				if d := s.gate.Depth(); d > 2 {
					t.Errorf("queue depth %d exceeds bound 2", d)
				}
			}
		}()
	}
	wg.Wait()

	answered := 0
	for status, n := range counts {
		switch status {
		case http.StatusOK, http.StatusUnprocessableEntity, http.StatusTooManyRequests:
			answered += n
		default:
			t.Errorf("unexpected status %d x%d", status, n)
		}
	}
	if answered != total {
		t.Fatalf("answered %d of %d", answered, total)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(text)
	if got := metricValue(t, exposition, mRequests); got != total {
		t.Errorf("%s = %d, want %d", mRequests, got, total)
	}
	if got := metricValue(t, exposition, mRejected); got != counts[http.StatusTooManyRequests] {
		t.Errorf("%s = %d, clients saw %d rejections", mRejected, got, counts[http.StatusTooManyRequests])
	}
	// Every validated request passes through cache.Do exactly once and
	// counts as exactly one of hit/miss/coalesced — including requests
	// that were then shed at admission (the lookup precedes the gate).
	cs := s.cache.Stats()
	if int(cs.Hits+cs.Misses+cs.Coalesced) != total {
		t.Errorf("cache accounting: hits %d + misses %d + coalesced %d != requests %d",
			cs.Hits, cs.Misses, cs.Coalesced, total)
	}
	t.Logf("mixed load: %v, cache %+v", counts, cs)
}

func TestDrainFlipsHealthzAndCancelsWithoutCaching(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz = %d", resp.StatusCode)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}

	// Force-cancel with a simulation in flight: the request must settle
	// as cancelled (503) and leave no cache entry behind.
	type result struct {
		status int
		hash   string
	}
	done := make(chan result, 1)
	go func() {
		// A serial 32-cell sweep: cancellation always lands with most of
		// the run still ahead of it.
		status, hdr, _ := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
			Workload: "regular", GPUMemMiB: 32,
			Footprints: []float64{0.4, 0.5, 0.6, 0.7},
			Batch:      []int{64, 128, 256, 512},
			Prefetch:   []string{"none", "density"},
		})
		done <- result{status, hdr.Get("X-Uvmsim-Hash")}
	}()
	for s.gate.Running() == 0 {
		runtime.Gosched()
	}
	s.Close()
	r := <-done
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("cancelled run status = %d, want 503", r.status)
	}
	if _, _, ok := s.cache.Get(r.hash); ok {
		t.Fatal("cancelled run left a cache entry — drain must not cache partial results")
	}
}

func TestExpEndpointQuick(t *testing.T) {
	_, ts := testServer(t, Config{SweepJobs: 2})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	listBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) == 0 {
		t.Fatal("no experiments registered")
	}
	found := false
	for _, id := range list.Experiments {
		if id == "fig3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fig3 missing from %v", list.Experiments)
	}

	req := ExpRequest{GPUMemMiB: 16, Seed: 1, Quick: true}
	status, hdr, first := postJSON(t, ts.URL+"/v1/exp/fig3", req)
	if status != http.StatusOK {
		t.Fatalf("fig3 quick = %d, body %s", status, first)
	}
	var er ExpResponse
	if err := json.Unmarshal(first, &er); err != nil {
		t.Fatal(err)
	}
	if er.ID != "fig3" || er.Status != "completed" || len(er.Tables) == 0 {
		t.Fatalf("exp response = %+v", er)
	}
	status, hdr2, second := postJSON(t, ts.URL+"/v1/exp/fig3", req)
	if status != http.StatusOK || hdr2.Get("X-Uvmsim-Cache") != string(SourceHit) {
		t.Fatalf("repeat fig3 = %d %q, want cached", status, hdr2.Get("X-Uvmsim-Cache"))
	}
	if !bytes.Equal(first, second) || hdr.Get("X-Uvmsim-Hash") != hdr2.Get("X-Uvmsim-Hash") {
		t.Fatal("cached experiment body differs")
	}

	if status, _, _ := postJSON(t, ts.URL+"/v1/exp/fig99", req); status != http.StatusNotFound {
		t.Fatalf("unknown experiment = %d, want 404", status)
	}
}

func TestJobAdmissionBound(t *testing.T) {
	s, ts := testServer(t, Config{MaxJobs: 1, SweepJobs: 1})
	// Deterministically occupy the single live-job slot from inside —
	// an HTTP-submitted job could settle before the second request lands.
	if _, err := s.jobs.create("occupied"); err != nil {
		t.Fatal(err)
	}
	status, hdr, _ := postJSON(t, ts.URL+"/v1/jobs", SweepRequest{Workload: "regular", GPUMemMiB: 16})
	if status != http.StatusTooManyRequests {
		t.Fatalf("submit with full job slots = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Freeing the slot re-admits submissions.
	s.jobs.settle()
	status, _, body := postJSON(t, ts.URL+"/v1/jobs", SweepRequest{Workload: "regular", GPUMemMiB: 16})
	if status != http.StatusAccepted {
		t.Fatalf("submit after settle = %d %s", status, body)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestTimeoutResolution(t *testing.T) {
	s := New(Config{DefaultTimeout: 2 * time.Second, MaxTimeout: 5 * time.Second})
	defer s.Close()
	cases := []struct {
		ms   int64
		want time.Duration
	}{
		{0, 2 * time.Second},      // default applies
		{1000, time.Second},       // explicit below cap
		{60_000, 5 * time.Second}, // capped
	}
	for _, tc := range cases {
		if got := s.timeout(tc.ms); got != tc.want {
			t.Errorf("timeout(%d) = %s, want %s", tc.ms, got, tc.want)
		}
	}
	uncapped := New(Config{})
	defer uncapped.Close()
	if got := uncapped.timeout(0); got != 0 {
		t.Errorf("no policy: timeout(0) = %s, want 0 (unlimited)", got)
	}
}

// TestMetricsExposesSimCounters pins that absorbed per-run simulator
// metrics appear under the sim_ prefix after traffic.
func TestMetricsExposesSimCounters(t *testing.T) {
	_, ts := testServer(t, Config{})
	if status, _, body := postJSON(t, ts.URL+"/v1/sim", smallSim(1)); status != http.StatusOK {
		t.Fatalf("sim failed: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(text)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{"sim_faults_fetched", mRequests, mCells, mDepth} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if v := metricValue(t, exposition, mCells); v != 1 {
		t.Errorf("%s = %d, want 1", mCells, v)
	}
	// Every line's metric name must be scrape-valid.
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, " {")]
		if !ValidPromName(name) {
			t.Errorf("invalid metric name in exposition: %q", name)
		}
	}
}

func TestIndexListsEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/v1/sim") {
		t.Fatalf("index = %d %s", resp.StatusCode, body)
	}
}
