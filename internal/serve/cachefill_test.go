package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"uvmsim/internal/sweep"
)

// A write-through fill is byte-identical to a server-side run: fill
// node B with the row node A computed, and B's cache hit serves the
// exact bytes A's miss produced.
func TestCacheFillThenHitByteIdentical(t *testing.T) {
	_, tsA := testServer(t, Config{})
	_, tsB := testServer(t, Config{})
	req := smallSim(1)

	status, _, missBody := postJSON(t, tsA.URL+"/v1/sim", req)
	if status != http.StatusOK {
		t.Fatalf("miss on A = %d, body %s", status, missBody)
	}
	var ran SimResponse
	if err := json.Unmarshal(missBody, &ran); err != nil {
		t.Fatal(err)
	}

	status, _, fillBody := postJSON(t, tsB.URL+"/v1/cachefill", CacheFillRequest{
		Sim: req, Label: ran.Label, Row: ran.Row,
	})
	if status != http.StatusOK {
		t.Fatalf("fill on B = %d, body %s", status, fillBody)
	}
	var fr CacheFillResponse
	if err := json.Unmarshal(fillBody, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Stored || fr.Hash != ran.Hash {
		t.Fatalf("fill response = %+v, want stored under hash %s", fr, ran.Hash)
	}

	status, hdr, hitBody := postJSON(t, tsB.URL+"/v1/sim", req)
	if status != http.StatusOK {
		t.Fatalf("post-fill sim on B = %d, body %s", status, hitBody)
	}
	if got := hdr.Get("X-Uvmsim-Cache"); got != string(SourceHit) {
		t.Fatalf("post-fill cache header = %q, want hit (B simulated instead of serving the fill)", got)
	}
	if string(hitBody) != string(missBody) {
		t.Fatalf("filled hit differs from A's run:\nA:  %s\nB:  %s", missBody, hitBody)
	}
}

// Filling the same key twice is idempotent: the second fill reports
// stored=false and the cached bytes are unchanged.
func TestCacheFillIdempotent(t *testing.T) {
	_, ts := testServer(t, Config{})
	row := make([]string, len(sweep.Headers()))
	for i := range row {
		row[i] = "0"
	}
	fill := CacheFillRequest{Sim: smallSim(1), Row: row}
	status, _, body := postJSON(t, ts.URL+"/v1/cachefill", fill)
	if status != http.StatusOK {
		t.Fatalf("first fill = %d, body %s", status, body)
	}
	var first CacheFillResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Stored {
		t.Fatalf("first fill not stored: %+v", first)
	}
	status, _, body = postJSON(t, ts.URL+"/v1/cachefill", fill)
	if status != http.StatusOK {
		t.Fatalf("second fill = %d, body %s", status, body)
	}
	var second CacheFillResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Stored {
		t.Fatal("second fill overwrote an existing entry")
	}
}

// A fill whose label does not match the server's own recomputation is
// version skew, rejected before it can poison the cache.
func TestCacheFillLabelSkewRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	row := make([]string, len(sweep.Headers()))
	for i := range row {
		row[i] = "0"
	}
	status, _, body := postJSON(t, ts.URL+"/v1/cachefill", CacheFillRequest{
		Sim: smallSim(1), Label: "not-the-real-label", Row: row,
	})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "label skew") {
		t.Fatalf("skewed fill = %d %s, want 400 label skew", status, body)
	}
	// The poisoned row must not have been cached: a sim of the same cell
	// is a miss, not a hit serving the bogus fill.
	status, hdr, _ := postJSON(t, ts.URL+"/v1/sim", smallSim(1))
	if status != http.StatusOK || hdr.Get("X-Uvmsim-Cache") != string(SourceMiss) {
		t.Fatalf("post-skew sim = %d source %q, want a clean miss", status, hdr.Get("X-Uvmsim-Cache"))
	}
}

// A row with the wrong column count cannot be a rendered sweep row;
// reject it instead of caching a malformed table fragment.
func TestCacheFillBadRowRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, row := range [][]string{nil, {"just-one-column"}} {
		status, _, body := postJSON(t, ts.URL+"/v1/cachefill", CacheFillRequest{
			Sim: smallSim(1), Row: row,
		})
		if status != http.StatusBadRequest {
			t.Fatalf("fill with %d-column row = %d %s, want 400", len(row), status, body)
		}
	}
	// An invalid cell spec is rejected the same way.
	bad := smallSim(1)
	bad.Workload = "no-such-workload"
	row := make([]string, len(sweep.Headers()))
	for i := range row {
		row[i] = "0"
	}
	status, _, body := postJSON(t, ts.URL+"/v1/cachefill", CacheFillRequest{Sim: bad, Row: row})
	if status != http.StatusBadRequest {
		t.Fatalf("fill with bad spec = %d %s, want 400", status, body)
	}
}

// Liveness and readiness split during a drain: /healthz flips to 503 so
// the tier stops routing here, /livez stays 200 so a supervisor leaves
// the draining process alone.
func TestLivezStaysAliveDuringDrain(t *testing.T) {
	s, ts := testServer(t, Config{})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d", got)
	}
	if got := get("/livez"); got != http.StatusOK {
		t.Fatalf("livez before drain = %d", got)
	}
	s.BeginDrain()
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", got)
	}
	if got := get("/livez"); got != http.StatusOK {
		t.Fatalf("livez during drain = %d, want 200 (process is alive, just not ready)", got)
	}
}
