package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
	"uvmsim/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func TestPromNameValidity(t *testing.T) {
	cases := map[string]bool{
		"uvmserved_requests_total": true,
		"sim_batch_ns":             true,
		"a:b_c":                    true,
		"_leading":                 true,
		"":                         false,
		"9leads":                   false,
		"has-dash":                 false,
		"has.dot":                  false,
		"has space":                false,
	}
	for name, want := range cases {
		if got := ValidPromName(name); got != want {
			t.Errorf("ValidPromName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestPromNameSanitizer(t *testing.T) {
	cases := map[string]string{
		"already_valid":  "already_valid",
		"has-dash":       "has_dash",
		"has.dot.parts":  "has_dot_parts",
		"9leads":         "_9leads",
		"mixed-9.ok":     "mixed_9_ok",
		"":               "_",
		"uvmsim/metrics": "uvmsim_metrics",
	}
	for in, want := range cases {
		got := PromName(in)
		if got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !ValidPromName(got) {
			t.Errorf("PromName(%q) = %q is not itself valid", in, got)
		}
	}
}

// TestRegistryNamesAreValidProm pins that every metric the simulator
// registers today scrapes without sanitization. A run exercising every
// subsystem would be slow here; instead this checks the server-side
// names plus a representative absorbed set.
func TestRegistryNamesAreValidProm(t *testing.T) {
	for _, name := range []string{
		mRequests, mRejected, mErrors, mJobs, mCells,
		mHits, mMisses, mCoalesced, mEvicted,
		mEntries, mDepth, mRunning, mJobsLive,
	} {
		if !ValidPromName(name) {
			t.Errorf("server metric %q is not a valid Prometheus name", name)
		}
	}
}

// golden builds a fixed sample set covering all three kinds and
// compares the rendered exposition against testdata/metrics.golden.
func TestWritePrometheusGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim_faults_fetched").Inc(1234)
	reg.Counter("uvmserved_requests_total").Inc(42)
	reg.Gauge("uvmserved_queue_depth").Set(3)
	h := reg.Histogram("sim_batch_ns")
	for _, d := range []sim.Duration{1000, 2000, 4000, 8000, 16000} {
		h.Observe(d)
	}
	// Wall-clock latency histograms (telemetry.WallSuffix) render as
	// true cumulative _bucket series instead of summaries.
	wall := reg.Histogram("uvmserved_http_v1_sim_latency" + telemetry.WallSuffix)
	for _, d := range []sim.Duration{900, 1100, 1100, 5000} {
		wall.Observe(d)
	}
	samples := append(reg.Samples(),
		obs.Sample{Name: "uvmserved_cache_hits_total", Kind: obs.KindCounter, Value: 7},
		obs.Sample{Name: "uvmserved_running", Kind: obs.KindGauge, Value: 2},
	)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, samples); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusDeterministic pins byte-stability across sample
// orderings — scrape output must not depend on map iteration or
// registration order.
func TestWritePrometheusDeterministic(t *testing.T) {
	samples := []obs.Sample{
		{Name: "b_total", Kind: obs.KindCounter, Value: 2},
		{Name: "a_total", Kind: obs.KindCounter, Value: 1},
		{Name: "z_gauge", Kind: obs.KindGauge, Value: 9},
	}
	reversed := []obs.Sample{samples[2], samples[1], samples[0]}

	var fwd, rev bytes.Buffer
	if err := WritePrometheus(&fwd, samples); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&rev, reversed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
		t.Errorf("output depends on sample order:\n%s\nvs\n%s", fwd.Bytes(), rev.Bytes())
	}
}
