package serve

import (
	"fmt"
	"sync"
)

// job is one async sweep: submitted with 202, polled for progress,
// redeemed for the same content-addressed body a synchronous request
// would have produced.
type job struct {
	id   string
	hash string

	mu     sync.Mutex
	state  string
	done   int
	total  int
	body   []byte
	status int
	errMsg string
}

// info snapshots the job for the status endpoint.
func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{ID: j.id, Hash: j.hash, State: j.state, Done: j.done, Total: j.total, Error: j.errMsg}
}

// progress records settled-cell counts from the sweep's Progress hook.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
	j.done, j.total = done, total
	j.mu.Unlock()
}

// start marks the job running with its planned cell count.
func (j *job) start(total int) {
	j.mu.Lock()
	j.state, j.total = JobRunning, total
	j.mu.Unlock()
}

// finish records the terminal body (or error).
func (j *job) finish(body []byte, status int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state, j.errMsg, j.status = JobFailed, err.Error(), status
		return
	}
	j.state, j.body, j.status = JobDone, body, status
	j.done = j.total
}

// result returns the terminal body once done.
func (j *job) result() (body []byte, status int, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil, 0, false
	}
	return j.body, j.status, true
}

// jobStore owns every job and bounds how many may be live (not yet
// done/failed) at once — the async arm of admission control.
type jobStore struct {
	mu      sync.Mutex
	seq     int
	jobs    map[string]*job
	live    int
	maxLive int
}

func newJobStore(maxLive int) *jobStore {
	if maxLive < 1 {
		maxLive = 1
	}
	return &jobStore{jobs: make(map[string]*job), maxLive: maxLive}
}

// create registers a new queued job for hash, or fails with ErrBusy
// when the live-job bound is reached.
func (s *jobStore) create(hash string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live >= s.maxLive {
		return nil, ErrBusy
	}
	s.seq++
	j := &job{id: fmt.Sprintf("job-%d-%s", s.seq, hash), hash: hash, state: JobQueued}
	s.jobs[j.id] = j
	s.live++
	return j, nil
}

// settle marks a live job terminal, freeing its admission slot.
func (s *jobStore) settle() {
	s.mu.Lock()
	if s.live > 0 {
		s.live--
	}
	s.mu.Unlock()
}

// get looks a job up by id.
func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// active returns the number of live (queued or running) jobs.
func (s *jobStore) active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}
