// Package client is the typed HTTP client for the uvmserved simulation
// service. It speaks the internal/serve wire types, surfaces the cache
// provenance header, and gives callers (cmd/uvmload, scripts, tests)
// one place that knows the endpoint layout.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"uvmsim/internal/serve"
	"uvmsim/internal/telemetry"
)

// Result is one service response: the verbatim body plus the transport
// facts a caller needs to reason about it.
type Result struct {
	// Status is the HTTP status code.
	Status int
	// Source is the cache provenance (miss/hit/coalesced) from the
	// X-Uvmsim-Cache header; empty when the server sent none.
	Source serve.Source
	// Hash is the content address from X-Uvmsim-Hash.
	Hash string
	// Body holds the exact response bytes.
	Body []byte
	// RetryAfter is the parsed backpressure hint on 429 responses.
	RetryAfter time.Duration
	// Latency is the client-observed round-trip time, summed across
	// every attempt (excluding backoff waits) when retrying.
	Latency time.Duration
	// Retries counts the retry attempts this call consumed (0 when the
	// first attempt settled, or when no RetryPolicy is configured).
	Retries int
	// TraceID/ReqID echo the server's X-Trace-ID and X-Request-ID
	// response headers — the IDs to grep for in the fleet's logs.
	TraceID string
	ReqID   string
}

// OK reports whether the response carried a 2xx status.
func (r *Result) OK() bool { return r.Status >= 200 && r.Status < 300 }

// Busy reports whether the server shed this request (HTTP 429).
func (r *Result) Busy() bool { return r.Status == http.StatusTooManyRequests }

// Decode unmarshals the body into v.
func (r *Result) Decode(v interface{}) error { return json.Unmarshal(r.Body, v) }

// Err extracts the server's error envelope for non-2xx responses.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	var e serve.ErrorResponse
	if json.Unmarshal(r.Body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, r.Status)
	}
	return fmt.Errorf("server: HTTP %d", r.Status)
}

// Client talks to one uvmserved base URL.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New returns a client for base (e.g. "http://127.0.0.1:8844"). A nil
// http.Client selects a default with a 10-minute overall timeout —
// simulations are long requests.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Minute}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do issues a request under the retry policy: transport errors and 429
// rejections retry up to MaxRetries times with capped jittered backoff,
// honoring the server's Retry-After hint; every other outcome returns
// immediately. With no policy configured this is a single attempt.
//
// Telemetry: the context's trace ID (telemetry.WithTraceID) is
// forwarded on every attempt, and one request ID is minted per do call
// and held stable across its retries — the server's logs then show one
// req_id with several access lines, which is exactly what a retry is.
func (c *Client) do(ctx context.Context, method, path string, payload interface{}) (*Result, error) {
	var latency time.Duration
	reqID := telemetry.ReqID(ctx)
	if reqID == "" {
		reqID = telemetry.NewID()
	}
	for retries := 0; ; retries++ {
		res, err := c.once(ctx, method, path, payload, reqID)
		if res != nil {
			latency += res.Latency
			res.Latency = latency
			res.Retries = retries
		}
		transient := err != nil || res.Busy()
		if !transient || retries >= c.retry.MaxRetries || ctx.Err() != nil {
			return res, err
		}
		var hint time.Duration
		if res != nil {
			hint = res.RetryAfter
		}
		wait := c.retry.wait(retries+1, hint)
		if dl, ok := ctx.Deadline(); ok && c.retry.clock().Add(wait).After(dl) {
			// The deadline cannot fit this backoff sleep: the retry would
			// only ever observe context.DeadlineExceeded, so surface the
			// last real outcome now instead of burning the remaining budget
			// asleep.
			return res, err
		}
		if serr := c.retry.sleep(ctx, wait); serr != nil {
			return res, err // cancelled mid-backoff: surface the last outcome
		}
	}
}

// once issues one request and packages the response.
func (c *Client) once(ctx context.Context, method, path string, payload interface{}, reqID string) (*Result, error) {
	var body io.Reader
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tid := telemetry.TraceID(ctx); tid != "" {
		req.Header.Set(telemetry.HeaderTraceID, tid)
	}
	if reqID != "" {
		req.Header.Set(telemetry.HeaderReqID, reqID)
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Status:  resp.StatusCode,
		Source:  serve.Source(resp.Header.Get("X-Uvmsim-Cache")),
		Hash:    resp.Header.Get("X-Uvmsim-Hash"),
		Body:    raw,
		Latency: time.Since(start),
		TraceID: resp.Header.Get(telemetry.HeaderTraceID),
		ReqID:   resp.Header.Get(telemetry.HeaderReqID),
	}
	res.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now)
	return res, nil
}

// Sim runs one single-cell simulation.
func (c *Client) Sim(ctx context.Context, req serve.SimRequest) (*Result, error) {
	return c.do(ctx, http.MethodPost, "/v1/sim", req)
}

// CacheFill write-throughs one completed cell's result into the
// server's content-addressed cache without running a simulation.
func (c *Client) CacheFill(ctx context.Context, req serve.CacheFillRequest) (*Result, error) {
	return c.do(ctx, http.MethodPost, "/v1/cachefill", req)
}

// Sweep runs a synchronous parameter sweep.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) (*Result, error) {
	return c.do(ctx, http.MethodPost, "/v1/sweep", req)
}

// Exp runs one named paper experiment.
func (c *Client) Exp(ctx context.Context, id string, req serve.ExpRequest) (*Result, error) {
	return c.do(ctx, http.MethodPost, "/v1/exp/"+id, req)
}

// Submit enqueues an async sweep job; the returned info carries the id
// to poll.
func (c *Client) Submit(ctx context.Context, req serve.SweepRequest) (serve.JobInfo, *Result, error) {
	res, err := c.do(ctx, http.MethodPost, "/v1/jobs", req)
	if err != nil {
		return serve.JobInfo{}, nil, err
	}
	if !res.OK() && res.Status != http.StatusAccepted {
		return serve.JobInfo{}, res, res.Err()
	}
	var info serve.JobInfo
	if err := res.Decode(&info); err != nil {
		return serve.JobInfo{}, res, err
	}
	return info, res, nil
}

// JobStatus polls one job.
func (c *Client) JobStatus(ctx context.Context, id string) (serve.JobInfo, error) {
	res, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return serve.JobInfo{}, err
	}
	if !res.OK() {
		return serve.JobInfo{}, res.Err()
	}
	var info serve.JobInfo
	return info, res.Decode(&info)
}

// JobResult fetches a settled job's body.
func (c *Client) JobResult(ctx context.Context, id string) (*Result, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
}

// WaitJob polls a job until it settles (done or failed), then returns
// its final info. poll <= 0 selects 50ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (serve.JobInfo, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.JobStatus(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State == serve.JobDone || info.State == serve.JobFailed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz reports whether the server answers 200 on /healthz.
func (c *Client) Healthz(ctx context.Context) error {
	res, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	if !res.OK() {
		return res.Err()
	}
	return nil
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	res, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	if !res.OK() {
		return "", res.Err()
	}
	return string(res.Body), nil
}

// Experiments lists the server's registered experiment ids.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	res, err := c.do(ctx, http.MethodGet, "/v1/experiments", nil)
	if err != nil {
		return nil, err
	}
	if !res.OK() {
		return nil, res.Err()
	}
	var out struct {
		Experiments []string `json:"experiments"`
	}
	if err := res.Decode(&out); err != nil {
		return nil, err
	}
	return out.Experiments, nil
}
