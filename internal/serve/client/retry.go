package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy is the client's opt-in retry behaviour for transient
// outcomes: transport errors and 429 admission rejections. The server's
// Retry-After hint on 429 is honored as the wait (capped by
// MaxRetryAfter); transport errors and hint-less rejections wait a
// capped exponential backoff. Jitter decorrelates a fleet of clients
// retrying into the same admission queue.
//
// Retrying is safe for this API because every simulation endpoint is a
// pure function of its request — a retried request is answered from the
// content-addressed cache or coalesced into the in-flight run, never
// computed twice with different results.
type RetryPolicy struct {
	// MaxRetries is how many retries follow the first attempt; 0
	// disables retrying entirely.
	MaxRetries int
	// Base is the first backoff pause (default 100ms); Cap bounds the
	// exponential growth (default 5s).
	Base, Cap time.Duration
	// MaxRetryAfter caps how long a server Retry-After hint is honored
	// (default 30s) — a misconfigured server cannot park a client
	// forever.
	MaxRetryAfter time.Duration
	// Jitter is the fraction of each wait added uniformly at random
	// (default 0.25; negative disables jitter).
	Jitter float64

	// sleep, randFloat, and now are test seams.
	sleep     func(ctx context.Context, d time.Duration) error
	randFloat func() float64
	now       func() time.Time
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 30 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	if p.randFloat == nil {
		p.randFloat = rand.Float64 // the global source is goroutine-safe
	}
	if p.now == nil {
		p.now = time.Now
	}
	return p
}

// clock reads the policy's clock, tolerating the zero policy (which
// never went through withDefaults).
func (p RetryPolicy) clock() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now()
}

// backoff is the capped exponential pause before retry n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Base
	for i := 1; i < n && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// wait picks the pause before retry n: the server's hint when one was
// sent (capped), the backoff otherwise, jittered either way.
func (p RetryPolicy) wait(n int, retryAfter time.Duration) time.Duration {
	d := p.backoff(n)
	if retryAfter > 0 {
		d = retryAfter
		if d > p.MaxRetryAfter {
			d = p.MaxRetryAfter
		}
	}
	if p.Jitter > 0 {
		d += time.Duration(p.randFloat() * p.Jitter * float64(d))
	}
	return d
}

// WithRetry enables the retry policy on the client and returns it. The
// zero policy (MaxRetries 0) leaves behaviour unchanged: one attempt,
// the caller sees every 429.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p.withDefaults()
	return c
}

// parseRetryAfter reads a Retry-After header leniently: integer seconds
// and HTTP-dates parse; anything malformed, negative, or in the past
// yields 0, which wait() treats as "no hint" — the client falls back to
// its own capped backoff instead of failing or stalling on a server
// that emits garbage under stress.
func parseRetryAfter(h string, now func() time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now()); d > 0 {
			return d
		}
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
