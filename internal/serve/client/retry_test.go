package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryPolicyWait(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Cap: time.Second, MaxRetryAfter: 10 * time.Second, Jitter: -1}.withDefaults()
	for _, tc := range []struct {
		n    int
		hint time.Duration
		want time.Duration
	}{
		{1, 0, 100 * time.Millisecond},
		{2, 0, 200 * time.Millisecond},
		{3, 0, 400 * time.Millisecond},
		{4, 0, 800 * time.Millisecond},
		{5, 0, time.Second},                   // capped backoff
		{20, 0, time.Second},                  // stays capped
		{1, 3 * time.Second, 3 * time.Second}, // hint wins over backoff
		{1, time.Minute, 10 * time.Second},    // hint capped by MaxRetryAfter
	} {
		if got := p.wait(tc.n, tc.hint); got != tc.want {
			t.Errorf("wait(%d, %s) = %s, want %s", tc.n, tc.hint, got, tc.want)
		}
	}
}

func TestRetryPolicyJitterBounded(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Jitter: 0.5, randFloat: func() float64 { return 1.0 }}.withDefaults()
	if got, want := p.wait(1, 0), 150*time.Millisecond; got != want {
		t.Errorf("full-jitter wait = %s, want %s", got, want)
	}
	p.randFloat = func() float64 { return 0 }
	if got, want := p.wait(1, 0), 100*time.Millisecond; got != want {
		t.Errorf("zero-jitter wait = %s, want %s", got, want)
	}
}

// A client with retries configured rides out transient 429s: the waits
// honor the server's Retry-After hint and the final success reports how
// many retries it consumed.
func TestClientRetriesThrough429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var waits []time.Duration
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 5, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	res, err := c.do(context.Background(), http.MethodGet, "/whatever", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Retries != 2 {
		t.Fatalf("result = status %d retries %d, want 200 after 2 retries", res.Status, res.Retries)
	}
	if len(waits) != 2 || waits[0] != 7*time.Second || waits[1] != 7*time.Second {
		t.Fatalf("waits = %v, want two 7s Retry-After honors", waits)
	}
}

// With the budget exhausted the last 429 is surfaced, not an error:
// admission rejection stays a reportable outcome, as uvmload expects.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 3, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	res, err := c.do(context.Background(), http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Busy() || res.Retries != 3 {
		t.Fatalf("result = status %d retries %d, want 429 with 3 retries", res.Status, res.Retries)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4 (1 + 3 retries)", got)
	}
}

// Transport errors retry like 429s; a server that recovers mid-budget
// turns a would-be failure into a success.
func TestClientRetriesTransportError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Hijack and sever the connection mid-response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 2, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	res, err := c.do(context.Background(), http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatalf("retry did not absorb the transport error: %v", err)
	}
	if !res.OK() || res.Retries != 1 {
		t.Fatalf("result = status %d retries %d, want 200 after 1 retry", res.Status, res.Retries)
	}
}

// Without WithRetry the client is single-attempt: existing callers see
// every 429 exactly as before.
func TestClientNoRetryByDefault(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	res, err := New(ts.URL, nil).do(context.Background(), http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Busy() || res.Retries != 0 || calls.Load() != 1 {
		t.Fatalf("default client: status %d retries %d calls %d, want one 429 attempt", res.Status, res.Retries, calls.Load())
	}
}

// Cancellation mid-backoff surfaces the last outcome promptly instead
// of sleeping out the budget.
func TestClientRetryCancelledMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", strconv.Itoa(3600))
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 10, Jitter: -1})
	c.retry.sleep = func(sctx context.Context, d time.Duration) error {
		cancel()
		return sctx.Err()
	}
	res, err := c.do(ctx, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Busy() || res.Retries != 0 {
		t.Fatalf("cancelled retry = status %d retries %d, want the first 429", res.Status, res.Retries)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := func() time.Time { return time.Date(2024, 1, 1, 12, 0, 0, 0, time.UTC) }
	for _, tc := range []struct {
		h    string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{" 7 ", 7 * time.Second},
		{"0", 0},
		{"-3", 0}, // negative: no hint
		{"Mon, 01 Jan 2024 12:00:30 GMT", 30 * time.Second}, // HTTP-date in the future
		{"Mon, 01 Jan 2024 11:59:00 GMT", 0},                // HTTP-date in the past
		{"soon", 0},                                         // garbage
		{"1.5", 0},                                          // fractional seconds are not in the grammar
	} {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", tc.h, got, tc.want)
		}
	}
}

// A malformed Retry-After never breaks the retry loop: the client falls
// back to its own capped backoff as if no hint was sent.
func TestClientRetryMalformedRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "garbage, not a time")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var waits []time.Duration
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 3, Base: 50 * time.Millisecond, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	res, err := c.do(context.Background(), http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Retries != 1 {
		t.Fatalf("result = status %d retries %d, want 200 after 1 retry", res.Status, res.Retries)
	}
	if len(waits) != 1 || waits[0] != 50*time.Millisecond {
		t.Fatalf("waits = %v, want one base backoff (hint ignored)", waits)
	}
}

// When the context deadline cannot fit the next backoff sleep, the
// client returns the last outcome immediately instead of sleeping out
// the remaining budget just to fail.
func TestClientRetryStopsWhenDeadlineCannotFitBackoff(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	slept := false
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 10, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error {
		slept = true
		return nil
	}
	// A 1s deadline cannot fit the server's 30s Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := c.do(ctx, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Busy() || res.Retries != 0 {
		t.Fatalf("result = status %d retries %d, want the first 429 surfaced", res.Status, res.Retries)
	}
	if slept {
		t.Fatal("client slept into a deadline it could never beat")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// A deadline with room for the backoff still retries: the early-exit
// only fires when the sleep provably cannot complete.
func TestClientRetryContinuesWhenDeadlineFits(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxRetries: 3, Base: time.Millisecond, Jitter: -1})
	c.retry.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.do(ctx, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Retries != 1 {
		t.Fatalf("result = status %d retries %d, want 200 after 1 retry", res.Status, res.Retries)
	}
}
