package client

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uvmsim/internal/serve"
)

func testClient(t *testing.T) *Client {
	t.Helper()
	s := serve.New(serve.Config{QueueSlots: 4, RunSlots: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return New(ts.URL, nil)
}

func TestClientSimRoundTrip(t *testing.T) {
	c := testClient(t)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	req := serve.SimRequest{Workload: "regular", GPUMemMiB: 16, Footprint: 0.25}
	miss, err := c.Sim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !miss.OK() || miss.Source != serve.SourceMiss || miss.Hash == "" {
		t.Fatalf("miss = status %d source %q hash %q", miss.Status, miss.Source, miss.Hash)
	}
	var resp serve.SimResponse
	if err := miss.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "completed" {
		t.Fatalf("resp = %+v", resp)
	}

	hit, err := c.Sim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Source != serve.SourceHit || !bytes.Equal(hit.Body, miss.Body) {
		t.Fatalf("hit source %q, bodies equal: %v", hit.Source, bytes.Equal(hit.Body, miss.Body))
	}
	if hit.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestClientJobFlow(t *testing.T) {
	c := testClient(t)
	ctx := context.Background()
	req := serve.SweepRequest{Workload: "regular", GPUMemMiB: 16, Footprints: []float64{0.25, 0.5}}
	info, res, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v (res %+v)", err, res)
	}
	if info.ID == "" {
		t.Fatal("no job id")
	}
	final, err := c.WaitJob(ctx, info.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.JobDone {
		t.Fatalf("final = %+v", final)
	}
	jr, err := c.JobResult(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var sr serve.SweepResponse
	if err := jr.Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cells != 2 || sr.Status != "completed" {
		t.Fatalf("sweep response = %+v", sr)
	}

	// The sync path must agree byte-for-byte.
	sync, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sync.Body, jr.Body) {
		t.Fatal("sync sweep and job result bodies differ")
	}
}

func TestClientErrorEnvelope(t *testing.T) {
	c := testClient(t)
	res, err := c.Sim(context.Background(), serve.SimRequest{Workload: "no-such-workload"})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Err() == nil {
		t.Fatalf("expected error envelope, got status %d", res.Status)
	}
	if !strings.Contains(res.Err().Error(), "HTTP 400") {
		t.Fatalf("err = %v", res.Err())
	}
}

func TestClientMetricsAndExperiments(t *testing.T) {
	c := testClient(t)
	ctx := context.Background()
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "uvmserved_requests_total") {
		t.Fatalf("metrics missing server counters:\n%s", text)
	}
	ids, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no experiments listed")
	}
}
