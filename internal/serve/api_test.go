package serve

import (
	"testing"
	"time"

	"uvmsim/internal/sim"
)

func TestFingerprintCanonicalAcrossDefaultSpellings(t *testing.T) {
	implicit := SweepRequest{}.withDefaults()
	explicit := SweepRequest{
		Workload:   DefaultWorkload,
		GPUMemMiB:  DefaultGPUMemMiB,
		Footprints: []float64{DefaultFootprint},
		Prefetch:   []string{DefaultPrefetch},
		Replay:     []string{DefaultReplay},
		Evict:      []string{DefaultEvict},
		Batch:      []int{DefaultBatch},
		VABlockKiB: []int64{DefaultVABlockKiB},
	}.withDefaults()
	var none sim.Budget
	if implicit.fingerprint("sim", none) != explicit.fingerprint("sim", none) {
		t.Fatalf("default spellings fingerprint differently:\n%s\n%s",
			implicit.fingerprint("sim", none), explicit.fingerprint("sim", none))
	}
	// Empty strings inside a list canonicalize to the default too.
	mixed := SweepRequest{Prefetch: []string{""}}.withDefaults()
	if mixed.fingerprint("sim", none) != implicit.fingerprint("sim", none) {
		t.Fatal("empty list element did not canonicalize to the default")
	}
}

func TestFingerprintExcludesTimeoutIncludesBudget(t *testing.T) {
	a := SweepRequest{TimeoutMs: 5}.withDefaults()
	b := SweepRequest{TimeoutMs: 5000}.withDefaults()
	var none sim.Budget
	if a.fingerprint("sim", none) != b.fingerprint("sim", none) {
		t.Fatal("timeout leaked into the fingerprint — wall-clock limits never change result bytes")
	}
	tight := sim.Budget{MaxEvents: 10}
	if a.fingerprint("sim", none) == a.fingerprint("sim", tight) {
		t.Fatal("budget missing from the fingerprint — budgets change the response")
	}
	if a.fingerprint("sim", none) == a.fingerprint("sweep", none) {
		t.Fatal("shape missing from the fingerprint — sim and sweep bodies differ")
	}
}

func TestBudgetResolution(t *testing.T) {
	def := sim.Budget{MaxEvents: 1000, SimDeadline: sim.Time(time.Second)}
	cap := sim.Budget{MaxEvents: 5000}

	// Zero request inherits the default.
	got := BudgetRequest{}.budget(def, cap)
	if got.MaxEvents != 1000 || got.SimDeadline != def.SimDeadline {
		t.Fatalf("zero request = %+v, want default", got)
	}
	// A request may tighten below the default.
	got = BudgetRequest{MaxEvents: 10}.budget(def, cap)
	if got.MaxEvents != 10 {
		t.Fatalf("tightened = %+v", got)
	}
	// …but never escape the cap.
	got = BudgetRequest{MaxEvents: 1_000_000}.budget(def, cap)
	if got.MaxEvents != 5000 {
		t.Fatalf("capped = %+v, want 5000", got)
	}
	// An unlimited request under a cap becomes the cap.
	got = BudgetRequest{}.budget(sim.Budget{}, cap)
	if got.MaxEvents != 5000 {
		t.Fatalf("unlimited under cap = %+v, want cap", got)
	}
	// No default, no cap: unlimited stays unlimited.
	got = BudgetRequest{}.budget(sim.Budget{}, sim.Budget{})
	if got.MaxEvents != 0 || got.SimDeadline != 0 {
		t.Fatalf("unbounded = %+v, want zero", got)
	}
}

func TestSimRequestLiftsToSingletonSweep(t *testing.T) {
	r := SimRequest{Workload: "regular", Footprint: 0.75, Prefetch: "none", Batch: 128}
	s := r.sweepRequest().withDefaults()
	spec := s.spec(sim.Budget{}, sim.Budget{})
	configs, err := spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 {
		t.Fatalf("singleton lift produced %d cells", len(configs))
	}
}
