package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uvmsim/internal/exp"
	"uvmsim/internal/govern"
	"uvmsim/internal/obs"
	"uvmsim/internal/parallel"
	"uvmsim/internal/sim"
	"uvmsim/internal/sweep"
	"uvmsim/internal/telemetry"
)

// Config holds the serving knobs. The zero value of any field selects
// its default; budgets default to unlimited.
type Config struct {
	// CacheEntries bounds the result cache (default 512; negative
	// disables storage but keeps coalescing).
	CacheEntries int
	// QueueSlots bounds admitted requests, queued plus running (default
	// 64). A full queue answers 429.
	QueueSlots int
	// RunSlots bounds concurrently executing simulations (default
	// NumCPU).
	RunSlots int
	// SweepJobs is the worker count inside each sweep (default 1:
	// request-level parallelism comes from RunSlots; raise it when the
	// expected load is few large sweeps rather than many small cells).
	SweepJobs int
	// MaxJobs bounds live (queued or running) async jobs (default 16).
	MaxJobs int
	// MaxCells bounds the cross-product size of one request (default
	// 4096).
	MaxCells int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// DefaultBudget applies to requests that set no budget; BudgetCap
	// bounds every request's budget (zero fields = unlimited).
	DefaultBudget, BudgetCap sim.Budget
	// DefaultTimeout applies when a request sets no timeout_ms;
	// MaxTimeout caps all request timeouts. Zero = none.
	DefaultTimeout, MaxTimeout time.Duration
	// Log receives the structured access log and cache-fill lines
	// (schema: internal/telemetry). Nil logs nothing.
	Log *slog.Logger
	// Flight is the process flight recorder; when set, the handler
	// exposes it at GET /debug/flightrec and dumps it into FlightDir on
	// 5xx responses.
	Flight    *telemetry.Flight
	FlightDir string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.QueueSlots == 0 {
		c.QueueSlots = 64
	}
	if c.RunSlots == 0 {
		c.RunSlots = parallel.Jobs(0)
	}
	if c.SweepJobs == 0 {
		c.SweepJobs = 1
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 16
	}
	if c.MaxCells == 0 {
		c.MaxCells = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the simulation service: validation, admission, execution,
// caching, and observability behind one http.Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	gate    *Gate
	jobs    *jobStore
	met     *metrics
	red     *telemetry.RED
	mux     *http.ServeMux
	handler http.Handler

	// base is the lifecycle context every simulation runs under; it is
	// cancelled only on forced shutdown, so request disconnects never
	// kill a shared (coalesced) computation.
	base       context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // live async jobs
	draining   atomic.Bool
}

// New assembles a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries),
		gate:  NewGate(cfg.QueueSlots, cfg.RunSlots),
		jobs:  newJobStore(cfg.MaxJobs),
		met:   newMetrics(),
		red:   telemetry.NewRED("uvmserved_http"),
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/cachefill", s.handleCacheFill)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/experiments", s.handleExpList)
	mux.HandleFunc("POST /v1/exp/{id}", s.handleExp)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	if cfg.Flight != nil {
		mux.Handle("GET /debug/flightrec", cfg.Flight.HTTPHandler())
	}
	s.mux = mux
	s.handler = telemetry.Middleware(mux, telemetry.MiddlewareOptions{
		Logger:    cfg.Log,
		RED:       s.red,
		Flight:    cfg.Flight,
		FlightDir: cfg.FlightDir,
		Route:     routeLabel,
	})
	return s
}

// routeLabel maps a request onto its stable route label for RED
// metrics and access lines, collapsing path parameters so the metric
// cardinality is the route table's, not the traffic's.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/sim":
		return "v1_sim"
	case p == "/v1/cachefill":
		return "v1_cachefill"
	case p == "/v1/sweep":
		return "v1_sweep"
	case p == "/v1/jobs":
		return "v1_jobs"
	case strings.HasPrefix(p, "/v1/jobs/"):
		if strings.HasSuffix(p, "/result") {
			return "v1_job_result"
		}
		return "v1_job_status"
	case p == "/v1/experiments":
		return "v1_experiments"
	case strings.HasPrefix(p, "/v1/exp/"):
		return "v1_exp"
	case p == "/metrics":
		return "metrics"
	case p == "/healthz":
		return "healthz"
	case p == "/livez":
		return "livez"
	case p == "/debug/flightrec":
		return "debug_flightrec"
	case p == "/":
		return "index"
	default:
		return "other"
	}
}

// Handler returns the service's HTTP handler: the route mux wrapped in
// the telemetry edge (trace/request IDs, access log, RED metrics,
// flight-recorder dump on 5xx).
func (s *Server) Handler() http.Handler { return s.handler }

// Cache exposes the result cache for tests and draining checks.
func (s *Server) Cache() *Cache { return s.cache }

// BeginDrain flips /healthz to 503 so load balancers stop routing here
// while in-flight work finishes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain waits for every live async job. If ctx expires first, the base
// context is cancelled — engines observe it within one polling window,
// their runs settle as cancelled (and are not cached) — and Drain waits
// for that settling before returning ctx's error. Synchronous in-flight
// requests are the HTTP server's to drain via Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close force-cancels everything the server is running.
func (s *Server) Close() { s.baseCancel() }

// timeout resolves a request's timeout_ms against the server policy.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// admitAndRun pushes one computation through admission control: claim a
// queue slot (or fail busy), wait for a run slot, execute, and map the
// terminal state to an HTTP status. Deterministic outcomes — completed
// runs and budget trips — are cacheable; cancellations and failures are
// not, so a drained server can never leave a partial cache entry.
func (s *Server) admitAndRun(timeoutMs int64, run func(ctx context.Context) ([]byte, govern.State, error)) (body []byte, status int, cacheable bool, err error) {
	if err := s.gate.Enter(); err != nil {
		return nil, 0, false, err
	}
	defer s.gate.Leave()
	ctx, cancel := context.WithCancel(s.base)
	if d := s.timeout(timeoutMs); d > 0 {
		ctx, cancel = context.WithTimeout(s.base, d)
	}
	defer cancel()
	if err := s.gate.Run(ctx); err != nil {
		return nil, 0, false, err
	}
	defer s.gate.EndRun()
	body, st, err := run(ctx)
	if err != nil {
		return nil, 0, false, err
	}
	status = govern.HTTPStatus(st)
	if st == govern.StateCancelled && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout // the request's own deadline, not a drain
	}
	cacheable = st == govern.StateCompleted || st == govern.StateDeadline || st == govern.StateLivelock
	return body, status, cacheable, nil
}

// marshalBody renders a response value to the exact bytes that will be
// cached and served.
func marshalBody(v interface{}) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// overallState folds a sweep outcome into one terminal state, most
// severe first. RunContext only returns without error when every cell
// completed or tripped its deterministic budget.
func overallState(res *sweep.Result, runErr error) govern.State {
	if runErr != nil {
		return govern.StatusOf(runErr).State
	}
	counts := res.Counts()
	switch {
	case counts[govern.StateLivelock] > 0:
		return govern.StateLivelock
	case counts[govern.StateDeadline] > 0:
		return govern.StateDeadline
	default:
		return govern.StateCompleted
	}
}

// runSweep executes a validated spec and renders it with render, which
// receives the result and the folded state.
func (s *Server) runSweep(ctx context.Context, spec *sweep.Spec, onProgress func(done, total int), render func(res *sweep.Result, st govern.State) (interface{}, error)) ([]byte, govern.State, error) {
	spec.Jobs = s.cfg.SweepJobs
	spec.Progress = func(done, total int) {
		s.met.inc(mCells)
		if onProgress != nil {
			onProgress(done, total)
		}
	}
	spec.OnMetrics = func(_ sweep.Config, samples []obs.Sample) { s.met.absorb(samples) }
	res, runErr := spec.RunContext(ctx)
	st := overallState(res, runErr)
	var v interface{}
	if runErr != nil {
		v = ErrorResponse{Error: runErr.Error()}
	} else {
		var err error
		v, err = render(res, st)
		if err != nil {
			return nil, st, err
		}
	}
	body, err := marshalBody(v)
	return body, st, err
}

// prepare validates a request and derives its spec, cell count, and
// content hash. Validation errors surface before any admission or
// compute cost.
func (s *Server) prepare(shape string, req SweepRequest) (SweepRequest, *sweep.Spec, int, string, error) {
	req = req.withDefaults()
	spec := req.spec(s.cfg.DefaultBudget, s.cfg.BudgetCap)
	configs, err := spec.Configs() // validates every dimension up front
	if err != nil {
		return req, nil, 0, "", err
	}
	if len(configs) > s.cfg.MaxCells {
		return req, nil, 0, "", fmt.Errorf("serve: sweep has %d cells, limit %d", len(configs), s.cfg.MaxCells)
	}
	hash := hashOf(req.fingerprint(shape, spec.Budget))
	return req, spec, len(configs), hash, nil
}

func buildSweepResponse(hash string, res *sweep.Result, st govern.State, cells int) *SweepResponse {
	resp := &SweepResponse{
		Hash:    hash,
		Status:  string(st),
		Cells:   cells,
		States:  map[string]int{},
		Headers: sweep.Headers(),
		Rows:    res.Table.Rows,
	}
	for state, n := range res.Counts() {
		resp.States[string(state)] = n
	}
	for _, cs := range res.Statuses {
		if cs.State != "" && cs.State != govern.StateCompleted {
			resp.Failed = append(resp.Failed, CellFailure{Label: cs.Label, State: string(cs.State), Err: cs.Err})
		}
	}
	return resp
}

// ---- handlers ----

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.met.inc(mRequests)
	sreq, spec, _, hash, err := s.prepare("sim", req.sweepRequest())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	label := "" // the singleton cell's replay recipe
	if configs, err := spec.Configs(); err == nil && len(configs) == 1 {
		label = configs[0].Label(spec)
	}
	body, status, src, err := s.cache.Do(r.Context(), hash, func() ([]byte, int, bool, error) {
		return s.admitAndRun(sreq.TimeoutMs, func(ctx context.Context) ([]byte, govern.State, error) {
			return s.runSweep(ctx, spec, nil, func(res *sweep.Result, st govern.State) (interface{}, error) {
				resp := &SimResponse{Hash: hash, Label: label, Status: string(st), Headers: sweep.Headers()}
				if len(res.Table.Rows) == 1 {
					resp.Row = res.Table.Rows[0]
				}
				for _, cs := range res.Statuses {
					if cs.Err != "" {
						resp.Error = cs.Err
					}
				}
				return resp, nil
			})
		})
	})
	s.finish(w, r, hash, body, status, src, err)
}

// handleCacheFill accepts a write-through fill from a sweep
// coordinator: a completed cell's rendered row, inserted into the
// content-addressed cache as the exact bytes a local run of the same
// cell would produce (§7 determinism makes them interchangeable). The
// key and label are recomputed from the request's own cell spec — a
// caller can never choose which key it fills — and a Label mismatch
// means protocol or version skew, rejected instead of cached.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	var req CacheFillRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.met.inc(mRequests)
	if len(req.Row) == 0 || len(req.Row) != len(sweep.Headers()) {
		s.met.inc(mFillRejected)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("cachefill: row has %d columns, want %d", len(req.Row), len(sweep.Headers())))
		return
	}
	_, spec, _, hash, err := s.prepare("sim", req.Sim.sweepRequest())
	if err != nil {
		s.met.inc(mFillRejected)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	label := ""
	if configs, cerr := spec.Configs(); cerr == nil && len(configs) == 1 {
		label = configs[0].Label(spec)
	}
	if req.Label != "" && req.Label != label {
		s.met.inc(mFillRejected)
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("cachefill: label skew: request %q, server computed %q", req.Label, label))
		return
	}
	body, err := marshalBody(&SimResponse{
		Hash:    hash,
		Label:   label,
		Status:  string(govern.StateCompleted),
		Headers: sweep.Headers(),
		Row:     req.Row,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	stored := s.cache.Put(hash, body, http.StatusOK)
	if stored {
		s.met.inc(mFills)
		if s.cfg.Log != nil {
			s.cfg.Log.LogAttrs(r.Context(), slog.LevelInfo, "cache fill (write-through)",
				slog.String(telemetry.KeyConfigHash, hash),
				slog.Int("bytes", len(body)))
		}
	}
	s.writeJSON(w, http.StatusOK, CacheFillResponse{Hash: hash, Stored: stored})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.met.inc(mRequests)
	sreq, spec, cells, hash, err := s.prepare("sweep", req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, status, src, err := s.cache.Do(r.Context(), hash, func() ([]byte, int, bool, error) {
		return s.admitAndRun(sreq.TimeoutMs, func(ctx context.Context) ([]byte, govern.State, error) {
			return s.runSweep(ctx, spec, nil, func(res *sweep.Result, st govern.State) (interface{}, error) {
				return buildSweepResponse(hash, res, st, cells), nil
			})
		})
	})
	s.finish(w, r, hash, body, status, src, err)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.met.inc(mRequests)
	sreq, spec, cells, hash, err := s.prepare("sweep", req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.jobs.create(hash)
	if err != nil {
		s.reject(w)
		return
	}
	s.met.inc(mJobs)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.jobs.settle()
		j.start(cells)
		// Async jobs outlive their submitting connection, so the
		// coalesced-wait context is the server lifecycle, not the request.
		body, status, _, err := s.cache.Do(s.base, hash, func() ([]byte, int, bool, error) {
			return s.admitAndRun(sreq.TimeoutMs, func(ctx context.Context) ([]byte, govern.State, error) {
				return s.runSweep(ctx, spec, j.progress, func(res *sweep.Result, st govern.State) (interface{}, error) {
					return buildSweepResponse(hash, res, st, cells), nil
				})
			})
		})
		j.finish(body, status, err)
	}()
	s.writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	info := j.info()
	switch info.State {
	case JobDone:
		body, status, _ := j.result()
		s.writeBody(w, status, info.Hash, "", body)
	case JobFailed:
		s.writeError(w, http.StatusInternalServerError, info.Error)
	default:
		// Not settled yet: point the client back at the status endpoint.
		s.writeJSON(w, http.StatusConflict, info)
	}
}

func (s *Server) handleExpList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string][]string{"experiments": exp.ExperimentIDs()})
}

func (s *Server) handleExp(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := exp.Registry()[id]; !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", id))
		return
	}
	var req ExpRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.met.inc(mRequests)
	if req.GPUMemMiB == 0 {
		req.GPUMemMiB = DefaultGPUMemMiB
	}
	eff := req.Budget.budget(s.cfg.DefaultBudget, s.cfg.BudgetCap)
	hash := hashOf(req.fingerprint(id, eff))
	body, status, src, err := s.cache.Do(r.Context(), hash, func() ([]byte, int, bool, error) {
		return s.admitAndRun(req.TimeoutMs, func(ctx context.Context) ([]byte, govern.State, error) {
			sc := exp.Scale{
				GPUMemoryBytes: req.GPUMemMiB << 20,
				Seed:           req.Seed,
				Quick:          req.Quick,
				Jobs:           s.cfg.SweepJobs,
				Budget:         eff,
			}
			tables, runErr := exp.RunContext(ctx, id, sc)
			st := govern.StatusOf(runErr).State
			resp := &ExpResponse{ID: id, Hash: hash, Status: string(st), Tables: tables}
			if runErr != nil {
				resp.Error = runErr.Error()
				resp.Tables = nil
			}
			body, err := marshalBody(resp)
			return body, st, err
		})
	})
	s.finish(w, r, hash, body, status, src, err)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	counter := func(name string, v uint64) obs.Sample {
		return obs.Sample{Name: name, Kind: obs.KindCounter, Value: v}
	}
	gauge := func(name string, v uint64) obs.Sample {
		return obs.Sample{Name: name, Kind: obs.KindGauge, Value: v}
	}
	dynamic := []obs.Sample{
		counter(mHits, cs.Hits),
		counter(mMisses, cs.Misses),
		counter(mCoalesced, cs.Coalesced),
		counter(mEvicted, cs.Evictions),
		gauge(mEntries, uint64(cs.Entries)),
		gauge(mDepth, uint64(s.gate.Depth())),
		gauge(mRunning, uint64(s.gate.Running())),
		gauge(mJobsLive, uint64(s.jobs.active())),
	}
	// Wall-clock RED series (one set per route) ride the same exposition.
	dynamic = append(dynamic, s.red.Samples()...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.write(w, dynamic); err != nil {
		s.met.inc(mErrors)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleLivez is pure liveness: 200 for as long as the process answers
// HTTP at all, drain or not. Readiness (/healthz) tells load balancers
// to stop routing here; liveness tells supervisors not to kill a
// process that is merely draining.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "uvmserved",
		"endpoints": []string{
			"POST /v1/sim", "POST /v1/cachefill", "POST /v1/sweep", "POST /v1/jobs",
			"GET /v1/jobs/{id}", "GET /v1/jobs/{id}/result",
			"GET /v1/experiments", "POST /v1/exp/{id}",
			"GET /metrics", "GET /healthz", "GET /livez",
		},
	})
}

// ---- plumbing ----

// decode parses a bounded JSON request body; an empty body is a valid
// all-defaults request.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// finish maps a Do outcome onto the response: busy → 429 with
// Retry-After, context errors → 503/504, marshal/internal errors → 500,
// everything else → the computed body verbatim. A cache miss that
// computed fresh bytes logs one "cache fill" line under the request's
// trace, tying the fleet's content-addressed cache entries back to the
// requests that populated them.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, hash string, body []byte, status int, src Source, err error) {
	switch {
	case err == nil:
		if src == SourceMiss && s.cfg.Log != nil {
			s.cfg.Log.LogAttrs(r.Context(), slog.LevelInfo, "cache fill",
				slog.String(telemetry.KeyConfigHash, hash),
				slog.Int("status", status),
				slog.Int("bytes", len(body)))
		}
		s.writeBody(w, status, hash, src, body)
	case errors.Is(err, ErrBusy):
		s.reject(w)
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		s.writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// reject writes the backpressure response.
func (s *Server) reject(w http.ResponseWriter) {
	s.met.inc(mRejected)
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "server busy: admission queue full"})
}

// writeBody serves exact body bytes — the cache contract depends on
// hits and misses writing identical content.
func (s *Server) writeBody(w http.ResponseWriter, status int, hash string, src Source, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Uvmsim-Hash", hash)
	if src != "" {
		w.Header().Set("X-Uvmsim-Cache", string(src))
	}
	if status >= 500 {
		s.met.inc(mErrors)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := marshalBody(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status >= 500 {
		s.met.inc(mErrors)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}
