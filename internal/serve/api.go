// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// front end that turns the deterministic simulator into a shared,
// cacheable compute service. Because every run is a pure function of
// its configuration (DESIGN.md §7), results are content-addressed by
// the same confighash keys the sweep journal uses: identical requests
// hit a bounded LRU cache byte-for-byte, concurrent identical requests
// coalesce into one simulation, and only genuinely new configurations
// pay for compute — which is admitted through a bounded queue with
// backpressure so the server degrades by rejecting, never by melting.
package serve

import (
	"fmt"
	"time"

	"uvmsim/internal/confighash"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/sweep"
)

// BudgetRequest carries the deterministic per-run budgets a request may
// set. Zero fields inherit the server's defaults; the server's caps
// bound every field, so a request can tighten its budget but never
// escape the operator's.
type BudgetRequest struct {
	SimBudgetMs    int64  `json:"sim_budget_ms,omitempty"`
	MaxEvents      uint64 `json:"max_events,omitempty"`
	LivelockEvents uint64 `json:"livelock_events,omitempty"`
}

// budget resolves the request against server default and cap: a zero
// request field takes the default, and when a cap is set the effective
// value never exceeds it (an unlimited request under a cap becomes the
// cap).
func (b BudgetRequest) budget(def, cap sim.Budget) sim.Budget {
	eff := sim.Budget{
		SimDeadline:    sim.Time(b.SimBudgetMs) * sim.Time(time.Millisecond),
		MaxEvents:      b.MaxEvents,
		LivelockWindow: b.LivelockEvents,
	}
	if eff.SimDeadline == 0 {
		eff.SimDeadline = def.SimDeadline
	}
	if eff.MaxEvents == 0 {
		eff.MaxEvents = def.MaxEvents
	}
	if eff.LivelockWindow == 0 {
		eff.LivelockWindow = def.LivelockWindow
	}
	if cap.SimDeadline > 0 && (eff.SimDeadline == 0 || eff.SimDeadline > cap.SimDeadline) {
		eff.SimDeadline = cap.SimDeadline
	}
	if cap.MaxEvents > 0 && (eff.MaxEvents == 0 || eff.MaxEvents > cap.MaxEvents) {
		eff.MaxEvents = cap.MaxEvents
	}
	if cap.LivelockWindow > 0 && (eff.LivelockWindow == 0 || eff.LivelockWindow > cap.LivelockWindow) {
		eff.LivelockWindow = cap.LivelockWindow
	}
	return eff
}

// SimRequest asks for one single-cell simulation. Zero-valued knobs
// take the same defaults the uvmsweep CLI uses; Seed 0 is a real seed,
// not a default.
type SimRequest struct {
	Workload   string  `json:"workload"`
	GPUMemMiB  int64   `json:"gpu_mem_mib,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Footprint  float64 `json:"footprint,omitempty"`
	Prefetch   string  `json:"prefetch,omitempty"`
	Replay     string  `json:"replay,omitempty"`
	Evict      string  `json:"evict,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	VABlockKiB int64   `json:"vablock_kib,omitempty"`
	// Gpus is the device count. A pointer distinguishes "absent" (one
	// GPU) from an explicit 0, which is rejected with 400 — a cell spec
	// that names a device count must name a legal one. Migration selects
	// the multi-GPU placement policy; it is meaningful only when Gpus > 1.
	Gpus      *int          `json:"gpus,omitempty"`
	Migration string        `json:"migration,omitempty"`
	Budget    BudgetRequest `json:"budget,omitempty"`
	// TimeoutMs bounds the request on the host clock. It is not part of
	// the cache key: a timed-out run is cancelled and never cached.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// sweepRequest lifts the single cell into a singleton sweep so both
// endpoints share one validation, execution, and caching path.
func (r SimRequest) sweepRequest() SweepRequest {
	sr := SweepRequest{
		Workload:   r.Workload,
		GPUMemMiB:  r.GPUMemMiB,
		Seed:       r.Seed,
		Footprints: []float64{r.Footprint},
		Prefetch:   []string{r.Prefetch},
		Replay:     []string{r.Replay},
		Evict:      []string{r.Evict},
		Batch:      []int{r.Batch},
		VABlockKiB: []int64{r.VABlockKiB},
		Budget:     r.Budget,
		TimeoutMs:  r.TimeoutMs,
	}
	if r.Gpus != nil {
		// Forwarded even when illegal (<1): sweep validation turns it
		// into the 400 the cell-spec contract promises.
		sr.Gpus = []int{*r.Gpus}
	}
	if r.Migration != "" {
		sr.Migration = []string{r.Migration}
	}
	return sr
}

// SweepRequest asks for a full parameter sweep: the cross product of
// every list, exactly as uvmsweep expands it. Empty lists take the CLI
// defaults.
type SweepRequest struct {
	Workload   string    `json:"workload"`
	GPUMemMiB  int64     `json:"gpu_mem_mib,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	Footprints []float64 `json:"footprints,omitempty"`
	Prefetch   []string  `json:"prefetch,omitempty"`
	Replay     []string  `json:"replay,omitempty"`
	Evict      []string  `json:"evict,omitempty"`
	Batch      []int     `json:"batch,omitempty"`
	VABlockKiB []int64   `json:"vablock_kib,omitempty"`
	// Gpus lists device counts (empty means single-GPU); Migration lists
	// placement policy names. Entries are validated, never defaulted: an
	// explicit 0 or unknown policy is a 400, not a silent substitution.
	Gpus      []int         `json:"gpus,omitempty"`
	Migration []string      `json:"migration,omitempty"`
	Budget    BudgetRequest `json:"budget,omitempty"`
	TimeoutMs int64         `json:"timeout_ms,omitempty"`
}

// Request defaults, matching the uvmsweep CLI flag defaults.
const (
	DefaultWorkload   = "regular"
	DefaultGPUMemMiB  = 96
	DefaultFootprint  = 0.5
	DefaultPrefetch   = "density"
	DefaultReplay     = "batchflush"
	DefaultEvict      = "lru"
	DefaultBatch      = 256
	DefaultVABlockKiB = 2048
)

// withDefaults fills every empty dimension. Mutating a copy keeps the
// fingerprint canonical: two requests that spell the default
// differently ("" vs explicit) hash identically.
func (r SweepRequest) withDefaults() SweepRequest {
	if r.Workload == "" {
		r.Workload = DefaultWorkload
	}
	if r.GPUMemMiB == 0 {
		r.GPUMemMiB = DefaultGPUMemMiB
	}
	fill := func(s []string, def string) []string {
		if len(s) == 0 {
			return []string{def}
		}
		out := make([]string, len(s))
		for i, v := range s {
			if v == "" {
				v = def
			}
			out[i] = v
		}
		return out
	}
	if len(r.Footprints) == 0 {
		r.Footprints = []float64{DefaultFootprint}
	} else {
		fp := make([]float64, len(r.Footprints))
		for i, v := range r.Footprints {
			if v == 0 {
				v = DefaultFootprint
			}
			fp[i] = v
		}
		r.Footprints = fp
	}
	r.Prefetch = fill(r.Prefetch, DefaultPrefetch)
	r.Replay = fill(r.Replay, DefaultReplay)
	r.Evict = fill(r.Evict, DefaultEvict)
	if len(r.Batch) == 0 {
		r.Batch = []int{DefaultBatch}
	} else {
		b := make([]int, len(r.Batch))
		for i, v := range r.Batch {
			if v == 0 {
				v = DefaultBatch
			}
			b[i] = v
		}
		r.Batch = b
	}
	if len(r.VABlockKiB) == 0 {
		r.VABlockKiB = []int64{DefaultVABlockKiB}
	} else {
		vb := make([]int64, len(r.VABlockKiB))
		for i, v := range r.VABlockKiB {
			if v == 0 {
				v = DefaultVABlockKiB
			}
			vb[i] = v
		}
		r.VABlockKiB = vb
	}
	// Canonicalize the multi-GPU axes. A request whose every device count
	// is 1 is the single-GPU request — migration collapses at K=1, so the
	// axes are cleared and the fingerprint (and cache identity) matches
	// every pre-multi-GPU request byte-for-byte. Illegal entries (0,
	// negative, over the maximum) are deliberately left in place for
	// validation to reject. A genuinely multi-GPU request with no policy
	// list pins the first-touch default so spelling it out hashes the same.
	if r.multiGPU() {
		if len(r.Migration) == 0 {
			r.Migration = []string{"first-touch"}
		}
	} else if legalSingleGPU(r.Gpus) && legalPolicies(r.Migration) {
		r.Gpus = nil
		r.Migration = nil
	}
	return r
}

// multiGPU reports whether any requested device count exceeds one.
func (r SweepRequest) multiGPU() bool {
	for _, g := range r.Gpus {
		if g > 1 {
			return true
		}
	}
	return false
}

// legalSingleGPU reports whether gpus contains only the value 1 (or is
// empty) — the only shape safe to canonicalize away.
func legalSingleGPU(gpus []int) bool {
	for _, g := range gpus {
		if g != 1 {
			return false
		}
	}
	return true
}

// legalPolicies reports whether every migration name parses; unknown
// names must survive canonicalization so validation can 400 them.
func legalPolicies(names []string) bool {
	for _, n := range names {
		if _, err := multigpu.ParsePolicy(n); err != nil {
			return false
		}
	}
	return true
}

// spec converts the defaulted request into a validated sweep spec under
// the server's budget policy. The caller owns Jobs, Obs, and hooks.
func (r SweepRequest) spec(def, cap sim.Budget) *sweep.Spec {
	vb := make([]int64, len(r.VABlockKiB))
	for i, v := range r.VABlockKiB {
		vb[i] = v << 10
	}
	return &sweep.Spec{
		Workload:       r.Workload,
		GPUMemoryBytes: r.GPUMemMiB << 20,
		Seed:           r.Seed,
		Footprints:     r.Footprints,
		Prefetch:       r.Prefetch,
		Replay:         r.Replay,
		Evict:          r.Evict,
		Batch:          r.Batch,
		VABlock:        vb,
		GPUs:           r.Gpus,
		Migration:      r.Migration,
		Budget:         r.Budget.budget(def, cap),
	}
}

// fingerprint renders the canonical cache identity of a defaulted
// request: every knob that can change the response body, in fixed
// order, budget included (a different budget can trip differently).
// TimeoutMs and worker counts are excluded — wall-clock limits and
// parallelism never change a completed run's bytes (§7 determinism).
// The shape prefix keeps a singleton sweep from colliding with the
// single-cell endpoint, whose response shape differs.
func (r SweepRequest) fingerprint(shape string, eff sim.Budget) string {
	fp := fmt.Sprintf("serve/v1/%s workload=%s gpumem=%d seed=%d fp=%v pf=%v rp=%v ev=%v batch=%v vb=%v budget=%d/%d/%d",
		shape, r.Workload, r.GPUMemMiB, r.Seed, r.Footprints, r.Prefetch, r.Replay, r.Evict, r.Batch, r.VABlockKiB,
		int64(eff.SimDeadline), eff.MaxEvents, eff.LivelockWindow)
	// Zero-value elision, same as sweep labels: withDefaults clears the
	// multi-GPU axes on effectively single-GPU requests, so the suffix
	// appears only when a response can actually depend on them and every
	// pre-multi-GPU cache key survives unchanged.
	if len(r.Gpus) > 0 {
		fp += fmt.Sprintf(" gpus=%v migration=%v", r.Gpus, r.Migration)
	}
	return fp
}

// SimResponse is the single-cell result. Bodies are cached verbatim:
// a hit returns exactly these bytes.
type SimResponse struct {
	Hash    string   `json:"hash"`
	Label   string   `json:"label"`
	Status  string   `json:"status"`
	Error   string   `json:"error,omitempty"`
	Headers []string `json:"headers,omitempty"`
	Row     []string `json:"row,omitempty"`
}

// CacheFillRequest write-throughs one completed single-cell result into
// the server's cache: the cell's request form plus the rendered row a
// worker already computed. The server re-derives the cache key and
// label from Sim itself — the caller cannot choose what key it fills —
// and Label, when set, must match the server's recomputation, so a
// protocol or version skew is rejected instead of cached.
type CacheFillRequest struct {
	Sim   SimRequest `json:"sim"`
	Label string     `json:"label,omitempty"`
	Row   []string   `json:"row"`
}

// CacheFillResponse acknowledges a write-through fill. Stored is false
// when the key was already cached (or storage is disabled) — a
// harmless no-op, not an error.
type CacheFillResponse struct {
	Hash   string `json:"hash"`
	Stored bool   `json:"stored"`
}

// CellFailure describes one cell that did not complete.
type CellFailure struct {
	Label string `json:"label"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// SweepResponse is the full-sweep result: one row per completed cell in
// cross-product order, plus the terminal-state census.
type SweepResponse struct {
	Hash    string         `json:"hash"`
	Status  string         `json:"status"`
	Cells   int            `json:"cells"`
	States  map[string]int `json:"states"`
	Headers []string       `json:"headers"`
	Rows    [][]string     `json:"rows"`
	Failed  []CellFailure  `json:"failed,omitempty"`
}

// ExpRequest runs one named paper experiment (exp.Registry) at a scale.
type ExpRequest struct {
	GPUMemMiB int64         `json:"gpu_mem_mib,omitempty"`
	Seed      uint64        `json:"seed,omitempty"`
	Quick     bool          `json:"quick,omitempty"`
	Budget    BudgetRequest `json:"budget,omitempty"`
	TimeoutMs int64         `json:"timeout_ms,omitempty"`
}

// fingerprint is the experiment cache identity; the experiment id is
// the shape.
func (r ExpRequest) fingerprint(id string, eff sim.Budget) string {
	return fmt.Sprintf("serve/v1/exp/%s gpumem=%d seed=%d quick=%t budget=%d/%d/%d",
		id, r.GPUMemMiB, r.Seed, r.Quick,
		int64(eff.SimDeadline), eff.MaxEvents, eff.LivelockWindow)
}

// ExpResponse carries a named experiment's tables.
type ExpResponse struct {
	ID     string         `json:"id"`
	Hash   string         `json:"hash"`
	Status string         `json:"status"`
	Error  string         `json:"error,omitempty"`
	Tables []*stats.Table `json:"tables,omitempty"`
}

// JobInfo is the polled view of an async job.
type JobInfo struct {
	ID    string `json:"id"`
	Hash  string `json:"hash"`
	State string `json:"state"` // queued | running | done | failed
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// Async job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// ErrorResponse is the JSON error envelope for every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// hashOf addresses a fingerprint through the shared confighash format,
// the same keys the sweep journal writes.
func hashOf(fingerprint string) string { return confighash.Sum(fingerprint) }
