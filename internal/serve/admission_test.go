package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGateEnterBounds(t *testing.T) {
	g := NewGate(2, 1)
	if err := g.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(); !errors.Is(err, ErrBusy) {
		t.Fatalf("third Enter = %v, want ErrBusy", err)
	}
	if g.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", g.Depth())
	}
	g.Leave()
	if err := g.Enter(); err != nil {
		t.Fatalf("Enter after Leave: %v", err)
	}
	g.Leave()
	g.Leave()
}

func TestGateRunIsCancellable(t *testing.T) {
	g := NewGate(4, 1)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Run = %v, want deadline", err)
	}
	g.EndRun()
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run after EndRun: %v", err)
	}
	g.EndRun()
}

func TestGateQueueClampedToRunWidth(t *testing.T) {
	g := NewGate(1, 4)
	if g.QueueCap() != 4 || g.RunCap() != 4 {
		t.Fatalf("caps = %d/%d, want queue clamped up to 4", g.QueueCap(), g.RunCap())
	}
	g = NewGate(0, 0)
	if g.QueueCap() != 1 || g.RunCap() != 1 {
		t.Fatalf("zero caps = %d/%d, want 1/1", g.QueueCap(), g.RunCap())
	}
}
