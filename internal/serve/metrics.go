package serve

import (
	"io"
	"sync"

	"uvmsim/internal/obs"
)

// Server-level metric names. Counters carry the Prometheus _total
// suffix convention; gauges are instantaneous levels sampled at render
// time.
const (
	mRequests     = "uvmserved_requests_total"
	mRejected     = "uvmserved_rejected_total"
	mFills        = "uvmserved_cachefill_total"
	mFillRejected = "uvmserved_cachefill_rejected_total"
	mErrors       = "uvmserved_errors_total"
	mJobs         = "uvmserved_jobs_total"
	mCells        = "uvmserved_cells_total"
	mHits         = "uvmserved_cache_hits_total"
	mMisses       = "uvmserved_cache_misses_total"
	mCoalesced    = "uvmserved_cache_coalesced_total"
	mEvicted      = "uvmserved_cache_evictions_total"
	mEntries      = "uvmserved_cache_entries"
	mDepth        = "uvmserved_queue_depth"
	mRunning      = "uvmserved_running"
	mJobsLive     = "uvmserved_jobs_active"
)

// simPrefix namespaces absorbed per-run simulator metrics so they can
// never collide with the server's own.
const simPrefix = "sim_"

// metrics wraps one long-lived obs.Registry behind a mutex. Per-run
// registries stay lock-free on the simulation hot path; only the
// cumulative server-side fold pays for synchronization, once per
// completed cell.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry
}

func newMetrics() *metrics {
	m := &metrics{reg: obs.NewRegistry()}
	// Pre-register the request counters so /metrics exposes a complete,
	// stable schema from the first scrape, before any traffic.
	for _, name := range []string{mRequests, mRejected, mErrors, mJobs, mCells, mFills, mFillRejected} {
		m.reg.Counter(name)
	}
	return m
}

// add increments a named counter by d.
func (m *metrics) add(name string, d uint64) {
	m.mu.Lock()
	m.reg.Counter(name).Inc(d)
	m.mu.Unlock()
}

// inc increments a named counter by one.
func (m *metrics) inc(name string) { m.add(name, 1) }

// absorb folds a completed run's registry snapshot into the cumulative
// registry under the sim_ prefix.
func (m *metrics) absorb(samples []obs.Sample) {
	m.mu.Lock()
	m.reg.Absorb(simPrefix, samples)
	m.mu.Unlock()
}

// write renders the cumulative registry plus the dynamic server samples
// as Prometheus text exposition. Held under the lock so a concurrent
// absorb cannot tear a histogram mid-render.
func (m *metrics) write(w io.Writer, dynamic []obs.Sample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	samples := append(m.reg.Samples(), dynamic...)
	return WritePrometheus(w, samples)
}
