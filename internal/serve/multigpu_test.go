package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"uvmsim/internal/sim"
	"uvmsim/internal/sweep"
)

// intp builds the explicit-device-count pointer SimRequest.Gpus wants.
func intp(v int) *int { return &v }

// TestSimMultiGPUAccepted runs a K=2 cell end to end and checks the
// label carries the multi-GPU suffix.
func TestSimMultiGPUAccepted(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := smallSim(1)
	req.Gpus = intp(2)
	req.Migration = "access-counter"
	status, _, body := postJSON(t, ts.URL+"/v1/sim", req)
	if status != http.StatusOK {
		t.Fatalf("K=2 sim status = %d, body %s", status, body)
	}
	var resp SimResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Label, "gpus=2 migration=access-counter") {
		t.Errorf("K=2 label missing multi-GPU suffix: %q", resp.Label)
	}
	if len(resp.Row) != len(sweep.Headers()) {
		t.Errorf("K=2 row has %d columns, want %d", len(resp.Row), len(sweep.Headers()))
	}
}

// TestSimMultiGPURejections pins the typed 400 contract for cell specs
// that name an illegal device count or an unknown policy.
func TestSimMultiGPURejections(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		mut  func(r *SimRequest)
		want string
	}{
		{"zero gpus", func(r *SimRequest) { r.Gpus = intp(0) }, "GPU count 0"},
		{"negative gpus", func(r *SimRequest) { r.Gpus = intp(-3) }, "GPU count -3"},
		{"huge gpus", func(r *SimRequest) { r.Gpus = intp(1000) }, "exceeds"},
		{"unknown policy", func(r *SimRequest) { r.Gpus = intp(2); r.Migration = "teleport" }, "teleport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := smallSim(1)
			tc.mut(&req)
			status, _, body := postJSON(t, ts.URL+"/v1/sim", req)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", status, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("400 body is not the typed error envelope: %s", body)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error %q does not mention %q", er.Error, tc.want)
			}
		})
	}
}

// TestSweepMultiGPURejections covers the list-shaped axes on the sweep
// endpoint.
func TestSweepMultiGPURejections(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, _, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workload: "regular", GPUMemMiB: 16, Gpus: []int{2, 0},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("gpus=[2,0] status = %d, body %s", status, body)
	}
	status, _, body = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Workload: "regular", GPUMemMiB: 16, Gpus: []int{2}, Migration: []string{"warp-drive"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown sweep policy status = %d, body %s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("sweep 400 body is not the typed error envelope: %s", body)
	}
}

// TestSingleGPUFingerprintUnchanged pins cache-identity elision: asking
// for gpus=1 explicitly (with any legal policy) must hash to exactly the
// fingerprint the request had before the multi-GPU axes existed, so
// pre-existing cache entries and cross-fleet fills keep matching.
func TestSingleGPUFingerprintUnchanged(t *testing.T) {
	var none sim.Budget
	base := SweepRequest{Workload: "regular", GPUMemMiB: 16}.withDefaults()
	explicit := SweepRequest{Workload: "regular", GPUMemMiB: 16,
		Gpus: []int{1}, Migration: []string{"access-counter"}}.withDefaults()
	bfp := base.fingerprint("sweep", none)
	efp := explicit.fingerprint("sweep", none)
	if bfp != efp {
		t.Errorf("explicit gpus=1 changed the fingerprint:\n%s\nvs\n%s", bfp, efp)
	}
	if strings.Contains(bfp, "gpus=") {
		t.Errorf("single-GPU fingerprint mentions gpus: %s", bfp)
	}
	multi := SweepRequest{Workload: "regular", GPUMemMiB: 16, Gpus: []int{2}}.withDefaults()
	mfp := multi.fingerprint("sweep", none)
	if !strings.Contains(mfp, "gpus=[2] migration=[first-touch]") {
		t.Errorf("K=2 fingerprint missing canonical multi-GPU suffix: %s", mfp)
	}
}
