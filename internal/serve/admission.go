package serve

import (
	"context"
	"errors"

	"uvmsim/internal/parallel"
)

// ErrBusy is returned when the admission queue is full. Handlers map it
// to HTTP 429 with a Retry-After hint.
var ErrBusy = errors.New("serve: admission queue full")

// Gate is the admission controller: a bounded queue in front of a
// bounded set of run slots. A simulation request first claims a queue
// slot without blocking — a full queue is an immediate rejection, which
// is the backpressure contract: under overload the server answers 429
// in microseconds instead of accumulating unbounded queued work. An
// admitted request then waits (cancellably) for one of the run slots
// that bound concurrent simulations to what the host can actually
// execute. Cache hits and coalesced requests never enter the gate:
// shedding load is exactly what the cache is for.
type Gate struct {
	queue *parallel.Sem // queued + running: total admitted requests
	run   *parallel.Sem // actively simulating
}

// NewGate returns a gate admitting at most queueSlots concurrent
// requests, of which at most runSlots simulate at once. queueSlots is
// clamped up to runSlots — a queue smaller than the run width would
// idle run slots.
func NewGate(queueSlots, runSlots int) *Gate {
	if runSlots < 1 {
		runSlots = 1
	}
	if queueSlots < runSlots {
		queueSlots = runSlots
	}
	return &Gate{queue: parallel.NewSem(queueSlots), run: parallel.NewSem(runSlots)}
}

// Enter claims a queue slot, or fails immediately with ErrBusy. Every
// successful Enter must be paired with Leave.
func (g *Gate) Enter() error {
	if !g.queue.TryAcquire() {
		return ErrBusy
	}
	return nil
}

// Leave releases the queue slot claimed by Enter.
func (g *Gate) Leave() { g.queue.Release() }

// Run waits for a run slot, honoring ctx (a drained server cancels
// queued waiters). Every successful Run must be paired with EndRun.
func (g *Gate) Run(ctx context.Context) error { return g.run.Acquire(ctx) }

// EndRun releases the run slot claimed by Run.
func (g *Gate) EndRun() { g.run.Release() }

// Depth is the number of admitted requests (queued + running).
func (g *Gate) Depth() int { return g.queue.InUse() }

// Running is the number of requests holding run slots.
func (g *Gate) Running() int { return g.run.InUse() }

// QueueCap and RunCap report the configured bounds.
func (g *Gate) QueueCap() int { return g.queue.Cap() }

// RunCap reports the run-slot bound.
func (g *Gate) RunCap() int { return g.run.Cap() }
