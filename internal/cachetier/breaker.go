package cachetier

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

// The breaker lifecycle: Closed (traffic flows, consecutive failures
// counted) -> Open (all traffic skipped until OpenTimeout elapses) ->
// HalfOpen (exactly one trial request allowed) -> Closed on trial
// success, back to Open on trial failure.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Transition records one state change, returned from the mutating
// methods so the caller can log it under the request's context (the
// breaker itself holds no logger — transitions are the caller's
// telemetry).
type Transition struct {
	From, To BreakerState
}

// Breaker is one node's circuit breaker. All methods are
// goroutine-safe; the clock is injectable so the state machine is
// testable without sleeping.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	consec    int  // consecutive failures while closed
	trial     bool // half-open trial in flight
	openedAt  time.Time
	threshold int
	timeout   time.Duration
	now       func() time.Time
}

// Breaker defaults: open after DefaultFailureThreshold consecutive
// failures, try a half-open probe after DefaultOpenTimeout.
const (
	DefaultFailureThreshold = 3
	DefaultOpenTimeout      = 3 * time.Second
)

// NewBreaker returns a closed breaker. threshold <= 0 selects
// DefaultFailureThreshold; timeout <= 0 selects DefaultOpenTimeout; a
// nil clock selects time.Now.
func NewBreaker(threshold int, timeout time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultFailureThreshold
	}
	if timeout <= 0 {
		timeout = DefaultOpenTimeout
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, timeout: timeout, now: now}
}

// State returns the current state (Open flips to HalfOpen only via
// Allow, so a quiescent open breaker reads Open even past its timeout).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may proceed. While open it answers
// false until OpenTimeout has elapsed, then transitions to half-open
// and admits exactly one trial; further requests are refused until that
// trial settles via Success or Failure.
func (b *Breaker) Allow() (bool, *Transition) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.timeout {
			return false, nil
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true, &Transition{From: BreakerOpen, To: BreakerHalfOpen}
	default: // half-open
		if b.trial {
			return false, nil
		}
		b.trial = true
		return true, nil
	}
}

// Success reports a request that succeeded: it resets the failure count
// while closed and closes the breaker from half-open. A late success
// landing while open is ignored — the open window is a deliberate
// cool-off, not a race to reopen.
func (b *Breaker) Success() *Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec = 0
		return nil
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.consec = 0
		b.trial = false
		return &Transition{From: BreakerHalfOpen, To: BreakerClosed}
	default:
		return nil
	}
}

// Failure reports a request that failed: it trips the breaker open
// after threshold consecutive failures while closed, and reopens it
// immediately from half-open (the trial failed). Failures landing
// while already open are ignored.
func (b *Breaker) Failure() *Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consec++
		if b.consec < b.threshold {
			return nil
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		return &Transition{From: BreakerClosed, To: BreakerOpen}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trial = false
		return &Transition{From: BreakerHalfOpen, To: BreakerOpen}
	default:
		return nil
	}
}
