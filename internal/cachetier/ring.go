// Package cachetier promotes the single uvmserved accelerator into a
// resilient replicated cache tier: a multi-endpoint client that routes
// each cell to its owning node by consistent-hashing the cell's
// confighash key, health-checks every node, wraps each node in a
// circuit breaker, fails over reads to the next ring node when the
// owner is dark, and write-through-fills completed results to the
// owner. The tier is an accelerator, never a correctness dependency:
// when every node is unreachable the caller degrades to local
// simulation, and because the simulator is deterministic (DESIGN.md
// §7) the sweep output stays byte-identical under any outage.
package cachetier

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per endpoint. More replicas
// smooth the key distribution; 64 keeps the ring small while bounding
// per-node load skew to a few percent at fleet sizes this tier targets.
const DefaultReplicas = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into the node list
}

// Ring is an immutable consistent-hash ring over a fixed node list.
// Ownership depends only on the node URLs, never on their order or on
// which other nodes exist: removing a node moves only the keys it
// owned, which is what keeps a node death from cold-starting the whole
// tier.
type Ring struct {
	points []ringPoint
	nodes  int
}

// NewRing builds a ring over n nodes identified by the given names
// (base URLs), with replicas virtual nodes each (<= 0 selects
// DefaultReplicas).
func NewRing(names []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{nodes: len(names)}
	r.points = make([]ringPoint, 0, len(names)*replicas)
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.node < q.node // total order even on the (unlikely) collision
	})
	return r
}

// pointHash places one virtual node on the circle.
func pointHash(name string, replica int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", name, replica)
	return h.Sum64()
}

// keyHash places a routing key (a confighash string) on the circle.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the node index owning key, or -1 on an empty ring.
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(keyHash(key))].node
}

// Preference returns every distinct node in ring-walk order starting at
// key's owner: the owner first, then each successive failover
// candidate. The slice is freshly allocated.
func (r *Ring) Preference(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	start := r.search(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// search finds the first point at or clockwise-after h (wrapping).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
