package cachetier

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"uvmsim/internal/confighash"
	"uvmsim/internal/dist"
	"uvmsim/internal/govern"
	"uvmsim/internal/netchaos"
	"uvmsim/internal/serve"
	"uvmsim/internal/serve/client"
)

// testCell is one tiny cell expressible through the serve wire form.
func testCell(fp float64) dist.CellSpec {
	return dist.CellSpec{
		Workload:       "regular",
		GPUMemoryBytes: 16 << 20,
		Seed:           1,
		Footprint:      fp,
		Prefetch:       "none",
		Replay:         "batchflush",
		Evict:          "lru",
		Batch:          256,
		VABlockBytes:   2 << 20,
	}
}

// newNode spins up one real uvmserved node and returns its URL.
func newNode(t *testing.T) (*serve.Server, string) {
	t.Helper()
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts.URL
}

func localRow(t *testing.T, cs dist.CellSpec) []string {
	t.Helper()
	st, row, errMsg := dist.LocalRunner(context.Background(), cs)
	if st != govern.StateCompleted {
		t.Fatalf("local run: %s: %s", st, errMsg)
	}
	return row
}

func keyOf(t *testing.T, cs dist.CellSpec) string {
	t.Helper()
	label, err := cs.Label()
	if err != nil {
		t.Fatal(err)
	}
	return confighash.Sum(label)
}

// A healthy tier answers the same row the local engine computes — the
// tier is an accelerator, not a different answer.
func TestTierLookupMatchesLocal(t *testing.T) {
	_, url := newNode(t)
	tier := New(Config{Nodes: []string{url}, ProbeInterval: -1})
	cs := testCell(0.5)
	row, nodeURL, ok := tier.Lookup(context.Background(), cs)
	if !ok {
		t.Fatal("lookup against a healthy node missed")
	}
	if nodeURL != url {
		t.Fatalf("served from %s, want %s", nodeURL, url)
	}
	if want := localRow(t, cs); !reflect.DeepEqual(row, want) {
		t.Fatalf("tier row %v != local row %v", row, want)
	}
	if got := tier.counterGet(MetricHits); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

// When the owner is down, reads fail over to the next ring node and
// still answer.
func TestTierFailoverOnOwnerDeath(t *testing.T) {
	_, u1 := newNode(t)
	_, u2 := newNode(t)
	tier := New(Config{Nodes: []string{u1, u2}, ProbeInterval: -1, LookupTimeout: 2 * time.Second})
	cs := testCell(0.5)
	owner := tier.ring.Owner(keyOf(t, cs))
	// Kill the owner: point its client at a listener that already
	// closed, so every connection refuses. (The ring hashes node names,
	// so the URL itself must stay as configured.)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	tier.nodes[owner].client = client.New(deadURL, nil)

	row, nodeURL, ok := tier.Lookup(context.Background(), cs)
	if !ok {
		t.Fatal("lookup with one dead node missed entirely")
	}
	if nodeURL == tier.nodes[owner].url {
		t.Fatal("row claims to come from the dead owner")
	}
	if want := localRow(t, cs); !reflect.DeepEqual(row, want) {
		t.Fatalf("failover row %v != local row %v", row, want)
	}
	if got := tier.counterGet(MetricFailovers); got == 0 {
		t.Fatal("failover not counted")
	}
	if got := tier.counterGet(MetricNodeFailures); got == 0 {
		t.Fatal("node failure not counted")
	}
}

// A fully partitioned tier (every node blackholed by netchaos) degrades
// to the local engine with byte-identical output, and the breakers
// open.
func TestTierPartitionFallsBackByteIdentical(t *testing.T) {
	_, upstream := newNode(t)
	proxies := make([]string, 2)
	for i := range proxies {
		p, err := netchaos.New(upstream, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		rules, _ := netchaos.ParseRules("blackhole")
		p.SetRules(rules)
		ts := httptest.NewServer(p)
		t.Cleanup(ts.Close)
		t.Cleanup(p.Close) // LIFO: release blackholed handlers before ts.Close waits on them
		proxies[i] = ts.URL
	}
	tier := New(Config{
		Nodes:         proxies,
		ProbeInterval: -1,
		LookupTimeout: 100 * time.Millisecond, // do not wait out the blackhole
		MaxFailover:   -1,
	})
	runner := tier.Runner(dist.LocalRunner)
	cs := testCell(0.5)
	want := localRow(t, cs)
	// Threshold failures per node open both breakers.
	for i := 0; i < DefaultFailureThreshold; i++ {
		st, row, errMsg := runner(context.Background(), cs)
		if st != govern.StateCompleted {
			t.Fatalf("partitioned run %d: %s: %s", i, st, errMsg)
		}
		if !reflect.DeepEqual(row, want) {
			t.Fatalf("partitioned row %v != local row %v", row, want)
		}
	}
	if got := tier.counterGet(MetricBreakerOpen); got != 2 {
		t.Fatalf("breaker opens = %d, want 2 (both nodes dark)", got)
	}
	// With both breakers open, lookups fail fast: no node is tried.
	before := tier.counterGet(MetricNodeFailures)
	start := time.Now()
	if _, _, ok := tier.Lookup(context.Background(), cs); ok {
		t.Fatal("lookup succeeded against a fully open tier")
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("open tier lookup took %s, want fail-fast", d)
	}
	if got := tier.counterGet(MetricNodeFailures); got != before {
		t.Fatalf("open tier lookup still contacted nodes (failures %d -> %d)", before, got)
	}
}

// Fill write-throughs a completed row to the owner node, and a direct
// read from that node answers from cache with the same bytes a
// server-side run would produce.
func TestTierFillThenServerHit(t *testing.T) {
	_, url := newNode(t)
	tier := New(Config{Nodes: []string{url}, ProbeInterval: -1})
	cs := testCell(0.5)
	row := localRow(t, cs)
	if err := tier.Fill(context.Background(), cs, row); err != nil {
		t.Fatalf("fill: %v", err)
	}
	if got := tier.counterGet(MetricFills); got != 1 {
		t.Fatalf("fills = %d, want 1", got)
	}
	// The node must now answer /v1/sim from its cache, not by simulating.
	req, ok := cs.SimRequest()
	if !ok {
		t.Fatal("cell not expressible via wire form")
	}
	res, err := client.New(url, nil).Sim(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != serve.SourceHit {
		t.Fatalf("post-fill sim source = %q, want %q", res.Source, serve.SourceHit)
	}
	var resp serve.SimResponse
	if err := res.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Row, row) {
		t.Fatalf("cached row %v != filled row %v", resp.Row, row)
	}
	if resp.Status != string(govern.StateCompleted) {
		t.Fatalf("cached status = %q, want completed", resp.Status)
	}
}

// An open breaker recovers through the health prober: the probe takes
// the half-open trial against a healed node and closes the breaker
// without any live traffic.
func TestProbeRecoversOpenBreaker(t *testing.T) {
	srv, url := newNode(t)
	clk := newTickClock()
	tier := New(Config{Nodes: []string{url}, ProbeInterval: -1, Now: clk.Now})
	n := tier.nodes[0]

	// Drain the node: /healthz answers 503, probes fail, breaker opens.
	srv.BeginDrain()
	ctx := context.Background()
	for i := 0; i < DefaultFailureThreshold; i++ {
		tier.probe(ctx, n)
	}
	if got := n.breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker = %v after %d failed probes, want open", got, DefaultFailureThreshold)
	}
	if got := tier.counterGet(MetricProbeFailures); got != uint64(DefaultFailureThreshold) {
		t.Fatalf("probe failures = %d, want %d", got, DefaultFailureThreshold)
	}

	// While open (timeout not elapsed), probes are skipped entirely.
	before := tier.counterGet(MetricProbes)
	tier.probe(ctx, n)
	if got := tier.counterGet(MetricProbes); got != before {
		t.Fatal("probe ran against an open breaker before the timeout")
	}

	// Heal the node (a fresh server on the same handler path) and let
	// the open window lapse: the next probe is the half-open trial.
	_, url2 := newNode(t)
	n.client = client.New(url2, nil)
	clk.Advance(DefaultOpenTimeout)
	tier.probe(ctx, n)
	if got := n.breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after successful trial probe, want closed", got)
	}
	if got := tier.counterGet(MetricBreakerClose); got != 1 {
		t.Fatalf("breaker closes = %d, want 1", got)
	}
}

// Cells the wire form cannot express are never sent to the tier.
func TestTierSkipsInexactCells(t *testing.T) {
	_, url := newNode(t)
	tier := New(Config{Nodes: []string{url}, ProbeInterval: -1})
	cs := testCell(0.5)
	cs.GPUMemoryBytes += 3 // fractional MiB: not expressible
	if _, _, ok := tier.Lookup(context.Background(), cs); ok {
		t.Fatal("lookup accepted an inexact cell")
	}
	if err := tier.Fill(context.Background(), cs, []string{"x"}); err != nil {
		t.Fatalf("fill of inexact cell errored: %v", err)
	}
	if got := tier.counterGet(MetricFills); got != 0 {
		t.Fatal("inexact cell was filled")
	}
}
