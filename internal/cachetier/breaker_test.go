package cachetier

import (
	"sync"
	"testing"
	"time"
)

// tickClock is an injectable breaker clock.
type tickClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTickClock() *tickClock { return &tickClock{now: time.Unix(5000, 0)} }

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// The full lifecycle under an injected clock: closed → open at the
// failure threshold → half-open after the timeout → closed on trial
// success.
func TestBreakerLifecycle(t *testing.T) {
	clk := newTickClock()
	b := NewBreaker(3, time.Second, clk.Now)

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Two failures stay closed; the third trips.
	if tr := b.Failure(); tr != nil {
		t.Fatalf("failure 1 transitioned: %+v", tr)
	}
	if tr := b.Failure(); tr != nil {
		t.Fatalf("failure 2 transitioned: %+v", tr)
	}
	tr := b.Failure()
	if tr == nil || tr.From != BreakerClosed || tr.To != BreakerOpen {
		t.Fatalf("failure 3 transition = %+v, want closed->open", tr)
	}

	// Open fails fast until the timeout elapses.
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow admitted a request while open")
	}
	clk.Advance(999 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow admitted a request before the open timeout")
	}
	clk.Advance(2 * time.Millisecond)

	// The first Allow past the timeout is the half-open trial; a second
	// concurrent request is refused while the trial is in flight.
	ok, tr2 := b.Allow()
	if !ok || tr2 == nil || tr2.From != BreakerOpen || tr2.To != BreakerHalfOpen {
		t.Fatalf("Allow after timeout = (%v, %+v), want trial + open->half-open", ok, tr2)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow admitted a second request during the half-open trial")
	}

	// Trial success closes.
	tr3 := b.Success()
	if tr3 == nil || tr3.From != BreakerHalfOpen || tr3.To != BreakerClosed {
		t.Fatalf("trial success transition = %+v, want half-open->closed", tr3)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after trial success = %v, want closed", got)
	}
	// The failure count was reset: two failures do not re-trip.
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 post-recovery failures = %v, want closed", got)
	}
}

// A failed half-open trial reopens immediately, and the reopened window
// honors the timeout again.
func TestBreakerTrialFailureReopens(t *testing.T) {
	clk := newTickClock()
	b := NewBreaker(1, time.Second, clk.Now)
	b.Failure() // threshold 1: open
	clk.Advance(time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open trial refused")
	}
	tr := b.Failure()
	if tr == nil || tr.From != BreakerHalfOpen || tr.To != BreakerOpen {
		t.Fatalf("trial failure transition = %+v, want half-open->open", tr)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("Allow admitted a request immediately after a failed trial")
	}
	clk.Advance(time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second half-open trial refused after the reopened window")
	}
}

// Late outcomes landing while open are ignored: the open window is a
// deliberate cool-off.
func TestBreakerIgnoresLateOutcomesWhileOpen(t *testing.T) {
	clk := newTickClock()
	b := NewBreaker(1, time.Minute, clk.Now)
	b.Failure()
	if tr := b.Success(); tr != nil {
		t.Fatalf("late success transitioned: %+v", tr)
	}
	if tr := b.Failure(); tr != nil {
		t.Fatalf("late failure transitioned: %+v", tr)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

// Success while closed resets the consecutive-failure count, so
// interleaved failures never accumulate to the threshold.
func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker(3, time.Second, newTickClock().Now)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures never consecutive)", got)
	}
}
