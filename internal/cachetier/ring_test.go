package cachetier

import (
	"fmt"
	"testing"

	"uvmsim/internal/confighash"
)

// testKeys returns n distinct confighash-shaped routing keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = confighash.Sum(fmt.Sprintf("cell-%d", i))
	}
	return keys
}

// Ownership is a pure function of the node names: listing the nodes in
// a different order maps every key to the same node name.
func TestRingOwnershipOrderIndependent(t *testing.T) {
	a := []string{"http://n1", "http://n2", "http://n3"}
	b := []string{"http://n3", "http://n1", "http://n2"}
	ra, rb := NewRing(a, 0), NewRing(b, 0)
	for _, key := range testKeys(200) {
		oa, ob := a[ra.Owner(key)], b[rb.Owner(key)]
		if oa != ob {
			t.Fatalf("key %s: owner %s under order a, %s under order b", key, oa, ob)
		}
	}
}

// The same inputs build the same ring: ownership is deterministic
// across processes, which is what lets independent workers and the
// coordinator agree on each cell's owner without coordination.
func TestRingDeterministic(t *testing.T) {
	names := []string{"http://n1", "http://n2", "http://n3"}
	r1, r2 := NewRing(names, 32), NewRing(names, 32)
	for _, key := range testKeys(200) {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %s: owner differs between identical rings", key)
		}
		p1, p2 := r1.Preference(key), r2.Preference(key)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("key %s: preference order differs between identical rings", key)
			}
		}
	}
}

// Removing one node moves only the keys it owned: every other key keeps
// its owner, so a node death never cold-starts the surviving nodes.
func TestRingRebalanceOnNodeLoss(t *testing.T) {
	full := []string{"http://n1", "http://n2", "http://n3"}
	without := []string{"http://n1", "http://n3"} // n2 lost
	rf, rw := NewRing(full, 0), NewRing(without, 0)
	keys := testKeys(500)
	moved, kept := 0, 0
	for _, key := range keys {
		before := full[rf.Owner(key)]
		after := without[rw.Owner(key)]
		if before == "http://n2" {
			moved++
			if after == "http://n2" {
				t.Fatalf("key %s still owned by the removed node", key)
			}
			continue
		}
		kept++
		if after != before {
			t.Fatalf("key %s moved from %s to %s though its owner survived", key, before, after)
		}
	}
	// Sanity: the distribution gave the removed node a meaningful share,
	// so the "kept" assertion above actually tested something.
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// Preference walks every distinct node, owner first — the failover
// order reads fall back along.
func TestRingPreference(t *testing.T) {
	names := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(names, 0)
	for _, key := range testKeys(50) {
		pref := r.Preference(key)
		if len(pref) != len(names) {
			t.Fatalf("key %s: preference has %d nodes, want %d", key, len(pref), len(names))
		}
		if pref[0] != r.Owner(key) {
			t.Fatalf("key %s: preference starts at %d, owner is %d", key, pref[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("key %s: node %d repeated in preference", key, n)
			}
			seen[n] = true
		}
	}
}

// The empty ring answers -1 / nil instead of panicking — the "tier
// configured with no nodes" degenerate case.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("abc"); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if got := r.Preference("abc"); got != nil {
		t.Fatalf("empty ring preference = %v, want nil", got)
	}
}

// Keys spread across nodes rather than piling onto one — a smoke check
// that virtual nodes are doing their job.
func TestRingSpread(t *testing.T) {
	names := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(names, 0)
	counts := make([]int, len(names))
	keys := testKeys(600)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("node %d owns no keys out of %d", i, len(keys))
		}
		if c > len(keys)*2/3 {
			t.Fatalf("node %d owns %d of %d keys — distribution collapsed", i, c, len(keys))
		}
	}
}
