package cachetier

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"uvmsim/internal/confighash"
	"uvmsim/internal/dist"
	"uvmsim/internal/govern"
	"uvmsim/internal/obs"
	"uvmsim/internal/serve"
	"uvmsim/internal/serve/client"
	"uvmsim/internal/telemetry"
)

// Tier metric names, exposed via Samples so coordinator /metrics (and
// tests) can observe routing, failover, and breaker behaviour.
const (
	MetricLookups         = "cachetier_lookups_total"
	MetricHits            = "cachetier_hits_total"
	MetricMisses          = "cachetier_misses_total" // tier had no answer; caller simulates locally
	MetricFailovers       = "cachetier_failovers_total"
	MetricNodeFailures    = "cachetier_node_failures_total"
	MetricBreakerOpen     = "cachetier_breaker_open_total"
	MetricBreakerHalfOpen = "cachetier_breaker_halfopen_total"
	MetricBreakerClose    = "cachetier_breaker_close_total"
	MetricFills           = "cachetier_fills_total"
	MetricFillErrors      = "cachetier_fill_errors_total"
	MetricFillsSkipped    = "cachetier_fills_skipped_total"
	MetricProbes          = "cachetier_probes_total"
	MetricProbeFailures   = "cachetier_probe_failures_total"
)

// Config describes one tier client. Zero fields select the defaults
// noted on each field.
type Config struct {
	// Nodes are the uvmserved base URLs forming the tier. Required.
	Nodes []string
	// Replicas is the virtual-node count per endpoint on the hash ring
	// (default DefaultReplicas).
	Replicas int
	// FailureThreshold consecutive failures open a node's breaker
	// (default DefaultFailureThreshold); OpenTimeout is the cool-off
	// before a half-open trial (default DefaultOpenTimeout).
	FailureThreshold int
	OpenTimeout      time.Duration
	// MaxFailover bounds how many ring successors are tried after the
	// owner on a read (default 1: the next ring node; negative tries
	// every node).
	MaxFailover int
	// LookupTimeout bounds one read against one node (default 15s). A
	// node slower than this is treated as failed — slow nodes degrade to
	// failover, never to a stalled sweep.
	LookupTimeout time.Duration
	// FillTimeout bounds one write-through fill (default 5s; fills never
	// simulate, so they are cheap).
	FillTimeout time.Duration
	// ProbeInterval spaces active /healthz probes per node (default 1s;
	// <0 disables active probing). ProbeTimeout bounds one probe
	// (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Logger receives breaker transitions and routing decisions under
	// the fleet telemetry schema; nil logs nothing.
	Logger *slog.Logger
	// Flight, with FlightDir set, is dumped when any node's breaker
	// opens — the moments leading up to a node being declared dark are
	// exactly what a post-mortem wants.
	Flight    *telemetry.Flight
	FlightDir string
	// Now is the breaker clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// HTTPClient overrides the per-node transport; when nil each node
	// gets a client bounded by LookupTimeout.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = DefaultOpenTimeout
	}
	if c.MaxFailover == 0 {
		c.MaxFailover = 1
	}
	if c.LookupTimeout <= 0 {
		c.LookupTimeout = 15 * time.Second
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// node is one tier endpoint: its client and its breaker.
type node struct {
	url     string
	client  *client.Client
	breaker *Breaker
}

// Tier is the multi-endpoint cache client. All methods are
// goroutine-safe.
type Tier struct {
	cfg   Config
	nodes []*node
	ring  *Ring

	mu  sync.Mutex
	reg *obs.Registry

	proberWG sync.WaitGroup
}

// New assembles a tier over cfg.Nodes.
func New(cfg Config) *Tier {
	cfg = cfg.withDefaults()
	t := &Tier{cfg: cfg, reg: obs.NewRegistry()}
	for _, name := range []string{
		MetricLookups, MetricHits, MetricMisses, MetricFailovers, MetricNodeFailures,
		MetricBreakerOpen, MetricBreakerHalfOpen, MetricBreakerClose,
		MetricFills, MetricFillErrors, MetricFillsSkipped,
		MetricProbes, MetricProbeFailures,
	} {
		t.reg.Counter(name)
	}
	for _, u := range cfg.Nodes {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		hc := cfg.HTTPClient
		if hc == nil {
			hc = &http.Client{Timeout: cfg.LookupTimeout}
		}
		t.nodes = append(t.nodes, &node{
			url:     u,
			client:  client.New(u, hc),
			breaker: NewBreaker(cfg.FailureThreshold, cfg.OpenTimeout, cfg.Now),
		})
	}
	urls := make([]string, len(t.nodes))
	for i, n := range t.nodes {
		urls[i] = n.url
	}
	t.ring = NewRing(urls, cfg.Replicas)
	return t
}

// Nodes returns the tier's normalized node URLs in ring index order.
func (t *Tier) Nodes() []string {
	out := make([]string, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.url
	}
	return out
}

// Samples snapshots the tier's counters (name-sorted, obs conventions).
func (t *Tier) Samples() []obs.Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.Samples()
}

func (t *Tier) count(name string) {
	t.mu.Lock()
	t.reg.Counter(name).Inc(1)
	t.mu.Unlock()
}

// counterGet reads one counter (tests and gates).
func (t *Tier) counterGet(name string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.Counter(name).Get()
}

// transitioned records a breaker state change: counter, structured log
// under ctx's trace, and — on open — a flight-recorder dump, because a
// node going dark is a fleet incident worth a post-mortem window.
func (t *Tier) transitioned(ctx context.Context, n *node, tr *Transition) {
	if tr == nil {
		return
	}
	switch tr.To {
	case BreakerOpen:
		t.count(MetricBreakerOpen)
	case BreakerHalfOpen:
		t.count(MetricBreakerHalfOpen)
	case BreakerClosed:
		t.count(MetricBreakerClose)
	}
	if t.cfg.Logger != nil {
		level := slog.LevelInfo
		if tr.To == BreakerOpen {
			level = slog.LevelWarn
		}
		t.cfg.Logger.LogAttrs(ctx, level, "breaker "+tr.To.String(),
			slog.String(telemetry.KeyNode, n.url),
			slog.String("from", tr.From.String()),
			slog.String("to", tr.To.String()))
	}
	// Only a fresh closed→open trip is an incident worth a flight dump;
	// a persistent partition re-trips half-open→open on every probe
	// cycle, and dumping each flap would flood the dump directory.
	if tr.From == BreakerClosed && tr.To == BreakerOpen && t.cfg.Flight != nil && t.cfg.FlightDir != "" {
		fl, dir, lg := t.cfg.Flight, t.cfg.FlightDir, t.cfg.Logger
		go func() {
			if path, err := fl.DumpToFile(dir, "breaker_open"); err == nil && lg != nil {
				lg.Warn("flight recorder dumped",
					slog.String("reason", "breaker_open"), slog.String("path", path))
			}
		}()
	}
}

// Lookup consults the tier for one cell: route to the confighash owner,
// fail over along the ring while nodes are open or failing, and return
// the completed row when any node answers. ok=false means the tier had
// no usable answer — server trouble, budget-tripped verdicts, or a cell
// the wire form cannot express — and the caller must simulate locally.
func (t *Tier) Lookup(ctx context.Context, cs dist.CellSpec) (row []string, nodeURL string, ok bool) {
	if len(t.nodes) == 0 {
		return nil, "", false
	}
	req, exact := cs.SimRequest()
	if !exact {
		return nil, "", false
	}
	label, err := cs.Label()
	if err != nil {
		return nil, "", false
	}
	key := confighash.Sum(label)
	t.count(MetricLookups)
	tried := 0
	limit := t.cfg.MaxFailover + 1 // owner plus failovers
	if t.cfg.MaxFailover < 0 {
		limit = len(t.nodes)
	}
	for i, idx := range t.ring.Preference(key) {
		if tried >= limit {
			break
		}
		n := t.nodes[idx]
		allowed, tr := n.breaker.Allow()
		t.transitioned(ctx, n, tr)
		if !allowed {
			if i == 0 {
				t.count(MetricFailovers) // the owner was dark; reads walk the ring
			}
			continue
		}
		tried++
		if i > 0 {
			t.count(MetricFailovers)
		}
		row, verdict := t.lookupOne(ctx, n, req)
		switch verdict {
		case nodeHit:
			t.transitioned(ctx, n, n.breaker.Success())
			t.count(MetricHits)
			if t.cfg.Logger != nil {
				t.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "cell served from cache tier",
					slog.String(telemetry.KeyConfigHash, key),
					slog.String(telemetry.KeyNode, n.url))
			}
			return row, n.url, true
		case nodeMiss:
			// The node is healthy but has no usable answer (e.g. a
			// deterministic budget trip): the local engine will reproduce
			// the same verdict, so stop failing over.
			t.transitioned(ctx, n, n.breaker.Success())
			t.count(MetricMisses)
			return nil, "", false
		default: // nodeFailed
			t.count(MetricNodeFailures)
			t.transitioned(ctx, n, n.breaker.Failure())
		}
	}
	t.count(MetricMisses)
	return nil, "", false
}

// nodeVerdict classifies one exchange with one node.
type nodeVerdict int

const (
	nodeHit    nodeVerdict = iota // completed row returned
	nodeMiss                      // node healthy, no usable row
	nodeFailed                    // transport error, timeout, 5xx, corrupt body
)

// lookupOne performs one bounded read against one node.
func (t *Tier) lookupOne(ctx context.Context, n *node, req serve.SimRequest) ([]string, nodeVerdict) {
	rctx, cancel := context.WithTimeout(ctx, t.cfg.LookupTimeout)
	defer cancel()
	res, err := n.client.Sim(rctx, req)
	switch {
	case err != nil:
		// Distinguish "the caller is leaving" from "the node is sick": a
		// cancellation of the surrounding run must not charge the node.
		if ctx.Err() != nil {
			return nil, nodeMiss
		}
		return nil, nodeFailed
	case res.Status >= 500:
		return nil, nodeFailed
	case !res.OK():
		// 4xx (including 429 backpressure): the node answered coherently;
		// it just has nothing for us.
		return nil, nodeMiss
	}
	var resp serve.SimResponse
	if res.Decode(&resp) != nil {
		return nil, nodeFailed // 200 with a corrupt body is a node fault
	}
	if resp.Status != string(govern.StateCompleted) || len(resp.Row) == 0 {
		return nil, nodeMiss
	}
	return resp.Row, nodeHit
}

// Fill write-throughs one completed cell's row to its owner node. Fills
// are strictly best-effort: a dark owner (breaker open) skips, an error
// counts and feeds the breaker, and nothing is retried — the next sweep
// will fill again.
func (t *Tier) Fill(ctx context.Context, cs dist.CellSpec, row []string) error {
	if len(t.nodes) == 0 || len(row) == 0 {
		return nil
	}
	req, exact := cs.SimRequest()
	if !exact {
		return nil
	}
	label, err := cs.Label()
	if err != nil {
		return nil
	}
	key := confighash.Sum(label)
	n := t.nodes[t.ring.Owner(key)]
	allowed, tr := n.breaker.Allow()
	t.transitioned(ctx, n, tr)
	if !allowed {
		t.count(MetricFillsSkipped)
		return nil
	}
	t.count(MetricFills)
	rctx, cancel := context.WithTimeout(ctx, t.cfg.FillTimeout)
	defer cancel()
	res, ferr := n.client.CacheFill(rctx, serve.CacheFillRequest{Sim: req, Label: label, Row: row})
	if ferr != nil || res.Status >= 500 {
		t.count(MetricFillErrors)
		t.transitioned(ctx, n, n.breaker.Failure())
		if ferr == nil {
			ferr = res.Err()
		}
		return ferr
	}
	t.transitioned(ctx, n, n.breaker.Success())
	if !res.OK() {
		// A 4xx rejection (label skew, malformed row) is a fill error but
		// not a node-health signal.
		t.count(MetricFillErrors)
		return res.Err()
	}
	if t.cfg.Logger != nil {
		t.cfg.Logger.LogAttrs(ctx, slog.LevelDebug, "cache tier fill",
			slog.String(telemetry.KeyConfigHash, key),
			slog.String(telemetry.KeyNode, n.url))
	}
	return nil
}

// Runner wraps the tier as a dist.Runner: consult the tier, fall back
// to the given runner (typically dist.LocalRunner) on any miss. The
// returned runner preserves the fallback's byte-identical contract
// because tier hits are the same deterministic rows the fallback would
// compute.
func (t *Tier) Runner(fallback dist.Runner) dist.Runner {
	return func(ctx context.Context, cs dist.CellSpec) (govern.State, []string, string) {
		if row, _, ok := t.Lookup(ctx, cs); ok {
			return govern.StateCompleted, row, ""
		}
		return fallback(ctx, cs)
	}
}

// StartProber launches the active health checker: every ProbeInterval
// each node is probed on /healthz (drain-aware readiness), feeding the
// same breaker passive traffic does — which is also how an open breaker
// recovers without live traffic: the probe takes the half-open trial.
// The prober stops when ctx cancels; StopProber waits for it.
func (t *Tier) StartProber(ctx context.Context) {
	if t.cfg.ProbeInterval < 0 || len(t.nodes) == 0 {
		return
	}
	t.proberWG.Add(1)
	go func() {
		defer t.proberWG.Done()
		tick := time.NewTicker(t.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				for _, n := range t.nodes {
					t.probe(ctx, n)
				}
			}
		}
	}()
}

// StopProber waits for the prober goroutine to exit (after its ctx is
// cancelled).
func (t *Tier) StopProber() { t.proberWG.Wait() }

// probe issues one health check against one node.
func (t *Tier) probe(ctx context.Context, n *node) {
	allowed, tr := n.breaker.Allow()
	t.transitioned(ctx, n, tr)
	if !allowed {
		return
	}
	t.count(MetricProbes)
	pctx, cancel := context.WithTimeout(ctx, t.cfg.ProbeTimeout)
	err := n.client.Healthz(pctx)
	cancel()
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not node trouble
		}
		t.count(MetricProbeFailures)
		t.transitioned(ctx, n, n.breaker.Failure())
		return
	}
	t.transitioned(ctx, n, n.breaker.Success())
}
