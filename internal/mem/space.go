package mem

import "fmt"

// AccessMode selects one of UVM's three page access behaviors
// (paper §III-A) for a range.
type AccessMode int

// The three UVM access behaviors.
const (
	// ModeMigrate is paged migration: far-faults move pages to the
	// accessing device (the paper's focus and the default).
	ModeMigrate AccessMode = iota
	// ModeRemoteMap maps host memory into the GPU's page tables without
	// migrating it; every access crosses the interconnect.
	ModeRemoteMap
	// ModeReadDup duplicates pages on both sides under the constraint
	// that the data is not mutated; eviction needs no write-back.
	ModeReadDup
)

// String names the mode.
func (m AccessMode) String() string {
	switch m {
	case ModeMigrate:
		return "migrate"
	case ModeRemoteMap:
		return "remote-map"
	case ModeReadDup:
		return "read-dup"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Range is one managed allocation (the analogue of a cudaMallocManaged
// call). Ranges are VABlock-aligned in the virtual space, mirroring the
// driver's layout, so a VABlock never spans two ranges.
type Range struct {
	ID        RangeID
	Label     string
	StartPage PageID // first page, VABlock aligned
	Pages     int    // allocation length in pages (requested size rounded up)
	Blocks    int    // VABlocks spanned
	Mode      AccessMode
}

// End returns one past the last page of the range.
func (r *Range) End() PageID { return r.StartPage + PageID(r.Pages) }

// Contains reports whether p falls inside the range.
func (r *Range) Contains(p PageID) bool {
	return p >= r.StartPage && p < r.End()
}

// VABlock is the driver-side state for one 2 MB block: residency and
// dirty bitmaps plus bookkeeping used by eviction.
type VABlock struct {
	ID    VABlockID
	Range RangeID

	// Resident marks pages currently backed by GPU memory.
	Resident *Bitmap
	// Dirty marks resident pages written on the GPU; eviction must copy
	// them back to the host.
	Dirty *Bitmap

	// Allocated reports whether the block has physical GPU backing
	// reserved (PMA chunk). Eviction releases it.
	Allocated bool
	// Remote marks the block as remote-mapped: pages are permanently
	// "resident" via the interconnect and never fault or occupy GPU
	// memory.
	Remote bool
	// ReadDup marks the block as read-duplicated: GPU copies are clean
	// duplicates of host pages, so eviction skips write-back.
	ReadDup bool

	// Touches counts fault-service events on this block (LRU updates).
	Touches uint64
	// Evictions counts how many times this block has been evicted.
	Evictions uint64
	// GPUAccesses is the Volta-style access counter (§VI-B extension):
	// counts GPU-side accesses, including non-faulting ones, when the
	// system enables access counters.
	GPUAccesses uint64
}

// AddressSpace is the per-application virtual space: an ordered set of
// ranges with lazily materialized VABlock state.
type AddressSpace struct {
	geom   Geometry
	ranges []*Range
	blocks map[VABlockID]*VABlock
	// nextPage is the next VABlock-aligned free virtual page.
	nextPage PageID
	// special is set once any non-migrate range exists; the GPU's hot
	// access path consults per-block mode flags only when it is set.
	special bool
}

// NewAddressSpace returns an empty address space with the given geometry.
func NewAddressSpace(g Geometry) *AddressSpace {
	return &AddressSpace{geom: g, blocks: make(map[VABlockID]*VABlock)}
}

// Geometry returns the space's geometry.
func (s *AddressSpace) Geometry() Geometry { return s.geom }

// Alloc reserves a new paged-migration range of size bytes. Ranges are
// laid out contiguously, each starting on a VABlock boundary (like the
// gaps the paper's Fig. 7 removes).
func (s *AddressSpace) Alloc(size int64, label string) (*Range, error) {
	return s.AllocMode(size, label, ModeMigrate)
}

// AllocMode reserves a new range with the given access behavior.
// Remote-mapped ranges materialize their blocks eagerly with every valid
// page "resident" through the interconnect.
func (s *AddressSpace) AllocMode(size int64, label string, mode AccessMode) (*Range, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: allocation size %d must be positive", size)
	}
	if mode < ModeMigrate || mode > ModeReadDup {
		return nil, fmt.Errorf("mem: invalid access mode %d", int(mode))
	}
	pages := PagesFor(size)
	per := s.geom.PagesPerVABlock
	blocks := (pages + per - 1) / per
	r := &Range{
		ID:        RangeID(len(s.ranges)),
		Label:     label,
		StartPage: s.nextPage,
		Pages:     pages,
		Blocks:    blocks,
		Mode:      mode,
	}
	s.ranges = append(s.ranges, r)
	s.nextPage += PageID(blocks * per)
	if mode != ModeMigrate {
		s.special = true
	}
	if mode == ModeRemoteMap {
		first := s.geom.BlockOf(r.StartPage)
		for b := 0; b < blocks; b++ {
			blk := s.Block(first + VABlockID(b))
			valid := s.ValidPagesIn(blk.ID)
			for p := 0; p < valid; p++ {
				blk.Resident.Set(p)
			}
		}
	}
	return r, nil
}

// Special reports whether any remote-mapped or read-duplicated range
// exists (GPU fast-path gate).
func (s *AddressSpace) Special() bool { return s.special }

// MarkSpecial forces the special flag on. Multi-GPU systems set it up
// front: peer-owned blocks gain remote mappings dynamically (outside
// AllocMode), and the GPU's fast access path must not skip them.
func (s *AddressSpace) MarkSpecial() { s.special = true }

// Ranges returns the allocated ranges in allocation order.
func (s *AddressSpace) Ranges() []*Range { return s.ranges }

// RangeOf returns the range containing page p, or nil.
func (s *AddressSpace) RangeOf(p PageID) *Range {
	// Ranges are ordered and non-overlapping; binary search.
	lo, hi := 0, len(s.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		r := s.ranges[mid]
		switch {
		case p < r.StartPage:
			hi = mid
		case p >= r.StartPage+PageID(r.Blocks*s.geom.PagesPerVABlock):
			lo = mid + 1
		default:
			if r.Contains(p) {
				return r
			}
			return nil // in block padding past the range end
		}
	}
	return nil
}

// TotalPages returns the number of virtual pages across all ranges
// (excluding block-alignment padding).
func (s *AddressSpace) TotalPages() int {
	n := 0
	for _, r := range s.ranges {
		n += r.Pages
	}
	return n
}

// Block returns the VABlock state for id, materializing it on first use.
// It panics when the block lies outside every range: faults can only
// originate from allocated virtual addresses.
func (s *AddressSpace) Block(id VABlockID) *VABlock {
	if b, ok := s.blocks[id]; ok {
		return b
	}
	first := s.geom.FirstPage(id)
	r := s.RangeOf(first)
	if r == nil {
		// The first page of the block may sit in padding only when the
		// range ends mid-block; map through the containing range instead.
		for _, cand := range s.ranges {
			start := s.geom.BlockOf(cand.StartPage)
			if id >= start && id < start+VABlockID(cand.Blocks) {
				r = cand
				break
			}
		}
	}
	if r == nil {
		panic(fmt.Sprintf("mem: VABlock %d outside every range", id))
	}
	b := &VABlock{
		ID:       id,
		Range:    r.ID,
		Resident: NewBitmap(s.geom.PagesPerVABlock),
		Dirty:    NewBitmap(s.geom.PagesPerVABlock),
		Remote:   r.Mode == ModeRemoteMap,
		ReadDup:  r.Mode == ModeReadDup,
	}
	s.blocks[id] = b
	return b
}

// BlockIfExists returns the materialized block state or nil.
func (s *AddressSpace) BlockIfExists(id VABlockID) *VABlock {
	return s.blocks[id]
}

// IsResident reports whether page p is currently resident on the GPU.
func (s *AddressSpace) IsResident(p PageID) bool {
	b := s.blocks[s.geom.BlockOf(p)]
	if b == nil {
		return false
	}
	return b.Resident.Get(s.geom.PageIndex(p))
}

// ForEachBlock visits every materialized VABlock in unspecified order
// (the invariant checker's residency sweep).
func (s *AddressSpace) ForEachBlock(fn func(*VABlock)) {
	for _, b := range s.blocks {
		fn(b)
	}
}

// ResidentPages returns the total number of GPU-resident pages.
func (s *AddressSpace) ResidentPages() int {
	n := 0
	for _, b := range s.blocks {
		n += b.Resident.Count()
	}
	return n
}

// ValidPagesIn returns how many pages of block id are inside its range
// (the final block of a range may be partially valid).
func (s *AddressSpace) ValidPagesIn(id VABlockID) int {
	b := s.Block(id)
	r := s.ranges[b.Range]
	first := s.geom.FirstPage(id)
	valid := int(r.End()) - int(first)
	if valid > s.geom.PagesPerVABlock {
		valid = s.geom.PagesPerVABlock
	}
	if valid < 0 {
		valid = 0
	}
	return valid
}
