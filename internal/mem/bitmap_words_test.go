package mem

import (
	"testing"
	"testing/quick"
)

// refBitmap builds a bitmap plus a naive reference set from raw indexes.
func refBitmap(n int, setBits []uint16) (*Bitmap, map[int]bool) {
	b := NewBitmap(n)
	ref := make(map[int]bool)
	for _, s := range setBits {
		i := int(s) % n
		b.Set(i)
		ref[i] = true
	}
	return b, ref
}

func TestBitmapSetRange(t *testing.T) {
	b := NewBitmap(512)
	b.Set(70)
	if got := b.SetRange(64, 128); got != 63 {
		t.Errorf("SetRange(64,128) added %d, want 63 (bit 70 pre-set)", got)
	}
	if b.Count() != 64 {
		t.Errorf("Count = %d, want 64", b.Count())
	}
	if b.SetRange(64, 128) != 0 {
		t.Error("re-setting the range added bits")
	}
	// Clamping: out-of-range bounds shrink to the bitmap.
	if got := b.SetRange(-5, 600); got != 512-64 {
		t.Errorf("clamped SetRange added %d, want %d", got, 512-64)
	}
	if b.Count() != 512 {
		t.Errorf("Count = %d, want 512", b.Count())
	}
}

func TestBitmapSetRangeProperty(t *testing.T) {
	f := func(setBits []uint16, loRaw, hiRaw uint16) bool {
		b, ref := refBitmap(512, setBits)
		lo, hi := int(loRaw)%513, int(hiRaw)%513
		if lo > hi {
			lo, hi = hi, lo
		}
		wantAdded := 0
		for i := lo; i < hi; i++ {
			if !ref[i] {
				wantAdded++
				ref[i] = true
			}
		}
		if b.SetRange(lo, hi) != wantAdded {
			return false
		}
		for i := 0; i < 512; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapCopyAndNotDiff(t *testing.T) {
	f := func(aBits, cBits []uint16, loRaw, hiRaw uint16) bool {
		a, aRef := refBitmap(512, aBits)
		c, cRef := refBitmap(512, cBits)

		cp := NewBitmap(512)
		cp.CopyFrom(a)
		for i := 0; i < 512; i++ {
			if cp.Get(i) != aRef[i] {
				return false
			}
		}
		if cp.Count() != a.Count() {
			return false
		}

		dst := NewBitmap(512)
		dst.Set(3) // stale content must be overwritten
		dst.AndNotFrom(a, c)
		wantCount := 0
		for i := 0; i < 512; i++ {
			want := aRef[i] && !cRef[i]
			if dst.Get(i) != want {
				return false
			}
			if want {
				wantCount++
			}
		}
		if dst.Count() != wantCount {
			return false
		}

		lo, hi := int(loRaw)%513, int(hiRaw)%513
		if lo > hi {
			lo, hi = hi, lo
		}
		wantDiff := 0
		for i := lo; i < hi; i++ {
			if aRef[i] && !cRef[i] {
				wantDiff++
			}
		}
		return a.DiffCount(c, lo, hi) == wantDiff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapNextSetNextClear(t *testing.T) {
	f := func(setBits []uint16, fromRaw uint16) bool {
		b, ref := refBitmap(200, setBits) // odd size: last word is partial
		from := int(fromRaw) % 205
		wantSet, wantClear := -1, -1
		for i := from; i < 200; i++ {
			if i < 0 {
				continue
			}
			if ref[i] && wantSet < 0 {
				wantSet = i
			}
			if !ref[i] && wantClear < 0 {
				wantClear = i
			}
		}
		return b.NextSet(from) == wantSet && b.NextClear(from) == wantClear
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The clear scan must not report the dead bits past Len in the last
	// word.
	b := NewBitmap(65)
	b.SetRange(0, 65)
	if got := b.NextClear(0); got != -1 {
		t.Errorf("NextClear on full bitmap = %d, want -1", got)
	}
	if got := b.NextSet(64); got != 64 {
		t.Errorf("NextSet(64) = %d, want 64", got)
	}
}

func TestBitmapForEachSetWord(t *testing.T) {
	b := NewBitmap(192)
	for _, i := range []int{0, 63, 130} {
		b.Set(i)
	}
	var words []int
	var payload []uint64
	b.ForEachSetWord(func(w int, bits uint64) {
		words = append(words, w)
		payload = append(payload, bits)
	})
	if len(words) != 2 || words[0] != 0 || words[1] != 2 {
		t.Fatalf("words = %v, want [0 2]", words)
	}
	if payload[0] != 1|1<<63 || payload[1] != 1<<2 {
		t.Errorf("payload = %x", payload)
	}
}

// TestBitmapWordPrimitivesAllocFree pins the word-scan primitives the
// driver hot path depends on at zero allocations.
func TestBitmapWordPrimitivesAllocFree(t *testing.T) {
	a, b, dst := NewBitmap(512), NewBitmap(512), NewBitmap(512)
	a.SetRange(10, 300)
	b.SetRange(200, 400)
	sink := 0
	if n := testing.AllocsPerRun(100, func() {
		dst.CopyFrom(a)
		dst.AndNotFrom(a, b)
		sink += dst.SetRange(0, 64)
		sink += a.DiffCount(b, 0, 512)
		sink += a.CountRange(5, 500)
		sink += a.NextSet(0) + a.NextClear(0)
		a.ForEachSetWord(func(w int, bits uint64) { sink += w })
		a.Runs(func(lo, hi int) { sink += hi - lo })
		dst.Reset()
	}); n != 0 {
		t.Errorf("word primitives allocate %v times per run, want 0", n)
	}
	_ = sink
}
