package mem

import "math/bits"

// Bitmap is a fixed-capacity bitset sized for one VABlock's pages. The
// zero value of a Bitmap created via NewBitmap is empty.
type Bitmap struct {
	words []uint64
	n     int // capacity in bits
	count int // set bits, maintained incrementally
}

// NewBitmap returns an empty bitmap with capacity for n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.count }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i and reports whether it was previously clear.
func (b *Bitmap) Set(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear clears bit i and reports whether it was previously set.
func (b *Bitmap) Clear(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	n := 0
	for i := lo; i < hi; {
		w := i >> 6
		// Mask off bits below i and at/above hi within this word.
		word := b.words[w] >> uint(i&63)
		span := 64 - i&63
		if i+span > hi {
			span = hi - i
			word &= (1 << uint(span)) - 1
		}
		n += bits.OnesCount64(word)
		i += span
	}
	return n
}

// ForEachSet calls fn for each set bit in ascending order.
func (b *Bitmap) ForEachSet(fn func(i int)) {
	for w, word := range b.words {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(w<<6 + tz)
			word &= word - 1
		}
	}
}

// NextClear returns the first clear bit at or after i, or -1 when all
// remaining bits are set.
func (b *Bitmap) NextClear(i int) int {
	for ; i < b.n; i++ {
		if !b.Get(i) {
			return i
		}
	}
	return -1
}

// Or sets every bit that is set in other. The bitmaps must have equal
// capacity.
func (b *Bitmap) Or(other *Bitmap) {
	for i, w := range other.words {
		added := w &^ b.words[i]
		b.words[i] |= added
		b.count += bits.OnesCount64(added)
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n, count: b.count}
	copy(c.words, b.words)
	return c
}

// Runs calls fn for each maximal run [lo, hi) of set bits, in order. It is
// used to coalesce contiguous pages into single DMA transfers.
func (b *Bitmap) Runs(fn func(lo, hi int)) {
	i := 0
	for i < b.n {
		if !b.Get(i) {
			i++
			continue
		}
		lo := i
		for i < b.n && b.Get(i) {
			i++
		}
		fn(lo, i)
	}
}
