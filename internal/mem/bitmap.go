package mem

import "math/bits"

// Bitmap is a fixed-capacity bitset sized for one VABlock's pages. The
// zero value of a Bitmap created via NewBitmap is empty.
type Bitmap struct {
	words []uint64
	n     int // capacity in bits
	count int // set bits, maintained incrementally
}

// NewBitmap returns an empty bitmap with capacity for n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.count }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i and reports whether it was previously clear.
func (b *Bitmap) Set(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Clear clears bit i and reports whether it was previously set.
func (b *Bitmap) Clear(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.count--
	return true
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// SetRange sets every bit in [lo, hi) word-at-a-time and returns how
// many were previously clear. It is the bulk primitive behind big-page
// upgrades, dense-region fills, and eager residency marking.
func (b *Bitmap) SetRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	added := 0
	for i := lo; i < hi; {
		w := i >> 6
		span := 64 - i&63
		if i+span > hi {
			span = hi - i
		}
		var m uint64
		if span == 64 {
			m = ^uint64(0)
		} else {
			m = ((uint64(1) << uint(span)) - 1) << uint(i&63)
		}
		newBits := m &^ b.words[w]
		b.words[w] |= newBits
		added += bits.OnesCount64(newBits)
		i += span
	}
	b.count += added
	return added
}

// CopyFrom overwrites the bitmap with other's contents. The bitmaps
// must have equal capacity. It exists so scratch bitmaps can be refilled
// without allocating (the retained-scratch analogue of Clone).
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if b.n != other.n {
		panic("mem: CopyFrom capacity mismatch")
	}
	copy(b.words, other.words)
	b.count = other.count
}

// AndNotFrom overwrites the bitmap with a &^ c (bits set in a but not
// in c), word-at-a-time. All three bitmaps must have equal capacity.
func (b *Bitmap) AndNotFrom(a, c *Bitmap) {
	if b.n != a.n || b.n != c.n {
		panic("mem: AndNotFrom capacity mismatch")
	}
	count := 0
	for i := range b.words {
		w := a.words[i] &^ c.words[i]
		b.words[i] = w
		count += bits.OnesCount64(w)
	}
	b.count = count
}

// DiffCount returns the number of bits in [lo, hi) that are set in b
// but clear in other, without materializing the difference. The bitmaps
// must have equal capacity.
func (b *Bitmap) DiffCount(other *Bitmap, lo, hi int) int {
	if b.n != other.n {
		panic("mem: DiffCount capacity mismatch")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	n := 0
	for i := lo; i < hi; {
		w := i >> 6
		word := (b.words[w] &^ other.words[w]) >> uint(i&63)
		span := 64 - i&63
		if i+span > hi {
			span = hi - i
			word &= (1 << uint(span)) - 1
		}
		n += bits.OnesCount64(word)
		i += span
	}
	return n
}

// ForEachSetWord calls fn for every word with at least one set bit,
// passing the word index (bit base = w<<6) and the word's bits. It is
// the raw word-scan primitive the prefetch tree builds on.
func (b *Bitmap) ForEachSetWord(fn func(w int, bits uint64)) {
	for w, word := range b.words {
		if word != 0 {
			fn(w, word)
		}
	}
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	n := 0
	for i := lo; i < hi; {
		w := i >> 6
		// Mask off bits below i and at/above hi within this word.
		word := b.words[w] >> uint(i&63)
		span := 64 - i&63
		if i+span > hi {
			span = hi - i
			word &= (1 << uint(span)) - 1
		}
		n += bits.OnesCount64(word)
		i += span
	}
	return n
}

// ForEachSet calls fn for each set bit in ascending order.
func (b *Bitmap) ForEachSet(fn func(i int)) {
	for w, word := range b.words {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(w<<6 + tz)
			word &= word - 1
		}
	}
}

// NextClear returns the first clear bit at or after i, or -1 when all
// remaining bits are set. Word-scan: whole set words are skipped with a
// single inversion + trailing-zeros step.
func (b *Bitmap) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		w := i >> 6
		// Invert and mask off bits below i: the first remaining set bit
		// of the inverted word is the first clear bit of the original.
		word := ^b.words[w] >> uint(i&63)
		if word != 0 {
			j := i + bits.TrailingZeros64(word)
			if j >= b.n {
				return -1
			}
			return j
		}
		i = (w + 1) << 6
	}
	return -1
}

// NextSet returns the first set bit at or after i, or -1 when none
// remains.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for i < b.n {
		w := i >> 6
		word := b.words[w] >> uint(i&63)
		if word != 0 {
			return i + bits.TrailingZeros64(word)
		}
		i = (w + 1) << 6
	}
	return -1
}

// Or sets every bit that is set in other. The bitmaps must have equal
// capacity.
func (b *Bitmap) Or(other *Bitmap) {
	for i, w := range other.words {
		added := w &^ b.words[i]
		b.words[i] |= added
		b.count += bits.OnesCount64(added)
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n, count: b.count}
	copy(c.words, b.words)
	return c
}

// Runs calls fn for each maximal run [lo, hi) of set bits, in order. It is
// used to coalesce contiguous pages into single DMA transfers. Word-scan:
// run boundaries are found with trailing-zeros steps, so fully set or
// fully clear words cost one iteration instead of 64.
func (b *Bitmap) Runs(fn func(lo, hi int)) {
	i := b.NextSet(0)
	for i >= 0 {
		end := b.NextClear(i + 1)
		if end < 0 {
			fn(i, b.n)
			return
		}
		fn(i, end)
		i = b.NextSet(end + 1)
	}
}
