package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.PagesPerVABlock != 512 {
		t.Errorf("PagesPerVABlock = %d, want 512", g.PagesPerVABlock)
	}
	// Paper: 9-level binary tree = log2(2MB/4KB); our TreeLevels counts
	// node levels including the leaf level, so 10 total = 9 above leaves.
	if g.TreeLevels != 10 {
		t.Errorf("TreeLevels = %d, want 10", g.TreeLevels)
	}
	if g.VABlockSize != 2<<20 {
		t.Errorf("VABlockSize = %d", g.VABlockSize)
	}
}

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(3 << 20); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewGeometry(4 << 10); err == nil {
		t.Error("block smaller than big page accepted")
	}
	g, err := NewGeometry(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.PagesPerVABlock != 16 || g.TreeLevels != 5 {
		t.Errorf("64KB geometry = %+v", g)
	}
}

func TestGeometryPageMath(t *testing.T) {
	g := DefaultGeometry()
	if g.BlockOf(0) != 0 || g.BlockOf(511) != 0 || g.BlockOf(512) != 1 {
		t.Error("BlockOf boundaries wrong")
	}
	if g.PageIndex(512) != 0 || g.PageIndex(1023) != 511 {
		t.Error("PageIndex wrong")
	}
	if g.FirstPage(3) != 1536 {
		t.Error("FirstPage wrong")
	}
}

func TestGeometryRoundTripProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint32) bool {
		p := PageID(raw)
		b := g.BlockOf(p)
		idx := g.PageIndex(p)
		return g.FirstPage(b)+PageID(idx) == p && idx < g.PagesPerVABlock
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigPageBase(t *testing.T) {
	if BigPageBase(0) != 0 || BigPageBase(15) != 0 || BigPageBase(16) != 16 || BigPageBase(511) != 496 {
		t.Error("BigPageBase wrong")
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{{0, 0}, {-5, 0}, {1, 1}, {4096, 1}, {4097, 2}, {2 << 20, 512}}
	for _, c := range cases {
		if got := PagesFor(c.size); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if Bytes(3) != 3*4096 {
		t.Error("Bytes wrong")
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(512)
	if b.Count() != 0 || b.Len() != 512 {
		t.Fatal("fresh bitmap not empty")
	}
	if !b.Set(5) || b.Set(5) {
		t.Error("Set return values wrong")
	}
	if !b.Get(5) || b.Get(6) {
		t.Error("Get wrong")
	}
	if b.Count() != 1 {
		t.Error("Count wrong after set")
	}
	if !b.Clear(5) || b.Clear(5) {
		t.Error("Clear return values wrong")
	}
	if b.Count() != 0 {
		t.Error("Count wrong after clear")
	}
}

func TestBitmapCountRange(t *testing.T) {
	b := NewBitmap(512)
	for _, i := range []int{0, 63, 64, 65, 127, 200, 511} {
		b.Set(i)
	}
	cases := []struct{ lo, hi, want int }{
		{0, 512, 7}, {0, 64, 2}, {64, 128, 3}, {65, 66, 1},
		{128, 200, 0}, {200, 201, 1}, {511, 512, 1}, {100, 100, 0},
	}
	for _, c := range cases {
		if got := b.CountRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBitmapCountRangeProperty(t *testing.T) {
	f := func(setBits []uint16, loRaw, hiRaw uint16) bool {
		b := NewBitmap(512)
		ref := make(map[int]bool)
		for _, s := range setBits {
			i := int(s) % 512
			b.Set(i)
			ref[i] = true
		}
		lo, hi := int(loRaw)%513, int(hiRaw)%513
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for i := lo; i < hi; i++ {
			if ref[i] {
				want++
			}
		}
		return b.CountRange(lo, hi) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapForEachSetAndRuns(t *testing.T) {
	b := NewBitmap(128)
	for _, i := range []int{3, 4, 5, 10, 64, 65} {
		b.Set(i)
	}
	var seen []int
	b.ForEachSet(func(i int) { seen = append(seen, i) })
	want := []int{3, 4, 5, 10, 64, 65}
	if len(seen) != len(want) {
		t.Fatalf("ForEachSet = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEachSet = %v, want %v", seen, want)
		}
	}
	var runs [][2]int
	b.Runs(func(lo, hi int) { runs = append(runs, [2]int{lo, hi}) })
	wantRuns := [][2]int{{3, 6}, {10, 11}, {64, 66}}
	if len(runs) != len(wantRuns) {
		t.Fatalf("Runs = %v", runs)
	}
	for i := range wantRuns {
		if runs[i] != wantRuns[i] {
			t.Fatalf("Runs = %v, want %v", runs, wantRuns)
		}
	}
}

func TestBitmapOrAndClone(t *testing.T) {
	a, b := NewBitmap(128), NewBitmap(128)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	c := a.Clone()
	a.Or(b)
	if a.Count() != 3 || !a.Get(1) || !a.Get(2) || !a.Get(3) {
		t.Error("Or wrong")
	}
	if c.Count() != 2 || c.Get(3) {
		t.Error("Clone not independent")
	}
}

func TestBitmapNextClearAndReset(t *testing.T) {
	b := NewBitmap(8)
	for i := 0; i < 8; i++ {
		b.Set(i)
	}
	if b.NextClear(0) != -1 {
		t.Error("NextClear on full bitmap")
	}
	b.Clear(5)
	if b.NextClear(0) != 5 || b.NextClear(6) != -1 {
		t.Error("NextClear wrong")
	}
	b.Reset()
	if b.Count() != 0 || b.Get(3) {
		t.Error("Reset wrong")
	}
}

func TestAddressSpaceAlloc(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	a, err := s.Alloc(3<<20, "A") // 1.5 VABlocks -> 2 blocks, 768 pages
	if err != nil {
		t.Fatal(err)
	}
	if a.Pages != 768 || a.Blocks != 2 || a.StartPage != 0 {
		t.Errorf("range A = %+v", a)
	}
	b, err := s.Alloc(4096, "B")
	if err != nil {
		t.Fatal(err)
	}
	// B must start on the next VABlock boundary (page 1024).
	if b.StartPage != 1024 || b.Pages != 1 || b.Blocks != 1 {
		t.Errorf("range B = %+v", b)
	}
	if s.TotalPages() != 769 {
		t.Errorf("TotalPages = %d", s.TotalPages())
	}
	if _, err := s.Alloc(0, "zero"); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestRangeOf(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	a, _ := s.Alloc(3<<20, "A") // pages 0..767, blocks 0-1
	b, _ := s.Alloc(1<<20, "B") // pages 1024..1279, block 2
	if s.RangeOf(0) != a || s.RangeOf(767) != a {
		t.Error("RangeOf A wrong")
	}
	if s.RangeOf(768) != nil { // padding inside A's last block
		t.Error("padding page attributed to a range")
	}
	if s.RangeOf(1024) != b || s.RangeOf(1279) != b {
		t.Error("RangeOf B wrong")
	}
	if s.RangeOf(1280) != nil || s.RangeOf(99999) != nil {
		t.Error("out-of-space page attributed to a range")
	}
}

func TestBlockMaterialization(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	s.Alloc(3<<20, "A")
	b0 := s.Block(0)
	if b0 == nil || b0.Range != 0 || b0.Resident.Len() != 512 {
		t.Fatalf("block 0 = %+v", b0)
	}
	if s.Block(0) != b0 {
		t.Error("Block not memoized")
	}
	// Block 1 is the partially-valid tail block of A.
	if got := s.ValidPagesIn(1); got != 256 {
		t.Errorf("ValidPagesIn(1) = %d, want 256", got)
	}
	if got := s.ValidPagesIn(0); got != 512 {
		t.Errorf("ValidPagesIn(0) = %d, want 512", got)
	}
	if s.BlockIfExists(7) != nil {
		t.Error("BlockIfExists materialized a block")
	}
}

func TestBlockOutsideRangePanics(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	s.Alloc(1<<20, "A")
	defer func() {
		if recover() == nil {
			t.Error("Block outside ranges did not panic")
		}
	}()
	s.Block(99)
}

func TestResidency(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	s.Alloc(4<<20, "A")
	if s.IsResident(10) {
		t.Error("fresh page resident")
	}
	b := s.Block(0)
	b.Resident.Set(10)
	if !s.IsResident(10) || s.IsResident(11) {
		t.Error("IsResident wrong")
	}
	if s.ResidentPages() != 1 {
		t.Errorf("ResidentPages = %d", s.ResidentPages())
	}
}

func TestRangeContains(t *testing.T) {
	r := &Range{StartPage: 100, Pages: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Contains wrong")
	}
	if r.End() != 150 {
		t.Error("End wrong")
	}
}

func TestAllocModeRemote(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	if s.Special() {
		t.Error("fresh space marked special")
	}
	r, err := s.AllocMode(3<<20, "remote", ModeRemoteMap)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Special() {
		t.Error("remote range did not mark space special")
	}
	if r.Mode != ModeRemoteMap {
		t.Errorf("mode = %v", r.Mode)
	}
	// Every valid page is pre-resident through the interconnect; the
	// partial tail block must not mark padding resident.
	if got := s.ResidentPages(); got != r.Pages {
		t.Errorf("resident = %d, want %d", got, r.Pages)
	}
	b := s.Block(0)
	if !b.Remote || b.ReadDup {
		t.Errorf("block flags = %+v", b)
	}
	if s.Block(1).Resident.Get(300) { // page beyond the 768-page range
		t.Error("padding page resident")
	}
}

func TestAllocModeReadDupAndValidation(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	r, err := s.AllocMode(1<<20, "dup", ModeReadDup)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Block(s.Geometry().BlockOf(r.StartPage))
	if !b.ReadDup || b.Remote {
		t.Errorf("block flags = %+v", b)
	}
	if s.ResidentPages() != 0 {
		t.Error("read-dup pages should not be pre-resident")
	}
	if _, err := s.AllocMode(1<<20, "bad", AccessMode(42)); err == nil {
		t.Error("invalid mode accepted")
	}
	if len(s.Ranges()) != 1 {
		t.Errorf("ranges = %d", len(s.Ranges()))
	}
}

func TestAccessModeString(t *testing.T) {
	cases := map[AccessMode]string{
		ModeMigrate:   "migrate",
		ModeRemoteMap: "remote-map",
		ModeReadDup:   "read-dup",
		AccessMode(9): "mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestGeometryAccessor(t *testing.T) {
	s := NewAddressSpace(DefaultGeometry())
	if s.Geometry().PagesPerVABlock != 512 {
		t.Error("Geometry accessor wrong")
	}
}
