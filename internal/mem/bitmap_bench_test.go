package mem

import "testing"

// BenchmarkBitmapWordScan measures the word-scan primitives the driver
// and planner hot paths are built on, over a realistically fragmented
// 512-page block. The alloc gate holds it at zero allocs/op.
func BenchmarkBitmapWordScan(b *testing.B) {
	a, c, dst := NewBitmap(512), NewBitmap(512), NewBitmap(512)
	for p := 0; p < 512; p += 48 {
		a.SetRange(p, p+40)
		c.Set(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		dst.CopyFrom(a)
		dst.AndNotFrom(a, c)
		sink += a.DiffCount(c, 0, 512)
		sink += a.CountRange(3, 509)
		a.Runs(func(lo, hi int) { sink += hi - lo })
	}
	_ = sink
}
