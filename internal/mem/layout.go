// Package mem models the UVM virtual-address-space hierarchy described in
// the paper (§III-A): an address space is composed of ranges (one per
// cudaMallocManaged-style allocation); ranges are broken into 2 MB
// virtual address blocks (VABlocks); VABlocks are composed of 4 KB OS
// pages, with 64 KB "big page" alignment used by the prefetcher's upgrade
// stage.
package mem

import "fmt"

// Fixed layout constants matching the x86 UVM driver.
const (
	// PageSize is the OS page size (x86: 4 KB).
	PageSize = 4 << 10
	// BigPageSize is the "big page" the prefetcher upgrades faults to
	// (64 KB, emulating Power9 page size on x86).
	BigPageSize = 64 << 10
	// DefaultVABlockSize is the virtual address block size (2 MB). The
	// flexible-granularity extension (§VI-B) makes this configurable per
	// system; everything else derives from Geometry.
	DefaultVABlockSize = 2 << 20

	// PagesPerBigPage is the number of 4 KB pages per 64 KB big page.
	PagesPerBigPage = BigPageSize / PageSize
)

// PageID identifies a 4 KB page within an address space (global index).
type PageID uint64

// VABlockID identifies a VABlock within an address space.
type VABlockID uint64

// RangeID identifies a managed allocation (range) within an address space.
type RangeID int

// Geometry captures the derived page/block arithmetic for a configurable
// VABlock size. The paper's system uses the 2 MB default; the
// flexible-granularity ablation uses smaller blocks.
type Geometry struct {
	VABlockSize     int64 // bytes per VABlock; multiple of BigPageSize
	PagesPerVABlock int   // 4 KB pages per VABlock
	TreeLevels      int   // log2(PagesPerVABlock) + 1 tree levels (leaf level included)
}

// NewGeometry validates blockSize and returns the derived geometry.
// blockSize must be a power-of-two multiple of BigPageSize.
func NewGeometry(blockSize int64) (Geometry, error) {
	if blockSize < BigPageSize {
		return Geometry{}, fmt.Errorf("mem: VABlock size %d below big page size %d", blockSize, BigPageSize)
	}
	if blockSize&(blockSize-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: VABlock size %d not a power of two", blockSize)
	}
	pages := int(blockSize / PageSize)
	levels := 0
	for 1<<levels < pages {
		levels++
	}
	return Geometry{
		VABlockSize:     blockSize,
		PagesPerVABlock: pages,
		TreeLevels:      levels + 1,
	}, nil
}

// DefaultGeometry returns the 2 MB VABlock geometry used by the real
// driver: 512 pages per block, 10 node levels (9 levels above the leaves,
// matching the paper's log2(2MB/4KB) = 9).
func DefaultGeometry() Geometry {
	g, err := NewGeometry(DefaultVABlockSize)
	if err != nil {
		panic(err) // impossible: constant input
	}
	return g
}

// BlockOf returns the VABlock containing page p.
func (g Geometry) BlockOf(p PageID) VABlockID {
	return VABlockID(uint64(p) / uint64(g.PagesPerVABlock))
}

// PageIndex returns the index of page p within its VABlock.
func (g Geometry) PageIndex(p PageID) int {
	return int(uint64(p) % uint64(g.PagesPerVABlock))
}

// FirstPage returns the first page of VABlock b.
func (g Geometry) FirstPage(b VABlockID) PageID {
	return PageID(uint64(b) * uint64(g.PagesPerVABlock))
}

// BigPageBase returns the index of the first page of the big page
// containing in-block page index idx.
func BigPageBase(idx int) int { return idx &^ (PagesPerBigPage - 1) }

// Bytes converts a page count to bytes.
func Bytes(pages int) int64 { return int64(pages) * PageSize }

// PagesFor returns the number of pages needed to hold size bytes.
func PagesFor(size int64) int {
	if size <= 0 {
		return 0
	}
	return int((size + PageSize - 1) / PageSize)
}
