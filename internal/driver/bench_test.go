package driver

import (
	"testing"

	"uvmsim/internal/mem"
)

// BenchmarkBinBatch measures the preprocess hot path in isolation:
// grouping, deduplicating, ordering, and rotating one full batch. The
// alloc gate (scripts/bench_check.sh) holds it at zero allocs/op.
func BenchmarkBinBatch(b *testing.B) {
	h := newHarness(b, 64<<20, 16<<20)
	entries := batchEntries(h.space.Geometry(), 6, 40)
	h.drv.binBatch(entries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.drv.binBatch(entries)
	}
}

// BenchmarkMapOps measures the PTE-counting walk over a fragmented
// fetch set (alternating big-page-able chunks and partial runs).
func BenchmarkMapOps(b *testing.B) {
	pages := mem.DefaultGeometry().PagesPerVABlock
	fetch := mem.NewBitmap(pages)
	demanded := mem.NewBitmap(pages)
	for p := 0; p < pages; p += 48 {
		hi := p + 40
		if hi > pages {
			hi = pages
		}
		fetch.SetRange(p, hi)
		demanded.Set(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += mapOps(fetch, demanded)
	}
	_ = sink
}
