package driver

import (
	"uvmsim/internal/mem"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Ownership classifies who backs a faulted VABlock in a multi-GPU
// system, from the faulting device's point of view.
type Ownership int

// Ownership states.
const (
	// OwnHost: no device owns the block; the fault services from host
	// memory exactly like the single-GPU path (and claims ownership).
	OwnHost Ownership = iota
	// OwnSelf: this device already owns the block.
	OwnSelf
	// OwnPeer: a peer device owns the block; the fault services as a
	// remote mapping over the interconnect fabric instead of a migration.
	OwnPeer
)

// Residency is the driver's view of the shared multi-GPU residency map
// (internal/multigpu). It is nil in single-GPU systems: every call site
// is nil-guarded, so the K=1 pipeline is byte-identical to the
// pre-multi-GPU driver.
type Residency interface {
	// Classify reports who owns the faulted block right now.
	Classify(id mem.VABlockID) Ownership
	// RemoteMap installs remote mappings for every valid page of b in
	// this device's view (marking b.Remote and its pages resident) and
	// registers the device as a remote holder. It returns the number of
	// pages mapped, which prices the PTE writes.
	RemoteMap(b *mem.VABlock) int
	// Claimed records that this device allocated physical backing for b
	// (first touch pins ownership here).
	Claimed(b *mem.VABlock)
	// Released records that this device evicted b: ownership returns to
	// the host and every peer's remote mapping of b is invalidated.
	Released(b *mem.VABlock)
}

// serviceRemote services a bin whose block a peer device owns: instead
// of migrating pages, the driver installs remote mappings over the
// fabric. A bin whose block is already remote-mapped is stale — its
// faults were raised before the mapping was installed — and costs only
// fixed bookkeeping, mirroring the stale path in migrate.
func (d *Driver) serviceRemote(bins []*bin, i int) {
	block := d.space.Block(bins[i].block)
	if block.Remote {
		d.m.staleBins.Inc(1)
		cost := d.cfg.ServiceFixedPerBlock
		d.chargeSpan(obs.SpanMigrate, cost, 0)
		d.eng.After(cost, func() { d.afterRemote(bins, i, true) })
		return
	}
	pages := d.res.RemoteMap(block)
	block.Touches++
	cost := d.cfg.ServiceFixedPerBlock +
		sim.Duration(pages)*d.cfg.MapPerOp + d.cfg.MembarPerBlock
	d.m.remoteMaps.Inc(1)
	d.chargeSpan(obs.SpanRemoteMap, cost, int64(pages))
	d.servicedSinceReplay++
	d.eng.After(cost, func() { d.afterRemote(bins, i, false) })
}

// afterRemote is serviceRemote's continuation: lifecycle terminal states
// and the per-block replay policy, mirroring afterMap.
func (d *Driver) afterRemote(bins []*bin, i int, stale bool) {
	if d.life.Enabled() {
		now := d.eng.Now()
		for _, seq := range bins[i].seqs {
			if stale {
				d.life.ServicedStale(seq, now)
			} else {
				d.life.Serviced(seq, now)
			}
		}
	}
	if d.cfg.Policy == ReplayBlock {
		d.issueReplay(func() { d.serviceBlock(bins, i+1) })
		return
	}
	d.serviceBlock(bins, i+1)
}
